"""Approximation benchmark smoke: exact vs Nystrom at a fixed rank.

Runs the acceptance workload of the low-rank subsystem -- ``n >= 512``
training points, ``m = 64`` landmarks -- once through the exact quadratic
path (full Gram + SMO) and once through the Nystrom path (landmark Gram +
cross block + primal linear SVM), and writes ``BENCH_approx.json`` with the
engine pair counts, end-to-end wall times and the test-AUC gap.  CI uploads
the file next to ``BENCH_engine.json`` so the scaling trajectory is tracked
per PR.

The script exits non-zero when any of the subsystem's contracts break:

* the Nystrom fit must issue at most ``n m + m^2`` engine pair evaluations
  (the exact path needs ``n (n - 1) / 2`` for the Gram matrix alone);
* its end-to-end wall time must be lower than the exact path's;
* its test AUC must land within 0.05 of the exact quantum-kernel AUC.

Run with:  python benchmarks/bench_approx.py [--out BENCH_approx.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import __version__
from repro.approx import LinearSVC, NystroemConfig, NystroemFeatureMap
from repro.config import AnsatzConfig
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.engine import EngineConfig, KernelEngine
from repro.svm import (
    FeatureScaler,
    PrecomputedKernelSVC,
    roc_auc_score,
    train_test_split,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_approx.json"))
    parser.add_argument("--train-size", type=int, default=512)
    parser.add_argument("--test-size", type=int, default=128)
    parser.add_argument("--landmarks", type=int, default=64)
    parser.add_argument("--strategy", default="greedy")
    parser.add_argument("--features", type=int, default=6)
    parser.add_argument("--svm-c", type=float, default=1.0)
    parser.add_argument("--max-auc-gap", type=float, default=0.05)
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="offset applied to every workload seed; the default keeps CI "
        "runs deterministic so baseline comparisons are run-to-run stable",
    )
    args = parser.parse_args()

    n, m = args.train_size, args.landmarks
    total = n + args.test_size
    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=3 * total,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7 + args.seed,
            )
        ),
        total,
        seed=3 + args.seed,
    )
    X_train, X_test, y_train, y_test = train_test_split(
        data.features, data.labels, test_fraction=args.test_size / total, seed=args.seed
    )
    scaler = FeatureScaler()
    Xs_train = scaler.fit_transform(X_train)
    Xs_test = scaler.transform(X_test)
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )

    # ------------------------------------------------------------------
    # Exact path: full Gram + cross matrix + SMO dual solver.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    exact_engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    train_result, test_result = exact_engine.gram_and_cross(Xs_train, Xs_test)
    exact_model = PrecomputedKernelSVC(C=args.svm_c).fit(train_result.matrix, y_train)
    exact_scores = exact_model.decision_function(test_result.matrix)
    exact_elapsed = time.perf_counter() - start
    exact_auc = roc_auc_score(y_test, exact_scores)
    exact_pairs = train_result.num_inner_products + test_result.num_inner_products

    # ------------------------------------------------------------------
    # Nystrom path: landmark Gram + cross block + primal linear SVM.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    approx_engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    fmap = NystroemFeatureMap(
        approx_engine, NystroemConfig(num_landmarks=m, strategy=args.strategy)
    )
    phi_train = fmap.fit_transform(Xs_train)
    approx_model = LinearSVC(C=args.svm_c).fit(phi_train, y_train)
    phi_test = fmap.transform(Xs_test)
    approx_scores = approx_model.decision_function(phi_test)
    approx_elapsed = time.perf_counter() - start
    approx_auc = roc_auc_score(y_test, approx_scores)

    pair_budget = n * m + m * m
    payload = {
        "benchmark": "approx_smoke",
        "version": __version__,
        "python": platform.python_version(),
        "config": {
            "train_size": n,
            "test_size": int(X_test.shape[0]),
            "num_landmarks": m,
            "strategy": args.strategy,
            "num_features": args.features,
            "svm_c": args.svm_c,
            "seed": args.seed,
        },
        "exact": {
            "elapsed_s": exact_elapsed,
            "pairs": int(exact_pairs),
            "gram_pairs": int(train_result.num_inner_products),
            "auc": exact_auc,
        },
        "nystroem": {
            "elapsed_s": approx_elapsed,
            "fit_pairs": int(fmap.report.fit_pair_evaluations),
            "transform_pairs": int(fmap.report.transform_pair_evaluations),
            "pair_budget": int(pair_budget),
            "spectral_rank": int(fmap.rank_),
            "auc": approx_auc,
        },
        "delta": {
            "speedup": exact_elapsed / approx_elapsed if approx_elapsed > 0 else None,
            "pair_reduction": exact_pairs / fmap.report.num_pair_evaluations,
            "auc_gap": abs(exact_auc - approx_auc),
        },
    }

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")

    failures = []
    if fmap.report.fit_pair_evaluations > pair_budget:
        failures.append(
            f"fit issued {fmap.report.fit_pair_evaluations} pairs, "
            f"budget is {pair_budget}"
        )
    if approx_elapsed >= exact_elapsed:
        failures.append(
            f"Nystrom path ({approx_elapsed:.2f}s) not faster than exact "
            f"({exact_elapsed:.2f}s)"
        )
    if abs(exact_auc - approx_auc) > args.max_auc_gap:
        failures.append(
            f"AUC gap {abs(exact_auc - approx_auc):.4f} exceeds "
            f"{args.max_auc_gap}"
        )
    if failures:
        raise SystemExit("approximation contract broken: " + "; ".join(failures))


if __name__ == "__main__":
    main()
