"""Encoding benchmark: stacked batch encoding vs per-point circuit simulation.

The serving story batches overlaps, caches states and coalesces requests --
but until the batched encoding subsystem, every *cold* feature vector still
simulated its circuit one gate-sweep at a time.  This benchmark measures what
the stacked sweep (:meth:`repro.backends.Backend.simulate_batch`) buys:

* **encode throughput**: a block of fresh rows encoded per-point
  (``backend.simulate`` in a loop) versus in stacked sweeps at several batch
  sizes, with byte-identical states asserted between every mode;
* **modelled device time**: the per-point versus stacked cost-model entries
  on both the CPU and simulated-GPU models (the A100's launch overhead is
  what stacking amortises, extending the Fig. 5 crossover picture);
* **cold-query serving latency**: a stream of entirely-unseen rows pushed
  through :class:`repro.serving.AsyncServingQueue` with batch encoding on
  and off -- throughput and p50/p99 latency per mode, byte-identical
  decision values required.

The script writes ``BENCH_encoding.json`` and exits non-zero when the
acceptance contract breaks:

* batch-32 encode throughput must reach at least ``--min-speedup`` (2x) the
  per-point path;
* every mode must produce byte-identical states / predictions.

``--scenario fused`` benchmarks the fused encode-to-overlap pipeline
instead, writing ``BENCH_fused.json``:

* **cold flush as one pipeline**: a cold kernel-row block executed unfused
  (encode -> store writes -> block sweep) versus fused
  (:class:`repro.engine.plan.FusedEncodeOverlapPlan`; store written after
  the sweep).  A probe store counts the store writes sitting on the
  critical path -- the fused pipeline must show **zero** -- with
  byte-identical kernels and identical hit/miss accounting required;
* **prefix-sharing encode tree**: a mixed-ansatz batch encoded with and
  without prefix sharing; stacked launches, fork count and wall time per
  mode, bit-identical states required;
* **modelled cross dispatch**: the Nystrom-scale ``K_nm`` block swept
  through an engine with a GPU cross backend -- the stacked cost models of
  both devices, which one the engine chose, and proof the block actually
  ran on it (with byte-identical values).

Run with:  python benchmarks/bench_encoding.py [--out BENCH_encoding.json]
           python benchmarks/bench_encoding.py --scenario fused [--out BENCH_fused.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import __version__
from repro.approx import LinearSVC, NystroemConfig, NystroemFeatureMap
from repro.approx.streaming import StreamingNystroemClassifier
from repro.backends import CpuBackend, SimulatedGpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine, StackedStateBlock, StateStore
from repro.serving import AsyncServingQueue
from repro.telemetry import (
    MetricsRegistry,
    bind_engine,
    bind_queue,
    render_prometheus,
)


def maybe_emit_metrics(args, payload: dict) -> None:
    """Dump the bound registry: Prometheus text at the flag's path + JSON."""
    if args.metrics_registry is None:
        return
    args.emit_metrics.write_text(render_prometheus(args.metrics_registry))
    snapshot = args.metrics_registry.to_dict()
    json_path = Path(str(args.emit_metrics) + ".json")
    json_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
    payload["telemetry"] = {
        "metrics_path": str(args.emit_metrics),
        "json_path": str(json_path),
        "families": len(snapshot),
    }
    print(f"wrote {args.emit_metrics} + {json_path} ({len(snapshot)} families)")


def states_identical(left, right) -> bool:
    """Byte-level equality of two encoded state lists."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if len(a.tensors) != len(b.tensors):
            return False
        for ta, tb in zip(a.tensors, b.tensors):
            if ta.shape != tb.shape or ta.tobytes() != tb.tobytes():
                return False
    return True


def run_encode_throughput(args, rng) -> tuple[list[dict], list[str]]:
    """Per-point vs stacked encode rates on one block of fresh rows."""
    ansatz = AnsatzConfig(
        num_features=args.features,
        interaction_distance=args.distance,
        layers=args.layers,
        gamma=0.8,
    )
    X = rng.uniform(0.05, 1.95, size=(args.rows, args.features))
    circuits = [build_feature_map_circuit(row, ansatz) for row in X]

    backend = CpuBackend()
    backend.simulate_batch(circuits[:4])  # warm NumPy/LAPACK paths
    start = time.perf_counter()
    reference = [backend.simulate(c).state for c in circuits]
    per_point_s = time.perf_counter() - start

    records = [
        {
            "mode": "per-point",
            "batch_size": 1,
            "wall_s": per_point_s,
            "encodes_per_sec": len(circuits) / per_point_s,
            "byte_identical": True,
        }
    ]
    failures: list[str] = []
    for batch_size in (1, 8, args.batch):
        backend = CpuBackend()
        start = time.perf_counter()
        states: list = []
        for lo in range(0, len(circuits), batch_size):
            states.extend(
                backend.simulate_batch(circuits[lo : lo + batch_size]).states
            )
        elapsed = time.perf_counter() - start
        identical = states_identical(states, reference)
        record = {
            "mode": "batched",
            "batch_size": batch_size,
            "wall_s": elapsed,
            "encodes_per_sec": len(circuits) / elapsed,
            "speedup_vs_per_point": per_point_s / elapsed,
            "byte_identical": identical,
        }
        records.append(record)
        print(
            f"encode batch={batch_size}: {elapsed:.3f} s "
            f"({record['encodes_per_sec']:.0f} encodes/s, "
            f"{record['speedup_vs_per_point']:.2f}x, identical={identical})"
        )
        if not identical:
            failures.append(f"batched encode (batch={batch_size}) not byte-identical")

    # Modelled device times: what the stacked launch amortisation is worth on
    # each device model (one entry per backend).
    modelled = []
    for backend in (CpuBackend(), SimulatedGpuBackend()):
        result = backend.simulate_batch(circuits[: args.batch])
        modelled.append(
            {
                "backend": backend.name,
                "batch_size": args.batch,
                "modelled_per_point_s": result.modelled_time_s,
                "modelled_batched_s": result.modelled_batched_time_s,
                "modelled_speedup": result.modelled_time_s
                / result.modelled_batched_time_s,
            }
        )
    return records + modelled, failures


def build_classifier(args, batch_encoding: bool) -> StreamingNystroemClassifier:
    """A freshly fitted Nystrom serving stack (deterministic given the seed)."""
    rng = np.random.default_rng(args.seed)
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = KernelEngine(
        ansatz,
        config=EngineConfig(
            use_cache=True, batch_encoding=batch_encoding, encode_batch_size=args.batch
        ),
    )
    X = rng.uniform(0.05, 1.95, size=(args.train_size, args.features))
    y = (X.mean(axis=1) > 1.0).astype(int)
    feature_map = NystroemFeatureMap(
        engine, NystroemConfig(num_landmarks=args.landmarks, seed=0)
    )
    phi = feature_map.fit_transform(X)
    model = LinearSVC(C=1.0).fit(phi, y)
    return StreamingNystroemClassifier(feature_map, model, buffer_size=args.batch)


def run_cold_serving(args, mode_rng_seed: int = 11) -> tuple[list[dict], list[str]]:
    """Cold-traffic queue latency with batch encoding on vs off."""
    rng = np.random.default_rng(mode_rng_seed + args.seed)
    stream = rng.uniform(0.05, 1.95, size=(args.queries, args.features))

    records = []
    failures: list[str] = []
    decisions_by_mode = {}
    for batch_encoding in (False, True):
        classifier = build_classifier(args, batch_encoding)
        queue = AsyncServingQueue(
            classifier,
            max_batch=args.batch,
            max_wait_ms=args.max_wait_ms,
            memoize=False,
            seed=0,
        )
        if args.metrics_registry is not None:
            bind_queue(
                args.metrics_registry, queue, replica=f"be{int(batch_encoding)}"
            )
        start = time.perf_counter()
        futures = queue.submit_many(stream)
        results = [f.result(timeout=600) for f in futures]
        elapsed = time.perf_counter() - start
        queue.close()
        snapshot = queue.metrics.to_dict()
        decisions_by_mode[batch_encoding] = np.array(
            [r.decision_value for r in results]
        )
        record = {
            "mode": "cold-queue",
            "batch_encoding": batch_encoding,
            "queries": args.queries,
            "wall_s": elapsed,
            "throughput_rps": args.queries / elapsed,
            "p50_latency_ms": snapshot["p50_latency_s"] * 1e3,
            "p99_latency_ms": snapshot["p99_latency_s"] * 1e3,
            "mean_batch_size": snapshot["mean_batch_size"],
        }
        records.append(record)
        print(
            f"cold queue batch_encoding={batch_encoding}: {elapsed:.3f} s "
            f"({record['throughput_rps']:.0f} req/s, "
            f"p50={record['p50_latency_ms']:.2f} ms, "
            f"p99={record['p99_latency_ms']:.2f} ms)"
        )
    if not np.array_equal(decisions_by_mode[False], decisions_by_mode[True]):
        failures.append("cold-path predictions differ with batch encoding enabled")
    records[-1]["speedup_vs_unbatched"] = (
        records[1]["throughput_rps"] / records[0]["throughput_rps"]
    )
    records[-1]["byte_identical"] = not failures
    return records, failures


class _ProbeStore(StateStore):
    """State store recording every get/put into an event list."""

    def __init__(self, events: list):
        super().__init__()
        self.events = events

    def get(self, key):
        state = super().get(key)
        self.events.append(("get", state is not None))
        return state

    def put(self, key, state):
        self.events.append(("put",))
        super().put(key, state)


def _fused_flush_once(args, X_cold, train_states, block, fused: bool) -> dict:
    """One cold flush through a fresh engine, instrumented end to end."""
    ansatz = AnsatzConfig(
        num_features=args.features,
        interaction_distance=args.distance,
        layers=args.layers,
        gamma=0.8,
    )
    events: list = []
    engine = KernelEngine(
        ansatz,
        config=EngineConfig(use_cache=True, fused_pipeline=fused),
        store=_ProbeStore(events),
    )
    original = engine.backend.inner_product_block

    def spy(bras, blk):
        events.append(("block",))
        return original(bras, blk)

    engine.backend.inner_product_block = spy
    start = time.perf_counter()
    result = engine.kernel_rows(X_cold, train_states, block=block)
    wall = time.perf_counter() - start
    sweep_at = events.index(("block",))
    return {
        "mode": "fused" if fused else "unfused",
        "wall_s": wall,
        "matrix_bytes": result.matrix.tobytes(),
        "critical_path_store_writes": sum(
            1 for e in events[:sweep_at] if e == ("put",)
        ),
        "store_writes_total": sum(1 for e in events if e == ("put",)),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "num_simulations": result.num_simulations,
        "modelled_total_s": result.modelled_total_time_s,
        "modelled_batched_total_s": result.modelled_batched_total_time_s,
    }


def run_fused_flush(args, rng) -> tuple[list[dict], list[str]]:
    """Cold kernel-row flush: unfused schedule vs the fused pipeline."""
    ansatz = AnsatzConfig(
        num_features=args.features,
        interaction_distance=args.distance,
        layers=args.layers,
        gamma=0.8,
    )
    setup = KernelEngine(ansatz)
    train_states = setup.encode_rows(
        rng.uniform(0.05, 1.95, size=(args.landmarks, args.features))
    )
    block = StackedStateBlock(train_states)
    X_cold = rng.uniform(0.05, 1.95, size=(args.batch, args.features))

    best: dict[str, dict] = {}
    for _ in range(args.repeats):
        for fused in (False, True):
            record = _fused_flush_once(args, X_cold, train_states, block, fused)
            mode = record["mode"]
            if mode not in best or record["wall_s"] < best[mode]["wall_s"]:
                best[mode] = record

    failures: list[str] = []
    identical = best["fused"]["matrix_bytes"] == best["unfused"]["matrix_bytes"]
    if not identical:
        failures.append("fused cold flush is not byte-identical to unfused")
    if best["fused"]["critical_path_store_writes"] != 0:
        failures.append(
            f"fused pipeline has {best['fused']['critical_path_store_writes']} "
            "store writes on the critical path, expected 0"
        )
    if best["unfused"]["critical_path_store_writes"] == 0:
        failures.append("unfused schedule shows no critical-path writes (probe broken)")
    if (best["fused"]["cache_hits"], best["fused"]["cache_misses"]) != (
        best["unfused"]["cache_hits"],
        best["unfused"]["cache_misses"],
    ):
        failures.append("fused pipeline changed the cache hit/miss accounting")

    records = []
    for mode in ("unfused", "fused"):
        record = dict(best[mode])
        record.pop("matrix_bytes")
        record["byte_identical"] = identical
        records.append(record)
    records[1]["speedup_vs_unfused"] = (
        best["unfused"]["wall_s"] / best["fused"]["wall_s"]
    )
    for record in records:
        print(
            f"cold flush {record['mode']}: {record['wall_s'] * 1e3:.2f} ms, "
            f"{record['critical_path_store_writes']} critical-path store writes, "
            f"hits/misses={record['cache_hits']}/{record['cache_misses']}"
        )
    return records, failures


def run_prefix_tree(args, rng) -> tuple[list[dict], list[str]]:
    """Mixed-ansatz encode with and without the prefix-sharing tree."""
    from repro.mps.encoding import GateShapeLog, encode_circuits

    base = dict(num_features=args.features, gamma=0.8)
    ansatze = [
        AnsatzConfig(interaction_distance=1, layers=1, **base),
        AnsatzConfig(interaction_distance=1, layers=2, **base),
        AnsatzConfig(interaction_distance=2, layers=1, **base),
    ]
    per_family = max(2, args.batch // len(ansatze))
    circuits = [
        build_feature_map_circuit(row, ansatz)
        for ansatz in ansatze
        for row in rng.uniform(0.05, 1.95, size=(per_family, args.features))
    ]
    reference = [CpuBackend().simulate(c).state for c in circuits]

    records = []
    failures: list[str] = []
    blobs = {}
    for sharing in (False, True):
        mode = "tree" if sharing else "flat"
        best_wall = None
        log = None
        states = None
        for _ in range(args.repeats):
            log = GateShapeLog()
            start = time.perf_counter()
            states = encode_circuits(circuits, log=log, prefix_sharing=sharing)
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
        blobs[mode] = [
            tuple(t.tobytes() for t in s.tensors) for s in states
        ]
        identical = blobs[mode] == [
            tuple(t.tobytes() for t in s.tensors) for s in reference
        ]
        if not identical:
            failures.append(f"{mode} encode is not bit-identical to per-point")
        record = {
            "mode": mode,
            "circuits": len(circuits),
            "structure_groups": log.structure_groups,
            "stacked_launches": log.stacked_launches,
            "prefix_forks": log.prefix_forks,
            "wall_s": best_wall,
            "byte_identical": identical,
        }
        records.append(record)
        print(
            f"encode {mode}: {record['stacked_launches']} stacked launches, "
            f"{record['prefix_forks']} forks, {best_wall * 1e3:.2f} ms"
        )
    if records[1]["stacked_launches"] >= records[0]["stacked_launches"]:
        failures.append("prefix tree did not reduce stacked launches")
    records[1]["launches_saved"] = (
        records[0]["stacked_launches"] - records[1]["stacked_launches"]
    )
    return records, failures


def run_cross_dispatch(args, rng) -> tuple[list[dict], list[str]]:
    """Nystrom-scale ``K_nm`` sweep through the modelled CPU/GPU dispatch."""
    from repro.backends import CPU_COST_MODEL, GPU_COST_MODEL, preferred_cross_model

    # chi saturates at 16 for this ansatz, where a ~2048-pair stacked block
    # clears the A100 model's launch overhead (the per-pair crossover does
    # not arrive until chi ~ 320 -- stacking moves the crossover).
    ansatz = AnsatzConfig(
        num_features=args.features,
        interaction_distance=3,
        layers=2,
        gamma=0.8,
    )
    gpu = SimulatedGpuBackend()
    engine = KernelEngine(ansatz, config=EngineConfig(), cross_backend=gpu)
    if args.metrics_registry is not None:
        bind_engine(args.metrics_registry, engine, replica="dispatch")
    reference = KernelEngine(ansatz, config=EngineConfig())
    X_landmarks = rng.uniform(0.05, 1.95, size=(args.landmarks, args.features))
    X_rows = rng.uniform(0.05, 1.95, size=(args.cross_rows, args.features))
    train_states = engine.encode_rows(X_landmarks)

    start = time.perf_counter()
    routed = engine.cross(X_rows, train_states)
    wall = time.perf_counter() - start
    baseline = reference.cross(X_rows, train_states)

    num_pairs = args.cross_rows * args.landmarks
    chi = max(
        max(s.max_bond_dimension for s in routed.states),
        max(s.max_bond_dimension for s in train_states),
    )
    chosen_model = preferred_cross_model(num_pairs, args.features, chi)
    chosen = "gpu" if chosen_model is GPU_COST_MODEL else "cpu"
    gpu_swept = gpu.num_inner_products == num_pairs

    failures: list[str] = []
    identical = routed.matrix.tobytes() == baseline.matrix.tobytes()
    if not identical:
        failures.append("dispatched cross sweep is not byte-identical to CPU-only")
    if chosen == "gpu" and not gpu_swept:
        failures.append("cost model chose the GPU but the block did not run there")
    record = {
        "mode": "cross-dispatch",
        "rows": args.cross_rows,
        "landmarks": args.landmarks,
        "pairs": num_pairs,
        "chi": chi,
        "modelled_cpu_s": CPU_COST_MODEL.batched_inner_product_time(
            num_pairs, args.features, chi
        ),
        "modelled_gpu_s": GPU_COST_MODEL.batched_inner_product_time(
            num_pairs, args.features, chi
        ),
        "chosen": chosen,
        "gpu_inner_products": gpu.num_inner_products,
        "wall_s": wall,
        "byte_identical": identical,
    }
    print(
        f"cross dispatch: {num_pairs} pairs at chi={chi} -> {chosen} "
        f"(cpu {record['modelled_cpu_s'] * 1e3:.2f} ms vs "
        f"gpu {record['modelled_gpu_s'] * 1e3:.2f} ms modelled)"
    )
    return [record], failures


def run_fused_scenario(args) -> tuple[dict, list[str]]:
    """The fused-pipeline artifact: flush schedule + encode tree + dispatch."""
    rng = np.random.default_rng(args.seed)
    print(
        f"fused workload: {args.batch}-row cold flush against {args.landmarks} "
        f"landmarks (m={args.features}, d={args.distance}, r={args.layers}), "
        f"{args.cross_rows} x {args.landmarks} cross block"
    )
    flush_records, failures = run_fused_flush(args, rng)
    tree_records, tree_failures = run_prefix_tree(args, rng)
    dispatch_records, dispatch_failures = run_cross_dispatch(args, rng)
    failures.extend(tree_failures)
    failures.extend(dispatch_failures)

    records = flush_records + tree_records + dispatch_records
    payload = {
        "benchmark": "fused-pipeline",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "batch": args.batch,
            "features": args.features,
            "distance": args.distance,
            "layers": args.layers,
            "landmarks": args.landmarks,
            "cross_rows": args.cross_rows,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "records": records,
        "byte_identical": all(
            r["byte_identical"] for r in records if "byte_identical" in r
        ),
        "ok": not failures,
    }
    return payload, failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        choices=("encoding", "fused"),
        default="encoding",
        help="'encoding' benchmarks stacked encoding; 'fused' benchmarks the "
        "fused encode-to-overlap pipeline, prefix tree and cross dispatch",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--rows", type=int, default=96)
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--features", type=int, default=8)
    parser.add_argument("--distance", type=int, default=2)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=192)
    parser.add_argument("--train-size", type=int, default=64)
    parser.add_argument("--landmarks", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--cross-rows",
        type=int,
        default=128,
        help="fused scenario: rows in the Nystrom K_nm dispatch block "
        "(128 x 16 landmarks = 2048 pairs clears the A100 launch overhead)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="fused scenario: timing repeats, best-of kept",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed; fixed seeds keep baseline comparisons deterministic",
    )
    parser.add_argument(
        "--emit-metrics",
        type=Path,
        default=None,
        help="bind a telemetry registry to the served queues / dispatch engine "
        "and dump it after the run: Prometheus text here, JSON at PATH.json",
    )
    args = parser.parse_args()
    args.metrics_registry = (
        MetricsRegistry() if args.emit_metrics is not None else None
    )
    if args.out is None:
        args.out = Path(
            "BENCH_fused.json" if args.scenario == "fused" else "BENCH_encoding.json"
        )

    if args.scenario == "fused":
        payload, failures = run_fused_scenario(args)
        maybe_emit_metrics(args, payload)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            raise SystemExit(1)
        fused = next(r for r in payload["records"] if r["mode"] == "fused")
        dispatch = next(
            r for r in payload["records"] if r["mode"] == "cross-dispatch"
        )
        print(
            "OK: fused cold flush ran with zero critical-path store writes "
            f"({fused['speedup_vs_unfused']:.2f}x), byte-identical throughout; "
            f"{dispatch['pairs']}-pair cross block dispatched to {dispatch['chosen']}"
        )
        return

    rng = np.random.default_rng(args.seed)
    print(
        f"workload: {args.rows} encodes (m={args.features}, d={args.distance}, "
        f"r={args.layers}), {args.queries} cold queries"
    )

    encode_records, failures = run_encode_throughput(args, rng)
    serving_records, serving_failures = run_cold_serving(args)
    failures.extend(serving_failures)

    acceptance_speedup = next(
        r["speedup_vs_per_point"]
        for r in encode_records
        if r.get("mode") == "batched" and r.get("batch_size") == args.batch
    )
    if acceptance_speedup < args.min_speedup:
        failures.append(
            f"batch={args.batch} encode speedup {acceptance_speedup:.2f} "
            f"< required {args.min_speedup}"
        )

    payload = {
        "benchmark": "encoding",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "rows": args.rows,
            "batch": args.batch,
            "features": args.features,
            "distance": args.distance,
            "layers": args.layers,
            "cold_queries": args.queries,
            "train_size": args.train_size,
            "landmarks": args.landmarks,
            "seed": args.seed,
        },
        "records": encode_records + serving_records,
        "min_speedup_required": args.min_speedup,
        "acceptance_speedup": acceptance_speedup,
        "ok": not failures,
    }
    maybe_emit_metrics(args, payload)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"OK: batch-{args.batch} stacked encoding reaches {acceptance_speedup:.2f}x "
        "per-point throughput with byte-identical states and predictions"
    )


if __name__ == "__main__":
    main()
