"""Encoding benchmark: stacked batch encoding vs per-point circuit simulation.

The serving story batches overlaps, caches states and coalesces requests --
but until the batched encoding subsystem, every *cold* feature vector still
simulated its circuit one gate-sweep at a time.  This benchmark measures what
the stacked sweep (:meth:`repro.backends.Backend.simulate_batch`) buys:

* **encode throughput**: a block of fresh rows encoded per-point
  (``backend.simulate`` in a loop) versus in stacked sweeps at several batch
  sizes, with byte-identical states asserted between every mode;
* **modelled device time**: the per-point versus stacked cost-model entries
  on both the CPU and simulated-GPU models (the A100's launch overhead is
  what stacking amortises, extending the Fig. 5 crossover picture);
* **cold-query serving latency**: a stream of entirely-unseen rows pushed
  through :class:`repro.serving.AsyncServingQueue` with batch encoding on
  and off -- throughput and p50/p99 latency per mode, byte-identical
  decision values required.

The script writes ``BENCH_encoding.json`` and exits non-zero when the
acceptance contract breaks:

* batch-32 encode throughput must reach at least ``--min-speedup`` (2x) the
  per-point path;
* every mode must produce byte-identical states / predictions.

Run with:  python benchmarks/bench_encoding.py [--out BENCH_encoding.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import __version__
from repro.approx import LinearSVC, NystroemConfig, NystroemFeatureMap
from repro.approx.streaming import StreamingNystroemClassifier
from repro.backends import CpuBackend, SimulatedGpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine
from repro.serving import AsyncServingQueue


def states_identical(left, right) -> bool:
    """Byte-level equality of two encoded state lists."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if len(a.tensors) != len(b.tensors):
            return False
        for ta, tb in zip(a.tensors, b.tensors):
            if ta.shape != tb.shape or ta.tobytes() != tb.tobytes():
                return False
    return True


def run_encode_throughput(args, rng) -> tuple[list[dict], list[str]]:
    """Per-point vs stacked encode rates on one block of fresh rows."""
    ansatz = AnsatzConfig(
        num_features=args.features,
        interaction_distance=args.distance,
        layers=args.layers,
        gamma=0.8,
    )
    X = rng.uniform(0.05, 1.95, size=(args.rows, args.features))
    circuits = [build_feature_map_circuit(row, ansatz) for row in X]

    backend = CpuBackend()
    backend.simulate_batch(circuits[:4])  # warm NumPy/LAPACK paths
    start = time.perf_counter()
    reference = [backend.simulate(c).state for c in circuits]
    per_point_s = time.perf_counter() - start

    records = [
        {
            "mode": "per-point",
            "batch_size": 1,
            "wall_s": per_point_s,
            "encodes_per_sec": len(circuits) / per_point_s,
            "byte_identical": True,
        }
    ]
    failures: list[str] = []
    for batch_size in (1, 8, args.batch):
        backend = CpuBackend()
        start = time.perf_counter()
        states: list = []
        for lo in range(0, len(circuits), batch_size):
            states.extend(
                backend.simulate_batch(circuits[lo : lo + batch_size]).states
            )
        elapsed = time.perf_counter() - start
        identical = states_identical(states, reference)
        record = {
            "mode": "batched",
            "batch_size": batch_size,
            "wall_s": elapsed,
            "encodes_per_sec": len(circuits) / elapsed,
            "speedup_vs_per_point": per_point_s / elapsed,
            "byte_identical": identical,
        }
        records.append(record)
        print(
            f"encode batch={batch_size}: {elapsed:.3f} s "
            f"({record['encodes_per_sec']:.0f} encodes/s, "
            f"{record['speedup_vs_per_point']:.2f}x, identical={identical})"
        )
        if not identical:
            failures.append(f"batched encode (batch={batch_size}) not byte-identical")

    # Modelled device times: what the stacked launch amortisation is worth on
    # each device model (one entry per backend).
    modelled = []
    for backend in (CpuBackend(), SimulatedGpuBackend()):
        result = backend.simulate_batch(circuits[: args.batch])
        modelled.append(
            {
                "backend": backend.name,
                "batch_size": args.batch,
                "modelled_per_point_s": result.modelled_time_s,
                "modelled_batched_s": result.modelled_batched_time_s,
                "modelled_speedup": result.modelled_time_s
                / result.modelled_batched_time_s,
            }
        )
    return records + modelled, failures


def build_classifier(args, batch_encoding: bool) -> StreamingNystroemClassifier:
    """A freshly fitted Nystrom serving stack (deterministic given the seed)."""
    rng = np.random.default_rng(args.seed)
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = KernelEngine(
        ansatz,
        config=EngineConfig(
            use_cache=True, batch_encoding=batch_encoding, encode_batch_size=args.batch
        ),
    )
    X = rng.uniform(0.05, 1.95, size=(args.train_size, args.features))
    y = (X.mean(axis=1) > 1.0).astype(int)
    feature_map = NystroemFeatureMap(
        engine, NystroemConfig(num_landmarks=args.landmarks, seed=0)
    )
    phi = feature_map.fit_transform(X)
    model = LinearSVC(C=1.0).fit(phi, y)
    return StreamingNystroemClassifier(feature_map, model, buffer_size=args.batch)


def run_cold_serving(args, mode_rng_seed: int = 11) -> tuple[list[dict], list[str]]:
    """Cold-traffic queue latency with batch encoding on vs off."""
    rng = np.random.default_rng(mode_rng_seed + args.seed)
    stream = rng.uniform(0.05, 1.95, size=(args.queries, args.features))

    records = []
    failures: list[str] = []
    decisions_by_mode = {}
    for batch_encoding in (False, True):
        classifier = build_classifier(args, batch_encoding)
        queue = AsyncServingQueue(
            classifier,
            max_batch=args.batch,
            max_wait_ms=args.max_wait_ms,
            memoize=False,
            seed=0,
        )
        start = time.perf_counter()
        futures = queue.submit_many(stream)
        results = [f.result(timeout=600) for f in futures]
        elapsed = time.perf_counter() - start
        queue.close()
        snapshot = queue.metrics.to_dict()
        decisions_by_mode[batch_encoding] = np.array(
            [r.decision_value for r in results]
        )
        record = {
            "mode": "cold-queue",
            "batch_encoding": batch_encoding,
            "queries": args.queries,
            "wall_s": elapsed,
            "throughput_rps": args.queries / elapsed,
            "p50_latency_ms": snapshot["p50_latency_s"] * 1e3,
            "p99_latency_ms": snapshot["p99_latency_s"] * 1e3,
            "mean_batch_size": snapshot["mean_batch_size"],
        }
        records.append(record)
        print(
            f"cold queue batch_encoding={batch_encoding}: {elapsed:.3f} s "
            f"({record['throughput_rps']:.0f} req/s, "
            f"p50={record['p50_latency_ms']:.2f} ms, "
            f"p99={record['p99_latency_ms']:.2f} ms)"
        )
    if not np.array_equal(decisions_by_mode[False], decisions_by_mode[True]):
        failures.append("cold-path predictions differ with batch encoding enabled")
    records[-1]["speedup_vs_unbatched"] = (
        records[1]["throughput_rps"] / records[0]["throughput_rps"]
    )
    records[-1]["byte_identical"] = not failures
    return records, failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_encoding.json"))
    parser.add_argument("--rows", type=int, default=96)
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--features", type=int, default=8)
    parser.add_argument("--distance", type=int, default=2)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=192)
    parser.add_argument("--train-size", type=int, default=64)
    parser.add_argument("--landmarks", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed; fixed seeds keep baseline comparisons deterministic",
    )
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    print(
        f"workload: {args.rows} encodes (m={args.features}, d={args.distance}, "
        f"r={args.layers}), {args.queries} cold queries"
    )

    encode_records, failures = run_encode_throughput(args, rng)
    serving_records, serving_failures = run_cold_serving(args)
    failures.extend(serving_failures)

    acceptance_speedup = next(
        r["speedup_vs_per_point"]
        for r in encode_records
        if r.get("mode") == "batched" and r.get("batch_size") == args.batch
    )
    if acceptance_speedup < args.min_speedup:
        failures.append(
            f"batch={args.batch} encode speedup {acceptance_speedup:.2f} "
            f"< required {args.min_speedup}"
        )

    payload = {
        "benchmark": "encoding",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "rows": args.rows,
            "batch": args.batch,
            "features": args.features,
            "distance": args.distance,
            "layers": args.layers,
            "cold_queries": args.queries,
            "train_size": args.train_size,
            "landmarks": args.landmarks,
            "seed": args.seed,
        },
        "records": encode_records + serving_records,
        "min_speedup_required": args.min_speedup,
        "acceptance_speedup": acceptance_speedup,
        "ok": not failures,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"OK: batch-{args.batch} stacked encoding reaches {acceptance_speedup:.2f}x "
        "per-point throughput with byte-identical states and predictions"
    )


if __name__ == "__main__":
    main()
