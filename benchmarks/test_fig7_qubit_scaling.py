"""Figure 7: simulation runtime as the number of qubits (features) grows.

The paper fixes r = 2 layers and d = 6, sweeps the number of qubits up to 165
and plots the average simulation time for three values of the kernel
bandwidth gamma (0.1, 0.5, 1.0), observing (a) a manageable, roughly
polynomial growth with the qubit count and (b) that the intermediate
gamma = 0.5 is the most expensive because it generates the strongest
entanglement (gamma near 0 or 1 produces RXX angles close to 0 or pi).

The reduced sweep uses d = 3 and qubit counts up to RESOURCE_QUBITS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import CpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.profiling import format_table

from conftest import RESOURCE_QUBITS, TIMING_SAMPLES

QUBIT_COUNTS = (8, 12, 16, RESOURCE_QUBITS)
GAMMAS = (0.1, 0.5, 1.0)
DISTANCE = 3


def _simulate_average(num_qubits: int, gamma: float, rng: np.random.Generator):
    """Average modelled simulation time and chi over TIMING_SAMPLES circuits."""
    ansatz = AnsatzConfig(
        num_features=num_qubits, interaction_distance=DISTANCE, layers=2, gamma=gamma
    )
    backend = CpuBackend()
    times, chis = [], []
    for _ in range(TIMING_SAMPLES):
        x = rng.uniform(0.05, 1.95, size=num_qubits)
        result = backend.simulate(build_feature_map_circuit(x, ansatz))
        times.append(result.modelled_time_s)
        chis.append(result.max_bond_dimension)
    return float(np.mean(times)), float(np.mean(chis))


@pytest.fixture(scope="module")
def qubit_scaling_data():
    rng = np.random.default_rng(11)
    data = {}
    for gamma in GAMMAS:
        series = []
        for m in QUBIT_COUNTS:
            t, chi = _simulate_average(m, gamma, rng)
            series.append({"qubits": m, "time_s": t, "chi": chi})
        data[gamma] = series
    return data


def test_fig7_runtime_grows_with_qubits(qubit_scaling_data):
    for gamma, series in qubit_scaling_data.items():
        times = [row["time_s"] for row in series]
        assert all(np.diff(times) > 0), f"non-monotone runtime for gamma={gamma}"


def test_fig7_scaling_is_manageable(qubit_scaling_data):
    """The growth with qubit count is far from exponential: tripling the
    qubit count increases the runtime by far less than 2^m would."""
    for series in qubit_scaling_data.values():
        first, last = series[0], series[-1]
        qubit_ratio = last["qubits"] / first["qubits"]
        time_ratio = last["time_s"] / first["time_s"]
        assert time_ratio < qubit_ratio**4


def test_fig7_bandwidth_controls_the_cost(qubit_scaling_data):
    """The kernel bandwidth gamma controls the entanglement and therefore the
    simulation cost (the mechanism behind Fig. 7's three curves): the weakly
    entangling gamma = 0.1 is the cheapest and has the smallest bond
    dimension, and the three curves are clearly separated at the largest
    qubit count.

    Note: the paper finds gamma = 0.5 to be the most expensive *on the
    Elliptic data*; which of the two larger bandwidths wins depends on the
    data distribution, so the reproduction asserts only the robust part of
    the claim (small gamma is cheap, larger gamma is expensive).
    """
    largest = {g: series[-1] for g, series in qubit_scaling_data.items()}
    assert largest[0.1]["time_s"] <= largest[0.5]["time_s"]
    assert largest[0.1]["time_s"] <= largest[1.0]["time_s"]
    assert largest[0.1]["chi"] <= largest[0.5]["chi"]
    assert max(largest[0.5]["time_s"], largest[1.0]["time_s"]) > 2 * largest[0.1]["time_s"]


def test_fig7_print_series(qubit_scaling_data):
    rows = []
    for gamma, series in sorted(qubit_scaling_data.items()):
        for row in series:
            rows.append(
                {
                    "gamma": gamma,
                    "qubits": row["qubits"],
                    "avg sim time (s)": row["time_s"],
                    "avg chi": row["chi"],
                }
            )
    print()
    print(format_table(rows, title="Figure 7 series (reduced scale)", precision=5))


def test_benchmark_largest_qubit_count(benchmark):
    """pytest-benchmark target: one simulation at the largest qubit count."""
    rng = np.random.default_rng(0)
    ansatz = AnsatzConfig(
        num_features=RESOURCE_QUBITS, interaction_distance=DISTANCE, layers=2, gamma=0.5
    )
    x = rng.uniform(0.05, 1.95, size=RESOURCE_QUBITS)
    circuit = build_feature_map_circuit(x, ansatz)
    backend = CpuBackend()
    benchmark(lambda: backend.simulate(circuit))
