"""Adaptive control plane benchmark: closed-loop tuning vs fixed knobs.

Every serving mode is stood up through the new one-call surface --
``repro.serve(payload, ServingConfig(...))`` -- and pushed through the same
three-phase traffic trace, the shapes that defeat any single static tuning:

* **steady**: paced Zipf-distributed requests (the latency-sensitive
  regime -- a long flush deadline just adds wait);
* **burst**: rounds of correlated arrivals with idle gaps between them;
* **flood**: a wall of unique cold rows all at once (the throughput
  regime -- a small batch pays its per-flush overhead hundreds of times).

Modes: ``static-small`` (latency-tuned knobs, terrible in the flood),
``static-large`` (throughput-tuned knobs, terrible in the steady phase),
``adaptive`` (starts from the *small* knobs with the depth-proportional
policy; the controller is stepped at fixed points in the submission
schedule, so its decisions are driven by queue state, not wall-clock luck),
and ``adaptive-fleet`` (the same loop steering a 2-replica router).  Every
mode gets a freshly fitted engine with identical seeds and must produce
**byte-identical** decision values -- the control plane's metamorphic
contract: knobs move *when* work happens, never *what* it computes.

The acceptance contract (exit non-zero on violation):

* byte-identical decisions across all modes and the isolated classifier;
* the adaptive loop actually adapts (adjustments > 0, and the flood drives
  ``max_batch`` up from its small start);
* steady-phase p99: adaptive strictly beats the worst static mode;
* whole-run p99: adaptive strictly beats the worst static mode and stays
  within ``--best-margin`` of the best one -- one knob set, no phase lost;
* zero dropped requests anywhere (every accepted future resolves), and the
  shed probe sheds exactly its configured overflow, nothing more;
* the adaptive mode's ``/metrics`` endpoint exports the control families
  (knob gauges, step/adjustment counters).

Run with:  python benchmarks/bench_control.py [--out BENCH_control.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import __version__, serve
from repro.approx import NystroemConfig
from repro.config import AnsatzConfig, ServingConfig, TuningConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import LoadShedError


def build_engine(args) -> QuantumKernelInferenceEngine:
    """One freshly fitted Nystrom-backed engine (deterministic per seed)."""
    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=6 * args.train_size,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7 + args.seed,
            )
        ),
        args.train_size,
        seed=3 + args.seed,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(
        ansatz,
        approximation=NystroemConfig(
            num_landmarks=args.landmarks, strategy="greedy", seed=0
        ),
    )
    engine.fit(data.features, data.labels)
    return engine


def build_trace(args) -> dict[str, np.ndarray]:
    """The three-phase trace, identical for every mode (fixed seeds)."""
    rng = np.random.default_rng(5 + args.seed)
    unique = rng.normal(size=(args.unique, args.features))
    weights = 1.0 / np.arange(1, args.unique + 1)
    weights /= weights.sum()
    steady = unique[rng.choice(args.unique, size=args.steady, p=weights)]
    burst = unique[rng.choice(args.unique, size=args.burst, p=weights)]
    # The flood is all-new rows: every one must genuinely encode, so the
    # batch-size knob (not the memo) decides how fast it drains.
    flood = rng.normal(size=(args.flood, args.features))
    return {"steady": steady, "burst": burst, "flood": flood}


SMALL = dict(max_batch=2, max_wait_ms=1.0)
LARGE = dict(max_batch=48, max_wait_ms=25.0)


def make_config(args, mode: str) -> ServingConfig:
    bounds = dict(
        min_batch=1,
        batch_ceiling=LARGE["max_batch"],
        min_wait_ms=0.5,
        wait_ceiling_ms=LARGE["max_wait_ms"],
    )
    if mode == "static-small":
        return ServingConfig(tuning=TuningConfig(**SMALL, **bounds))
    if mode == "static-large":
        return ServingConfig(tuning=TuningConfig(**LARGE, **bounds))
    # Adaptive modes start from the *small* (latency-tuned) knobs and must
    # discover the flood's throughput regime on their own.
    return ServingConfig(
        tuning=TuningConfig(**SMALL, **bounds),
        control_policy="depth-proportional",
        num_replicas=2 if mode == "adaptive-fleet" else 1,
    )


def _aggressive(controller) -> None:
    """Benchmark damping: react every step, apply any clamped move."""
    controller.cooldown_steps = 0
    controller.deadband = 0.0


def _resolve(futures, drop_counter: list) -> list:
    """Resolve accepted futures; a future that dies is a *dropped* request."""
    results = []
    for future in futures:
        try:
            results.append(future.result(timeout=600))
        except Exception:
            drop_counter[0] += 1
    return results


def _phase_stats(results) -> dict:
    latencies = np.array([r.latency_s for r in results]) * 1e3
    return {
        "requests": len(results),
        "p50_latency_ms": float(np.percentile(latencies, 50.0)),
        "p99_latency_ms": float(np.percentile(latencies, 99.0)),
        "mean_batch_size": float(np.mean([r.batch_size for r in results])),
    }


def run_mode(args, trace: dict, mode: str) -> tuple[np.ndarray, dict]:
    """One mode over the full trace; adaptive modes step on the schedule."""
    config = make_config(args, mode)
    adaptive = config.control_policy != "static"
    handle = serve(
        build_engine(args).serving_payload(),
        config,
        telemetry=(mode == "adaptive"),
        memoize=False,  # every request computes: latency differences are real
    )
    controller = handle.controller
    if adaptive:
        _aggressive(controller)
    phases: dict[str, dict] = {}
    all_results = []
    drops = [0]
    start = time.perf_counter()
    try:
        # Phase 1 -- steady: paced arrivals, stepped every --step-every.
        pace_s = args.pace_ms / 1e3
        futures = []
        phase_start = time.perf_counter()
        for i, row in enumerate(trace["steady"]):
            futures.append(handle.submit(row))
            if adaptive and (i + 1) % args.step_every == 0:
                controller.step()
            time.sleep(pace_s)
        steady_results = _resolve(futures, drops)
        phases["steady"] = _phase_stats(steady_results)
        phases["steady"]["wall_s"] = time.perf_counter() - phase_start

        # Phase 2 -- burst: correlated rounds with idle gaps.
        futures = []
        phase_start = time.perf_counter()
        for round_rows in np.array_split(trace["burst"], args.burst_rounds):
            futures.extend(handle.submit_many(round_rows))
            if adaptive:
                controller.step()
            handle.flush()
            time.sleep(pace_s)
        burst_results = _resolve(futures, drops)
        phases["burst"] = _phase_stats(burst_results)
        phases["burst"]["wall_s"] = time.perf_counter() - phase_start

        # Phase 3 -- flood: everything at once, stepped while draining so
        # the loop sees the standing queue and can grow the batch.
        phase_start = time.perf_counter()
        futures = handle.submit_many(trace["flood"])
        flood_results = []
        peak_max_batch = config.tuning.max_batch
        for i, future in enumerate(futures):
            if adaptive and i % args.step_every == 0:
                controller.step()
                peak_max_batch = max(
                    peak_max_batch, controller.current_knobs()["max_batch"]
                )
            flood_results.extend(_resolve([future], drops))
        phases["flood"] = _phase_stats(flood_results)
        phases["flood"]["wall_s"] = time.perf_counter() - phase_start
        phases["flood"]["throughput_rps"] = (
            len(flood_results) / phases["flood"]["wall_s"]
        )

        all_results = steady_results + burst_results + flood_results
        control_families = None
        if mode == "adaptive":
            with urllib.request.urlopen(
                handle.url + "/metrics", timeout=30
            ) as resp:
                text = resp.read().decode()
            control_families = sorted(
                {
                    line.split(" ")[2]
                    for line in text.splitlines()
                    if line.startswith("# TYPE repro_control_")
                }
            )
        summary = controller.summary()
    finally:
        handle.close()

    elapsed = time.perf_counter() - start
    latencies = np.array([r.latency_s for r in all_results]) * 1e3
    decisions = np.array([r.decision_value for r in all_results])
    record = {
        "mode": mode,
        "policy": config.control_policy,
        "num_replicas": config.num_replicas,
        "initial_max_batch": config.tuning.max_batch,
        "peak_max_batch": peak_max_batch,
        "final_max_batch": summary["knobs"]["max_batch"],
        "final_max_wait_ms": summary["knobs"]["max_wait_ms"],
        "control_steps": summary["step_count"],
        "knob_adjustments": summary["adjustment_count"],
        "recommended_replicas": summary["recommended_replicas"],
        "wall_s": elapsed,
        "p50_latency_ms": float(np.percentile(latencies, 50.0)),
        "p99_latency_ms": float(np.percentile(latencies, 99.0)),
        "dropped_requests": drops[0],
        "phases": phases,
    }
    if mode == "adaptive":
        record["control_metric_families"] = control_families
    return decisions, record


def run_shed_probe(args, payload_dict: dict) -> dict:
    """Deterministic shed accounting: exactly the overflow is rejected.

    Stalled coalescers (huge batch and deadline) let pending depth build
    deterministically: with ``high_water=4`` the fifth submission must shed,
    and every *accepted* request must still resolve after the flush -- the
    control plane may refuse work at admission, never drop it afterwards.
    """
    config = ServingConfig(
        tuning=TuningConfig(
            max_batch=1000,
            max_wait_ms=10_000.0,
            queue_depth_high_water=4,
            batch_ceiling=1000,
            wait_ceiling_ms=10_000.0,
        )
    )
    rng = np.random.default_rng(17 + args.seed)
    rows = rng.normal(size=(6, args.features))
    shed = 0
    accepted = []
    with serve(payload_dict, config, memoize=False) as handle:
        for row in rows:
            try:
                accepted.append(handle.submit(row))
            except LoadShedError:
                shed += 1
        handle.flush()
        probe_drops = [0]
        resolved = _resolve(accepted, probe_drops)
    return {
        "submitted": len(rows),
        "high_water": 4,
        "shed_count": shed,
        "accepted": len(accepted),
        "completed": len(resolved),
        "dropped": len(accepted) - len(resolved),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_control.json"))
    parser.add_argument("--steady", type=int, default=96)
    parser.add_argument("--burst", type=int, default=96)
    parser.add_argument("--burst-rounds", type=int, default=4)
    parser.add_argument("--flood", type=int, default=160)
    parser.add_argument("--unique", type=int, default=48)
    parser.add_argument("--train-size", type=int, default=64)
    parser.add_argument("--landmarks", type=int, default=16)
    parser.add_argument("--features", type=int, default=4)
    parser.add_argument(
        "--pace-ms",
        type=float,
        default=4.0,
        help="steady-phase gap between arrivals; keeping it under the large "
        "static deadline makes that mode's flushes deadline-driven, the "
        "regime where a throughput tuning pays pure wait",
    )
    parser.add_argument(
        "--step-every",
        type=int,
        default=16,
        help="adaptive modes step the controller every this many "
        "submissions/results -- a deterministic schedule, not a timer",
    )
    parser.add_argument(
        "--best-margin",
        type=float,
        default=1.3,
        help="whole-run adaptive p99 must stay within this factor of the "
        "best static mode's",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    trace = build_trace(args)
    total = sum(len(v) for v in trace.values())
    print(
        f"trace: {args.steady} paced zipf + {args.burst} burst "
        f"({args.burst_rounds} rounds) + {args.flood} cold-flood = "
        f"{total} requests, m={args.landmarks} landmarks"
    )

    # Ground truth: the model's answers with no serving stack at all.
    reference_engine = build_engine(args)
    full_stream = np.vstack([trace["steady"], trace["burst"], trace["flood"]])
    reference = reference_engine.streaming_classifier().classify(
        full_stream
    ).decision_values

    records = []
    failures = []
    outputs = {}
    for mode in ("static-small", "static-large", "adaptive", "adaptive-fleet"):
        decisions, record = run_mode(args, trace, mode)
        record["byte_identical"] = bool(np.array_equal(decisions, reference))
        records.append(record)
        outputs[mode] = record
        print(
            f"{mode}: p99={record['p99_latency_ms']:.2f} ms "
            f"(steady {record['phases']['steady']['p99_latency_ms']:.2f}, "
            f"flood {record['phases']['flood']['p99_latency_ms']:.2f}), "
            f"batch {record['initial_max_batch']}->"
            f"{record['peak_max_batch']} peak, "
            f"{record['knob_adjustments']} adjustments, "
            f"identical={record['byte_identical']}"
        )
        if not record["byte_identical"]:
            failures.append(f"{mode} is not byte-identical to the reference")
        if record["dropped_requests"] != 0:
            failures.append(f"{mode} dropped {record['dropped_requests']} requests")

    statics = [outputs["static-small"], outputs["static-large"]]
    adaptive = outputs["adaptive"]
    worst_static_p99 = max(r["p99_latency_ms"] for r in statics)
    best_static_p99 = min(r["p99_latency_ms"] for r in statics)
    worst_static_steady_p99 = max(
        r["phases"]["steady"]["p99_latency_ms"] for r in statics
    )
    beats_worst = adaptive["p99_latency_ms"] < worst_static_p99
    matches_best = (
        adaptive["p99_latency_ms"] <= args.best_margin * best_static_p99
    )
    steady_beats_worst = (
        adaptive["phases"]["steady"]["p99_latency_ms"]
        < worst_static_steady_p99
    )
    adapted = adaptive["knob_adjustments"] > 0
    grew = adaptive["peak_max_batch"] > adaptive["initial_max_batch"]
    knobs_exported = bool(
        adaptive.get("control_metric_families")
        and "repro_control_knob" in adaptive["control_metric_families"]
        and "repro_control_adjustments_total"
        in adaptive["control_metric_families"]
    )
    if not beats_worst:
        failures.append(
            f"adaptive p99 {adaptive['p99_latency_ms']:.2f} ms does not beat "
            f"the worst static mode's {worst_static_p99:.2f} ms"
        )
    if not matches_best:
        failures.append(
            f"adaptive p99 {adaptive['p99_latency_ms']:.2f} ms exceeds "
            f"{args.best_margin}x the best static mode's {best_static_p99:.2f} ms"
        )
    if not steady_beats_worst:
        failures.append("adaptive steady-phase p99 does not beat the worst static")
    if not adapted:
        failures.append("the adaptive controller never adjusted a knob")
    if not grew:
        failures.append("the flood did not drive max_batch up")
    if not knobs_exported:
        failures.append("/metrics did not export the repro_control_* families")

    shed_probe = run_shed_probe(args, reference_engine.serving_payload())
    print(
        f"shed probe: {shed_probe['shed_count']} shed of "
        f"{shed_probe['submitted']} at high_water={shed_probe['high_water']}, "
        f"{shed_probe['completed']}/{shed_probe['accepted']} accepted completed"
    )
    if shed_probe["shed_count"] != shed_probe["submitted"] - shed_probe["high_water"]:
        failures.append("the shed probe did not shed exactly the overflow")
    if shed_probe["dropped"] != 0:
        failures.append("the shed probe dropped accepted requests")

    payload = {
        "benchmark": "control",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "steady": args.steady,
            "burst": args.burst,
            "burst_rounds": args.burst_rounds,
            "flood": args.flood,
            "unique_rows": args.unique,
            "pace_ms": args.pace_ms,
            "step_every": args.step_every,
            "train_size": args.train_size,
            "landmarks": args.landmarks,
            "features": args.features,
            "seed": args.seed,
        },
        "records": records,
        "shed_probe": shed_probe,
        "byte_identical": all(r["byte_identical"] for r in records),
        "dropped_requests": sum(r["dropped_requests"] for r in records),
        "adaptive": {
            "adapted": adapted,
            "grew_under_flood": grew,
            "beats_worst_static": beats_worst,
            "matches_best_static": matches_best,
            "steady_beats_worst_static": steady_beats_worst,
            "knobs_exported": knobs_exported,
            "p99_latency_ms": adaptive["p99_latency_ms"],
            "worst_static_p99_ms": worst_static_p99,
            "best_static_p99_ms": best_static_p99,
        },
        "best_margin_required": args.best_margin,
        "ok": not failures,
    }
    payload_text = json.dumps(payload, indent=2, sort_keys=True)
    args.out.write_text(payload_text)
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"OK: one adaptive knob set holds p99 at {adaptive['p99_latency_ms']:.2f} ms "
        f"across all three phases (statics: {best_static_p99:.2f} / "
        f"{worst_static_p99:.2f} ms), byte-identical throughout"
    )


if __name__ == "__main__":
    main()
