"""Ablation: SVD truncation cut-off versus accuracy and memory.

The paper simulates at machine precision (cut-off 1e-16) and notes in its
conclusion that "more aggressive truncation may be deemed necessary" for more
complex ansatze, in which case the induced error would need analysing.  This
ablation performs exactly that analysis on the reproduction's scale: the same
circuit family is simulated at a range of cut-offs and the fidelity against
the machine-precision reference is traded off against bond dimension and
memory.  A companion ablation quantifies the duplicate-simulation overhead of
the no-messaging strategy, the reason round-robin is preferred at scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import strategy_duplication_factor, truncation_cutoff_sweep
from repro.config import AnsatzConfig
from repro.profiling import format_table

from conftest import RESOURCE_QUBITS

CUTOFFS = (1e-16, 1e-10, 1e-6, 1e-3, 1e-1)
ANSATZ = AnsatzConfig(
    num_features=min(RESOURCE_QUBITS, 16),
    interaction_distance=3,
    layers=2,
    gamma=1.0,
)


@pytest.fixture(scope="module")
def sweep():
    return truncation_cutoff_sweep(ANSATZ, CUTOFFS, seed=4)


def test_machine_precision_cutoff_is_exact(sweep):
    assert sweep[0].cutoff == 1e-16
    assert sweep[0].fidelity_vs_exact == pytest.approx(1.0, abs=1e-9)
    assert sweep[0].cumulative_discarded_weight < 1e-10


def test_memory_decreases_as_cutoff_relaxes(sweep):
    memories = [p.memory_bytes for p in sweep]
    chis = [p.max_bond_dimension for p in sweep]
    assert all(np.diff(memories) <= 0)
    assert all(np.diff(chis) <= 0)
    # The most aggressive cut-off gives a real saving.
    assert memories[-1] < memories[0]


def test_fidelity_degrades_gracefully(sweep):
    fidelities = [p.fidelity_vs_exact for p in sweep]
    assert all(np.diff(fidelities) <= 1e-9)
    # Moderate cut-offs stay extremely accurate.
    assert fidelities[2] > 0.99  # 1e-6
    assert all(0.0 <= f <= 1.0 + 1e-9 for f in fidelities)


def test_ablation_no_messaging_duplication_grows_with_processes():
    rows = strategy_duplication_factor(num_points=32, process_counts=(1, 2, 4, 8, 16))
    factors = [r["duplication_factor"] for r in rows]
    assert factors[0] == pytest.approx(1.0, abs=0.6)
    assert all(np.diff(factors) >= 0)
    # With 16 processes each circuit is simulated on multiple processes.
    assert factors[-1] > 1.5


def test_print_ablation_tables(sweep):
    rows = [
        {
            "cutoff": p.cutoff,
            "fidelity vs exact": p.fidelity_vs_exact,
            "max chi": p.max_bond_dimension,
            "memory (KiB)": p.memory_bytes / 1024.0,
        }
        for p in sweep
    ]
    print()
    print(format_table(rows, title="Truncation cut-off ablation", precision=6))
    dup_rows = strategy_duplication_factor(num_points=32, process_counts=(1, 2, 4, 8, 16))
    print()
    print(format_table(dup_rows, title="No-messaging duplicate-simulation overhead", precision=3))


def test_benchmark_aggressive_truncation(benchmark):
    """pytest-benchmark target: simulation at the most aggressive cut-off."""
    benchmark(lambda: truncation_cutoff_sweep(ANSATZ, (1e-3,), seed=4))
