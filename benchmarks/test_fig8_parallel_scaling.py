"""Figure 8: wall-clock breakdown of the distributed Gram-matrix computation.

The paper doubles the training-set size and the number of GPUs together
(400 points / 2 GPUs up to 6400 points / 32 GPUs), uses the round-robin
strategy with the d = 1, r = 2, gamma = 0.1, 165-qubit ansatz, and reports a
stacked bar per configuration: MPS simulation time stays constant (perfectly
parallel, linear work), inner-product time roughly doubles per step
(quadratic work, linear parallelism) and communication remains negligible.
It then extrapolates to 64,000 points on 320/640 GPUs.

The reduced sweep uses PARALLEL_CONFIGS with the same doubling structure and
the modelled per-primitive device times, so the bar structure (and the
extrapolation) is reproduced faithfully.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.parallel import (
    ScalingProjection,
    compute_gram_distributed,
)
from repro.profiling import format_table

from conftest import PARALLEL_CONFIGS

NUM_FEATURES = 12
ANSATZ = AnsatzConfig(num_features=NUM_FEATURES, interaction_distance=1, layers=2, gamma=0.1)


@pytest.fixture(scope="module")
def parallel_results():
    rng = np.random.default_rng(3)
    results = []
    for num_points, num_processes in PARALLEL_CONFIGS:
        X = rng.uniform(0.05, 1.95, size=(num_points, NUM_FEATURES))
        result = compute_gram_distributed(
            X,
            ANSATZ,
            num_processes=num_processes,
            strategy="round-robin",
            time_source="modelled",
        )
        results.append(((num_points, num_processes), result))
    return results


def test_fig8_simulation_wall_clock_stays_flat(parallel_results):
    """Doubling data and processes together keeps the simulation bar constant."""
    sim_walls = [r.simulation_wall_s for _, r in parallel_results]
    for later in sim_walls[1:]:
        assert later == pytest.approx(sim_walls[0], rel=0.35)


def test_fig8_inner_product_wall_clock_roughly_doubles(parallel_results):
    """The inner-product bar grows by roughly 2x per doubling step.

    The bound is loose because at these tiny process counts the round-robin
    schedule is not perfectly load balanced (the rank owning the final ring
    step computes one extra tile), which inflates individual ratios; the
    paper's own Fig. 8 reports "roughly" a factor of two for the same reason.
    """
    ip_walls = [r.inner_product_wall_s for _, r in parallel_results]
    for prev, nxt in zip(ip_walls, ip_walls[1:]):
        ratio = nxt / prev
        assert 1.4 < ratio < 3.6
    # Across the whole sweep the growth per step averages close to 2.
    overall = (ip_walls[-1] / ip_walls[0]) ** (1.0 / (len(ip_walls) - 1))
    assert 1.5 < overall < 2.8


def test_fig8_communication_is_negligible(parallel_results):
    """Round-robin communication stays a small fraction of the total
    (the paper finds messaging cheaper than simulation)."""
    for (_, num_processes), result in parallel_results:
        if num_processes == 1:
            assert result.communication_wall_s == 0.0
        else:
            assert result.communication_wall_s < 0.2 * result.total_wall_s


def test_fig8_gram_matrices_are_valid(parallel_results):
    for (num_points, _), result in parallel_results:
        K = result.matrix
        assert K.shape == (num_points, num_points)
        assert np.allclose(np.diag(K), 1.0)
        assert np.allclose(K, K.T)
        assert result.total_inner_products == num_points * (num_points - 1) // 2


def test_fig8_extrapolation_to_paper_scale(parallel_results):
    """Project the measured per-primitive costs to the paper's 64,000-point
    scenario and check the 320-GPU / 640-GPU halving relationship."""
    (_, result) = parallel_results[-1]
    (num_points, num_processes) = PARALLEL_CONFIGS[-1]
    per_circuit = result.simulation_wall_s / (num_points / num_processes)
    per_product = result.inner_product_wall_s / (
        (num_points * (num_points - 1) / 2) / num_processes
    )
    projection = ScalingProjection(
        simulation_time_per_circuit_s=per_circuit,
        inner_product_time_s=per_product,
        bytes_per_state=15 * 1024,
    )
    t320 = projection.total_wall_s(64_000, 320)
    t640 = projection.total_wall_s(64_000, 640)
    assert t320 / t640 == pytest.approx(2.0, rel=0.15)
    assert t320 > 0


def test_fig8_print_series(parallel_results):
    rows = []
    for (num_points, num_processes), result in parallel_results:
        rows.append(
            {
                "points": num_points,
                "processes": num_processes,
                "simulation (s)": result.simulation_wall_s,
                "inner products (s)": result.inner_product_wall_s,
                "communication (s)": result.communication_wall_s,
                "total (s)": result.total_wall_s,
            }
        )
    print()
    print(format_table(rows, title="Figure 8 breakdown (reduced scale)", precision=4))


def test_benchmark_round_robin_gram(benchmark):
    """pytest-benchmark target: the smallest round-robin configuration."""
    rng = np.random.default_rng(0)
    num_points, num_processes = PARALLEL_CONFIGS[0]
    X = rng.uniform(0.05, 1.95, size=(num_points, NUM_FEATURES))
    benchmark(
        lambda: compute_gram_distributed(
            X, ANSATZ, num_processes=num_processes, strategy="round-robin"
        )
    )
