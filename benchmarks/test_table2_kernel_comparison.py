"""Table II: quantum kernel versus Gaussian kernel; interaction distance and
kernel bandwidth sweep.

The paper trains on a 400-point balanced sample with 50 features and r = 2
layers, averaging metrics over 6 independent data samples per configuration,
and compares a Gaussian-kernel SVM against quantum-kernel SVMs with
d in {1, 2, 4, 6} and gamma in {0.1, 0.5, 1.0}.  The observations:

* with gamma = 0.1 the quantum kernel does not beat the Gaussian baseline
  and the interaction distance barely matters (interaction coefficients are
  tiny);
* with gamma in {0.5, 1.0} the quantum kernel matches or beats the baseline;
* the most complex ansatz (d = 6) is NOT the best -- expressivity beyond a
  point hurts (contribution C2.3).

The reduced sweep uses TABLE2_FEATURES features, TABLE2_SAMPLE_SIZE samples,
TABLE2_DISTANCES x TABLE2_GAMMAS and 2 repetitions per cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClassificationExperiment, run_classification_experiment
from repro.profiling import format_table

from conftest import (
    TABLE2_DISTANCES,
    TABLE2_FEATURES,
    TABLE2_GAMMAS,
    TABLE2_SAMPLE_SIZE,
)

C_GRID = (0.5, 1.0, 4.0)
REPETITIONS = 2
SEEDS = (101, 202)


def _average_rows(rows):
    keys = ("auc", "recall", "precision", "accuracy")
    return {k: float(np.mean([r[k] for r in rows])) for k in keys}


@pytest.fixture(scope="module")
def table2(elliptic_dataset):
    """Rows of Table II: one Gaussian baseline plus the (d, gamma) sweep."""
    table = []

    # Gaussian baseline.
    baseline_rows = []
    for seed in SEEDS:
        exp = ClassificationExperiment(
            num_features=TABLE2_FEATURES,
            sample_size=TABLE2_SAMPLE_SIZE,
            kernel="gaussian",
            seed=seed,
        )
        outcome = run_classification_experiment(exp, dataset=elliptic_dataset, c_grid=C_GRID)
        baseline_rows.append(outcome.row())
    table.append({"kernel": "Gaussian", "d": "-", "gamma": "-", **_average_rows(baseline_rows)})

    # Quantum kernel sweep.
    for gamma in TABLE2_GAMMAS:
        for d in TABLE2_DISTANCES:
            rows = []
            for seed in SEEDS:
                exp = ClassificationExperiment(
                    num_features=TABLE2_FEATURES,
                    sample_size=TABLE2_SAMPLE_SIZE,
                    interaction_distance=d,
                    layers=2,
                    gamma=gamma,
                    seed=seed,
                )
                outcome = run_classification_experiment(
                    exp, dataset=elliptic_dataset, c_grid=C_GRID
                )
                rows.append(outcome.row())
            table.append({"kernel": "quantum", "d": d, "gamma": gamma, **_average_rows(rows)})
    return table


def test_table2_has_all_rows(table2):
    assert len(table2) == 1 + len(TABLE2_DISTANCES) * len(TABLE2_GAMMAS)
    assert table2[0]["kernel"] == "Gaussian"
    for row in table2:
        for key in ("auc", "recall", "precision", "accuracy"):
            assert 0.0 <= row[key] <= 1.0


def test_table2_all_models_beat_chance(table2):
    """The baseline and the small/moderate-bandwidth quantum models clearly
    beat chance.  The gamma = 1.0 rows are only required not to fall below
    chance: at this reduced scale (8 features, 32 samples) the fidelity
    kernel with the largest bandwidth already concentrates noticeably, which
    at the paper's 50-feature / 400-sample scale it does not."""
    for row in table2:
        if row["gamma"] == 1.0:
            assert row["auc"] >= 0.45, f"d={row['d']} gamma={row['gamma']}"
        else:
            assert row["auc"] > 0.55, f"{row['kernel']} d={row['d']} gamma={row['gamma']}"


def test_table2_quantum_competitive_with_gaussian(table2):
    """C2.2 (shape): the best quantum configuration reaches at least the
    Gaussian baseline's AUC (small tolerance for the tiny sample size)."""
    gaussian_auc = table2[0]["auc"]
    best_quantum = max(r["auc"] for r in table2[1:])
    assert best_quantum >= gaussian_auc - 0.03


def test_table2_best_quantum_uses_moderate_bandwidth(table2):
    """The winning quantum configuration has gamma >= 0.5, mirroring the
    paper's finding that gamma = 0.1 underperforms."""
    quantum = table2[1:]
    best = max(quantum, key=lambda r: r["auc"])
    assert best["gamma"] >= 0.5


def test_table2_small_gamma_insensitive_to_distance(table2):
    """With gamma = 0.1 the interaction coefficients are tiny, so changing d
    moves the AUC very little (the paper's identical 0.877 rows)."""
    small_gamma = [r["auc"] for r in table2[1:] if r["gamma"] == 0.1]
    assert max(small_gamma) - min(small_gamma) < 0.08


def test_table2_maximum_expressivity_is_not_optimal(table2):
    """C2.3 (shape): the largest interaction distance is not strictly better
    than all smaller distances at moderate/large bandwidth."""
    for gamma in (g for g in TABLE2_GAMMAS if g >= 0.5):
        rows = {r["d"]: r["auc"] for r in table2[1:] if r["gamma"] == gamma}
        largest_d = max(TABLE2_DISTANCES)
        others_best = max(v for d, v in rows.items() if d != largest_d)
        assert rows[largest_d] <= others_best + 0.05


def test_table2_print(table2):
    print()
    print(
        format_table(
            table2,
            columns=["kernel", "d", "gamma", "auc", "recall", "precision", "accuracy"],
            title="Table II (reduced scale)",
            precision=3,
        )
    )


def test_benchmark_one_table2_cell(benchmark, elliptic_dataset):
    """pytest-benchmark target: one quantum cell of the Table II sweep."""
    exp = ClassificationExperiment(
        num_features=TABLE2_FEATURES,
        sample_size=TABLE2_SAMPLE_SIZE,
        interaction_distance=1,
        layers=2,
        gamma=0.5,
        seed=101,
    )
    benchmark(
        lambda: run_classification_experiment(exp, dataset=elliptic_dataset, c_grid=(1.0,))
    )
