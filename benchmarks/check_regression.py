"""Benchmark regression gate: compare fresh BENCH_*.json against baselines.

CI has produced ``BENCH_engine/approx/serving/encoding.json`` artifacts for
several PRs, but until this gate they were upload-only: a change that halved
a throughput or broke a byte-identicality contract would merge silently as
long as the producing script exited zero.  This script turns the artifacts
into a gate:

* committed baselines live in ``benchmarks/baselines/BENCH_*.json``;
* each benchmark declares a handful of *gated metrics* with per-metric
  tolerance rules (see ``METRIC_RULES``):

  - ``ratio``  : fresh >= tolerance x baseline (throughputs, speedups).
    The default tolerance of 0.7 absorbs runner-to-runner noise while still
    catching real regressions;
  - ``max``    : fresh <= baseline / tolerance (latencies);
  - ``below``  : fresh <= tolerance, an absolute cap independent of the
    baseline (for error metrics whose baseline sits near zero, where a
    baseline-relative band would be one quantum away from failure);
  - ``true``   : the flag must be (still) true -- byte-identicality and
    contract booleans get no tolerance at all;
  - ``exact``  : integer bookkeeping (pair counts) must match exactly: a
    drifting pair count means the compute plan changed shape, which is a
    correctness review, not noise.

After an intentional change (new workload shape, a faster path that shifts
counts), refresh the baselines and commit the diff::

    python benchmarks/bench_engine.py   --out BENCH_engine.json
    python benchmarks/bench_approx.py   --out BENCH_approx.json
    python benchmarks/bench_serving.py  --out BENCH_serving.json --queries 512 --train-size 96 --landmarks 32
    python benchmarks/bench_serving.py  --scenario persistence --out BENCH_persistence.json --queries 512 --train-size 96 --landmarks 32
    python benchmarks/bench_encoding.py --out BENCH_encoding.json
    python benchmarks/bench_encoding.py --scenario fused --out BENCH_fused.json
    python benchmarks/bench_serving.py  --scenario jitter --out BENCH_jitter.json --queries 160 --train-size 64 --landmarks 16 --unique 48
    python benchmarks/bench_drift.py    --out BENCH_drift.json
    python benchmarks/check_regression.py --update-baselines

Run with:  python benchmarks/check_regression.py [--bench-dir .] [--update-baselines]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


@dataclass(frozen=True)
class Metric:
    """One gated metric inside a benchmark artifact.

    ``path`` is a dotted JSON path; a ``records[...]`` segment selects the
    first list entry whose items match the given key=value filters, e.g.
    ``records[mode=batched,batch_size=32].speedup_vs_per_point``.
    """

    path: str
    rule: str  # "ratio" | "max" | "true" | "exact"
    tolerance: float = 0.7


# Deterministic bookkeeping (pair counts, cache hit-rates, byte-identicality
# flags) gets exact / near-exact rules: it regresses only when the code
# does.  Anything with wall-clock in it -- absolute throughputs and
# latencies, but also speedups, which shift with the runner's core count and
# contention -- gets the loose ABS band: the committed baselines were
# produced on a developer machine, so these rules exist to catch
# order-of-magnitude cliffs, not percent-level drift.  (The producing
# scripts additionally enforce their own machine-independent contracts --
# bench_serving/bench_encoding fail below 2x speedup, bench_approx above a
# 0.05 AUC gap -- before this gate even runs.)
ABS = 0.35  # tolerance for wall-clock-derived metrics

METRIC_RULES: dict[str, list[Metric]] = {
    "BENCH_engine.json": [
        Metric("cold.pairs", "exact"),
        Metric("cold.pairs_per_sec", "ratio", tolerance=ABS),
        Metric("warm.pairs", "exact"),
        Metric("warm.num_simulations", "exact"),
        Metric("cache.hit_rate", "ratio", tolerance=0.999),
    ],
    "BENCH_approx.json": [
        Metric("exact.pairs", "exact"),
        Metric("nystroem.fit_pairs", "exact"),
        Metric("delta.speedup", "ratio", tolerance=ABS),
        Metric("delta.pair_reduction", "ratio", tolerance=0.999),
        # Absolute cap (the benchmark's own --max-auc-gap contract): the
        # baseline gap is ~0.002, one AUC quantum on a 128-point test set,
        # so a baseline-relative band would flap on last-ulp kernel changes.
        Metric("delta.auc_gap", "below", tolerance=0.05),
    ],
    "BENCH_serving.json": [
        Metric("ok", "true"),
        Metric("acceptance_speedup", "ratio", tolerance=ABS),
        Metric(
            "records[mode=queue,max_batch=32,memoize=True].byte_identical", "true"
        ),
        Metric(
            "records[mode=queue,max_batch=32,memoize=True].p99_latency_ms",
            "max",
            tolerance=ABS,
        ),
    ],
    "BENCH_persistence.json": [
        Metric("ok", "true"),
        Metric("byte_identical", "true"),
        # Warm restarts must stay simulation-free and prefetch every
        # snapshotted state; a drifting count means warm-up or the snapshot
        # round-trip changed shape.
        Metric("warm.simulations", "exact"),
        Metric("warm_loaded_keys", "exact"),
        # Absolute cap (the benchmark's own --max-warm-p99-ratio contract):
        # the warm restart must beat the cold boot's p99 outright, so a
        # baseline-relative band would let the advantage erode to parity.
        Metric("warm_vs_cold_p99", "below", tolerance=0.9),
        Metric("warm.p99_latency_ms", "max", tolerance=ABS),
    ],
    "BENCH_encoding.json": [
        Metric("ok", "true"),
        Metric("acceptance_speedup", "ratio", tolerance=ABS),
        Metric("records[mode=batched,batch_size=32].byte_identical", "true"),
        Metric(
            "records[mode=cold-queue,batch_encoding=True].throughput_rps",
            "ratio",
            tolerance=ABS,
        ),
        Metric(
            "records[mode=cold-queue,batch_encoding=True].p99_latency_ms",
            "max",
            tolerance=ABS,
        ),
    ],
    "BENCH_fused.json": [
        Metric("ok", "true"),
        Metric("byte_identical", "true"),
        # The tentpole contract: the fused schedule keeps every store write
        # off the encode->overlap critical path, and both schedules see the
        # same cold misses.  These are scheduling invariants, not timings.
        Metric("records[mode=fused].critical_path_store_writes", "exact"),
        Metric("records[mode=fused].cache_misses", "exact"),
        Metric("records[mode=fused].speedup_vs_unfused", "ratio", tolerance=ABS),
        # The prefix tree must keep sharing the mixed batch's common prefix:
        # launch and fork counts are plan shape, so they must match exactly.
        Metric("records[mode=tree].stacked_launches", "exact"),
        Metric("records[mode=tree].prefix_forks", "exact"),
        # The modelled dispatch: the Nystrom-scale block must keep choosing
        # the GPU, and every pair of it must actually run there.
        Metric("records[mode=cross-dispatch].chosen", "exact"),
        Metric("records[mode=cross-dispatch].pairs", "exact"),
        Metric("records[mode=cross-dispatch].gpu_inner_products", "exact"),
    ],
    "BENCH_drift.json": [
        Metric("ok", "true"),
        # The drift contract is behavioural, not wall-clock: the alarm must
        # fire under the injected shift and stay silent under i.i.d.
        # traffic, coverage must come back above 1 - alpha - 0.02 after the
        # adaptation, the warm-started refresh must out-converge the cold
        # fit, and the atomic swap must not drop or pause a single request.
        Metric("alarm.fired", "true"),
        Metric("iid.alarms", "exact"),
        Metric("recovery.recovered", "true"),
        Metric("refresh.warm_fewer_iterations", "true"),
        Metric("serving.dropped_requests", "exact"),
        Metric("serving.swaps", "exact"),
        Metric("serving.final_model_version", "exact"),
    ],
    "BENCH_jitter.json": [
        Metric("ok", "true"),
        # Jitter may only move flush instants, never decisions.
        Metric("byte_identical", "true"),
        # Lockstep fractions are wall-clock-phase measurements on a live
        # scheduler, so they get no tighter gate than the producing script's
        # own byte-identicality contract; the committed baseline documents
        # the expected decorrelation instead.
    ],
    "BENCH_control.json": [
        Metric("ok", "true"),
        # The control plane's metamorphic contract: knobs move *when* work
        # happens, never *what* it computes.
        Metric("byte_identical", "true"),
        # The closed loop must actually close: adjustments applied, and the
        # cold flood must drive the batch knob up from its small start.
        Metric("adaptive.adapted", "true"),
        Metric("adaptive.grew_under_flood", "true"),
        # One adaptive knob set across all three traffic phases: strictly
        # better than the worst static tuning, within the producing
        # script's --best-margin of the best one.  These are same-run
        # comparisons, so runner speed cancels out of the ratio.
        Metric("adaptive.beats_worst_static", "true"),
        Metric("adaptive.matches_best_static", "true"),
        Metric("adaptive.steady_beats_worst_static", "true"),
        Metric("adaptive.knobs_exported", "true"),
        # Admission control may refuse work, never lose it: the shed probe
        # sheds exactly its configured overflow and every accepted request
        # resolves.
        Metric("dropped_requests", "exact"),
        Metric("shed_probe.shed_count", "exact"),
        Metric("shed_probe.dropped", "exact"),
    ],
}


def _select_record(records: list, filters: str):
    """First list entry matching every ``key=value`` filter."""
    wanted = {}
    for clause in filters.split(","):
        key, _, raw = clause.partition("=")
        if raw in ("True", "False"):
            value: object = raw == "True"
        else:
            try:
                value = int(raw)
            except ValueError:
                value = raw
        wanted[key] = value
    for record in records:
        if all(record.get(k) == v for k, v in wanted.items()):
            return record
    raise KeyError(f"no record matches {wanted!r}")


def lookup(payload: dict, path: str):
    """Resolve a dotted path with optional ``[key=value,...]`` list selectors."""
    node = payload
    for part in path.split("."):
        name, bracket, rest = part.partition("[")
        node = node[name]
        if bracket:
            node = _select_record(node, rest.rstrip("]"))
    return node


def check_file(fresh_path: Path, baseline_path: Path, metrics: list[Metric]) -> list[str]:
    """Compare one fresh artifact against its baseline; returns failures."""
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for metric in metrics:
        try:
            fresh_value = lookup(fresh, metric.path)
            base_value = lookup(baseline, metric.path)
        except KeyError as exc:
            failures.append(f"{fresh_path.name}:{metric.path}: missing metric ({exc})")
            continue
        label = f"{fresh_path.name}:{metric.path}"
        if metric.rule == "true":
            ok = bool(fresh_value)
            detail = f"got {fresh_value!r}, must be true"
        elif metric.rule == "exact":
            ok = fresh_value == base_value
            detail = f"got {fresh_value!r}, baseline {base_value!r} (must match)"
        elif metric.rule == "ratio":
            ok = float(fresh_value) >= metric.tolerance * float(base_value)
            detail = (
                f"got {float(fresh_value):.4g}, needs >= {metric.tolerance} x "
                f"baseline {float(base_value):.4g}"
            )
        elif metric.rule == "max":
            ok = float(fresh_value) <= float(base_value) / metric.tolerance
            detail = (
                f"got {float(fresh_value):.4g}, needs <= baseline "
                f"{float(base_value):.4g} / {metric.tolerance}"
            )
        elif metric.rule == "below":
            ok = float(fresh_value) <= metric.tolerance
            detail = (
                f"got {float(fresh_value):.4g}, needs <= absolute cap "
                f"{metric.tolerance}"
            )
        else:  # pragma: no cover - spec typo guard
            raise ValueError(f"unknown rule {metric.rule!r}")
        status = "ok " if ok else "FAIL"
        print(f"  [{status}] {label} ({metric.rule}): {detail}")
        if not ok:
            failures.append(f"{label}: {detail}")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy the fresh artifacts over benchmarks/baselines/ instead of gating",
    )
    args = parser.parse_args()

    if args.update_baselines:
        BASELINE_DIR.mkdir(exist_ok=True)
        for name in METRIC_RULES:
            source = args.bench_dir / name
            if not source.exists():
                raise SystemExit(f"cannot update baselines: {source} does not exist")
            shutil.copy(source, BASELINE_DIR / name)
            print(f"baseline updated: {BASELINE_DIR / name}")
        return

    failures: list[str] = []
    for name, metrics in METRIC_RULES.items():
        fresh_path = args.bench_dir / name
        baseline_path = BASELINE_DIR / name
        if not baseline_path.exists():
            failures.append(f"{name}: no committed baseline at {baseline_path}")
            continue
        if not fresh_path.exists():
            failures.append(f"{name}: fresh artifact missing at {fresh_path}")
            continue
        print(f"{name}:")
        failures.extend(check_file(fresh_path, baseline_path, metrics))

    if failures:
        print(
            f"\n{len(failures)} benchmark regression(s); if intentional, rerun the "
            "benchmarks and `python benchmarks/check_regression.py "
            "--update-baselines` (see README).",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("\nOK: all benchmarks within tolerance of committed baselines")


if __name__ == "__main__":
    main()
