"""Figure 6: memory required to store the MPS throughout a simulation.

The paper simulates two circuit families (d = 6 and d = 12; m = 100 qubits,
r = 2, gamma = 1.0) and plots the memory footprint of the MPS after every
gate, showing (a) the exponential growth with the number of two-qubit gates
applied and (b) the saw-tooth drops produced by SVD truncation, with the
larger interaction distance consuming far more memory.

Here the two families are d = 1 (small) and the largest swept distance
(large) on RESOURCE_QUBITS qubits; the trace is recorded with
:class:`repro.mps.InstrumentedMPS` through the ``track_memory`` backend
option, exactly the mechanism a full-scale run would use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import CpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig, SimulationConfig
from repro.mps import InstrumentedMPS
from repro.profiling import format_table

from conftest import CROSSOVER_DISTANCES, RESOURCE_QUBITS, TIMING_SAMPLES

SMALL_D = 1
LARGE_D = CROSSOVER_DISTANCES[-2]


def _trace_family(distance: int, feature_rows: np.ndarray):
    """Memory traces of TIMING_SAMPLES circuits with the given distance."""
    ansatz = AnsatzConfig(
        num_features=RESOURCE_QUBITS,
        interaction_distance=distance,
        layers=2,
        gamma=1.0,
    )
    backend = CpuBackend(SimulationConfig(track_memory=True))
    traces = []
    for row in feature_rows[:TIMING_SAMPLES]:
        circuit = build_feature_map_circuit(row, ansatz)
        result = backend.simulate(circuit)
        assert isinstance(result.state, InstrumentedMPS)
        traces.append(result.state.trace)
    return traces


@pytest.fixture(scope="module")
def memory_traces(feature_rows):
    return {
        SMALL_D: _trace_family(SMALL_D, feature_rows),
        LARGE_D: _trace_family(LARGE_D, feature_rows),
    }


def test_fig6_traces_cover_every_gate(memory_traces):
    for traces in memory_traces.values():
        for trace in traces:
            progress = trace.progress_axis()
            assert progress[-1] == pytest.approx(100.0)
            assert len(trace) == len(trace.memory_axis_mib())


def test_fig6_memory_grows_with_gates_applied(memory_traces):
    """Within the larger-d family, the later part of the simulation holds
    more memory than the beginning (exponential build-up of entanglement)."""
    for trace in memory_traces[LARGE_D]:
        memory = trace.memory_axis_mib()
        first_quarter = memory[: len(memory) // 4].mean()
        last_quarter = memory[-len(memory) // 4 :].mean()
        assert last_quarter > first_quarter


def test_fig6_larger_distance_needs_more_memory(memory_traces):
    """The d = large family peaks well above the d = 1 family (Fig. 6's gap)."""
    peak_small = max(t.peak_memory_bytes for t in memory_traces[SMALL_D])
    peak_large = max(t.peak_memory_bytes for t in memory_traces[LARGE_D])
    assert peak_large > 2 * peak_small
    chi_small = max(t.peak_bond_dimension for t in memory_traces[SMALL_D])
    chi_large = max(t.peak_bond_dimension for t in memory_traces[LARGE_D])
    assert chi_large > chi_small


def test_fig6_truncation_produces_memory_drops(memory_traces):
    """SVD truncation causes visible decreases in the memory trace of the
    entangling family (the saw-tooth of Fig. 6)."""
    drops = 0
    for trace in memory_traces[LARGE_D]:
        memory = trace.memory_axis_mib()
        drops += int(np.sum(np.diff(memory) < 0))
    assert drops > 0


def test_fig6_memory_far_below_statevector(memory_traces):
    """Contribution C1.1: the MPS memory stays minuscule next to the
    2^m * 16-byte statevector the dense simulator would need."""
    statevector_bytes = 16.0 * (2.0**RESOURCE_QUBITS)
    for traces in memory_traces.values():
        for trace in traces:
            assert trace.peak_memory_bytes < statevector_bytes / 100.0


def test_fig6_print_series(memory_traces):
    """Emit a compact view of the two mean memory envelopes."""
    rows = []
    for d, traces in sorted(memory_traces.items()):
        # Resample each trace to a common grid and average.
        grid = 10
        resampled = np.vstack(
            [t.resample(grid).memory_axis_mib() for t in traces]
        )
        mean = resampled.mean(axis=0)
        for pct, mem in zip(np.linspace(10, 100, grid), mean):
            rows.append({"d": d, "progress (%)": pct, "mean memory (MiB)": mem})
    print()
    print(format_table(rows, title="Figure 6 series (reduced scale)", precision=5))


def test_benchmark_instrumented_simulation(benchmark, feature_rows):
    """pytest-benchmark target: instrumented simulation at distance 2."""
    ansatz = AnsatzConfig(
        num_features=RESOURCE_QUBITS,
        interaction_distance=2,
        layers=2,
        gamma=1.0,
    )
    circuit = build_feature_map_circuit(feature_rows[0], ansatz)
    backend = CpuBackend(SimulationConfig(track_memory=True))
    benchmark(lambda: backend.simulate(circuit))
