"""Shared configuration of the benchmark harness.

Each benchmark module regenerates one table or figure of the paper at a
reduced, laptop-friendly scale (see EXPERIMENTS.md for the mapping between
the paper's configuration and the defaults here).  The reduced scale is
controlled by the constants in this module so a user with more time can dial
everything up in one place.

Every module both:

* prints the regenerated rows/series (the deliverable of the harness), and
* registers a representative timed primitive with pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` produces machine-readable timings.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import DatasetSpec, generate_elliptic_like  # noqa: E402


def pytest_collection_modifyitems(items):
    """Mark every figure/table-reproduction test in this directory ``slow``.

    The split lets CI run the fast unit/property suites (`-m "not slow"`)
    separately from the heavy benchmark regenerations; a plain ``pytest``
    still runs everything (the tier-1 command is unchanged).
    """
    this_dir = Path(__file__).resolve().parent
    for item in items:
        if this_dir in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)

#: Number of qubits used by the resource-scaling benchmarks (paper: 100).
RESOURCE_QUBITS = 24

#: Interaction distances swept by the crossover benchmark (paper: 2..12).
CROSSOVER_DISTANCES = (1, 2, 3, 4)

#: Samples per configuration for timing medians (paper: 8 circuits / 28 IPs).
TIMING_SAMPLES = 3

#: Feature counts swept by the AUC benchmark (paper: 15, 50, 100, 165).
AUC_FEATURE_COUNTS = (4, 6, 8, 10)

#: Balanced sample sizes swept by the AUC benchmark (paper: 300, 1500, 6400).
AUC_SAMPLE_SIZES = (16, 32, 64)

#: Data set sizes / process counts for the parallel-scaling benchmark
#: (paper: 400..6400 points on 2..32 GPUs).
PARALLEL_CONFIGS = ((8, 1), (16, 2), (32, 4))

#: Kernel-comparison sweep (paper Table II: d in 1..6, gamma in 0.1/0.5/1.0).
TABLE2_DISTANCES = (1, 2, 3)
TABLE2_GAMMAS = (0.1, 0.5, 1.0)
TABLE2_FEATURES = 8
TABLE2_SAMPLE_SIZE = 32

#: Depth sweep (paper Table III: r in 2..20).
TABLE3_DEPTHS = (1, 2, 4, 8)


@pytest.fixture(scope="session")
def elliptic_dataset():
    """Synthetic Elliptic-like dataset shared by the ML benchmarks."""
    return generate_elliptic_like(
        DatasetSpec(num_samples=1200, num_features=16, seed=2024)
    )


@pytest.fixture(scope="session")
def feature_rows():
    """A pool of scaled feature rows used by the resource benchmarks."""
    rng = np.random.default_rng(7)
    return rng.uniform(0.05, 1.95, size=(16, RESOURCE_QUBITS))
