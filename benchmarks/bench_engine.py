"""Engine benchmark smoke: cache hit-rate and pairs/sec trajectory artifact.

Runs one small but representative engine workload -- a training Gram matrix,
a test cross matrix reusing the training states, and a warm inference replay
-- and writes ``BENCH_engine.json`` with throughput (pairs/sec, both measured
and modelled-device), cache statistics and bond-dimension bookkeeping.  CI
uploads the file so future PRs have a perf trajectory to compare against.

Run with:  python benchmarks/bench_engine.py [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import __version__
from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_engine.json"))
    parser.add_argument("--train-size", type=int, default=24)
    parser.add_argument("--test-size", type=int, default=8)
    parser.add_argument("--features", type=int, default=8)
    parser.add_argument("--distance", type=int, default=2)
    args = parser.parse_args()

    rng = np.random.default_rng(42)
    X_train = rng.uniform(0.1, 1.9, size=(args.train_size, args.features))
    X_test = rng.uniform(0.1, 1.9, size=(args.test_size, args.features))
    ansatz = AnsatzConfig(
        num_features=args.features,
        interaction_distance=args.distance,
        layers=2,
        gamma=1.0,
    )

    engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))

    start = time.perf_counter()
    train_result, test_result = engine.gram_and_cross(X_train, X_test)
    cold_elapsed = time.perf_counter() - start

    # Warm replay: every point is cached, only overlaps are evaluated.
    start = time.perf_counter()
    warm_result = engine.cross(X_test, train_result.states)
    warm_elapsed = time.perf_counter() - start

    cold_pairs = train_result.num_inner_products + test_result.num_inner_products
    stats = engine.cache_stats()

    payload = {
        "benchmark": "engine_smoke",
        "version": __version__,
        "python": platform.python_version(),
        "config": {
            "train_size": args.train_size,
            "test_size": args.test_size,
            "num_features": args.features,
            "interaction_distance": args.distance,
        },
        "cold": {
            "elapsed_s": cold_elapsed,
            "pairs": cold_pairs,
            "pairs_per_sec": cold_pairs / cold_elapsed if cold_elapsed > 0 else None,
            "num_simulations": train_result.num_simulations
            + test_result.num_simulations,
            "simulation_time_s": train_result.simulation_time_s
            + test_result.simulation_time_s,
            "inner_product_time_s": train_result.inner_product_time_s
            + test_result.inner_product_time_s,
            "modelled_pairs_per_sec": (
                cold_pairs
                / (
                    train_result.modelled_inner_product_time_s
                    + test_result.modelled_inner_product_time_s
                )
            ),
            "max_bond_dimension": max(
                train_result.max_bond_dimension, test_result.max_bond_dimension
            ),
        },
        "warm": {
            "elapsed_s": warm_elapsed,
            "pairs": warm_result.num_inner_products,
            "pairs_per_sec": (
                warm_result.num_inner_products / warm_elapsed
                if warm_elapsed > 0
                else None
            ),
            "num_simulations": warm_result.num_simulations,
            "cache_hits": warm_result.cache_hits,
        },
        "cache": stats.to_dict(),
    }

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {args.out}")

    if warm_result.num_simulations != 0:
        raise SystemExit("warm replay performed simulations; cache reuse is broken")


if __name__ == "__main__":
    main()
