"""Ablation: kernel bandwidth (gamma) versus kernel geometry and cost.

Section III of the paper shows that gamma simultaneously controls model
quality (Table II), simulation cost (Fig. 7) and — at the extreme — kernel
concentration (the mechanism behind Table III).  This ablation sweeps gamma
on a fixed data sample and reports the off-diagonal kernel statistics, the
kernel-target alignment and the cost proxies, exposing the "moderate gamma is
the sweet spot" picture in one table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import bandwidth_study
from repro.data import balanced_subsample, select_features
from repro.profiling import format_table

GAMMAS = (0.05, 0.1, 0.5, 1.0, 2.0)
NUM_FEATURES = 8
SAMPLE_SIZE = 16


@pytest.fixture(scope="module")
def study(elliptic_dataset):
    sample = balanced_subsample(elliptic_dataset, SAMPLE_SIZE, seed=5)
    X = select_features(sample.features, NUM_FEATURES)
    return bandwidth_study(X, sample.labels, gammas=GAMMAS, interaction_distance=1, layers=2)


def test_overlaps_shrink_with_gamma(study):
    """Mean overlaps fall steeply as gamma grows.  Strict monotonicity is
    only required up to gamma = 1: beyond that the RXX angles wrap around pi
    and the (already tiny) overlaps fluctuate at the 1e-2 level."""
    means = [p.off_diagonal_mean for p in study]
    up_to_one = means[: GAMMAS.index(1.0) + 1]
    assert all(np.diff(up_to_one) < 0)
    # Small gamma: nearly indistinguishable states; large gamma: concentrated.
    assert means[0] > 0.7
    assert means[-1] < 0.2


def test_cost_grows_with_gamma(study):
    times = [p.modelled_simulation_time_s for p in study]
    chis = [p.max_bond_dimension for p in study]
    assert times[-1] > times[0]
    assert chis[-1] >= chis[0]


def test_alignment_peaks_at_moderate_gamma(study):
    """The kernel-target alignment is best somewhere strictly inside the
    sweep: both extremes (identity-like kernel, concentrated kernel) carry
    less label information than a moderate bandwidth."""
    alignments = [p.alignment for p in study]
    best = int(np.argmax(alignments))
    assert 0 < best < len(GAMMAS) - 1 or alignments[best] > max(
        alignments[0], alignments[-1]
    ) - 1e-6


def test_extreme_gamma_flags_concentration(study):
    assert not study[0].is_concentrated
    # The largest gamma need not be fully concentrated at this small qubit
    # count, but it must have lost most of its off-diagonal weight.
    assert study[-1].off_diagonal_mean < 0.5 * study[0].off_diagonal_mean


def test_print_bandwidth_table(study):
    rows = [
        {
            "gamma": p.gamma,
            "mean overlap": p.off_diagonal_mean,
            "overlap std": p.off_diagonal_std,
            "alignment": p.alignment,
            "max chi": p.max_bond_dimension,
            "modelled sim time (s)": p.modelled_simulation_time_s,
        }
        for p in study
    ]
    print()
    print(format_table(rows, title="Kernel bandwidth ablation", precision=4))


def test_benchmark_bandwidth_study_single_gamma(benchmark, elliptic_dataset):
    """pytest-benchmark target: the gamma = 0.5 column of the study."""
    sample = balanced_subsample(elliptic_dataset, SAMPLE_SIZE, seed=5)
    X = select_features(sample.features, NUM_FEATURES)
    benchmark(lambda: bandwidth_study(X, sample.labels, gammas=(0.5,)))
