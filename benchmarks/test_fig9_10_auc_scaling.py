"""Figures 9 and 10: AUC versus feature count for several data-set sizes.

The paper trains the quantum-kernel SVM (d = 1, r = 2, gamma = 0.1) on
balanced samples of 300 / 1500 / 6400 points with 15 / 50 / 100 / 165
features, reporting the best-over-C AUC on the training set (Fig. 9) and the
test set (Fig. 10).  The headline observation (C2.1): test AUC improves as
both the feature count and the data-set size grow, with the smallest sample
overfitting (high train AUC, flat test AUC).

The reduced sweep uses AUC_FEATURE_COUNTS x AUC_SAMPLE_SIZES on the synthetic
Elliptic-like data.  Because the samples are small the per-cell AUC is noisy;
the tests therefore check trend statistics (correlations and averages across
the sweep) rather than individual cells.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClassificationExperiment, run_classification_experiment
from repro.profiling import format_table

from conftest import AUC_FEATURE_COUNTS, AUC_SAMPLE_SIZES

C_GRID = (0.5, 1.0, 4.0)


@pytest.fixture(scope="module")
def auc_sweep(elliptic_dataset):
    rows = []
    for sample_size in AUC_SAMPLE_SIZES:
        for num_features in AUC_FEATURE_COUNTS:
            exp = ClassificationExperiment(
                num_features=num_features,
                sample_size=sample_size,
                interaction_distance=1,
                layers=2,
                gamma=0.1,
                seed=31,
            )
            outcome = run_classification_experiment(
                exp, dataset=elliptic_dataset, c_grid=C_GRID
            )
            rows.append(
                {
                    "sample_size": sample_size,
                    "num_features": num_features,
                    "train_auc": outcome.train_auc,
                    "test_auc": outcome.test_auc,
                }
            )
    return rows


def test_fig9_10_all_aucs_valid(auc_sweep):
    for row in auc_sweep:
        assert 0.0 <= row["train_auc"] <= 1.0
        assert 0.0 <= row["test_auc"] <= 1.0


def test_fig10_test_auc_improves_with_features(auc_sweep):
    """For the largest sample, more features do not hurt and help overall
    (the paper's monotone improvement at 6400 samples)."""
    largest = max(AUC_SAMPLE_SIZES)
    series = [r["test_auc"] for r in auc_sweep if r["sample_size"] == largest]
    assert series[-1] >= series[0] - 0.02
    # Positive trend over the feature sweep.
    slope = np.polyfit(range(len(series)), series, 1)[0]
    assert slope > -0.005


def test_fig10_more_data_gives_better_or_equal_test_auc(auc_sweep):
    """Averaged over feature counts, larger samples generalise at least as
    well as the smallest sample (C2.1's data-size direction)."""
    by_size = {
        size: np.mean([r["test_auc"] for r in auc_sweep if r["sample_size"] == size])
        for size in AUC_SAMPLE_SIZES
    }
    smallest, largest = min(AUC_SAMPLE_SIZES), max(AUC_SAMPLE_SIZES)
    assert by_size[largest] >= by_size[smallest] - 0.05


def test_fig9_small_sample_overfits(auc_sweep):
    """The smallest sample shows the largest train-test AUC gap at the
    largest feature count (the paper's overfitting indicator)."""
    biggest_features = max(AUC_FEATURE_COUNTS)
    gaps = {
        r["sample_size"]: r["train_auc"] - r["test_auc"]
        for r in auc_sweep
        if r["num_features"] == biggest_features
    }
    smallest, largest = min(AUC_SAMPLE_SIZES), max(AUC_SAMPLE_SIZES)
    assert gaps[smallest] >= gaps[largest] - 0.05


def test_fig9_10_print_series(auc_sweep):
    print()
    print(
        format_table(
            auc_sweep,
            columns=["sample_size", "num_features", "train_auc", "test_auc"],
            title="Figures 9-10 series (reduced scale)",
            precision=3,
        )
    )


def test_benchmark_single_pipeline_run(benchmark, elliptic_dataset):
    """pytest-benchmark target: one full pipeline run of the sweep's cheapest cell."""
    exp = ClassificationExperiment(
        num_features=min(AUC_FEATURE_COUNTS),
        sample_size=min(AUC_SAMPLE_SIZES),
        interaction_distance=1,
        layers=2,
        gamma=0.1,
        seed=31,
    )
    benchmark(
        lambda: run_classification_experiment(
            exp, dataset=elliptic_dataset, c_grid=(1.0,)
        )
    )
