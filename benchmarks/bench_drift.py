"""Drift-adaptation benchmark: alarm -> shadow fit -> atomic swap -> recovery.

Replays the online drift scenario end to end against a live serving queue:

1. **i.i.d. phase** -- the stream's head is exchangeable with the conformal
   calibration split; the controller must stay silent (zero false alarms).
2. **shift phase** -- every later request is translated by two training
   standard deviations per feature (covariate shift); rolling conformal
   coverage collapses below ``1 - alpha - hysteresis`` and the alarm fires.
3. **adaptation** -- ``DriftController.adapt`` runs the shadow fit (landmark
   growth by ridge leverage scores, warm-started Newton refit, conformal
   recalibration on held-out fresh samples) and installs the new model via
   the queue's atomic swap.  A background thread keeps submitting requests
   for the whole duration of the adaptation: serving must never pause and no
   request may be dropped.
4. **recovery phase** -- post-swap traffic from the shifted regime must bring
   rolling coverage back to at least ``1 - alpha - 0.02``.
5. **steady-state refresh** -- a second ``adapt`` on stabilised traffic with
   the landmark basis frozen (growth is the emergency path; a routine
   refresh refits and recalibrates on fresh samples over the same basis),
   fitted both warm (from the previous generation's solution) and cold
   (from zero).  The warm start must converge in strictly fewer semismooth
   Newton iterations: this is the incremental refresh the warm-start path
   exists for.  (The *first* emergency refit is reported too, but not gated
   -- right after a shift the previous solution is far from the new optimum
   and the basis grows under it, so warm and cold cost about the same.)

Writes ``BENCH_drift.json`` and exits non-zero when the acceptance contract
breaks: a false alarm under i.i.d. traffic, no alarm under shift, dropped or
paused requests around the swap, coverage that fails to recover, or a warm
refresh that is not cheaper than cold.

Run with:  python benchmarks/bench_drift.py [--out BENCH_drift.json]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.approx import DriftConfig, DriftController, NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.svm import SplitConformalClassifier
from repro.telemetry import MetricsRegistry, bind_drift_controller, bind_queue


def build_scenario(args) -> dict:
    """Train/calibration/stream splits of one balanced pool, shift injected.

    All three splits slice a single shuffled balanced subsample: the data
    generator draws fresh cluster centroids per seed, so this is what makes
    the calibration split and the pre-changepoint stream exchangeable --
    the injected translation is then the only shift present.
    """
    total = args.train_size + args.calib_size + args.stream_size
    pool = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=max(4000, 8 * total),
                num_features=args.features,
                seed=args.seed + 11,
            )
        ),
        total if total % 2 == 0 else total + 1,
        seed=args.seed + 3,
    )
    X = np.array(pool.features, dtype=float)
    y = np.array(pool.labels, dtype=int)
    X_train, y_train = X[: args.train_size], y[: args.train_size]
    calib_end = args.train_size + args.calib_size
    X_calib, y_calib = X[args.train_size : calib_end], y[args.train_size : calib_end]
    X_stream = X[calib_end : total].copy()
    y_stream = y[calib_end : total].copy()
    X_stream[args.changepoint :] += args.shift * np.std(X_train, axis=0)
    return {
        "X_train": X_train,
        "y_train": y_train,
        "X_calib": X_calib,
        "y_calib": y_calib,
        "X_stream": X_stream,
        "y_stream": y_stream,
    }


def run_benchmark(args) -> tuple[dict, list]:
    scenario = build_scenario(args)
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=1, gamma=0.6
    )
    engine = QuantumKernelInferenceEngine(
        ansatz,
        approximation=NystroemConfig(num_landmarks=args.landmarks, seed=0),
        C=args.svm_c,
    )
    engine.fit(scenario["X_train"], scenario["y_train"])
    conformal = SplitConformalClassifier(alpha=args.alpha).calibrate(
        engine.decision_function(scenario["X_calib"]), scenario["y_calib"]
    )

    # The refresh buffer is deliberately large: a warm start only saves
    # iterations when consecutive refit samples are big enough that their
    # optima nearly coincide (the O(1/sqrt(n)) sampling drift shrinks below
    # what one Newton step covers).
    config = DriftConfig(
        hysteresis=0.10,
        window=160,
        min_samples=80,
        buffer_size=512,
        min_refit_samples=60,
        calibration_fraction=0.3,
        max_new_landmarks=8,
        reconstruction_bound=0.02,
        seed=0,
        warm_start=True,
        compare_cold=True,  # fit both starts so iteration counts are comparable
    )

    queue = engine.serving_queue(max_batch=8, max_wait_ms=2.0)
    registry = MetricsRegistry()
    bind_queue(registry, queue)
    controller = DriftController(
        engine.streaming_classifier(), conformal, target=queue, config=config
    )
    bind_drift_controller(registry, controller)

    submitted = 0
    resolved = 0
    X_stream, y_stream = scenario["X_stream"], scenario["y_stream"]

    def serve(lo: int, hi: int, chunk: int = 10) -> None:
        nonlocal submitted, resolved
        for i in range(lo, hi, chunk):
            rows, labels = X_stream[i : i + chunk], y_stream[i : i + chunk]
            futures = queue.submit_many(rows)
            submitted += len(futures)
            queue.flush()
            decisions = np.array(
                [f.result(timeout=120).decision_value for f in futures]
            )
            resolved += len(futures)
            controller.record_feedback(rows, decisions, labels)

    failures: list[str] = []

    # Phase 1: i.i.d. head -- must stay silent.
    serve(0, args.changepoint)
    iid = {
        "alarms": controller.alarm_count,
        "coverage": controller.rolling_coverage(),
    }
    if controller.alarm_count:
        failures.append("false alarm under i.i.d. traffic")

    # Phase 2: shifted traffic until the alarm fires.
    fired_after = None
    i = args.changepoint
    while i < 400 and not controller.alarm_active:
        serve(i, i + 10)
        i += 10
    if controller.alarm_active:
        fired_after = i - args.changepoint
    else:
        failures.append("alarm never fired under covariate shift")
    alarm = {
        "fired": controller.alarm_active,
        "shifted_samples_to_alarm": fired_after,
        "coverage_at_alarm": controller.rolling_coverage(),
    }
    # Fill the adaptation buffer until the i.i.d. head has rolled out of it
    # entirely: the shadow fit recalibrates on a held-out slice of this
    # buffer, and recovery traffic is purely shifted, so the calibration
    # sample must be too (exchangeability is what the coverage guarantee
    # rests on).
    buffer_full_of_shift = args.changepoint + config.buffer_size + 70
    serve(i, buffer_full_of_shift)
    i = buffer_full_of_shift

    # Phase 3: adapt while a background thread keeps traffic flowing.
    swap_window = X_stream[i : i + 32]
    during_swap: list = []

    def pound() -> None:
        futures = [queue.submit(row) for row in swap_window]
        queue.flush()
        during_swap.extend(f.result(timeout=120) for f in futures)

    pounder = threading.Thread(target=pound)
    t0 = time.perf_counter()
    pounder.start()
    first = controller.adapt()
    pounder.join()
    first_s = time.perf_counter() - t0
    i += 32
    submitted += len(swap_window)
    resolved += len(during_swap)
    if len(during_swap) != len(swap_window):
        failures.append("requests dropped while the swap was in flight")
    if queue.model_version != first.version:
        failures.append("queue version does not match the adaptation report")

    # Phase 4: recovery on post-swap shifted traffic.
    serve(i, args.stream_size - 100)
    recovery_target = 1.0 - args.alpha - 0.02
    recovery = {
        "coverage": controller.rolling_coverage(),
        "target": recovery_target,
        "recovered": controller.rolling_coverage() >= recovery_target,
    }
    if not recovery["recovered"]:
        failures.append(
            f"coverage {recovery['coverage']:.3f} below target {recovery_target:.3f}"
        )

    # Phase 5: steady-state refresh -- warm start must beat cold outright.
    # The basis is frozen: a routine refresh re-estimates the model and the
    # conformal quantile on fresh traffic, it does not grow landmarks.
    serve(args.stream_size - 100, args.stream_size)
    controller.config = dataclasses.replace(config, max_new_landmarks=0)
    t0 = time.perf_counter()
    second = controller.adapt()
    second_s = time.perf_counter() - t0
    warm_fewer = (
        second.cold_iterations is not None
        and second.warm_iterations < second.cold_iterations
    )
    if not warm_fewer:
        failures.append(
            f"warm refresh took {second.warm_iterations} iterations vs "
            f"{second.cold_iterations} cold"
        )

    versions = sorted({r.model_version for r in during_swap})
    if any(v not in (0, 1) for v in versions):
        failures.append(f"unexpected model versions during swap: {versions}")
    if submitted != resolved:
        failures.append(f"{submitted - resolved} of {submitted} requests dropped")

    snapshot = registry.to_dict()
    telemetry = {
        name: snapshot[name]["series"][0]["value"]
        for name in (
            "repro_drift_alarms_total",
            "repro_drift_swaps_total",
            "repro_serving_model_version",
        )
        if name in snapshot and snapshot[name]["series"]
    }
    queue.close()

    payload = {
        "host": platform.platform(),
        "params": {
            "alpha": args.alpha,
            "svm_c": args.svm_c,
            "landmarks": args.landmarks,
            "features": args.features,
            "stream_size": args.stream_size,
            "changepoint": args.changepoint,
            "shift": args.shift,
            "drift_config": config.to_dict(),
        },
        "iid": iid,
        "alarm": alarm,
        "adaptation": {**first.to_dict(), "seconds": first_s},
        "refresh": {
            **second.to_dict(),
            "seconds": second_s,
            "warm_fewer_iterations": warm_fewer,
        },
        "recovery": recovery,
        "serving": {
            "submitted": submitted,
            "resolved": resolved,
            "dropped_requests": submitted - resolved,
            "during_swap_resolved": len(during_swap),
            "during_swap_versions": versions,
            "swaps": queue.swap_count,
            "final_model_version": queue.model_version,
        },
        "telemetry": telemetry,
        "ok": not failures,
    }
    return payload, failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_drift.json"))
    parser.add_argument("--alpha", type=float, default=0.15)
    parser.add_argument("--features", type=int, default=4)
    parser.add_argument("--landmarks", type=int, default=10)
    parser.add_argument("--train-size", type=int, default=60)
    parser.add_argument("--calib-size", type=int, default=100)
    parser.add_argument("--stream-size", type=int, default=1300)
    parser.add_argument("--changepoint", type=int, default=120)
    parser.add_argument("--shift", type=float, default=2.0)
    parser.add_argument("--svm-c", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    payload, failures = run_benchmark(args)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(json.dumps(payload, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
