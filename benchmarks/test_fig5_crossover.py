"""Figure 5 + Table I: CPU/GPU crossover as the interaction distance grows.

The paper fixes m = 100 qubits, r = 2 layers, gamma = 1.0 and sweeps the
interaction distance d, timing (a) the MPS simulation of a single circuit and
(b) a single inner product, on the ITensors/CPU backend and the
pytket-cutensornet/GPU backend.  It reports the median and quartiles of 8
simulation samples and 28 inner-product samples per distance, and Table I
lists the average largest bond dimension and the memory per MPS.

Here both backends execute identical NumPy numerics; the CPU-vs-GPU
comparison uses the calibrated device cost models (modelled seconds), which
is where the crossover claim (C1.2) lives.  The sweep is scaled down to
RESOURCE_QUBITS qubits and distances 1-4 so it finishes in seconds; the
qualitative shape -- runtime grows exponentially with d, the GPU curve starts
above the CPU curve and the gap closes as chi grows -- is the reproduction
target.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import CpuBackend, SimulatedGpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig, SimulationConfig
from repro.profiling import format_table, summarize_samples

from conftest import CROSSOVER_DISTANCES, RESOURCE_QUBITS, TIMING_SAMPLES


def _sweep_distance(distance: int, feature_rows: np.ndarray) -> dict:
    """Simulate TIMING_SAMPLES circuits + pairwise inner products on both backends."""
    ansatz = AnsatzConfig(
        num_features=RESOURCE_QUBITS,
        interaction_distance=distance,
        layers=2,
        gamma=1.0,
    )
    backends = {"cpu": CpuBackend(), "gpu": SimulatedGpuBackend()}
    sim_times = {name: [] for name in backends}
    ip_times = {name: [] for name in backends}
    chis = {name: [] for name in backends}
    memories = []

    states = {name: [] for name in backends}
    for row_idx in range(TIMING_SAMPLES):
        circuit = build_feature_map_circuit(feature_rows[row_idx], ansatz)
        for name, backend in backends.items():
            result = backend.simulate(circuit)
            sim_times[name].append(result.modelled_time_s)
            chis[name].append(result.max_bond_dimension)
            states[name].append(result.state)
            if name == "gpu":
                memories.append(result.memory_mib)

    for name, backend in backends.items():
        pool = states[name]
        for i in range(len(pool)):
            for j in range(i + 1, len(pool)):
                ip = backend.inner_product(pool[i], pool[j])
                ip_times[name].append(ip.modelled_time_s)

    return {
        "distance": distance,
        "sim_cpu": summarize_samples(sim_times["cpu"]),
        "sim_gpu": summarize_samples(sim_times["gpu"]),
        "ip_cpu": summarize_samples(ip_times["cpu"]),
        "ip_gpu": summarize_samples(ip_times["gpu"]),
        "avg_chi_cpu": float(np.mean(chis["cpu"])),
        "avg_chi_gpu": float(np.mean(chis["gpu"])),
        "memory_mib": float(np.mean(memories)),
    }


@pytest.fixture(scope="module")
def crossover_data(feature_rows):
    return [_sweep_distance(d, feature_rows) for d in CROSSOVER_DISTANCES]


def test_fig5_runtime_grows_with_interaction_distance(crossover_data):
    """Both primitives get more expensive as d (and therefore chi) grows."""
    cpu_sim = [row["sim_cpu"]["median"] for row in crossover_data]
    cpu_ip = [row["ip_cpu"]["median"] for row in crossover_data]
    assert all(np.diff(cpu_sim) > 0)
    assert all(np.diff(cpu_ip) >= 0)


def test_fig5_gpu_overhead_dominates_at_small_distance(crossover_data):
    """At d = 1 the CPU backend is faster on both primitives (CPU-favoured
    regime of Fig. 5)."""
    first = crossover_data[0]
    assert first["sim_gpu"]["median"] > first["sim_cpu"]["median"]
    assert first["ip_gpu"]["median"] > first["ip_cpu"]["median"]


def test_fig5_gpu_gap_closes_as_distance_grows(crossover_data):
    """The GPU/CPU runtime ratio falls monotonically towards (and eventually
    below) 1 as the bond dimension grows -- the crossover mechanism."""
    ratios = [
        row["ip_gpu"]["median"] / row["ip_cpu"]["median"] for row in crossover_data
    ]
    assert all(np.diff(ratios) < 0)
    assert ratios[-1] < ratios[0] / 2


def test_fig5_gpu_wins_beyond_the_crossover_bond_dimension():
    """Directly exercise the crossover: at the paper's chi ~ 320 the GPU
    model is faster for the inner product, and dramatically so at larger chi."""
    from repro.backends import CPU_COST_MODEL, GPU_COST_MODEL

    m = 100  # the paper's qubit count; pure cost-model evaluation is free
    assert GPU_COST_MODEL.inner_product_time(m, 320) < CPU_COST_MODEL.inner_product_time(
        m, 320
    )
    assert GPU_COST_MODEL.inner_product_time(m, 1024) < 0.25 * CPU_COST_MODEL.inner_product_time(
        m, 1024
    )
    # ... while at chi = 10 the CPU still wins.
    assert GPU_COST_MODEL.inner_product_time(m, 10) > CPU_COST_MODEL.inner_product_time(
        m, 10
    )


def test_fig5_nystroem_cross_sweep_crossover(crossover_data):
    """Extend the crossover study to the Nystrom ``K_nm`` block sweep.

    The engine dispatches the stacked cross sweep by comparing
    ``batched_inner_product_time`` across devices.  Using the bond
    dimensions actually measured in the sweep: the GPU/CPU ratio of the
    modelled *block* time falls monotonically as d grows (the same
    mechanism as the per-pair Fig. 5 ratio), and because the stack
    amortises the GPU's launch overhead, the block crossover arrives at a
    smaller chi than the per-pair one.
    """
    from repro.backends import CPU_COST_MODEL, GPU_COST_MODEL, preferred_cross_model

    n_rows, n_cols = 256, 64  # a Nystrom-fit-scale K_nm block
    pairs = n_rows * n_cols
    ratios = []
    for row in crossover_data:
        chi = int(round(row["avg_chi_cpu"]))
        gpu_t = GPU_COST_MODEL.batched_inner_product_time(pairs, RESOURCE_QUBITS, chi)
        cpu_t = CPU_COST_MODEL.batched_inner_product_time(pairs, RESOURCE_QUBITS, chi)
        ratios.append(gpu_t / cpu_t)
    assert all(np.diff(ratios) < 0)
    # At the largest swept distance the stacked sweep already favours the
    # GPU -- the modelled dispatch the engine's cross_backend performs.
    largest_chi = int(round(crossover_data[-1]["avg_chi_cpu"]))
    assert (
        preferred_cross_model(pairs, RESOURCE_QUBITS, largest_chi) is GPU_COST_MODEL
    )
    # ... while per-pair dispatch at the same chi still favours the CPU:
    # batching moves the crossover, which is why it must be modelled on the
    # stacked entries rather than the per-pair ones.
    assert GPU_COST_MODEL.inner_product_time(
        RESOURCE_QUBITS, largest_chi
    ) > CPU_COST_MODEL.inner_product_time(RESOURCE_QUBITS, largest_chi)


def test_table1_bond_dimension_backend_agreement_and_memory(crossover_data):
    """Table I: both backends report identical bond dimensions, and both chi
    and the per-MPS memory grow with the interaction distance."""
    rows = []
    for row in crossover_data:
        assert row["avg_chi_cpu"] == pytest.approx(row["avg_chi_gpu"])
        rows.append(
            {
                "interaction distance": row["distance"],
                "avg largest chi (GPU)": row["avg_chi_gpu"],
                "avg largest chi (CPU)": row["avg_chi_cpu"],
                "memory per MPS (MiB)": row["memory_mib"],
            }
        )
    chis = [r["avg largest chi (GPU)"] for r in rows]
    mems = [r["memory per MPS (MiB)"] for r in rows]
    assert all(np.diff(chis) > 0)
    assert all(np.diff(mems) > 0)
    print()
    print(format_table(rows, title="Table I (reduced scale)", precision=3))


def test_fig5_print_series(crossover_data):
    """Emit the Figure 5 series (median / quartiles per distance, per backend)."""
    rows = []
    for row in crossover_data:
        rows.append(
            {
                "d": row["distance"],
                "sim CPU median (s)": row["sim_cpu"]["median"],
                "sim GPU median (s)": row["sim_gpu"]["median"],
                "IP CPU median (s)": row["ip_cpu"]["median"],
                "IP GPU median (s)": row["ip_gpu"]["median"],
            }
        )
    print()
    print(format_table(rows, title="Figure 5 series (reduced scale)", precision=6))


def test_benchmark_single_circuit_simulation(benchmark, feature_rows):
    """pytest-benchmark target: one MPS simulation at an intermediate distance.

    The second-largest swept distance keeps one timed round below a couple of
    seconds while still exercising a non-trivial bond dimension.
    """
    ansatz = AnsatzConfig(
        num_features=RESOURCE_QUBITS,
        interaction_distance=CROSSOVER_DISTANCES[-2],
        layers=2,
        gamma=1.0,
    )
    circuit = build_feature_map_circuit(feature_rows[0], ansatz)
    backend = CpuBackend(SimulationConfig())
    benchmark(lambda: backend.simulate(circuit))


def test_benchmark_single_inner_product(benchmark, feature_rows):
    """pytest-benchmark target: one MPS inner product at an intermediate distance."""
    ansatz = AnsatzConfig(
        num_features=RESOURCE_QUBITS,
        interaction_distance=CROSSOVER_DISTANCES[-2],
        layers=2,
        gamma=1.0,
    )
    backend = CpuBackend()
    a = backend.simulate(build_feature_map_circuit(feature_rows[0], ansatz)).state
    b = backend.simulate(build_feature_map_circuit(feature_rows[1], ansatz)).state
    benchmark(lambda: backend.inner_product(a, b))
