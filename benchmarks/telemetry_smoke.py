"""Telemetry endpoint smoke test: scrape a live serving queue over HTTP.

Builds a small Nystrom serving stack, warms it with one batch of traffic
under an enabled tracer, attaches the telemetry endpoint
(:func:`repro.telemetry.attach_endpoint`), and validates the three routes
from the outside, exactly as a monitoring agent would:

* ``/metrics`` must return Prometheus 0.0.4 text that the repo's own strict
  parser accepts, covering the serving latency histogram, the store
  hit/miss/eviction counters and the encode launch counters;
* ``/health`` must report ``ok`` while the queue is live;
* ``/traces/recent`` must return a span tree with at least four linked
  phases for the traced batch (plus a renderable text flamegraph).

Exits non-zero on any failure.  Run with:

    python benchmarks/telemetry_smoke.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from urllib.request import urlopen

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.telemetry import TRACER, attach_endpoint, parse_prometheus_text

#: The acceptance surface every scrape must expose.
REQUIRED_FAMILIES = (
    "repro_serving_request_latency_seconds",
    "repro_serving_requests_total",
    "repro_serving_batches_total",
    "repro_serving_batch_size",
    "repro_store_hits_total",
    "repro_store_misses_total",
    "repro_store_evictions_total",
    "repro_encode_launches_total",
    "repro_backend_simulations_total",
)

#: A traced batch must produce a tree with at least these linked phases.
REQUIRED_SPANS = ("serving.request", "serving.flush", "serving.score")


def build_queue(args):
    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(num_samples=400, num_features=args.features, seed=19)
        ),
        args.train_size,
        seed=5,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=1, gamma=0.6
    )
    engine = QuantumKernelInferenceEngine(
        ansatz, approximation=NystroemConfig(num_landmarks=args.landmarks, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine.serving_queue(max_batch=8, max_wait_ms=2.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--train-size", type=int, default=20)
    parser.add_argument("--landmarks", type=int, default=6)
    parser.add_argument("--features", type=int, default=4)
    args = parser.parse_args()

    failures: list[str] = []
    rng = np.random.default_rng(23)
    stream = rng.normal(size=(args.queries, args.features))

    TRACER.reset()
    TRACER.enable()
    try:
        with build_queue(args) as queue, attach_endpoint(queue) as server:
            futures = [queue.submit(row) for row in stream]
            queue.flush()
            [f.result(timeout=60) for f in futures]
            print(f"served {args.queries} requests; endpoint at {server.url}")

            # /metrics: strict-parse the exposition, then check coverage.
            with urlopen(server.url + "/metrics") as response:
                content_type = response.headers.get("Content-Type", "")
                body = response.read().decode("utf-8")
            if "version=0.0.4" not in content_type:
                failures.append(f"unexpected /metrics content type {content_type!r}")
            try:
                families = parse_prometheus_text(body)
            except Exception as exc:  # the gate: exposition must parse
                failures.append(f"/metrics body failed strict parsing: {exc}")
                families = {}
            for name in REQUIRED_FAMILIES:
                if name not in families:
                    failures.append(f"/metrics is missing family {name}")
            if families:
                print(f"/metrics: {len(families)} families parsed strictly")

            # /health: the live queue must be ok.
            with urlopen(server.url + "/health") as response:
                health = json.loads(response.read().decode("utf-8"))
            if health.get("status") != "ok":
                failures.append(f"/health reported {health!r}, expected ok")
            else:
                print(f"/health: {health}")

            # /traces/recent: the traced batch must yield a linked tree.
            with urlopen(server.url + "/traces/recent?limit=8") as response:
                dump = json.loads(response.read().decode("utf-8"))
            flush_traces = [
                trace
                for trace in dump.get("traces", [])
                if any(s["name"] == "serving.flush" for s in trace["spans"])
            ]
            if not dump.get("enabled"):
                failures.append("/traces/recent reports tracing disabled")
            elif not flush_traces:
                failures.append("/traces/recent holds no trace with a flush span")
            else:
                names = {s["name"] for s in flush_traces[0]["spans"]}
                for name in REQUIRED_SPANS:
                    if name not in names:
                        failures.append(f"traced batch is missing span {name}")
                if len(names) < 4:
                    failures.append(
                        f"traced batch has {len(names)} phases, expected >= 4"
                    )
                else:
                    print(f"/traces/recent: span tree with phases {sorted(names)}")
                with urlopen(
                    server.url + "/traces/recent?limit=1&format=text"
                ) as response:
                    flame = response.read().decode("utf-8")
                if "serving.request" not in flame:
                    failures.append("text flamegraph does not render the root span")
    finally:
        TRACER.disable()
        TRACER.reset()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("OK: /metrics parses strictly, /health is ok, traces are linked")


if __name__ == "__main__":
    main()
