"""Serving benchmark: batch-coalescing queue vs one-at-a-time classification.

Simulates a traffic-facing deployment of the Nystrom streaming classifier: a
hot-key (Zipf-like) request stream -- the shape real serving traffic has --
is pushed through

* the baseline: ``StreamingNystroemClassifier.classify`` one request at a
  time (what a naive request handler does), and
* :class:`repro.serving.AsyncServingQueue` at several ``max_batch`` settings
  (requests coalesce into one kernel-row plan per flush; the response memo
  answers repeated hot keys without touching the engine).

Every mode gets a **freshly fitted** engine (identical seeds, so identical
models) and the same request stream, and must produce **byte-identical**
decision values -- the serving layer's metamorphic contract.  The script
writes ``BENCH_serving.json`` with throughput and p50/p99 latency per mode
and exits non-zero when the acceptance contract breaks:

* the ``max_batch=32`` queue must reach at least ``--min-speedup`` (2x) the
  baseline throughput;
* every queue mode must reproduce the baseline predictions exactly.

``--scenario persistence`` benchmarks the durable tier instead: the same
stream is served twice through a queue whose engine store is a
:class:`repro.serving.PersistentStateStore` -- once **cold** (every unique
row is simulated, then snapshotted) and once **warm** (a simulated process
restart: a fresh store over the same root, ``warm_up()`` prefetching the
snapshot before the first request).  The scenario writes
``BENCH_persistence.json`` and fails unless the warm restart (a) reproduces
the cold decisions byte-identically, (b) performs zero circuit simulations,
and (c) cuts p99 latency to at most ``--max-warm-p99-ratio`` of the cold run.

``--scenario jitter`` benchmarks the anti-thundering-herd knob: the same
paced request stream is fanned out to **two replica queues** (distinct queue
seeds, as distinct replicas would have), once with ``wait_jitter_ms=0`` and
once with the jitter enabled.  Deadline-driven flushes with zero jitter fire
in lockstep -- every replica hits the shared engine tier at the same instant
-- while the jittered deadlines decorrelate them.  The scenario writes
``BENCH_jitter.json`` with the lockstep fraction per setting (replica-0
flushes that have a replica-1 flush within ``--lockstep-window-ms``) and
fails only if any replica's decisions drift from the unjittered baseline --
jitter must never change *what* is served, only *when* flushes fire.

Run with:  python benchmarks/bench_serving.py [--out BENCH_serving.json]
           python benchmarks/bench_serving.py --scenario persistence [--out BENCH_persistence.json]
           python benchmarks/bench_serving.py --scenario jitter [--out BENCH_jitter.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import __version__
from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.serving import AsyncServingQueue, PersistentStateStore
from repro.telemetry import MetricsRegistry, bind_queue, render_prometheus


def maybe_bind_queue(args, queue, replica: str) -> None:
    """Publish this queue (and its engine) when ``--emit-metrics`` is on."""
    if args.metrics_registry is not None:
        bind_queue(args.metrics_registry, queue, replica=replica)


def maybe_emit_metrics(args, payload: dict) -> None:
    """Dump the bound registry: Prometheus text at the flag's path + JSON."""
    if args.metrics_registry is None:
        return
    args.emit_metrics.write_text(render_prometheus(args.metrics_registry))
    snapshot = args.metrics_registry.to_dict()
    json_path = Path(str(args.emit_metrics) + ".json")
    json_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
    payload["telemetry"] = {
        "metrics_path": str(args.emit_metrics),
        "json_path": str(json_path),
        "families": len(snapshot),
    }
    print(f"wrote {args.emit_metrics} + {json_path} ({len(snapshot)} families)")


def build_engine(args) -> QuantumKernelInferenceEngine:
    """One freshly fitted Nystrom-backed engine (deterministic per seed)."""
    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=6 * args.train_size,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7 + args.seed,
            )
        ),
        args.train_size,
        seed=3 + args.seed,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(
        ansatz,
        approximation=NystroemConfig(
            num_landmarks=args.landmarks, strategy="greedy", seed=0
        ),
    )
    engine.fit(data.features, data.labels)
    return engine


def hot_key_stream(args) -> np.ndarray:
    """Zipf-like request stream: few hot rows dominate, like real traffic."""
    rng = np.random.default_rng(5 + args.seed)
    unique = rng.normal(size=(args.unique, args.features))
    weights = 1.0 / np.arange(1, args.unique + 1)
    weights /= weights.sum()
    return unique[rng.choice(args.unique, size=args.queries, p=weights)]


def run_baseline(args, stream: np.ndarray) -> tuple[np.ndarray, dict]:
    classifier = build_engine(args).streaming_classifier()
    start = time.perf_counter()
    decisions = np.concatenate(
        [
            classifier.classify(stream[i : i + 1]).decision_values
            for i in range(len(stream))
        ]
    )
    elapsed = time.perf_counter() - start
    record = {
        "mode": "one-at-a-time",
        "max_batch": 1,
        "memoize": False,
        "wall_s": elapsed,
        "throughput_rps": len(stream) / elapsed,
    }
    return decisions, record


def run_queue(args, stream: np.ndarray, max_batch: int, memoize: bool) -> tuple[np.ndarray, dict]:
    engine = build_engine(args)
    queue = AsyncServingQueue(
        engine.streaming_classifier(buffer_size=max_batch),
        max_batch=max_batch,
        max_wait_ms=args.max_wait_ms,
        memoize=memoize,
        seed=0,
    )
    maybe_bind_queue(args, queue, replica=f"b{max_batch}-m{int(memoize)}")
    start = time.perf_counter()
    futures = queue.submit_many(stream)
    results = [f.result(timeout=600) for f in futures]
    elapsed = time.perf_counter() - start
    queue.close()
    decisions = np.array([r.decision_value for r in results])
    snapshot = queue.metrics.to_dict()
    record = {
        "mode": "queue",
        "max_batch": max_batch,
        "memoize": memoize,
        "wall_s": elapsed,
        "throughput_rps": len(stream) / elapsed,
        "p50_latency_ms": snapshot["p50_latency_s"] * 1e3,
        "p99_latency_ms": snapshot["p99_latency_s"] * 1e3,
        "mean_batch_size": snapshot["mean_batch_size"],
        "total_batches": snapshot["total_batches"],
        "queue_depth_high_water": snapshot["queue_depth_high_water"],
        "memo_hits": queue.memo_hits,
    }
    return decisions, record


def run_durable_pass(
    args, payload_dict: dict, stream: np.ndarray, root: Path, warm: bool
) -> tuple[np.ndarray, dict, PersistentStateStore]:
    """One serving pass over a durable store rooted at ``root``.

    ``warm=False`` models first boot (empty tier, every unique row simulated);
    ``warm=True`` models a process restart (fresh store instance over the
    same root, warm-up prefetch before the first request).  The response memo
    is off so repeated keys exercise the state store, which is the tier under
    test.
    """
    store = PersistentStateStore(root)
    classifier = StreamingNystroemClassifier.from_serving_payload(
        payload_dict, store=store
    )
    store.fingerprint = classifier.feature_map.engine.fingerprint
    report = store.warm_up() if warm else None
    queue = AsyncServingQueue(
        classifier,
        max_batch=32,
        max_wait_ms=args.max_wait_ms,
        memoize=False,
        seed=0,
    )
    maybe_bind_queue(args, queue, replica="warm" if warm else "cold")
    start = time.perf_counter()
    futures = queue.submit_many(stream)
    results = [f.result(timeout=600) for f in futures]
    elapsed = time.perf_counter() - start
    queue.close()
    decisions = np.array([r.decision_value for r in results])
    snapshot = queue.metrics.to_dict()
    stats = store.stats()
    record = {
        "mode": "warm-restart" if warm else "cold-boot",
        "wall_s": elapsed,
        "throughput_rps": len(stream) / elapsed,
        "p50_latency_ms": snapshot["p50_latency_s"] * 1e3,
        "p99_latency_ms": snapshot["p99_latency_s"] * 1e3,
        "mean_batch_size": snapshot["mean_batch_size"],
        # A store miss is exactly one circuit simulation on this path.
        "simulations": stats.misses,
        "store_hit_rate": stats.hit_rate,
        "warm_loaded_keys": report.loaded if report is not None else 0,
    }
    return decisions, record, store


def run_persistence_scenario(args) -> tuple[dict, list]:
    """Cold boot -> snapshot -> simulated restart with warm-up."""
    stream = hot_key_stream(args)
    print(
        f"workload: {args.queries} requests over {args.unique} unique rows "
        f"(Zipf), m={args.landmarks} landmarks, durable tier"
    )
    payload_dict = build_engine(args).serving_payload()
    root = Path(
        args.snapshot_root
        if args.snapshot_root is not None
        else tempfile.mkdtemp(prefix="bench-persistence-")
    )

    cold_decisions, cold, cold_store = run_durable_pass(
        args, payload_dict, stream, root, warm=False
    )
    manifest = cold_store.snapshot()
    print(
        f"cold boot: {cold['wall_s']:.3f} s ({cold['throughput_rps']:.0f} req/s, "
        f"p99={cold['p99_latency_ms']:.2f} ms, {cold['simulations']} simulations); "
        f"snapshot of {len(manifest.keys)} states written"
    )

    warm_decisions, warm, _ = run_durable_pass(
        args, payload_dict, stream, root, warm=True
    )
    print(
        f"warm restart: {warm['wall_s']:.3f} s ({warm['throughput_rps']:.0f} req/s, "
        f"p99={warm['p99_latency_ms']:.2f} ms, {warm['simulations']} simulations, "
        f"{warm['warm_loaded_keys']} states prefetched)"
    )

    byte_identical = bool(np.array_equal(warm_decisions, cold_decisions))
    warm_vs_cold_p99 = warm["p99_latency_ms"] / cold["p99_latency_ms"]
    failures = []
    if not byte_identical:
        failures.append("warm restart is not byte-identical to the cold boot")
    if warm["simulations"] != 0:
        failures.append(
            f"warm restart ran {warm['simulations']} simulations, expected 0"
        )
    if warm_vs_cold_p99 > args.max_warm_p99_ratio:
        failures.append(
            f"warm p99 is {warm_vs_cold_p99:.2f}x the cold p99, "
            f"required <= {args.max_warm_p99_ratio}"
        )

    payload = {
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "queries": args.queries,
            "unique_rows": args.unique,
            "distribution": "zipf",
            "train_size": args.train_size,
            "landmarks": args.landmarks,
            "features": args.features,
            "seed": args.seed,
        },
        "cold": cold,
        "warm": warm,
        "snapshot_states": len(manifest.keys),
        "snapshot_bytes": manifest.payload_bytes,
        "warm_loaded_keys": warm["warm_loaded_keys"],
        "warm_vs_cold_p99": warm_vs_cold_p99,
        "byte_identical": byte_identical,
        "max_warm_p99_ratio_required": args.max_warm_p99_ratio,
        "ok": not failures,
    }
    return payload, failures


def run_jitter_pass(
    args, stream: np.ndarray, wait_jitter_ms: float
) -> tuple[list[np.ndarray], dict]:
    """One paced stream fanned out to two replica queues with this jitter.

    Both replicas share the pacing loop, so they see each request at the same
    wall-clock instant -- exactly the correlated arrival pattern that makes
    unjittered deadline flushes fire in lockstep.  The replicas get distinct
    queue seeds, as distinct replica processes would.
    """
    replicas = []
    for replica_seed in (0, 1):
        engine = build_engine(args)
        replicas.append(
            AsyncServingQueue(
                engine.streaming_classifier(buffer_size=32),
                max_batch=32,
                max_wait_ms=args.max_wait_ms,
                wait_jitter_ms=wait_jitter_ms,
                memoize=False,
                seed=replica_seed,
            )
        )
        maybe_bind_queue(
            args, replicas[-1], replica=f"j{wait_jitter_ms:g}-r{replica_seed}"
        )
    pace_s = args.pace_ms / 1e3
    start = time.perf_counter()
    futures = [[], []]
    for row in stream:
        for replica, sink in zip(replicas, futures):
            sink.append(replica.submit(row))
        time.sleep(pace_s)
    decisions = [
        np.array([f.result(timeout=600).decision_value for f in sink])
        for sink in futures
    ]
    elapsed = time.perf_counter() - start
    flush_times = []
    for replica in replicas:
        replica.close()
        flush_times.append(np.asarray(replica.metrics.flush_times))

    # Lockstep fraction: replica-0 flushes with a replica-1 flush within the
    # window.  Unjittered deadline flushes collide; jittered ones spread out.
    window_s = args.lockstep_window_ms / 1e3
    if flush_times[0].size and flush_times[1].size:
        gaps = np.min(
            np.abs(flush_times[0][:, None] - flush_times[1][None, :]), axis=1
        )
        lockstep_fraction = float(np.mean(gaps <= window_s))
        median_gap_ms = float(np.median(gaps) * 1e3)
    else:
        lockstep_fraction, median_gap_ms = 0.0, 0.0
    record = {
        "mode": "replica-pair",
        "wait_jitter_ms": wait_jitter_ms,
        "wall_s": elapsed,
        "flushes_replica0": int(flush_times[0].size),
        "flushes_replica1": int(flush_times[1].size),
        "lockstep_fraction": lockstep_fraction,
        "median_flush_gap_ms": median_gap_ms,
    }
    return decisions, record


def run_jitter_scenario(args) -> tuple[dict, list]:
    """Two replica queues on one paced stream, jitter off vs on."""
    stream = hot_key_stream(args)
    print(
        f"workload: {args.queries} paced requests ({args.pace_ms} ms apart) "
        f"over {args.unique} unique rows, fanned out to 2 replicas"
    )
    records = []
    failures = []
    reference = None
    for wait_jitter_ms in (0.0, args.wait_jitter_ms):
        decisions, record = run_jitter_pass(args, stream, wait_jitter_ms)
        if reference is None:
            reference = decisions[0]
        record["byte_identical"] = all(
            bool(np.array_equal(d, reference)) for d in decisions
        )
        records.append(record)
        print(
            f"jitter={wait_jitter_ms} ms: lockstep fraction "
            f"{record['lockstep_fraction']:.2f} over "
            f"{record['flushes_replica0']}+{record['flushes_replica1']} flushes "
            f"(median gap {record['median_flush_gap_ms']:.2f} ms, "
            f"identical={record['byte_identical']})"
        )
        if not record["byte_identical"]:
            failures.append(
                f"replica decisions drifted at wait_jitter_ms={wait_jitter_ms}"
            )

    payload = {
        "benchmark": "jitter",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "queries": args.queries,
            "unique_rows": args.unique,
            "distribution": "zipf",
            "pace_ms": args.pace_ms,
            "train_size": args.train_size,
            "landmarks": args.landmarks,
            "features": args.features,
            "max_wait_ms": args.max_wait_ms,
            "wait_jitter_ms": args.wait_jitter_ms,
            "lockstep_window_ms": args.lockstep_window_ms,
            "seed": args.seed,
        },
        "records": records,
        "byte_identical": all(r["byte_identical"] for r in records),
        "lockstep_fraction_unjittered": records[0]["lockstep_fraction"],
        "lockstep_fraction_jittered": records[1]["lockstep_fraction"],
        "ok": not failures,
    }
    return payload, failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        choices=("queue", "persistence", "jitter"),
        default="queue",
        help="'queue' benchmarks batch coalescing; 'persistence' benchmarks "
        "a cold boot vs a snapshot-warmed restart of the durable tier; "
        "'jitter' benchmarks flush decorrelation across replica queues",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="defaults to BENCH_serving.json / BENCH_persistence.json / "
        "BENCH_jitter.json by scenario",
    )
    parser.add_argument(
        "--snapshot-root",
        type=Path,
        default=None,
        help="durable-tier directory for the persistence scenario "
        "(default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--max-warm-p99-ratio",
        type=float,
        default=0.9,
        help="the warm restart's p99 must be at most this fraction of cold p99",
    )
    parser.add_argument("--queries", type=int, default=1024)
    parser.add_argument("--unique", type=int, default=64)
    parser.add_argument("--train-size", type=int, default=160)
    parser.add_argument("--landmarks", type=int, default=48)
    parser.add_argument("--features", type=int, default=6)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--wait-jitter-ms",
        type=float,
        default=5.0,
        help="jitter scenario: the enabled setting's deadline jitter",
    )
    parser.add_argument(
        "--pace-ms",
        type=float,
        default=7.0,
        help="jitter scenario: wall-clock gap between paced submissions; "
        "keeping it above --max-wait-ms makes flushes deadline-driven, the "
        "regime where unjittered replicas collide",
    )
    parser.add_argument(
        "--lockstep-window-ms",
        type=float,
        default=1.0,
        help="jitter scenario: replica flushes closer than this count as lockstep",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="offset applied to every workload seed; the default keeps CI "
        "runs deterministic so baseline comparisons are run-to-run stable",
    )
    parser.add_argument(
        "--emit-metrics",
        type=Path,
        default=None,
        help="bind a telemetry registry to every served queue and dump it "
        "after the run: Prometheus text at this path, JSON at PATH.json",
    )
    args = parser.parse_args()
    args.metrics_registry = (
        MetricsRegistry() if args.emit_metrics is not None else None
    )
    if args.out is None:
        args.out = Path(
            {
                "persistence": "BENCH_persistence.json",
                "jitter": "BENCH_jitter.json",
            }.get(args.scenario, "BENCH_serving.json")
        )

    if args.scenario == "jitter":
        payload, failures = run_jitter_scenario(args)
        maybe_emit_metrics(args, payload)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print(
            "OK: replica decisions byte-identical with and without jitter "
            f"(lockstep {payload['lockstep_fraction_unjittered']:.2f} -> "
            f"{payload['lockstep_fraction_jittered']:.2f})"
        )
        return

    if args.scenario == "persistence":
        payload, failures = run_persistence_scenario(args)
        maybe_emit_metrics(args, payload)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print(
            f"OK: warm restart serves byte-identically with 0 simulations at "
            f"{payload['warm_vs_cold_p99']:.2f}x the cold p99"
        )
        return

    stream = hot_key_stream(args)
    print(
        f"workload: {args.queries} requests over {args.unique} unique rows "
        f"(Zipf), m={args.landmarks} landmarks"
    )

    baseline_decisions, baseline = run_baseline(args, stream)
    print(
        f"one-at-a-time: {baseline['wall_s']:.3f} s "
        f"({baseline['throughput_rps']:.0f} req/s)"
    )

    records = [baseline]
    failures = []
    acceptance_speedup = None
    for max_batch, memoize in ((1, True), (8, True), (32, False), (32, True)):
        decisions, record = run_queue(args, stream, max_batch, memoize)
        record["speedup_vs_baseline"] = (
            record["throughput_rps"] / baseline["throughput_rps"]
        )
        record["byte_identical"] = bool(
            np.array_equal(decisions, baseline_decisions)
        )
        records.append(record)
        print(
            f"queue max_batch={max_batch} memo={memoize}: "
            f"{record['wall_s']:.3f} s ({record['throughput_rps']:.0f} req/s, "
            f"{record['speedup_vs_baseline']:.2f}x, "
            f"p50={record['p50_latency_ms']:.2f} ms, "
            f"p99={record['p99_latency_ms']:.2f} ms, "
            f"identical={record['byte_identical']})"
        )
        if not record["byte_identical"]:
            failures.append(
                f"queue max_batch={max_batch} memo={memoize} is not byte-identical"
            )
        if max_batch == 32 and memoize:
            acceptance_speedup = record["speedup_vs_baseline"]

    if acceptance_speedup is None or acceptance_speedup < args.min_speedup:
        failures.append(
            f"max_batch=32 speedup {acceptance_speedup} < required {args.min_speedup}"
        )

    payload = {
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "queries": args.queries,
            "unique_rows": args.unique,
            "distribution": "zipf",
            "train_size": args.train_size,
            "landmarks": args.landmarks,
            "features": args.features,
            "seed": args.seed,
        },
        "records": records,
        "min_speedup_required": args.min_speedup,
        "acceptance_speedup": acceptance_speedup,
        "ok": not failures,
    }
    maybe_emit_metrics(args, payload)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"OK: max_batch=32 queue serves {acceptance_speedup:.2f}x the baseline "
        "throughput with byte-identical predictions"
    )


if __name__ == "__main__":
    main()
