"""Table III: the effect of ansatz depth (circuit repetitions) on the model.

The paper fixes 50 features, d = 1, gamma = 1 and sweeps the number of ansatz
repetitions r in {2, 4, 8, 12, 16, 20}.  Deeper circuits are more expressive
but suffer from kernel concentration: overlaps between encoded states shrink,
recall saturates at 1.0 while precision collapses, and the test AUC degrades
monotonically beyond small depth (from 0.898 at r = 2 down to ~0.80 at
r >= 12).

The reduced sweep uses TABLE3_DEPTHS on TABLE2_FEATURES features.  Besides
the AUC trend we check the mechanism directly: the off-diagonal kernel mean
shrinks as depth grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClassificationExperiment, run_classification_experiment
from repro.profiling import format_table

from conftest import TABLE2_FEATURES, TABLE2_SAMPLE_SIZE, TABLE3_DEPTHS

C_GRID = (0.5, 1.0, 4.0)
GAMMA = 1.0


@pytest.fixture(scope="module")
def depth_sweep(elliptic_dataset):
    rows = []
    for depth in TABLE3_DEPTHS:
        exp = ClassificationExperiment(
            num_features=TABLE2_FEATURES,
            sample_size=TABLE2_SAMPLE_SIZE,
            interaction_distance=1,
            layers=depth,
            gamma=GAMMA,
            seed=77,
        )
        outcome = run_classification_experiment(
            exp, dataset=elliptic_dataset, c_grid=C_GRID
        )
        rows.append(
            {
                "depth": depth,
                "auc": outcome.test_auc,
                "recall": outcome.result.test_metrics["recall"],
                "precision": outcome.result.test_metrics["precision"],
                "accuracy": outcome.result.test_metrics["accuracy"],
                "kernel_off_diag_mean": outcome.result.kernel_diagnostics[
                    "off_diagonal_mean"
                ],
            }
        )
    return rows


def test_table3_all_metrics_valid(depth_sweep):
    assert len(depth_sweep) == len(TABLE3_DEPTHS)
    for row in depth_sweep:
        for key in ("auc", "recall", "precision", "accuracy"):
            assert 0.0 <= row[key] <= 1.0


def test_table3_kernel_concentration_grows_with_depth(depth_sweep):
    """Mechanism of the degradation: the mean off-diagonal kernel entry
    shrinks monotonically as the circuit gets deeper."""
    means = [row["kernel_off_diag_mean"] for row in depth_sweep]
    assert all(np.diff(means) < 0)
    assert means[-1] < 0.5 * means[0]


def test_table3_shallow_beats_deep(depth_sweep):
    """C2.3: the shallowest configurations achieve at least the AUC of the
    deepest one -- extra depth never helps."""
    shallow_best = max(row["auc"] for row in depth_sweep[:2])
    deepest = depth_sweep[-1]["auc"]
    assert shallow_best >= deepest - 0.02


def test_table3_degradation_trend(depth_sweep):
    """AUC does not improve with depth: the best depth is among the shallow
    half of the sweep."""
    aucs = [row["auc"] for row in depth_sweep]
    best_index = int(np.argmax(aucs))
    assert best_index <= len(aucs) // 2


def test_table3_print(depth_sweep):
    print()
    print(
        format_table(
            depth_sweep,
            columns=[
                "depth",
                "auc",
                "recall",
                "precision",
                "accuracy",
                "kernel_off_diag_mean",
            ],
            title="Table III (reduced scale)",
            precision=3,
        )
    )


def test_benchmark_deepest_configuration(benchmark, elliptic_dataset):
    """pytest-benchmark target: the deepest (most expensive) Table III cell."""
    exp = ClassificationExperiment(
        num_features=TABLE2_FEATURES,
        sample_size=16,
        interaction_distance=1,
        layers=TABLE3_DEPTHS[-1],
        gamma=GAMMA,
        seed=77,
    )
    benchmark(
        lambda: run_classification_experiment(exp, dataset=elliptic_dataset, c_grid=(1.0,))
    )
