"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` keeps working in offline environments
whose pip/setuptools cannot build PEP 517 editable wheels (no ``wheel``
package available).  In that situation run::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
