"""Adaptive serving demo: the control plane re-tuning a live fleet.

One ``repro.serve()`` call stands up the whole stack -- replica queue,
telemetry endpoint, and an :class:`repro.control.AdaptiveController` running
the ``depth-proportional`` policy.  The demo then drives two opposite
traffic shapes through the same handle:

1. a **paced trickle** (one request every few ms): the loop shrinks the
   batch and the flush deadline, so each request answers almost
   immediately instead of waiting for a batch that never fills;
2. a **cold flood** (hundreds of unique rows at once): the loop watches the
   standing queue and grows ``max_batch`` / ``encode_batch_size`` toward
   the ceiling, so the backlog drains in a few large stacked sweeps.

After each phase it prints the knob trajectory the controller actually
took (every applied adjustment is a :class:`repro.control.ControlDecision`
in ``controller.decisions``), then scrapes its own ``/metrics`` endpoint
to show the ``repro_control_*`` families a dashboard would plot.

Predictions are byte-identical to the one-at-a-time classifier throughout
-- the control plane re-times work, it never changes answers.

Run with:  python examples/adaptive_serving.py [--trickle 64] [--flood 160]
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import repro
from repro.approx import NystroemConfig
from repro.config import AnsatzConfig, ServingConfig, TuningConfig
from repro.core import QuantumKernelInferenceEngine


def fit_engine(args) -> QuantumKernelInferenceEngine:
    from repro.data import (
        DatasetSpec,
        balanced_subsample,
        generate_elliptic_like,
    )

    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=6 * args.train_size,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7,
            )
        ),
        args.train_size,
        seed=3,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(
        ansatz,
        approximation=NystroemConfig(num_landmarks=args.landmarks, seed=0),
    )
    engine.fit(data.features, data.labels)
    return engine


def print_adjustments(controller, since_step: int) -> None:
    for decision in controller.decisions:
        if decision.step < since_step or not decision.applied:
            continue
        moves = ", ".join(
            f"{k}={v:g}" for k, v in sorted(decision.applied.items())
        )
        print(
            f"  step {decision.step:>3}  depth={decision.signals.queue_depth:<4}"
            f" -> {moves}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--features", type=int, default=4)
    parser.add_argument("--train-size", type=int, default=48)
    parser.add_argument("--landmarks", type=int, default=12)
    parser.add_argument("--trickle", type=int, default=64)
    parser.add_argument("--flood", type=int, default=160)
    parser.add_argument("--pace-ms", type=float, default=4.0)
    args = parser.parse_args()

    print(f"fitting Nystrom model (n={args.train_size}, m={args.landmarks}) ...")
    engine = fit_engine(args)

    config = ServingConfig(
        tuning=TuningConfig(
            max_batch=16,           # starting knobs: a middling guess
            max_wait_ms=10.0,
            min_batch=1,            # ... and the envelope the loop may use
            batch_ceiling=64,
            min_wait_ms=0.5,
            wait_ceiling_ms=25.0,
        ),
        control_policy="depth-proportional",
    )
    handle = repro.serve(engine, config, telemetry=True, memoize=False)
    controller = handle.controller
    controller.cooldown_steps = 0  # demo: react every step
    controller.deadband = 0.0

    rng = np.random.default_rng(5)
    reference_clf = engine.streaming_classifier()

    try:
        # Phase 1: a paced trickle. Pressure ~0 -> shrink batch, floor wait.
        print(f"\nphase 1: trickle of {args.trickle} paced requests")
        rows = rng.normal(size=(args.trickle, args.features))
        results = []
        for i, row in enumerate(rows):
            future = handle.submit(row)
            if (i + 1) % 8 == 0:
                controller.step()
            results.append(future)
            time.sleep(args.pace_ms / 1e3)
        trickle = [f.result(timeout=120) for f in results]
        print_adjustments(controller, since_step=0)
        knobs = controller.current_knobs()
        p99 = float(np.percentile([r.latency_s for r in trickle], 99)) * 1e3
        print(
            f"  -> knobs now batch={knobs['max_batch']} "
            f"wait={knobs['max_wait_ms']:g}ms, trickle p99 {p99:.2f} ms"
        )

        # Phase 2: a cold flood. Standing queue -> grow toward the ceiling.
        print(f"\nphase 2: flood of {args.flood} cold rows at once")
        flood_start_step = controller.step_count
        flood_rows = rng.normal(size=(args.flood, args.features))
        futures = handle.submit_many(flood_rows)
        flood = []
        for i, future in enumerate(futures):
            if i % 16 == 0:
                controller.step()
            flood.append(future.result(timeout=120))
        print_adjustments(controller, since_step=flood_start_step)
        knobs = controller.current_knobs()
        print(
            f"  -> knobs now batch={knobs['max_batch']} "
            f"wait={knobs['max_wait_ms']:g}ms, mean flood batch "
            f"{np.mean([r.batch_size for r in flood]):.1f}"
        )

        # The metamorphic contract: none of that changed a single answer.
        served = np.array(
            [r.decision_value for r in trickle + flood]
        )
        expected = reference_clf.classify(
            np.vstack([rows, flood_rows])
        ).decision_values
        identical = bool(np.array_equal(served, expected))
        print(f"\nbyte-identical to the isolated classifier: {identical}")

        # What a dashboard sees.
        with urllib.request.urlopen(handle.url + "/metrics", timeout=30) as r:
            families = [
                line
                for line in r.read().decode().splitlines()
                if line.startswith("repro_control_")
            ]
        print("\ncontrol families at /metrics:")
        for line in families:
            print(f"  {line}")
        summary = controller.summary()
        print(
            f"\n{summary['step_count']} control steps, "
            f"{summary['adjustment_count']} knob adjustments, "
            f"recommended replicas {summary['recommended_replicas']}"
        )
        if not identical:
            raise SystemExit("control-plane equivalence violated!")
    finally:
        handle.close()


if __name__ == "__main__":
    main()
