"""Observability demo: trace a served batch and scrape it over HTTP.

Walks the full telemetry story of the serving layer:

1. fit a Nystrom-backed :class:`repro.core.QuantumKernelInferenceEngine`
   and route a hot-key stream through a :class:`repro.serving.ReplicaRouter`
   fleet;
2. attach the export surface with :func:`repro.telemetry.attach_endpoint`
   -- one daemon-thread HTTP server publishing ``/metrics`` (Prometheus
   0.0.4 text), ``/health`` (replica liveness) and ``/traces/recent``;
3. enable the global :data:`repro.telemetry.TRACER` so every request mints
   a trace whose spans follow it through wait -> flush -> score ->
   engine encode/overlap/store-write;
4. scrape all three routes like a monitoring agent would, print a selection
   of the scraped families, and render the slowest recent trace as a text
   flamegraph.

Telemetry is pull-model and disabled-by-default: with the tracer off and no
endpoint attached, the serving hot path does no telemetry work at all, and
predictions are byte-identical either way.

Run with:  python examples/observability_endpoint.py [--replicas 2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from urllib.request import urlopen

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.serving import ReplicaRouter
from repro.telemetry import TRACER, attach_endpoint, render_trace_text

SHOWN_FAMILIES = (
    "repro_serving_requests_total",
    "repro_serving_memo_hits_total",
    "repro_store_hits_total",
    "repro_store_misses_total",
    "repro_encode_launches_total",
    "repro_router_routed_total",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--features", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=96)
    parser.add_argument("--landmarks", type=int, default=24)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--unique", type=int, default=48)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=16)
    args = parser.parse_args()

    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=6 * args.train_size,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7,
            )
        ),
        args.train_size,
        seed=3,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(
        ansatz, approximation=NystroemConfig(num_landmarks=args.landmarks, seed=0)
    )
    engine.fit(data.features, data.labels)

    rng = np.random.default_rng(5)
    unique = rng.normal(size=(args.unique, args.features))
    weights = 1.0 / np.arange(1, args.unique + 1)
    stream = unique[
        rng.choice(args.unique, size=args.requests, p=weights / weights.sum())
    ]

    router = ReplicaRouter(
        engine.serving_payload(),
        num_replicas=args.replicas,
        policy="key-affinity",
        max_batch=args.max_batch,
        max_wait_ms=5.0,
    )
    TRACER.enable()
    try:
        with attach_endpoint(router) as server:
            print(f"telemetry endpoint: {server.url}")
            futures = router.submit_many(stream)
            [f.result(timeout=600) for f in futures]

            # Scrape like Prometheus would.
            body = urlopen(server.url + "/metrics").read().decode("utf-8")
            print(f"\n--- /metrics ({len(body.splitlines())} lines), selection ---")
            for line in body.splitlines():
                if line.startswith(SHOWN_FAMILIES):
                    print(f"  {line}")

            health = json.loads(
                urlopen(server.url + "/health").read().decode("utf-8")
            )
            print(f"\n--- /health ---\n  {health}")

            traces = json.loads(
                urlopen(server.url + "/traces/recent?limit=50")
                .read()
                .decode("utf-8")
            )["traces"]
            flushed = [
                t
                for t in traces
                if any(s["name"] == "serving.flush" for s in t["spans"])
            ]
            slowest = max(
                flushed,
                key=lambda t: max(s["duration_ms"] or 0.0 for s in t["spans"]),
            )
            print(f"\n--- slowest recent flushed trace ({slowest['trace_id']}) ---")
            print(render_trace_text(TRACER.trace_spans(slowest["trace_id"])))
    finally:
        TRACER.disable()
        TRACER.reset()
        router.close()


if __name__ == "__main__":
    main()
