"""Accuracy-versus-rank crossover: the Nystrom path against the exact kernel.

The exact quantum-kernel workflow evaluates ``n (n - 1) / 2`` MPS overlaps;
the Nystrom subsystem needs only ``n m + m (m - 1) / 2`` for ``m`` landmark
points.  This example sweeps the landmark count on one synthetic fraud
sample (sharing a single engine state store across ranks, so every data
point is encoded exactly once for the whole sweep), prints the
AUC-versus-pairs crossover table next to the exact baseline, and then serves
a stream of "new traffic" through the best low-rank model -- ``m`` overlaps
per classified point, with calibrated probabilities-free conformal sets on
top.

Run with:  python examples/nystroem_rank_sweep.py [--train-size 96]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.core import QuantumKernelPipeline
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.svm import SplitConformalClassifier, train_test_split


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-size", type=int, default=96)
    parser.add_argument("--test-size", type=int, default=32)
    parser.add_argument("--features", type=int, default=6)
    parser.add_argument("--ranks", type=int, nargs="+", default=[8, 16, 32, 64])
    args = parser.parse_args()

    total = args.train_size + args.test_size
    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=4 * total,
                num_features=args.features,
                positive_fraction=0.4,
                seed=11,
            )
        ),
        total,
        seed=2,
    )
    X_train, X_test, y_train, y_test = train_test_split(
        data.features, data.labels, test_fraction=args.test_size / total, seed=0
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    ranks = [m for m in args.ranks if m <= X_train.shape[0]]
    skipped = sorted(set(args.ranks) - set(ranks))
    if skipped:
        print(f"skipping ranks {skipped}: larger than the {X_train.shape[0]}-sample training set")
    if not ranks:
        raise SystemExit(
            f"no usable ranks: all of {sorted(set(args.ranks))} exceed the "
            f"{X_train.shape[0]}-sample training set"
        )

    # Exact baseline.
    exact = QuantumKernelPipeline(ansatz, c_grid=(0.5, 1.0, 2.0)).run(
        X_train, y_train, X_test, y_test
    )
    exact_pairs = int(exact.resource_metrics["num_inner_products"])
    print(f"exact: AUC={exact.test_auc:.4f}  engine pairs={exact_pairs}")

    # Rank sweep, one shared engine / state store.
    pipeline = QuantumKernelPipeline(
        ansatz,
        c_grid=(0.5, 1.0, 2.0),
        approximation=NystroemConfig(num_landmarks=ranks[0], strategy="greedy"),
    )
    results = pipeline.run_rank_sweep(X_train, y_train, X_test, y_test, ranks)

    print("\n  m    rank   pairs(fit)  budget   AUC     gap")
    for m in ranks:
        r = results[m]
        report = r.approximation["report"]
        print(
            f"{m:5d}  {report['spectral_rank']:5d}  "
            f"{report['fit_pair_evaluations']:9d}  "
            f"{r.approximation['pair_budget']:7d}  "
            f"{r.test_auc:.4f}  {abs(r.test_auc - exact.test_auc):+.4f}"
        )

    # Serve "new traffic" through the best rank: m overlaps per point.
    best_m = max(ranks, key=lambda m: results[m].test_auc)
    best = results[best_m]
    from repro.approx import LinearSVC, NystroemFeatureMap
    from repro.engine import EngineConfig, KernelEngine

    engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    fmap_cfg = NystroemConfig(num_landmarks=best_m, strategy="greedy")
    fmap = NystroemFeatureMap(engine, fmap_cfg)
    phi = fmap.fit_transform(pipeline.scaler.fit_transform(X_train))
    model = LinearSVC(C=best.best_C).fit(phi, y_train)

    service = StreamingNystroemClassifier(
        fmap, model, scaler=pipeline.scaler, buffer_size=8
    )
    batches = []
    for row in X_test:
        out = service.submit(row)
        if out is not None:
            batches.append(out)
    tail = service.flush()
    if tail is not None:
        batches.append(tail)
    decisions = np.concatenate([b.decision_values for b in batches])
    pairs_per_point = sum(b.num_inner_products for b in batches) / len(decisions)
    print(
        f"\nstreaming service at m={best_m}: {len(decisions)} points, "
        f"{pairs_per_point:.0f} overlaps/point (vs {X_train.shape[0]} exact)"
    )

    # Conformal sets on the streamed decisions (calibrate on half, eval on half).
    half = len(decisions) // 2
    conformal = SplitConformalClassifier(alpha=0.2).calibrate(
        decisions[:half], y_test[:half]
    )
    sets = conformal.predict_set(decisions[half:])
    print(
        f"conformal @ alpha=0.2: coverage="
        f"{conformal.empirical_coverage(y_test[half:], sets):.3f}, "
        f"avg set size={conformal.average_set_size(sets):.2f}"
    )


if __name__ == "__main__":
    main()
