"""Expressivity study: interaction distance, bandwidth and depth (Tables II-III).

Reproduces, at laptop scale, the paper's model-quality experiments:

1. the quantum kernel versus the Gaussian baseline over a (d, gamma) grid
   (Table II),
2. the effect of circuit depth on classification quality and on kernel
   concentration (Table III),
3. the projected quantum kernel as an extension that resists concentration.

Run with:  python examples/expressivity_study.py [--sample-size 32] [--features 8]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


from repro.config import AnsatzConfig
from repro.core import ClassificationExperiment, run_classification_experiment
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like, select_features
from repro.kernels import ProjectedQuantumKernel, QuantumKernel, kernel_concentration
from repro.profiling import format_table
from repro.svm import FeatureScaler

C_GRID = (0.5, 1.0, 4.0)


def table2_style_sweep(dataset, features: int, sample_size: int) -> list[dict]:
    """Gaussian baseline plus a small (d, gamma) quantum sweep."""
    rows = []
    baseline = run_classification_experiment(
        ClassificationExperiment(
            num_features=features, sample_size=sample_size, kernel="gaussian", seed=11
        ),
        dataset=dataset,
        c_grid=C_GRID,
    )
    rows.append({"kernel": "Gaussian", "d": "-", "gamma": "-", **_metrics(baseline)})

    for gamma in (0.1, 0.5, 1.0):
        for d in (1, 2, 3):
            outcome = run_classification_experiment(
                ClassificationExperiment(
                    num_features=features,
                    sample_size=sample_size,
                    interaction_distance=d,
                    layers=2,
                    gamma=gamma,
                    seed=11,
                ),
                dataset=dataset,
                c_grid=C_GRID,
            )
            rows.append({"kernel": "quantum", "d": d, "gamma": gamma, **_metrics(outcome)})
    return rows


def _metrics(outcome) -> dict:
    m = outcome.result.test_metrics
    return {
        "AUC": m["auc"],
        "recall": m["recall"],
        "precision": m["precision"],
        "accuracy": m["accuracy"],
    }


def depth_sweep(dataset, features: int, sample_size: int) -> list[dict]:
    """Table III style depth sweep, including the concentration diagnostic."""
    rows = []
    for depth in (1, 2, 4, 8):
        outcome = run_classification_experiment(
            ClassificationExperiment(
                num_features=features,
                sample_size=sample_size,
                interaction_distance=1,
                layers=depth,
                gamma=1.0,
                seed=13,
            ),
            dataset=dataset,
            c_grid=C_GRID,
        )
        rows.append(
            {
                "depth": depth,
                "AUC": outcome.test_auc,
                "recall": outcome.result.test_metrics["recall"],
                "precision": outcome.result.test_metrics["precision"],
                "kernel mean overlap": outcome.result.kernel_diagnostics["off_diagonal_mean"],
            }
        )
    return rows


def projected_kernel_comparison(dataset, features: int, sample_size: int) -> list[dict]:
    """Fidelity versus projected kernel concentration at large depth."""
    sample = balanced_subsample(dataset, sample_size, seed=17)
    X = FeatureScaler().fit_transform(select_features(sample.features, features))
    rows = []
    for depth in (2, 8):
        ansatz = AnsatzConfig(num_features=features, layers=depth, gamma=1.0)
        fidelity_K = QuantumKernel(ansatz).gram_matrix(X).matrix
        projected = ProjectedQuantumKernel(ansatz)
        projected.fit(X)
        projected_K = projected.gram_matrix()
        rows.append(
            {
                "depth": depth,
                "fidelity kernel mean overlap": kernel_concentration(fidelity_K)[
                    "off_diagonal_mean"
                ],
                "projected kernel mean overlap": kernel_concentration(projected_K)[
                    "off_diagonal_mean"
                ],
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--features", type=int, default=8)
    parser.add_argument("--sample-size", type=int, default=32)
    args = parser.parse_args()

    dataset = generate_elliptic_like(
        DatasetSpec(num_samples=1000, num_features=args.features, seed=5)
    )

    print(format_table(
        table2_style_sweep(dataset, args.features, args.sample_size),
        title="Table II style: quantum vs Gaussian over (d, gamma)",
    ))
    print()
    print(format_table(
        depth_sweep(dataset, args.features, args.sample_size),
        title="Table III style: ansatz depth effect",
    ))
    print()
    print(format_table(
        projected_kernel_comparison(dataset, args.features, min(args.sample_size, 16)),
        title="Extension: projected kernel resists depth-induced concentration",
        precision=4,
    ))


if __name__ == "__main__":
    main()
