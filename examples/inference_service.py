"""Inference workflow: classify new transactions against stored MPS states.

The paper's inference procedure (section III-A, end): once the training Gram
matrix is built and the SVM is trained, classifying a new data point needs
one MPS simulation for the new point plus one inner product against every
stored training state -- work that is linear in the training-set size and
embarrassingly parallel.  :class:`repro.core.QuantumKernelInferenceEngine`
packages exactly that workflow; this example trains it on a synthetic fraud
sample and then scores a stream of new transactions, reporting the per-point
simulation and inner-product costs alongside the classification quality.

Run with:  python examples/inference_service.py [--train-size 40] [--batch 20]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like, select_features
from repro.parallel import ScalingProjection
from repro.profiling import format_table
from repro.svm import classification_report, train_test_split


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--features", type=int, default=8)
    parser.add_argument("--train-size", type=int, default=40)
    parser.add_argument("--batch", type=int, default=20, help="new points to classify")
    args = parser.parse_args()

    dataset = generate_elliptic_like(
        DatasetSpec(num_samples=1200, num_features=args.features, seed=17)
    )
    sample = balanced_subsample(dataset, args.train_size + args.batch, seed=3)
    X = select_features(sample.features, args.features)
    y = sample.labels
    X_train, X_new, y_train, y_new = train_test_split(
        X, y, test_fraction=args.batch / (args.train_size + args.batch), seed=1
    )

    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(ansatz, C=2.0)
    engine.fit(X_train, y_train)
    print(
        f"trained on {engine.num_training_states} transactions; "
        f"classifying a batch of {X_new.shape[0]} new transactions"
    )

    result = engine.kernel_rows(X_new)
    report = classification_report(y_new, result.predictions, result.decision_values)
    rows = [{"metric": k, "value": v} for k, v in report.items()]
    print()
    print(format_table(rows, title="Batch classification quality", precision=3))

    per_point_sim = result.simulation_time_s / result.num_points
    per_product = result.inner_product_time_s / max(result.num_inner_products, 1)
    print()
    print(
        f"per new point: {per_point_sim * 1e3:.2f} ms simulation, "
        f"{result.num_inner_products // result.num_points} inner products at "
        f"{per_product * 1e6:.1f} us each"
    )

    # The paper's full-scale inference estimate: one new point against a
    # 64,000-state training set spread over 320 processes.
    projection = ScalingProjection(
        simulation_time_per_circuit_s=per_point_sim,
        inner_product_time_s=per_product,
        bytes_per_state=15 * 1024,
    )
    t = projection.inference_wall_s(num_train=64_000, num_processes=320)
    print(
        "projected latency for one point against 64,000 stored states on "
        f"320 processes: {t:.3f} s"
    )


if __name__ == "__main__":
    main()
