"""Train-then-infer state reuse through the engine's content-addressed cache.

The paper's cost decomposition makes MPS simulation the expensive linear
phase (about 2 s per data point at full scale) and the inner products the
cheap quadratic one.  The :class:`repro.engine.StateStore` exploits that
asymmetry: every encoded point is cached by the content of its feature row
(plus ansatz and truncation fingerprints), so a point is simulated **once**
per lifetime of the store, no matter how many Gram matrices, cross matrices
or inference calls touch it.

This demo:

1. trains a :class:`repro.core.QuantumKernelInferenceEngine` (cache enabled
   by default) -- the training set is encoded once and the states land in
   the store;
2. classifies a stream of points that mixes previously-seen training rows
   with genuinely new ones -- only the new rows trigger simulations;
3. replays the same stream -- zero simulations the second time;
4. compares against a cache-disabled engine to show the saved work, and
   verifies both produce identical kernel rows.

Run with:  python examples/engine_cache_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like, select_features
from repro.profiling import format_table
from repro.svm import train_test_split


def main() -> None:
    num_features = 6
    dataset = generate_elliptic_like(
        DatasetSpec(num_samples=800, num_features=num_features, seed=5)
    )
    sample = balanced_subsample(dataset, 36, seed=7)
    X = select_features(sample.features, num_features)
    y = sample.labels
    X_train, X_new, y_train, _y_new = train_test_split(X, y, test_fraction=0.25, seed=9)

    ansatz = AnsatzConfig(
        num_features=num_features, interaction_distance=1, layers=2, gamma=0.5
    )

    # ------------------------------------------------------------------
    # 1. Train once: every training point is encoded exactly once.
    # ------------------------------------------------------------------
    engine = QuantumKernelInferenceEngine(ansatz, C=2.0)  # cache on by default
    engine.fit(X_train, y_train)
    stats = engine.cache_stats()
    print(
        f"after fit: {engine.num_training_states} training states encoded, "
        f"store holds {stats.num_entries} entries "
        f"({stats.bytes_in_use / 1024.0:.1f} KiB)"
    )

    # ------------------------------------------------------------------
    # 2. Classify a stream mixing known and new points.
    # ------------------------------------------------------------------
    stream = np.vstack([X_train[:4], X_new, X_train[4:8]])
    result = engine.kernel_rows(stream)
    print(
        f"\nstream of {result.num_points} points "
        f"({8} previously seen, {X_new.shape[0]} new):"
    )
    print(
        f"  simulations: {result.num_simulations}  "
        f"cache hits: {result.cache_hits}  misses: {result.cache_misses}"
    )

    # ------------------------------------------------------------------
    # 3. Replay the stream: everything is cached now.
    # ------------------------------------------------------------------
    replay = engine.kernel_rows(stream)
    print(
        f"replayed stream: simulations: {replay.num_simulations}  "
        f"cache hits: {replay.cache_hits}"
    )
    assert replay.num_simulations == 0

    # ------------------------------------------------------------------
    # 4. Cache-disabled baseline: same numbers, more work.
    # ------------------------------------------------------------------
    baseline = QuantumKernelInferenceEngine(ansatz, C=2.0, use_cache=False)
    baseline.fit(X_train, y_train)
    baseline_result = baseline.kernel_rows(stream)
    assert np.allclose(result.kernel_rows, baseline_result.kernel_rows, atol=1e-12)
    assert np.array_equal(result.predictions, baseline_result.predictions)

    rows = [
        {
            "engine": "cached",
            "simulations": result.num_simulations + replay.num_simulations,
            "inner products": result.num_inner_products + replay.num_inner_products,
            "cache hits": result.cache_hits + replay.cache_hits,
        },
        {
            "engine": "no cache",
            "simulations": 2 * baseline_result.num_simulations,
            "inner products": 2 * baseline_result.num_inner_products,
            "cache hits": 0,
        },
    ]
    print()
    print(format_table(rows, title="Stream scored twice: work performed"))

    final = engine.cache_stats()
    print(
        f"\nfinal store stats: hit rate {final.hit_rate:.1%} "
        f"({final.hits} hits / {final.lookups} lookups), "
        f"{final.evictions} evictions"
    )
    print("kernel rows identical to the no-cache baseline: True")


if __name__ == "__main__":
    main()
