"""Async serving demo: coalesced, memoised classification of a request stream.

Builds the full serving stack introduced by the serving layer:

1. fit a Nystrom-backed :class:`repro.core.QuantumKernelInferenceEngine`
   (training cost ``O(n m)`` engine pairs);
2. stand the service up with one call -- ``repro.serve(engine, config)``
   returns a :class:`repro.serving.ServingHandle` whose replica queue
   coalesces requests up to ``max_batch`` / ``max_wait_ms`` and flushes
   each batch as one kernel-row plan against the cached landmark states;
3. push a hot-key request stream through both the handle and the
   one-at-a-time baseline, verify the predictions are byte-identical, and
   print the latency/throughput accounting the queue's
   :class:`repro.profiling.ServingMetrics` collected.

Pass ``--workers 2`` to fan each flush out over worker processes that attach
the serialised landmark store once at start-up (the distributed serving
path).

Run with:  python examples/async_serving.py [--requests 512] [--max-batch 32]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import repro
from repro.approx import NystroemConfig
from repro.config import AnsatzConfig, ServingConfig, TuningConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.profiling import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--features", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=120)
    parser.add_argument("--landmarks", type=int, default=32)
    parser.add_argument("--requests", type=int, default=512)
    parser.add_argument("--unique", type=int, default=48)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=0)
    args = parser.parse_args()

    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=6 * args.train_size,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7,
            )
        ),
        args.train_size,
        seed=3,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(
        ansatz,
        approximation=NystroemConfig(num_landmarks=args.landmarks, seed=0),
    )
    print(f"fitting Nystrom model (n={args.train_size}, m={args.landmarks}) ...")
    engine.fit(data.features, data.labels)

    rng = np.random.default_rng(5)
    unique = rng.normal(size=(args.unique, args.features))
    weights = 1.0 / np.arange(1, args.unique + 1)
    weights /= weights.sum()
    stream = unique[rng.choice(args.unique, size=args.requests, p=weights)]

    baseline_clf = engine.streaming_classifier()
    start = time.perf_counter()
    baseline = np.concatenate(
        [
            baseline_clf.classify(stream[i : i + 1]).decision_values
            for i in range(len(stream))
        ]
    )
    baseline_s = time.perf_counter() - start

    config = ServingConfig(
        tuning=TuningConfig(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
        )
    )
    handle = repro.serve(engine, config, workers=args.workers)
    queue = handle.router.queues[0]
    start = time.perf_counter()
    futures = handle.submit_many(stream)
    results = [f.result(timeout=600) for f in futures]
    queue_s = time.perf_counter() - start
    snapshot = queue.metrics.to_dict()
    memo_hits = queue.memo_hits
    handle.close()

    decisions = np.array([r.decision_value for r in results])
    identical = np.array_equal(decisions, baseline)

    rows = [
        {
            "mode": "one-at-a-time",
            "wall_s": baseline_s,
            "req_per_s": len(stream) / baseline_s,
            "p50_ms": "-",
            "p99_ms": "-",
        },
        {
            "mode": f"queue (batch={args.max_batch}, workers={args.workers})",
            "wall_s": queue_s,
            "req_per_s": len(stream) / queue_s,
            "p50_ms": snapshot["p50_latency_s"] * 1e3,
            "p99_ms": snapshot["p99_latency_s"] * 1e3,
        },
    ]
    print()
    print(format_table(rows, title="serving modes"))
    print()
    print(
        f"coalesced into {snapshot['total_batches']} batches "
        f"(mean size {snapshot['mean_batch_size']:.1f}), "
        f"memo hits {memo_hits}, "
        f"queue depth high-water {snapshot['queue_depth_high_water']}"
    )
    print(f"speedup: {baseline_s / queue_s:.2f}x, byte-identical: {identical}")
    if not identical:
        raise SystemExit("serving equivalence violated!")


if __name__ == "__main__":
    main()
