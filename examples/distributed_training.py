"""Distributed Gram-matrix computation and scaling projection (Figure 8 study).

Demonstrates the two distribution strategies of the paper:

* **no-messaging** -- tiles of the Gram matrix computed independently; every
  process re-simulates the circuits its tiles need;
* **round-robin** -- every circuit simulated exactly once, MPS blocks passed
  around a ring of processes.

Both run over the in-process simulated communicator, report the per-phase
wall-clock breakdown (simulation / inner products / communication), and the
measured per-primitive costs are finally extrapolated to the paper's
64,000-point, 320-GPU scenario with the scaling projection model.

Run with:  python examples/distributed_training.py [--points 32] [--processes 4]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.config import AnsatzConfig
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like, select_features
from repro.parallel import ScalingProjection, compute_gram_distributed
from repro.profiling import format_table
from repro.svm import FeatureScaler, PrecomputedKernelSVC, roc_auc_score, train_test_split


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=32, help="balanced sample size")
    parser.add_argument("--processes", type=int, default=4, help="simulated process count")
    parser.add_argument("--features", type=int, default=10, help="feature / qubit count")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # Data and feature map (the Fig. 8 ansatz: d = 1, r = 2, gamma = 0.1).
    # ------------------------------------------------------------------
    dataset = generate_elliptic_like(
        DatasetSpec(num_samples=max(args.points * 12, 600), num_features=args.features, seed=9)
    )
    sample = balanced_subsample(dataset, args.points, seed=1)
    X = select_features(sample.features, args.features)
    y = sample.labels
    X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
    scaler = FeatureScaler()
    Xs_train = scaler.fit_transform(X_train)
    Xs_test = scaler.transform(X_test)

    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.1
    )

    # ------------------------------------------------------------------
    # Both strategies, with modelled device times for the breakdown.
    # ------------------------------------------------------------------
    rows = []
    results = {}
    for strategy in ("no-messaging", "round-robin"):
        result = compute_gram_distributed(
            Xs_train,
            ansatz,
            num_processes=args.processes,
            strategy=strategy,
            time_source="modelled",
        )
        results[strategy] = result
        rows.append(
            {
                "strategy": strategy,
                "simulations": result.total_simulations,
                "inner products": result.total_inner_products,
                "sim wall (s)": result.simulation_wall_s,
                "IP wall (s)": result.inner_product_wall_s,
                "comm wall (s)": result.communication_wall_s,
                "total wall (s)": result.total_wall_s,
            }
        )
    print(format_table(rows, title="Distributed Gram matrix breakdown", precision=4))

    both_equal = np.allclose(
        results["no-messaging"].matrix, results["round-robin"].matrix, atol=1e-12
    )
    print(f"\nstrategies agree on the Gram matrix: {both_equal}")

    # ------------------------------------------------------------------
    # Feed the distributed kernel into the SVM.
    # ------------------------------------------------------------------
    from repro.kernels import QuantumKernel

    qk = QuantumKernel(ansatz)
    train_states = qk.encode(Xs_train)
    K_test = qk.cross_matrix(Xs_test, train_states).matrix
    model = PrecomputedKernelSVC(C=1.0).fit(results["round-robin"].matrix, y_train)
    auc = roc_auc_score(y_test, model.decision_function(K_test))
    print(f"test AUC with the distributed training kernel: {auc:.3f}")

    # ------------------------------------------------------------------
    # Extrapolate to the paper's large-machine scenario.
    # ------------------------------------------------------------------
    rr = results["round-robin"]
    per_circuit = rr.simulation_wall_s / max(args.points / args.processes, 1)
    per_product = rr.inner_product_wall_s / max(
        (args.points * (args.points - 1) / 2) / args.processes, 1
    )
    projection = ScalingProjection(
        simulation_time_per_circuit_s=per_circuit,
        inner_product_time_s=per_product,
        bytes_per_state=15 * 1024,
    )
    proj_rows = [
        projection.breakdown(64_000, 320),
        projection.breakdown(64_000, 640),
    ]
    for row in proj_rows:
        row["total (h)"] = row.pop("total_wall_s") / 3600.0
    print()
    print(
        format_table(
            proj_rows,
            columns=["num_points", "num_processes", "simulation_wall_s",
                     "inner_product_wall_s", "communication_wall_s", "total (h)"],
            title="Projection to the paper's 64,000-point scenario",
            precision=2,
        )
    )


if __name__ == "__main__":
    main()
