"""Durable serving demo: snapshot, restart warm, route over a replica fleet.

Walks the full durability story of the serving layer:

1. fit a Nystrom-backed :class:`repro.core.QuantumKernelInferenceEngine` and
   serialise it once with :meth:`serving_payload`;
2. **cold boot** a :class:`repro.serving.ReplicaRouter` fleet whose engines
   sit on a shared :class:`repro.serving.PersistentStateStore` root -- every
   unique request is simulated once, then :meth:`ReplicaRouter.snapshot`
   persists the union of the fleet's caches (atomic temp-write-then-rename,
   checksummed manifest);
3. **restart warm**: a second fleet over the same root prefetches the
   hottest snapshotted states at construction (access-log ordered) and
   serves the same stream simulation-free;
4. verify the two runs are byte-identical and print the aggregated
   :class:`repro.profiling.RouterMetrics` dashboards side by side.

Pass ``--policy key-affinity`` to pin repeated keys onto one replica, or
``--high-water 8`` to watch load shedding engage on a flooded queue.

Run with:  python examples/durable_serving.py [--replicas 2] [--policy least-depth]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.profiling import format_table
from repro.serving import ReplicaRouter


def serve(router: ReplicaRouter, stream: np.ndarray):
    start = time.perf_counter()
    futures = router.submit_many(stream)
    decisions = np.array([f.result(timeout=600).decision_value for f in futures])
    return decisions, time.perf_counter() - start


def dashboard_row(label: str, wall_s: float, view: dict, num_requests: int) -> dict:
    p99s = [r["p99_latency_s"] for r in view["replicas"] if r["p99_latency_s"]]
    return {
        "fleet": label,
        "wall_s": wall_s,
        "req_per_s": num_requests / wall_s,
        "worst_p99_ms": max(p99s) * 1e3 if p99s else "-",
        "routed": "/".join(str(n) for n in view["routed_per_replica"]),
        "shed": view["shed_count"],
        "warm_hit": f"{view['warm_hit_ratio']:.0%}" if "warm_hit_ratio" in view else "-",
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--features", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=120)
    parser.add_argument("--landmarks", type=int, default=32)
    parser.add_argument("--requests", type=int, default=384)
    parser.add_argument("--unique", type=int, default=48)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--policy",
        choices=("round-robin", "least-depth", "key-affinity"),
        default="least-depth",
    )
    parser.add_argument("--high-water", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="durable-tier directory (default: a fresh temporary directory)",
    )
    args = parser.parse_args()
    root = args.root or Path(tempfile.mkdtemp(prefix="durable-serving-"))

    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=6 * args.train_size,
                num_features=args.features,
                positive_fraction=0.4,
                seed=7,
            )
        ),
        args.train_size,
        seed=3,
    )
    ansatz = AnsatzConfig(
        num_features=args.features, interaction_distance=1, layers=2, gamma=0.5
    )
    engine = QuantumKernelInferenceEngine(
        ansatz,
        approximation=NystroemConfig(num_landmarks=args.landmarks, seed=0),
    )
    print(f"fitting Nystrom model (n={args.train_size}, m={args.landmarks}) ...")
    engine.fit(data.features, data.labels)
    payload = engine.serving_payload()

    rng = np.random.default_rng(5)
    unique = rng.normal(size=(args.unique, args.features))
    weights = 1.0 / np.arange(1, args.unique + 1)
    weights /= weights.sum()
    stream = unique[rng.choice(args.unique, size=args.requests, p=weights)]

    router_kwargs = dict(
        num_replicas=args.replicas,
        policy=args.policy,
        queue_depth_high_water=args.high_water,
        persistence_root=root,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )

    print(f"cold boot: {args.replicas} replicas over empty tier {root}")
    with ReplicaRouter(payload, **router_kwargs) as cold:
        cold_decisions, cold_s = serve(cold, stream)
        cold_view = cold.metrics_view()
        manifest = cold.snapshot()
    print(
        f"snapshot written: {len(manifest.keys)} states, "
        f"{manifest.payload_bytes / 1024:.0f} KiB, checksum {manifest.checksum[:12]}..."
    )

    print("simulated restart: new fleet warm-starts from the snapshot")
    with ReplicaRouter(payload, **router_kwargs) as warm:
        for i, report in enumerate(warm.warm_up_reports):
            print(
                f"  replica {i}: prefetched {report.loaded}/{report.available} "
                f"states ({report.bytes_loaded / 1024:.0f} KiB)"
            )
        warm_decisions, warm_s = serve(warm, stream)
        warm_view = warm.metrics_view()

    identical = np.array_equal(cold_decisions, warm_decisions)
    print()
    print(
        format_table(
            [
                dashboard_row("cold boot", cold_s, cold_view, len(stream)),
                dashboard_row("warm restart", warm_s, warm_view, len(stream)),
            ],
            title=f"{args.policy} x {args.replicas} replicas",
        )
    )
    print()
    print(f"byte-identical across restart: {identical}")
    if not identical:
        raise SystemExit("durability equivalence violated!")


if __name__ == "__main__":
    main()
