"""CPU-versus-GPU crossover analysis (the paper's Figure 5 / Table I study).

Sweeps the qubit interaction distance of the feature-map ansatz and reports,
for each distance:

* the median modelled runtime of one MPS simulation and one inner product on
  the CPU backend and on the simulated-GPU backend,
* the average largest bond dimension chi and the memory per MPS,
* which backend the cost models favour.

The same code drives the paper-scale analysis; the defaults here finish in
well under a minute on a laptop.

Run with:  python examples/crossover_analysis.py [--qubits 24] [--max-distance 4]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.backends import CPU_COST_MODEL, GPU_COST_MODEL, CpuBackend, SimulatedGpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.profiling import format_table, summarize_samples


def sweep(num_qubits: int, max_distance: int, samples: int, gamma: float) -> list[dict]:
    rng = np.random.default_rng(5)
    rows = []
    for distance in range(1, max_distance + 1):
        ansatz = AnsatzConfig(
            num_features=num_qubits,
            interaction_distance=distance,
            layers=2,
            gamma=gamma,
        )
        cpu, gpu = CpuBackend(), SimulatedGpuBackend()
        sim_times = {"cpu": [], "gpu": []}
        ip_times = {"cpu": [], "gpu": []}
        chis = []
        memory_mib = []
        states = {"cpu": [], "gpu": []}

        for _ in range(samples):
            x = rng.uniform(0.05, 1.95, size=num_qubits)
            circuit = build_feature_map_circuit(x, ansatz)
            for name, backend in (("cpu", cpu), ("gpu", gpu)):
                result = backend.simulate(circuit)
                sim_times[name].append(result.modelled_time_s)
                states[name].append(result.state)
                if name == "cpu":
                    chis.append(result.max_bond_dimension)
                    memory_mib.append(result.memory_mib)

        for name, backend in (("cpu", cpu), ("gpu", gpu)):
            pool = states[name]
            for i in range(len(pool)):
                for j in range(i + 1, len(pool)):
                    ip_times[name].append(backend.inner_product(pool[i], pool[j]).modelled_time_s)

        row = {
            "d": distance,
            "avg chi": float(np.mean(chis)),
            "MiB/MPS": float(np.mean(memory_mib)),
            "sim CPU (s)": summarize_samples(sim_times["cpu"])["median"],
            "sim GPU (s)": summarize_samples(sim_times["gpu"])["median"],
            "IP CPU (s)": summarize_samples(ip_times["cpu"])["median"],
            "IP GPU (s)": summarize_samples(ip_times["gpu"])["median"],
        }
        row["favoured"] = "GPU" if row["IP GPU (s)"] < row["IP CPU (s)"] else "CPU"
        rows.append(row)
    return rows


def theoretical_crossover(num_qubits: int) -> int:
    """Bond dimension at which the GPU inner-product model overtakes the CPU."""
    for chi in range(2, 1 << 14):
        if GPU_COST_MODEL.inner_product_time(num_qubits, chi) < CPU_COST_MODEL.inner_product_time(
            num_qubits, chi
        ):
            return chi
    return -1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=24, help="number of qubits / features")
    parser.add_argument("--max-distance", type=int, default=4, help="largest interaction distance")
    parser.add_argument("--samples", type=int, default=3, help="circuits per distance")
    parser.add_argument("--gamma", type=float, default=1.0, help="kernel bandwidth")
    args = parser.parse_args()

    rows = sweep(args.qubits, args.max_distance, args.samples, args.gamma)
    print(format_table(rows, title="Figure 5 / Table I style sweep", precision=5))

    chi_star = theoretical_crossover(100)
    print()
    print(
        "cost-model crossover for the inner product at m = 100 qubits: "
        f"chi ~ {chi_star} (paper reports chi ~ 320 between d = 8 and d = 10)"
    )


if __name__ == "__main__":
    main()
