"""Quickstart: train a quantum-kernel SVM on a synthetic fraud-detection task.

This is the smallest end-to-end use of the library:

1. generate a synthetic Elliptic-Bitcoin-like dataset and draw a balanced
   sample (the paper's data protocol),
2. build the Ising feature-map ansatz (one qubit per feature),
3. compute the quantum kernel with the MPS simulator and train a kernel SVM
   over a small grid of regularisation values,
4. compare against the Gaussian-kernel baseline of Table II.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnsatzConfig, QuantumKernelPipeline
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like, select_features
from repro.profiling import format_table
from repro.svm import train_test_split


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: a balanced sample of 48 transactions with 8 features.
    # ------------------------------------------------------------------
    num_features = 8
    dataset = generate_elliptic_like(
        DatasetSpec(num_samples=1000, num_features=num_features, seed=1)
    )
    sample = balanced_subsample(dataset, 48, seed=2)
    X = select_features(sample.features, num_features)
    y = sample.labels
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.2, seed=3)
    print(
        f"dataset: {sample.num_samples} balanced samples, "
        f"{num_features} features, {X_train.shape[0]} train / {X_test.shape[0]} test"
    )

    # ------------------------------------------------------------------
    # 2. The feature map: linear chain, nearest-neighbour interactions,
    #    two layers, bandwidth gamma = 0.5.
    # ------------------------------------------------------------------
    ansatz = AnsatzConfig(
        num_features=num_features, interaction_distance=1, layers=2, gamma=0.5
    )

    # ------------------------------------------------------------------
    # 3. Quantum kernel + SVM (best AUC over a small C grid).
    # ------------------------------------------------------------------
    quantum = QuantumKernelPipeline(ansatz, kernel="quantum", c_grid=(0.5, 1.0, 4.0))
    quantum_result = quantum.run(X_train, y_train, X_test, y_test)

    # ------------------------------------------------------------------
    # 4. Gaussian baseline on the same splits.
    # ------------------------------------------------------------------
    gaussian = QuantumKernelPipeline(ansatz, kernel="gaussian", c_grid=(0.5, 1.0, 4.0))
    gaussian_result = gaussian.run(X_train, y_train, X_test, y_test)

    rows = []
    for name, result in (("quantum", quantum_result), ("Gaussian", gaussian_result)):
        rows.append(
            {
                "kernel": name,
                "best C": result.best_C,
                "AUC": result.test_metrics["auc"],
                "recall": result.test_metrics["recall"],
                "precision": result.test_metrics["precision"],
                "accuracy": result.test_metrics["accuracy"],
            }
        )
    print()
    print(format_table(rows, title="Test-set metrics"))

    resource = quantum_result.resource_metrics
    print()
    print(
        "quantum kernel resources: "
        f"{int(resource['num_simulations'])} MPS simulations, "
        f"{int(resource['num_inner_products'])} inner products, "
        f"max bond dimension {int(resource['max_bond_dimension'])}"
    )


if __name__ == "__main__":
    main()
