"""Unit tests for the kernel diagnostics."""

import numpy as np
import pytest

from repro.exceptions import KernelError
from repro.kernels import (
    effective_dimension,
    is_positive_semidefinite,
    kernel_alignment,
    kernel_concentration,
    kernel_spectrum,
)


def test_concentration_of_identity_kernel():
    stats = kernel_concentration(np.eye(4))
    assert stats["off_diagonal_mean"] == 0.0
    assert stats["off_diagonal_std"] == 0.0
    assert stats["relative_spread"] == 0.0


def test_concentration_statistics_values():
    K = np.array([[1.0, 0.5, 0.1], [0.5, 1.0, 0.3], [0.1, 0.3, 1.0]])
    stats = kernel_concentration(K)
    off = np.array([0.5, 0.1, 0.5, 0.3, 0.1, 0.3])
    assert stats["off_diagonal_mean"] == pytest.approx(off.mean())
    assert stats["off_diagonal_std"] == pytest.approx(off.std())
    assert stats["off_diagonal_min"] == 0.1
    assert stats["off_diagonal_max"] == 0.5


def test_concentration_validation():
    with pytest.raises(KernelError):
        kernel_concentration(np.ones((2, 3)))
    with pytest.raises(KernelError):
        kernel_concentration(np.ones((1, 1)))


def test_alignment_perfect_and_poor():
    y = np.array([1, 1, 0, 0])
    y_signed = np.where(y > 0, 1.0, -1.0)
    ideal = np.outer(y_signed, y_signed)
    assert kernel_alignment(ideal, y) == pytest.approx(1.0)
    # A constant kernel has alignment equal to the label-imbalance overlap.
    flat = np.ones((4, 4))
    assert kernel_alignment(flat, y) == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(KernelError):
        kernel_alignment(ideal, y[:2])


def test_psd_check():
    assert is_positive_semidefinite(np.eye(3))
    not_psd = np.array([[1.0, 2.0], [2.0, 1.0]])
    assert not is_positive_semidefinite(not_psd)


def test_spectrum_descending_and_trace():
    K = np.diag([3.0, 1.0, 2.0])
    spec = kernel_spectrum(K)
    assert np.allclose(spec, [3.0, 2.0, 1.0])
    assert spec.sum() == pytest.approx(np.trace(K))


def test_effective_dimension():
    K = np.diag([10.0, 1.0, 0.1, 0.01])
    assert effective_dimension(K, threshold=0.89) == 1
    assert effective_dimension(K, threshold=0.99) == 2
    assert effective_dimension(np.eye(5), threshold=1.0) == 5
    with pytest.raises(KernelError):
        effective_dimension(K, threshold=0.0)
    assert effective_dimension(np.zeros((3, 3))) == 0
