"""Unit tests for the Gaussian RBF baseline kernel."""

import numpy as np
import pytest

from repro.exceptions import KernelError
from repro.kernels import (
    GaussianKernel,
    gaussian_gram_matrix,
    median_heuristic_bandwidth,
)
from repro.kernels.gaussian import scale_bandwidth


def test_gram_matrix_properties(rng):
    X = rng.normal(size=(10, 4))
    K = gaussian_gram_matrix(X)
    assert K.shape == (10, 10)
    assert np.allclose(np.diag(K), 1.0)
    assert np.allclose(K, K.T)
    assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)
    eigvals = np.linalg.eigvalsh(K)
    assert eigvals.min() > -1e-10


def test_kernel_value_formula():
    X = np.array([[0.0, 0.0], [1.0, 1.0]])
    K = gaussian_gram_matrix(X, alpha=0.5)
    assert K[0, 1] == pytest.approx(np.exp(-0.5 * 2.0))


def test_cross_matrix_shape(rng):
    A = rng.normal(size=(6, 3))
    B = rng.normal(size=(4, 3))
    K = gaussian_gram_matrix(A, B, alpha=1.0)
    assert K.shape == (6, 4)


def test_scale_bandwidth_matches_paper_convention(rng):
    X = rng.normal(size=(50, 8)) * 2.0
    alpha = scale_bandwidth(X)
    assert alpha == pytest.approx(1.0 / (8 * np.var(X)))
    # Constant data falls back to 1/m.
    assert scale_bandwidth(np.ones((5, 4))) == pytest.approx(0.25)


def test_median_heuristic(rng):
    X = rng.normal(size=(20, 3))
    beta = median_heuristic_bandwidth(X)
    assert beta > 0
    with pytest.raises(KernelError):
        median_heuristic_bandwidth(X[:1])


def test_validation():
    with pytest.raises(KernelError):
        gaussian_gram_matrix(np.ones(4))
    with pytest.raises(KernelError):
        gaussian_gram_matrix(np.ones((3, 2)), np.ones((3, 4)))
    with pytest.raises(KernelError):
        gaussian_gram_matrix(np.ones((3, 2)), alpha=0.0)


def test_stateful_kernel_api(rng):
    X_train = rng.normal(size=(12, 5))
    X_test = rng.normal(size=(4, 5))
    gk = GaussianKernel()
    K_train, K_test = gk.train_test_matrices(X_train, X_test)
    assert K_train.shape == (12, 12)
    assert K_test.shape == (4, 12)
    assert gk.bandwidth == pytest.approx(scale_bandwidth(X_train))
    # Explicit bandwidth is honoured.
    gk2 = GaussianKernel(alpha=0.3).fit(X_train)
    assert gk2.bandwidth == 0.3


def test_stateful_kernel_requires_fit(rng):
    gk = GaussianKernel()
    with pytest.raises(KernelError):
        gk.cross_matrix(rng.normal(size=(2, 3)))
    with pytest.raises(KernelError):
        gk.gram_matrix()
    with pytest.raises(KernelError):
        _ = gk.bandwidth
    with pytest.raises(KernelError):
        gk.fit(np.ones(3))


def test_distance_monotonicity():
    """Closer points have larger kernel values."""
    X = np.array([[0.0], [0.5], [3.0]])
    K = gaussian_gram_matrix(X, alpha=1.0)
    assert K[0, 1] > K[0, 2]
