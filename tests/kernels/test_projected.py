"""Unit tests for the projected quantum kernel."""

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.exceptions import KernelError
from repro.kernels import ProjectedQuantumKernel, is_positive_semidefinite
from repro.mps import MPS


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


def test_projection_shape_and_range(ansatz, rng):
    X = rng.uniform(0.1, 1.9, size=(3, 4))
    pk = ProjectedQuantumKernel(ansatz)
    proj = pk.project(X)
    assert proj.shape == (3, 12)  # 3 Paulis per qubit
    # Pauli expectation values lie in [-1, 1].
    assert np.all(proj >= -1.0 - 1e-9) and np.all(proj <= 1.0 + 1e-9)


def test_project_state_of_plus_state(ansatz):
    pk = ProjectedQuantumKernel(ansatz)
    values = pk.project_state(MPS.plus_state(4))
    # For |+>: <X> = 1, <Y> = <Z> = 0 on every qubit.
    values = values.reshape(4, 3)
    assert np.allclose(values[:, 0], 1.0)
    assert np.allclose(values[:, 1:], 0.0, atol=1e-12)


def test_gram_and_cross_matrices(ansatz, rng):
    X_train = rng.uniform(0.1, 1.9, size=(5, 4))
    X_test = rng.uniform(0.1, 1.9, size=(2, 4))
    pk = ProjectedQuantumKernel(ansatz)
    pk.fit(X_train)
    K = pk.gram_matrix()
    K_test = pk.cross_matrix(X_test)
    assert K.shape == (5, 5)
    assert K_test.shape == (2, 5)
    assert np.allclose(np.diag(K), 1.0)
    assert np.allclose(K, K.T)
    assert is_positive_semidefinite(K)


def test_explicit_beta_is_used(ansatz, rng):
    X = rng.uniform(0.1, 1.9, size=(4, 4))
    pk = ProjectedQuantumKernel(ansatz, beta=2.5)
    pk.fit(X)
    assert pk._beta_resolved == 2.5


def test_unfitted_usage_raises(ansatz, rng):
    pk = ProjectedQuantumKernel(ansatz)
    with pytest.raises(KernelError):
        pk.gram_matrix()
    with pytest.raises(KernelError):
        pk.cross_matrix(rng.uniform(0.1, 1.9, size=(2, 4)))
    with pytest.raises(KernelError):
        pk.project(np.ones((2, 3)))  # wrong feature count


def test_projected_kernel_resists_depth_concentration(rng):
    """Extension check: the projected kernel keeps more off-diagonal spread
    than the fidelity kernel at large depth."""
    from repro.kernels import QuantumKernel, kernel_concentration

    deep = AnsatzConfig(num_features=4, layers=8, gamma=1.0)
    X = rng.uniform(0.1, 1.9, size=(5, 4))
    fidelity_K = QuantumKernel(deep).gram_matrix(X).matrix
    pk = ProjectedQuantumKernel(deep)
    pk.fit(X)
    projected_K = pk.gram_matrix()
    assert (
        kernel_concentration(projected_K)["off_diagonal_mean"]
        > kernel_concentration(fidelity_K)["off_diagonal_mean"]
    )
