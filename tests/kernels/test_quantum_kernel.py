"""Unit tests for the quantum fidelity kernel."""

import numpy as np
import pytest

from repro.backends import CpuBackend, SimulatedGpuBackend
from repro.config import AnsatzConfig
from repro.exceptions import KernelError
from repro.kernels import QuantumKernel, QuantumKernelResult, is_positive_semidefinite


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=4, interaction_distance=2, layers=2, gamma=0.8)


@pytest.fixture
def X(rng):
    return rng.uniform(0.1, 1.9, size=(5, 4))


def test_gram_matrix_basic_properties(ansatz, X):
    qk = QuantumKernel(ansatz)
    result = qk.gram_matrix(X)
    K = result.matrix
    assert isinstance(result, QuantumKernelResult)
    assert K.shape == (5, 5)
    assert np.allclose(np.diag(K), 1.0)
    assert np.allclose(K, K.T)
    assert np.all(K >= -1e-12) and np.all(K <= 1.0 + 1e-12)
    assert is_positive_semidefinite(K)


def test_identical_points_give_unit_kernel(ansatz):
    x = np.full(4, 1.2)
    X = np.vstack([x, x])
    K = QuantumKernel(ansatz).gram_matrix(X).matrix
    assert K[0, 1] == pytest.approx(1.0)


def test_result_bookkeeping(ansatz, X):
    qk = QuantumKernel(ansatz)
    result = qk.gram_matrix(X)
    n = X.shape[0]
    assert result.num_simulations == n
    assert result.num_inner_products == n * (n - 1) // 2
    assert result.max_bond_dimension >= 1
    assert result.total_state_memory_bytes > 0
    assert result.modelled_total_time_s > 0
    assert result.total_time_s >= 0


def test_cross_matrix_shape_and_consistency(ansatz, X):
    qk = QuantumKernel(ansatz)
    train_states = qk.encode(X[:3])
    cross = qk.cross_matrix(X[3:], train_states)
    assert cross.matrix.shape == (2, 3)
    # Cross entries for identical points must equal the Gram entries.
    full = qk.gram_matrix(X).matrix
    assert np.allclose(cross.matrix, full[3:, :3], atol=1e-10)


def test_train_test_matrices(ansatz, X):
    qk = QuantumKernel(ansatz)
    train_result, test_result = qk.train_test_matrices(X[:3], X[3:])
    assert train_result.matrix.shape == (3, 3)
    assert test_result.matrix.shape == (2, 3)
    assert np.allclose(np.diag(train_result.matrix), 1.0)


def test_encode_one_and_validation(ansatz):
    qk = QuantumKernel(ansatz)
    state = qk.encode_one(np.full(4, 0.5))
    assert state.num_qubits == 4
    with pytest.raises(KernelError):
        qk.encode(np.ones((2, 3)))  # wrong feature count
    with pytest.raises(KernelError):
        qk.encode(np.ones((0, 4)))  # no rows
    with pytest.raises(KernelError):
        qk.encode(np.ones((2, 2, 2)))  # wrong rank
    with pytest.raises(KernelError):
        qk.cross_matrix(np.ones((1, 4)), [])


def test_backend_equivalence_cpu_vs_gpu(ansatz, X):
    """Both backends run identical numerics -> identical kernels (Table I)."""
    K_cpu = QuantumKernel(ansatz, backend=CpuBackend()).gram_matrix(X).matrix
    K_gpu = QuantumKernel(ansatz, backend=SimulatedGpuBackend()).gram_matrix(X).matrix
    assert np.allclose(K_cpu, K_gpu, atol=1e-12)


def test_kernel_depends_on_gamma(X):
    small = QuantumKernel(AnsatzConfig(num_features=4, gamma=0.1)).gram_matrix(X).matrix
    large = QuantumKernel(AnsatzConfig(num_features=4, gamma=1.0)).gram_matrix(X).matrix
    # Larger bandwidth rotates states further apart -> smaller off-diagonals.
    off = ~np.eye(4 + 1, dtype=bool)[:5, :5]
    assert large[off].mean() < small[off].mean()


def test_kernel_off_diagonal_decreases_with_depth(X):
    """Kernel concentration: deeper circuits shrink the overlaps (Table III)."""
    shallow = QuantumKernel(
        AnsatzConfig(num_features=4, layers=1, gamma=1.0)
    ).gram_matrix(X).matrix
    deep = QuantumKernel(
        AnsatzConfig(num_features=4, layers=8, gamma=1.0)
    ).gram_matrix(X).matrix
    off = ~np.eye(5, dtype=bool)
    assert deep[off].mean() < shallow[off].mean()
