"""Metamorphic relations of the telemetry layer.

The deterministic metric families -- request counts, simulation counts,
store miss totals, encode launch counts -- are pure functions of the request
stream, so identical streams must reproduce them exactly however the stream
was coalesced, however many replicas served it, and whether the caches
started warm or cold.  :meth:`MetricsRegistry.deterministic_snapshot` is the
filtered view these relations pin (wall-clock families are excluded by
naming convention); predictions ride along byte-identical as always.
"""

import numpy as np
import pytest

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.telemetry import MetricsRegistry, bind_queue, bind_router

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=11)),
        24,
        seed=3,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(77)
    return rng.normal(size=(16, 4))


def _serve_queue(served_engine, queries, **queue_kwargs):
    """One full pass through a fresh queue; returns (snapshot, decisions)."""
    registry = MetricsRegistry()
    with served_engine.serving_queue(**queue_kwargs) as queue:
        bind_queue(registry, queue)
        futures = [queue.submit(row) for row in queries]
        queue.flush()
        results = [f.result(timeout=30) for f in futures]
    return registry.deterministic_snapshot(), np.array(
        [r.decision_value for r in results]
    )


def _serve_router(payload, queries, num_replicas, **router_kwargs):
    from repro.serving import ReplicaRouter

    registry = MetricsRegistry()
    router = ReplicaRouter(
        payload,
        num_replicas=num_replicas,
        policy="key-affinity",
        max_batch=4,
        max_wait_ms=2.0,
        **router_kwargs,
    )
    try:
        bind_router(registry, router)
        futures = [router.submit(row) for row in queries]
        router.flush()
        results = [f.result(timeout=30) for f in futures]
    finally:
        router.close()
    return registry.deterministic_snapshot(), np.array(
        [r.decision_value for r in results]
    )


def _family_total(snapshot, name):
    """Sum a family's value over every labeled series (fleet total)."""
    return sum(entry["value"] for entry in snapshot[name]["series"])


# ----------------------------------------------------------------------
# Relation 1: identical streams -> identical deterministic snapshots.
# ----------------------------------------------------------------------
def test_identical_streams_identical_snapshots(served_engine, queries):
    kwargs = dict(max_batch=4, max_wait_ms=2.0)
    snap_a, dec_a = _serve_queue(served_engine, queries, **kwargs)
    snap_b, dec_b = _serve_queue(served_engine, queries, **kwargs)
    assert dec_a.tobytes() == dec_b.tobytes()
    # The second pass runs against a warmer engine store (module-scoped
    # engine), so store hit/miss totals legitimately differ; every queue-
    # level deterministic family must match exactly.
    for name in (
        "repro_serving_requests_total",
        "repro_serving_enqueued_total",
        "repro_serving_memo_hits_total",
        "repro_serving_batch_size",
    ):
        assert snap_a[name] == snap_b[name], name


def test_snapshot_excludes_wall_clock_families(served_engine, queries):
    snapshot, _ = _serve_queue(served_engine, queries, max_batch=4, max_wait_ms=2.0)
    assert not any(
        name.endswith(("_seconds", "_rps")) for name in snapshot
    ), sorted(snapshot)
    # ... while the full dictionary does carry them (they are exported,
    # just not part of the deterministic contract).


# ----------------------------------------------------------------------
# Relation 2: coalescing invariance -- totals don't depend on batching.
# ----------------------------------------------------------------------
def test_coalescing_invariant_totals(served_engine, queries):
    # memoize=False so the second configuration cannot be served from the
    # response memo; the engine store is shared (module fixture), so we pin
    # the queue-level totals plus the prediction bytes.
    snap_small, dec_small = _serve_queue(
        served_engine, queries, max_batch=2, max_wait_ms=1.0, memoize=False
    )
    snap_large, dec_large = _serve_queue(
        served_engine, queries, max_batch=16, max_wait_ms=50.0, memoize=False
    )
    assert dec_small.tobytes() == dec_large.tobytes()
    for name in ("repro_serving_requests_total", "repro_serving_enqueued_total"):
        assert _family_total(snap_small, name) == _family_total(snap_large, name)
    # Batch *sizes* differ by construction -- their sum may not.
    sizes_small = snap_small["repro_serving_batch_size"]["series"][0]
    sizes_large = snap_large["repro_serving_batch_size"]["series"][0]
    assert sizes_small["count"] >= sizes_large["count"]
    assert sizes_small["sum"] == sizes_large["sum"] == len(queries)


# ----------------------------------------------------------------------
# Relation 3: replica-count invariance under key affinity.
# ----------------------------------------------------------------------
def test_replica_count_invariant_fleet_totals(payload, queries):
    stream = np.vstack([queries, queries[:6]])  # repeats exercise affinity
    snapshots = {}
    decisions = {}
    for n in (1, 2, 3):
        snapshots[n], decisions[n] = _serve_router(payload, stream, num_replicas=n)
    for n in (2, 3):
        assert decisions[n].tobytes() == decisions[1].tobytes()
        for name in (
            "repro_serving_requests_total",
            "repro_serving_enqueued_total",
            "repro_router_routed_total",
            "repro_backend_simulations_total",
            "repro_store_misses_total",
            "repro_serving_memo_hits_total",
        ):
            assert _family_total(snapshots[n], name) == _family_total(
                snapshots[1], name
            ), (name, n)
        assert _family_total(snapshots[n], "repro_router_shed_total") == 0


# ----------------------------------------------------------------------
# Relation 4: warm vs cold start -- the warm pass simulates nothing.
# ----------------------------------------------------------------------
def test_warm_start_serves_without_simulations(payload, queries, tmp_path):
    root = tmp_path / "snapshots"
    cold_snap, cold_dec = _serve_router(
        payload, queries, num_replicas=1, persistence_root=root
    )

    # Persist the warmed cache, then serve the same stream from a fresh
    # fleet warmed from disk.
    from repro.serving import ReplicaRouter

    router = ReplicaRouter(
        payload, num_replicas=1, persistence_root=root, max_batch=4
    )
    try:
        futures = [router.submit(row) for row in queries]
        router.flush()
        [f.result(timeout=30) for f in futures]
        router.snapshot()
    finally:
        router.close()

    warm_snap, warm_dec = _serve_router(
        payload, queries, num_replicas=1, persistence_root=root
    )
    assert warm_dec.tobytes() == cold_dec.tobytes()
    assert _family_total(cold_snap, "repro_backend_simulations_total") == len(
        np.unique(queries, axis=0)
    )
    assert _family_total(warm_snap, "repro_backend_simulations_total") == 0
    assert _family_total(warm_snap, "repro_store_misses_total") == 0
    assert _family_total(warm_snap, "repro_store_hits_total") == len(queries)
