"""Metamorphic relations of the adaptive control plane.

The control loop's whole contract is that it moves *when* work happens,
never *what* any request computes: every knob it may touch (``max_batch``,
``max_wait_ms``, ``wait_jitter_ms``, ``encode_batch_size``, the shed
high-water mark) only re-times or re-chunks work whose values are
batching-invariant by the engine's contract.  The relations below pin that
-- predictions byte-identical with the controller off vs driving hard under
every shipped policy, knob changes applied before / with requests pending /
after a stream, a mid-stream knob change partitioning the stream exactly at
the recorded tuning version, encode re-chunking on guaranteed-cold rows,
and the fleet-level loop steering a multi-replica router mid-traffic.
"""

import numpy as np
import pytest

from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig, TuningConfig
from repro.control import AdaptiveController
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import ServingError
from repro.serving import AsyncServingQueue, ReplicaRouter

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def payload():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=11)),
        32,
        seed=3,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=8, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(99)
    return rng.normal(size=(24, 4))


@pytest.fixture(scope="module")
def reference(payload, queries):
    """Ground truth: the model's answers with no serving stack at all."""
    clf = StreamingNystroemClassifier.from_serving_payload(payload)
    return list(clf.classify(queries).decision_values)


def _classifier(payload):
    return StreamingNystroemClassifier.from_serving_payload(payload)


def _drain(futures):
    return [f.result(timeout=30).decision_value for f in futures]


# ----------------------------------------------------------------------
# Relation 1: the controller on (any policy, stepped hard) vs off changes
# no prediction, ever.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "policy", ["static", "depth-proportional", "cost-model"]
)
def test_controller_on_vs_off_is_byte_identical(
    payload, queries, reference, policy
):
    with AsyncServingQueue(
        _classifier(payload), max_batch=4, max_wait_ms=2.0
    ) as queue:
        controller = AdaptiveController(
            queue,
            policy=policy,
            tuning=TuningConfig(
                min_batch=1, batch_ceiling=16, min_wait_ms=0.5,
                wait_ceiling_ms=10.0,
            ),
            cooldown_steps=0,
            deadband=0.0,
        )
        outputs = []
        # Step between every submission burst: the loop adjusts knobs while
        # traffic is in flight, at whatever cadence the policy likes.
        for chunk in np.array_split(queries, 6):
            futures = queue.submit_many(chunk)
            controller.step()
            outputs.extend(_drain(futures))
        assert controller.step_count == 6
    assert outputs == reference


# ----------------------------------------------------------------------
# Relation 2: knob-change timing relative to a pending stream is invisible
# in values.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("timing", ["before", "pending", "after"])
def test_knob_timing_invariance(payload, queries, reference, timing):
    with AsyncServingQueue(
        _classifier(payload),
        max_batch=64,  # larger than the stream: flushes happen on our schedule
        max_wait_ms=500.0,
        seed=1,
    ) as queue:
        new_knobs = dict(max_batch=3, max_wait_ms=1.0, wait_jitter_ms=0.5)
        if timing == "before":
            queue.apply_tuning(**new_knobs)
            futures = queue.submit_many(queries)
            queue.flush()
        elif timing == "pending":
            # The whole stream sits in the pending buffer when the knobs
            # land: the next flush decision re-slices it into batches of 3,
            # none dropped, none reordered, none recomputed differently.
            futures = queue.submit_many(queries)
            queue.apply_tuning(**new_knobs)
            queue.flush()
        else:
            futures = queue.submit_many(queries)
            queue.flush()
            queue.apply_tuning(**new_knobs)
        outputs = _drain(futures)
        assert queue.tuning.version == 1
        assert queue.knob_adjustments == 1
    assert outputs == reference


# ----------------------------------------------------------------------
# Relation 3: a stream split across a knob change partitions exactly, and
# both halves answer identically to the unsplit reference.
# ----------------------------------------------------------------------
def test_stream_partitions_at_tuning_version(payload, queries, reference):
    with AsyncServingQueue(
        _classifier(payload), max_batch=8, max_wait_ms=2.0
    ) as queue:
        assert queue.tuning.version == 0
        head = queue.submit_many(queries[:12])
        queue.flush()
        installed = queue.apply_tuning(max_batch=2, max_wait_ms=0.5)
        assert installed.version == 1
        assert queue.tuning is installed
        tail = queue.submit_many(queries[12:])
        outputs = _drain(head) + _drain(tail)
    # Exact concatenation: coalescing under either knob generation never
    # bleeds into the other half's values.
    assert outputs == reference


# ----------------------------------------------------------------------
# Relation 4: re-chunking the encode sweep mid-stream on guaranteed-cold
# rows changes nothing.
# ----------------------------------------------------------------------
def test_encode_chunk_change_is_invisible_on_cold_rows(payload, queries, reference):
    outputs = {}
    for label, chunk_sizes in (("fixed", [None]), ("swept", [1, 2, 7])):
        with AsyncServingQueue(
            _classifier(payload),
            max_batch=4,
            max_wait_ms=2.0,
            memoize=False,  # every row must truly re-encode
        ) as queue:
            collected = []
            for i, chunk in enumerate(np.array_split(queries, len(chunk_sizes))):
                if chunk_sizes[i] is not None:
                    queue.apply_tuning(encode_batch_size=chunk_sizes[i])
                    assert queue.encode_batch_size == chunk_sizes[i]
                collected.extend(_drain(queue.submit_many(chunk)))
            outputs[label] = collected
    assert outputs["fixed"] == outputs["swept"] == reference


# ----------------------------------------------------------------------
# Relation 5: the closed loop steering a replica fleet mid-traffic -- knob
# fan-out, shed-threshold moves and all -- is byte-identical to no loop.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_replicas", [1, 3])
def test_fleet_controller_is_byte_identical(
    payload, queries, reference, num_replicas
):
    with ReplicaRouter(
        payload,
        num_replicas=num_replicas,
        policy="round-robin",
        max_batch=4,
        max_wait_ms=2.0,
        queue_depth_high_water=4096,  # configured, so the loop may move it
    ) as router:
        controller = AdaptiveController(
            router,
            policy="depth-proportional",
            tuning=TuningConfig(
                min_batch=1, batch_ceiling=16, min_wait_ms=0.5,
                wait_ceiling_ms=10.0, min_high_water=4,
                high_water_ceiling=4096,
            ),
            cooldown_steps=0,
            deadband=0.0,
        )
        outputs = []
        for chunk in np.array_split(queries, 4):
            futures = router.submit_many(chunk)
            controller.step()
            outputs.extend(_drain(futures))
        view = router.metrics_view()
        assert view["shed_count"] == 0  # steering never sheds by itself
        assert view["total_routed"] == len(queries)
    assert outputs == reference


# ----------------------------------------------------------------------
# Guards: the versioned knob surface validates before mutating and dies
# with the queue.
# ----------------------------------------------------------------------
def test_apply_tuning_validates_atomically(payload, queries, reference):
    with AsyncServingQueue(
        _classifier(payload), max_batch=4, max_wait_ms=2.0
    ) as queue:
        before = queue.tuning
        for bad in (
            dict(max_batch=0),
            dict(max_wait_ms=-1.0),
            dict(wait_jitter_ms=-0.5),
            dict(encode_batch_size=0),
            # One good knob + one bad knob: nothing may be installed.
            dict(max_batch=8, max_wait_ms=-1.0),
        ):
            with pytest.raises(ServingError):
                queue.apply_tuning(**bad)
        assert queue.tuning is before  # no partial installs
        assert queue.knob_adjustments == 0
        outputs = _drain(queue.submit_many(queries))
    assert outputs == reference
    with pytest.raises(ServingError, match="closed"):
        queue.apply_tuning(max_batch=8)
