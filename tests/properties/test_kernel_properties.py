"""Property-based tests for kernels and metrics."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import AnsatzConfig
from repro.kernels import (
    QuantumKernel,
    gaussian_gram_matrix,
    is_positive_semidefinite,
    kernel_concentration,
)
from repro.svm.metrics import accuracy_score, roc_auc_score


feature_rows = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 4), st.just(3)),
    elements=st.floats(min_value=0.05, max_value=1.95, allow_nan=False),
)


@given(feature_rows)
@settings(max_examples=15, deadline=None)
def test_quantum_kernel_matrix_is_valid_gram_matrix(X):
    ansatz = AnsatzConfig(num_features=3, interaction_distance=1, layers=1, gamma=0.6)
    K = QuantumKernel(ansatz).gram_matrix(X).matrix
    n = X.shape[0]
    assert K.shape == (n, n)
    assert np.allclose(K, K.T, atol=1e-10)
    assert np.allclose(np.diag(K), 1.0, atol=1e-10)
    assert np.all(K >= -1e-10) and np.all(K <= 1.0 + 1e-10)
    assert is_positive_semidefinite(K, atol=1e-7)


@given(
    arrays(
        dtype=float,
        shape=st.tuples(st.integers(2, 8), st.integers(1, 5)),
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
    ),
    st.floats(min_value=0.01, max_value=5.0),
)
@settings(max_examples=60, deadline=None)
def test_gaussian_kernel_is_psd_and_bounded(X, alpha):
    K = gaussian_gram_matrix(X, alpha=alpha)
    assert np.allclose(np.diag(K), 1.0)
    # exp(-alpha * d^2) legitimately underflows to exactly 0.0 for distant
    # points (alpha * d^2 > ~745), so the lower bound is inclusive.
    assert np.all(K >= 0) and np.all(K <= 1.0 + 1e-12)
    assert is_positive_semidefinite(K, atol=1e-7)
    stats = kernel_concentration(K)
    assert 0.0 <= stats["off_diagonal_mean"] <= 1.0
    assert stats["off_diagonal_min"] <= stats["off_diagonal_max"]


@given(
    st.lists(st.integers(0, 1), min_size=4, max_size=50),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_auc_bounds_and_complement_symmetry(labels, seed):
    y = np.array(labels)
    assume(0 < y.sum() < y.size)
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=y.size)
    auc = roc_auc_score(y, scores)
    assert 0.0 <= auc <= 1.0
    # Negating the scores mirrors the AUC around 1/2.
    assert roc_auc_score(y, -scores) == np.float64(1.0) - auc or abs(
        roc_auc_score(y, -scores) + auc - 1.0
    ) < 1e-9


@given(
    st.lists(st.integers(0, 1), min_size=2, max_size=50),
    st.lists(st.integers(0, 1), min_size=2, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_accuracy_bounds_and_self_consistency(a, b):
    n = min(len(a), len(b))
    y_true = np.array(a[:n])
    y_pred = np.array(b[:n])
    acc = accuracy_score(y_true, y_pred)
    assert 0.0 <= acc <= 1.0
    assert accuracy_score(y_true, y_true) == 1.0
    # Accuracy of prediction and its complement sum to 1.
    assert acc + accuracy_score(y_true, 1 - y_pred) == 1.0
