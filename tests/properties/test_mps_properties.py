"""Property-based tests (hypothesis) for the MPS simulation substrate.

Invariants checked on randomly generated circuits and states:

* unitarity: the norm of the state is preserved by any sequence of gates;
* exactness: with the machine-precision truncation policy, the MPS state
  matches the dense statevector simulation of the same circuit;
* inner products are conjugate-symmetric and bounded by Cauchy-Schwarz;
* SVD truncation never discards more relative weight than the policy allows.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, GateKind
from repro.mps import MPS, TruncationPolicy
from repro.mps.truncation import truncate_singular_values
from repro.statevector import StatevectorSimulator, statevector_fidelity


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
angles = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)


@st.composite
def adjacent_circuits(draw, max_qubits=6, max_gates=20):
    """Random circuit containing only MPS-compatible (adjacent) gates."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        if draw(st.booleans()):
            kind = draw(st.sampled_from([GateKind.RX, GateKind.RY, GateKind.RZ, GateKind.H]))
            q = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            angle = draw(angles) if kind.is_parameterised else 0.0
            circuit.add(kind, q, angle=angle)
        else:
            kind = draw(
                st.sampled_from([GateKind.RXX, GateKind.RZZ, GateKind.CNOT, GateKind.SWAP])
            )
            q = draw(st.integers(min_value=0, max_value=num_qubits - 2))
            angle = draw(angles) if kind.is_parameterised else 0.0
            circuit.add(kind, (q, q + 1), angle=angle)
    return circuit


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(adjacent_circuits())
@settings(max_examples=40, deadline=None)
def test_norm_is_preserved(circuit):
    mps = MPS.plus_state(circuit.num_qubits)
    mps.apply_circuit(circuit)
    assert abs(mps.norm() - 1.0) < 1e-9


@given(adjacent_circuits(max_qubits=5, max_gates=15))
@settings(max_examples=25, deadline=None)
def test_mps_matches_statevector(circuit):
    mps = MPS.zero_state(circuit.num_qubits)
    mps.apply_circuit(circuit)
    sv = StatevectorSimulator(circuit.num_qubits)
    sv.apply_circuit(circuit)
    fidelity = statevector_fidelity(mps.to_statevector(), sv.statevector)
    assert abs(fidelity - 1.0) < 1e-8


@given(adjacent_circuits(max_qubits=5, max_gates=12), adjacent_circuits(max_qubits=5, max_gates=12))
@settings(max_examples=25, deadline=None)
def test_inner_product_conjugate_symmetry_and_bound(circ_a, circ_b):
    num_qubits = min(circ_a.num_qubits, circ_b.num_qubits)
    a = MPS.plus_state(num_qubits)
    b = MPS.zero_state(num_qubits)
    for op in circ_a.operations:
        if max(op.qubits) < num_qubits:
            a.apply_gate(op.qubits, op.matrix())
    for op in circ_b.operations:
        if max(op.qubits) < num_qubits:
            b.apply_gate(op.qubits, op.matrix())
    ab = a.inner_product(b)
    ba = b.inner_product(a)
    assert abs(ab - np.conj(ba)) < 1e-9
    assert abs(ab) <= 1.0 + 1e-9  # both states are normalised


@given(
    st.lists(
        st.floats(min_value=1e-8, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    st.floats(min_value=1e-16, max_value=0.5),
)
@settings(max_examples=100, deadline=None)
def test_truncation_respects_cutoff(values, cutoff):
    s = np.sort(np.array(values))[::-1]
    policy = TruncationPolicy(cutoff=cutoff)
    kept, discarded = policy.select_rank(s)
    assert 1 <= kept <= s.size
    assert discarded <= cutoff + 1e-15
    # Keeping fewer values than `kept` would exceed the cutoff (minimality),
    # unless kept is already 1.
    if kept > 1:
        total = float(np.sum(s * s))
        discarded_if_fewer = float(np.sum(s[kept - 1:] ** 2)) / total
        assert discarded_if_fewer > cutoff


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_truncated_factors_shapes_consistent(chi_l, chi_r, seed):
    rng = np.random.default_rng(seed)
    theta = rng.normal(size=(chi_l, 2, 2, chi_r)) + 1j * rng.normal(
        size=(chi_l, 2, 2, chi_r)
    )
    from repro.mps.tensor_ops import split_theta

    u, s, vh = split_theta(theta)
    u2, s2, vh2, record = truncate_singular_values(
        u, s, vh, TruncationPolicy(cutoff=1e-16)
    )
    assert u2.shape[2] == s2.shape[0] == vh2.shape[0] == record.kept
    assert record.kept + record.discarded == record.bond_dimension_before
