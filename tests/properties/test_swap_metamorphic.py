"""Metamorphic relations of the atomic model swap.

A hot swap must change *which* model answers, and nothing else: every
prediction is byte-identical to what the model recorded in its
``model_version`` stamp would produce in isolation.  The relations below pin
that across swap timing relative to a coalesced flush (before / with
requests pending / after), replica counts 1/2/3, warm vs cold starts from
the durable tier, and the response memo (which must never leak answers
across model generations).  The partition relation is the strongest form: a
request stream split across a swap equals the concatenation of old-model
answers and new-model answers at the recorded swap boundary.
"""

import numpy as np
import pytest

from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import ServingError
from repro.serving import AsyncServingQueue, ReplicaRouter

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def payloads():
    """Two serving payloads of genuinely different models over one schema."""
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=11)),
        32,
        seed=3,
    )
    built = []
    for num_landmarks, seed in ((8, 0), (12, 5)):
        engine = QuantumKernelInferenceEngine(
            ANSATZ, approximation=NystroemConfig(num_landmarks=num_landmarks, seed=seed)
        )
        engine.fit(data.features, data.labels)
        built.append(engine.serving_payload())
    return built


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(99)
    return rng.normal(size=(24, 4))


@pytest.fixture(scope="module")
def references(payloads, queries):
    """Per-version ground truth: what each model answers in isolation."""
    refs = []
    for payload in payloads:
        clf = StreamingNystroemClassifier.from_serving_payload(payload)
        refs.append(clf.classify(queries).decision_values)
    assert not np.array_equal(refs[0], refs[1])  # the swap must be observable
    return refs


def _check(results, references):
    """Every answer equals its stamped version's isolated reference."""
    for i, result in enumerate(results):
        expected = references[result.model_version][i % len(references[0])]
        assert result.decision_value == expected, (
            f"request {i} (version {result.model_version}) diverged"
        )


# ----------------------------------------------------------------------
# Relation 1: an identity swap is invisible in values, visible in version.
# ----------------------------------------------------------------------
def test_identity_swap_preserves_predictions(payloads, queries, references):
    with AsyncServingQueue(
        StreamingNystroemClassifier.from_serving_payload(payloads[0]),
        max_batch=8,
        max_wait_ms=2.0,
    ) as queue:
        before = [f.result(timeout=30) for f in queue.submit_many(queries)]
        version = queue.swap_payload(payloads[0])
        after = [f.result(timeout=30) for f in queue.submit_many(queries)]
    assert version == 1
    assert [r.decision_value for r in before] == [r.decision_value for r in after]
    assert {r.model_version for r in before} == {0}
    assert {r.model_version for r in after} == {1}
    _check(before, [references[0], references[0]])


# ----------------------------------------------------------------------
# Relation 2: swap timing relative to the coalescer never tears a batch.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("timing", ["before", "pending", "after"])
def test_swap_timing_invariance(payloads, queries, references, timing):
    with AsyncServingQueue(
        StreamingNystroemClassifier.from_serving_payload(payloads[0]),
        max_batch=64,  # larger than the stream: flushes happen on our schedule
        max_wait_ms=500.0,
        seed=1,
    ) as queue:
        if timing == "before":
            queue.swap_payload(payloads[1])
            futures = queue.submit_many(queries)
            queue.flush()
        elif timing == "pending":
            # Requests sit in the pending buffer while the swap lands: they
            # must be scored by the new model, atomically, none dropped.
            futures = queue.submit_many(queries)
            queue.swap_payload(payloads[1])
            queue.flush()
        else:
            futures = queue.submit_many(queries)
            queue.flush()
            queue.swap_payload(payloads[1])
        results = [f.result(timeout=30) for f in futures]

    expected_version = 0 if timing == "after" else 1
    assert {r.model_version for r in results} == {expected_version}
    assert [r.decision_value for r in results] == list(
        references[expected_version]
    )


# ----------------------------------------------------------------------
# Relation 3: the response memo never answers for a dead model generation.
# ----------------------------------------------------------------------
def test_memo_does_not_leak_across_swap(payloads, queries, references):
    repeat = np.vstack([queries, queries])  # second half = guaranteed memo hits
    with AsyncServingQueue(
        StreamingNystroemClassifier.from_serving_payload(payloads[0]),
        max_batch=8,
        max_wait_ms=2.0,
    ) as queue:
        warm = [f.result(timeout=30) for f in queue.submit_many(repeat)]
        assert queue.memo_hits > 0
        queue.swap_payload(payloads[1])
        fresh = [f.result(timeout=30) for f in queue.submit_many(queries)]
    assert [r.decision_value for r in warm[: len(queries)]] == list(references[0])
    # Post-swap answers must be the new model's, not memoised v0 responses.
    assert [r.decision_value for r in fresh] == list(references[1])


# ----------------------------------------------------------------------
# Relation 4: fleet swap agrees across replica counts, policies aside.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_replicas", [1, 2, 3])
def test_router_swap_across_replica_counts(
    payloads, queries, references, num_replicas
):
    with ReplicaRouter(
        payloads[0],
        num_replicas=num_replicas,
        policy="round-robin",
        max_batch=4,
        max_wait_ms=2.0,
    ) as router:
        before = [f.result(timeout=30) for f in router.submit_many(queries)]
        version = router.swap_payload(payloads[1])
        router.flush()
        after = [f.result(timeout=30) for f in router.submit_many(queries)]
    assert version == 1 and router.swap_count == 1
    assert [r.decision_value for r in before] == list(references[0])
    assert [r.decision_value for r in after] == list(references[1])
    assert {r.model_version for r in after} == {1}


# ----------------------------------------------------------------------
# Relation 5: warm start from the durable tier serves the swap identically
# to a cold fleet.
# ----------------------------------------------------------------------
def test_swap_agrees_across_warm_and_cold_starts(
    payloads, queries, references, tmp_path
):
    outputs = {}
    for label, root in (("cold", None), ("warm", tmp_path / "snapshots")):
        if root is not None:
            # Populate the snapshot the warm fleet will restore from.
            with ReplicaRouter(
                payloads[0], num_replicas=2, persistence_root=root,
                max_batch=4, max_wait_ms=2.0,
            ) as seeder:
                [f.result(timeout=30) for f in seeder.submit_many(queries)]
                seeder.snapshot()
        with ReplicaRouter(
            payloads[0], num_replicas=2, persistence_root=root,
            max_batch=4, max_wait_ms=2.0,
        ) as router:
            router.swap_payload(payloads[1])
            outputs[label] = [
                f.result(timeout=30).decision_value
                for f in router.submit_many(queries)
            ]
    assert outputs["cold"] == outputs["warm"] == list(references[1])


# ----------------------------------------------------------------------
# Relation 6: a stream split across a swap partitions exactly at the
# recorded version boundary.
# ----------------------------------------------------------------------
def test_stream_partitions_at_swap_version(payloads, queries, references):
    with AsyncServingQueue(
        StreamingNystroemClassifier.from_serving_payload(payloads[0]),
        max_batch=8,
        max_wait_ms=2.0,
    ) as queue:
        futures = list(queue.submit_many(queries[:12]))
        queue.flush()
        queue.swap_payload(payloads[1])
        futures += list(queue.submit_many(queries[12:]))
        results = [f.result(timeout=30) for f in futures]

    versions = [r.model_version for r in results]
    assert versions == sorted(versions)  # monotone: no answer regresses
    for i, result in enumerate(results):
        assert result.decision_value == references[result.model_version][i]
    # The concatenation property: old-version answers are exactly the old
    # model's on the head, new-version answers the new model's on the tail.
    boundary = versions.index(1)
    assert list(references[0][:boundary]) == [
        r.decision_value for r in results[:boundary]
    ]
    assert list(references[1][boundary:]) == [
        r.decision_value for r in results[boundary:]
    ]


# ----------------------------------------------------------------------
# Guards: versions are strictly monotone; a closed queue cannot swap.
# ----------------------------------------------------------------------
def test_swap_rejects_stale_versions_and_closed_queue(payloads, queries):
    with AsyncServingQueue(
        StreamingNystroemClassifier.from_serving_payload(payloads[0]),
        max_batch=4,
        max_wait_ms=2.0,
    ) as queue:
        queue.swap_payload(payloads[1], version=5)
        with pytest.raises(ServingError, match="version"):
            queue.swap_payload(payloads[0], version=5)
        with pytest.raises(ServingError, match="version"):
            queue.swap_payload(payloads[0], version=3)
        assert queue.model_version == 5
    with pytest.raises(ServingError, match="closed"):
        queue.swap_payload(payloads[0])
