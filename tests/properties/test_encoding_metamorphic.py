"""Metamorphic relations of the batched encoding path.

The batched encoding contract mirrors the overlap path's: *how* a set of
feature vectors is encoded -- one at a time, in one stacked sweep, chunked,
reordered, or interleaved with cache hits -- must not move a single bit of
any state, kernel entry or served prediction.  Every equivalence below is
exact (``tobytes()`` / ``np.array_equal``), not approximate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx import LinearSVC, NystroemConfig, NystroemFeatureMap
from repro.approx.streaming import StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine
from repro.serving import AsyncServingQueue

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=2, layers=1, gamma=0.7)


def _states_bytes(states):
    return [tuple(t.tobytes() for t in s.tensors) for s in states]


def _engine(batch_encoding=True, encode_batch_size=32, use_cache=False):
    return KernelEngine(
        ANSATZ,
        config=EngineConfig(
            use_cache=use_cache,
            batch_encoding=batch_encoding,
            encode_batch_size=encode_batch_size,
        ),
    )


# ----------------------------------------------------------------------
# Engine-level invariances (hypothesis-driven)
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=9),
    chunk=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_chunk_size_invariance(rows, chunk, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.05, 1.95, size=(rows, 4))
    sequential = _engine(batch_encoding=False).encode_rows(X)
    chunked = _engine(encode_batch_size=chunk).encode_rows(X)
    assert _states_bytes(sequential) == _states_bytes(chunked)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_permutation_invariance(seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.05, 1.95, size=(7, 4))
    perm = rng.permutation(7)
    direct = _states_bytes(_engine().encode_rows(X))
    permuted = _states_bytes(_engine().encode_rows(X[perm]))
    assert [direct[i] for i in perm] == permuted


def test_duplicate_rows_encode_identically(rng):
    X = rng.uniform(0.05, 1.95, size=(6, 4))
    X[3] = X[0]
    X[5] = X[0]
    states = _engine().encode_rows(X)
    blobs = _states_bytes(states)
    assert blobs[3] == blobs[0]
    assert blobs[5] == blobs[0]


def test_cache_occupancy_does_not_change_states(rng):
    X = rng.uniform(0.05, 1.95, size=(8, 4))
    cold = _engine(use_cache=True)
    cold_states = _states_bytes(cold.encode_rows(X))

    warm = _engine(use_cache=True)
    warm.encode_rows(X[:3])  # pre-populate part of the store
    warm.backend.reset_counters()
    warm_states = _states_bytes(warm.encode_rows(X))
    assert warm_states == cold_states
    # Cache-aware batching: only the 5 unseen rows were simulated.
    assert warm.backend.num_simulations == 5


def test_gram_invariant_under_batch_encoding(rng):
    X = rng.uniform(0.05, 1.95, size=(7, 4))
    K_seq = _engine(batch_encoding=False).gram(X).matrix
    K_bat = _engine(encode_batch_size=3).gram(X).matrix
    assert np.array_equal(K_seq, K_bat)


# ----------------------------------------------------------------------
# Served predictions through the queue cold path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_parts():
    """Fitted map + model, rebuilt per-classifier with a chosen engine."""
    rng = np.random.default_rng(7)
    X = rng.uniform(0.05, 1.95, size=(24, 4))
    y = (X.mean(axis=1) > 1.0).astype(int)
    return X, y


def _classifier(fitted_parts, batch_encoding):
    X, y = fitted_parts
    engine = KernelEngine(
        ANSATZ,
        config=EngineConfig(use_cache=True, batch_encoding=batch_encoding),
    )
    feature_map = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=6, seed=0))
    phi = feature_map.fit_transform(X)
    model = LinearSVC(C=1.0).fit(phi, y)
    return StreamingNystroemClassifier(feature_map, model, buffer_size=8)


@pytest.fixture(scope="module")
def cold_stream():
    # Entirely-unseen rows: every request exercises the cold encode path.
    return np.random.default_rng(23).uniform(0.05, 1.95, size=(20, 4))


def _serve(classifier, stream, max_batch):
    with AsyncServingQueue(
        classifier, max_batch=max_batch, max_wait_ms=20.0, memoize=False, seed=0
    ) as queue:
        futures = queue.submit_many(stream)
        return np.array([f.result(timeout=120).decision_value for f in futures])


def test_cold_predictions_invariant_under_coalescing(fitted_parts, cold_stream):
    """Batch size of the queue must not move a bit of any cold prediction."""
    one = _serve(_classifier(fitted_parts, True), cold_stream, max_batch=1)
    many = _serve(_classifier(fitted_parts, True), cold_stream, max_batch=16)
    assert np.array_equal(one, many)


def test_cold_predictions_invariant_under_batch_encoding(fitted_parts, cold_stream):
    """Stacked encoding must reproduce the per-point path bit for bit."""
    batched = _serve(_classifier(fitted_parts, True), cold_stream, max_batch=8)
    pointwise = _serve(_classifier(fitted_parts, False), cold_stream, max_batch=8)
    assert np.array_equal(batched, pointwise)


def test_cold_predictions_invariant_under_request_order(fitted_parts, cold_stream):
    classifier = _classifier(fitted_parts, True)
    direct = _serve(classifier, cold_stream, max_batch=8)
    perm = np.random.default_rng(3).permutation(len(cold_stream))
    permuted = _serve(_classifier(fitted_parts, True), cold_stream[perm], max_batch=8)
    assert np.array_equal(direct[perm], permuted)
