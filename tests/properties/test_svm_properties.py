"""Property-based tests for the SVM optimiser and preprocessing."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import gaussian_gram_matrix
from repro.svm import FeatureScaler, PrecomputedKernelSVC


data_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(6, 20), st.integers(1, 4)),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


@given(data_matrices, st.integers(0, 2**31 - 1), st.floats(min_value=0.05, max_value=5.0))
@settings(max_examples=30, deadline=None)
def test_svm_dual_feasibility_invariants(X, seed, C):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=X.shape[0])
    assume(0 < y.sum() < y.size)
    K = gaussian_gram_matrix(X, alpha=1.0)
    model = PrecomputedKernelSVC(C=C, max_iter=5000).fit(K, y)
    alpha = model.alpha_
    y_signed = np.where(y > 0, 1.0, -1.0)
    # Box constraints.
    assert np.all(alpha >= -1e-9)
    assert np.all(alpha <= C + 1e-9)
    # Equality constraint.
    assert abs(float(alpha @ y_signed)) < 1e-6
    # Support vectors identified consistently.
    assert set(model.support_) == set(np.where(alpha > 1e-12)[0])
    # Predictions are binary and have the right length.
    preds = model.predict(K)
    assert preds.shape == (X.shape[0],)
    assert set(np.unique(preds)) <= {0, 1}


@given(data_matrices)
@settings(max_examples=50, deadline=None)
def test_feature_scaler_output_interval_and_monotonicity(X):
    scaler = FeatureScaler()
    Xt = scaler.fit_transform(X)
    lo, hi = scaler.interval()
    assert np.all(Xt >= lo - 1e-12)
    assert np.all(Xt <= hi + 1e-12)
    # Per-feature (non-strict) monotonicity: sorting the rows by the original
    # value gives non-decreasing scaled values.  Strict order can collapse
    # when two inputs differ by less than the float scaling resolution.
    for col in range(X.shape[1]):
        order = np.argsort(X[:, col], kind="stable")
        assert np.all(np.diff(Xt[order, col]) >= -1e-9)


@given(data_matrices, st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_label_encoding_does_not_change_the_model(X, seed):
    """Training with labels in {0, 1} or {-1, +1} yields the same model."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=X.shape[0])
    assume(0 < y.sum() < y.size)
    K = gaussian_gram_matrix(X, alpha=1.0)
    m01 = PrecomputedKernelSVC(C=1.0, max_iter=5000, random_state=0).fit(K, y)
    mpm = PrecomputedKernelSVC(C=1.0, max_iter=5000, random_state=0).fit(
        K, np.where(y > 0, 1, -1)
    )
    assert np.allclose(m01.alpha_, mpm.alpha_)
    assert m01.intercept_ == mpm.intercept_
    assert np.array_equal(m01.predict(K), mpm.predict(K))
