"""Nondeterminism audit: seeded components must reproduce exactly.

Every landmark selector takes an explicit ``seed`` (integer or Generator)
and the serving queue takes ``seed`` / ``wait_jitter_ms``; two identical runs
must produce bit-identical outputs.  These are regression tests for that
audit -- any future selector or queue change that sneaks in fresh entropy
(or batch-composition-dependent numerics) fails here.
"""

import numpy as np
import pytest

from repro.approx import (
    NystroemConfig,
    NystroemFeatureMap,
    available_landmark_strategies,
    select_landmarks,
)
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.engine import KernelEngine


ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def features():
    rng = np.random.default_rng(99)
    return rng.uniform(0.1, 1.9, size=(30, 4))


@pytest.mark.parametrize("strategy", sorted(available_landmark_strategies()))
def test_selector_seed_reproducibility(features, strategy):
    first = select_landmarks(features, 6, strategy=strategy, seed=42)
    second = select_landmarks(features, 6, strategy=strategy, seed=42)
    assert np.array_equal(first, second)


@pytest.mark.parametrize("strategy", sorted(available_landmark_strategies()))
def test_selector_accepts_generator(features, strategy):
    """An explicit Generator is honoured (and consumed deterministically)."""
    a = select_landmarks(features, 6, strategy=strategy, seed=np.random.default_rng(7))
    b = select_landmarks(features, 6, strategy=strategy, seed=np.random.default_rng(7))
    assert np.array_equal(a, b)


def test_nystroem_fit_is_reproducible(features):
    def fit_once():
        fmap = NystroemFeatureMap(
            KernelEngine(ANSATZ),
            NystroemConfig(num_landmarks=6, strategy="kmeans", seed=3),
        )
        return fmap.fit_transform(features), fmap.landmark_indices_

    phi_a, idx_a = fit_once()
    phi_b, idx_b = fit_once()
    assert np.array_equal(idx_a, idx_b)
    assert np.array_equal(phi_a, phi_b)


def test_serving_queue_double_run_is_identical():
    """Two identical request streams -> bit-identical predictions.

    Wall-clock timing coalesces the two runs into different batch patterns,
    which must not matter: the engine's grouping-invariant sweep plus the
    row-wise projections make results independent of batching.
    """
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=21)),
        24,
        seed=1,
    )
    rng = np.random.default_rng(17)
    queries = rng.normal(size=(30, 4))

    def run_once():
        engine = QuantumKernelInferenceEngine(
            ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
        )
        engine.fit(data.features, data.labels)
        with engine.serving_queue(max_batch=5, max_wait_ms=1.0, seed=11) as queue:
            futures = queue.submit_many(queries)
            return [f.result(timeout=60).decision_value for f in futures]

    assert run_once() == run_once()
