"""Metamorphic relations of the serving layer.

Pointwise oracles are weak for approximate kernels: there is no closed-form
"right answer" for a Nystrom decision value.  Metamorphic relations sidestep
that by asserting how outputs must *relate* across transformed inputs
(Ba et al. 2025): coalescing must not change results, batch order must not
matter, duplicates must agree, and more spectral rank can only help
reconstruction.  All equivalences here are exact (``np.array_equal``), which
is the contract the engine's grouping-invariant batched sweep provides.
"""

import numpy as np
import pytest

from repro.approx import NystroemConfig, NystroemFeatureMap
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.engine import KernelEngine, StackedStateBlock


ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def served_engine():
    """A small fitted Nystrom-backed inference engine."""
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=11)),
        28,
        seed=3,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=8, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(77)
    return rng.normal(size=(24, 4))


# ----------------------------------------------------------------------
# Relation 1: coalesced flush == one-at-a-time classification.
# ----------------------------------------------------------------------
def test_batched_equals_sequential_classify(served_engine, queries):
    clf = served_engine.streaming_classifier()
    batched = clf.classify(queries)
    single_decisions = np.concatenate(
        [clf.classify(queries[i : i + 1]).decision_values for i in range(len(queries))]
    )
    single_rows = np.vstack(
        [clf.classify(queries[i : i + 1]).kernel_rows for i in range(len(queries))]
    )
    assert np.array_equal(batched.decision_values, single_decisions)
    assert np.array_equal(batched.kernel_rows, single_rows)


def test_queue_equals_sequential_classify(served_engine, queries):
    clf = served_engine.streaming_classifier()
    reference = clf.classify(queries)
    with served_engine.serving_queue(max_batch=7, max_wait_ms=2.0) as queue:
        futures = queue.submit_many(queries)
        results = [f.result(timeout=60) for f in futures]
    decisions = np.array([r.decision_value for r in results])
    predictions = np.array([r.prediction for r in results])
    assert np.array_equal(decisions, reference.decision_values)
    assert np.array_equal(predictions, reference.predictions)
    # The queue really did coalesce (some batch larger than one).
    assert max(r.batch_size for r in results) > 1


def test_queue_memo_returns_byte_identical_repeats(served_engine, queries):
    clf = served_engine.streaming_classifier()
    reference = clf.classify(queries)
    repeated = np.vstack([queries, queries[::-1]])
    with served_engine.serving_queue(max_batch=16, max_wait_ms=2.0) as queue:
        results = [f.result(timeout=60) for f in queue.submit_many(repeated)]
    decisions = np.array([r.decision_value for r in results])
    assert np.array_equal(decisions[: len(queries)], reference.decision_values)
    assert np.array_equal(decisions[len(queries) :], reference.decision_values[::-1])
    assert queue.memo_hits > 0


# ----------------------------------------------------------------------
# Relation 2: permutation invariance of the batch order.
# ----------------------------------------------------------------------
def test_permutation_invariance(served_engine, queries):
    clf = served_engine.streaming_classifier()
    reference = clf.classify(queries)
    rng = np.random.default_rng(5)
    for _ in range(3):
        perm = rng.permutation(len(queries))
        permuted = clf.classify(queries[perm])
        assert np.array_equal(permuted.decision_values, reference.decision_values[perm])
        assert np.array_equal(permuted.kernel_rows, reference.kernel_rows[perm])


# ----------------------------------------------------------------------
# Relation 3: duplicate inputs in one batch receive identical outputs.
# ----------------------------------------------------------------------
def test_duplicate_input_consistency(served_engine, queries):
    clf = served_engine.streaming_classifier()
    batch = np.vstack([queries[:6], queries[:6], queries[3:4]])
    result = clf.classify(batch)
    assert np.array_equal(result.decision_values[:6], result.decision_values[6:12])
    assert result.decision_values[12] == result.decision_values[3]
    single = clf.classify(queries[3:4])
    assert single.decision_values[0] == result.decision_values[3]


# ----------------------------------------------------------------------
# Relation 4: the block sweep is an exact rewrite of the generic plan path.
# ----------------------------------------------------------------------
def test_block_sweep_matches_plan_path(served_engine, queries):
    engine = served_engine.engine
    feature_map = served_engine._feature_map
    assert feature_map is not None
    states = feature_map.landmark_states_
    Xs = served_engine._scaler.transform(queries)
    with_block = engine.kernel_rows(
        Xs, states, block=StackedStateBlock(states)
    ).matrix
    without_block = engine.kernel_rows(Xs, states).matrix
    assert np.array_equal(with_block, without_block)


# ----------------------------------------------------------------------
# Relation 5: Nystrom reconstruction error is monotone in the rank.
# ----------------------------------------------------------------------
def test_rank_monotonicity_of_reconstruction_error():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=300, num_features=4, seed=9)),
        20,
        seed=1,
    )
    engine = KernelEngine(ANSATZ)
    from repro.svm import FeatureScaler

    Xs = FeatureScaler().fit_transform(data.features)
    K_exact = engine.gram(Xs).matrix
    m = 10
    errors = []
    for rank in (1, 2, 4, 8, m):
        fmap = NystroemFeatureMap(
            engine,
            NystroemConfig(num_landmarks=m, strategy="greedy", seed=0, rank=rank),
        )
        phi = fmap.fit_transform(Xs)
        errors.append(NystroemFeatureMap.reconstruction_error(K_exact, phi))
    for lower, higher in zip(errors[1:], errors[:-1]):
        assert lower <= higher + 1e-12, errors
    # The sweep is not vacuous: more rank must measurably help somewhere.
    assert errors[-1] < errors[0]
