"""Metamorphic properties of the replica router and the durable tier.

The serving contract extends to the fleet: routing policy, replica count and
warm-vs-cold start are *placement and latency* knobs, never prediction knobs.
Every test here serves the same query stream through differently shaped
fleets and requires ``np.array_equal`` -- byte identity, not closeness --
against the single-process streaming classifier.
"""

import numpy as np
import pytest

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.serving import ROUTING_POLICIES, ReplicaRouter

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)

REPLICA_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=29)),
        20,
        seed=4,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(71)
    # Duplicates exercise the memo and key-affinity paths.
    unique = rng.normal(size=(9, 4))
    return np.vstack([unique, unique[:3]])


@pytest.fixture(scope="module")
def reference(served_engine, queries):
    result = served_engine.streaming_classifier().classify(queries)
    return result.decision_values, result.predictions


def _serve(router: ReplicaRouter, queries: np.ndarray):
    futures = router.submit_many(queries)
    results = [f.result(timeout=60) for f in futures]
    decisions = np.array([r.decision_value for r in results])
    predictions = np.array([r.prediction for r in results])
    return decisions, predictions


@pytest.mark.parametrize("policy", sorted(ROUTING_POLICIES))
@pytest.mark.parametrize("num_replicas", REPLICA_COUNTS)
def test_predictions_invariant_to_policy_and_replica_count(
    payload, queries, reference, policy, num_replicas
):
    ref_decisions, ref_predictions = reference
    with ReplicaRouter(
        payload,
        num_replicas=num_replicas,
        policy=policy,
        max_batch=4,
        max_wait_ms=2.0,
    ) as router:
        decisions, predictions = _serve(router, queries)
        routed = router.metrics_view()["routed_per_replica"]
    assert np.array_equal(decisions, ref_decisions)
    assert np.array_equal(predictions, ref_predictions)
    assert sum(routed) == len(queries)


@pytest.mark.parametrize("num_replicas", REPLICA_COUNTS)
def test_predictions_invariant_to_warm_vs_cold_start(
    payload, queries, reference, num_replicas, tmp_path
):
    ref_decisions, _ = reference
    root = tmp_path / "tier"

    # Cold fleet: every unique query is simulated, then snapshotted.
    with ReplicaRouter(
        payload,
        num_replicas=num_replicas,
        policy="least-depth",
        persistence_root=root,
        max_batch=4,
        max_wait_ms=2.0,
    ) as cold:
        assert all(r.available == 0 for r in cold.warm_up_reports)
        cold_decisions, _ = _serve(cold, queries)
        cold.close(snapshot=True)
    assert np.array_equal(cold_decisions, ref_decisions)

    # Warm fleet: restarted over the same root; serves simulation-free.
    with ReplicaRouter(
        payload,
        num_replicas=num_replicas,
        policy="least-depth",
        persistence_root=root,
        max_batch=4,
        max_wait_ms=2.0,
    ) as warm:
        assert all(r.loaded == r.available > 0 for r in warm.warm_up_reports)
        warm_decisions, _ = _serve(warm, queries)
        for store in warm.replica_stores:
            assert store.stats().misses == 0
    assert np.array_equal(warm_decisions, ref_decisions)


def test_mid_stream_replica_death_never_changes_survivor_output(
    payload, queries, reference
):
    ref_decisions, _ = reference
    router = ReplicaRouter(
        payload, num_replicas=3, policy="round-robin", max_batch=4, max_wait_ms=2.0
    )
    try:
        half = len(queries) // 2
        first, _ = _serve(router, queries[:half])
        router.kill_replica(1)
        second, _ = _serve(router, queries[half:])
        decisions = np.concatenate([first, second])
    finally:
        router.close()
    assert np.array_equal(decisions, ref_decisions)
