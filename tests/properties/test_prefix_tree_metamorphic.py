"""Metamorphic relations of the prefix-sharing encode tree.

The prefix tree lets circuits of *different* structures share the stacked
sweep of their common gate prefix, forking only where their target schedules
diverge.  Its contract is the batched-encoding contract unchanged: no matter
how a batch is composed, permuted, partitioned by structure, or interleaved
with cache hits -- and whether prefix sharing is on or off -- every returned
state is bit-identical to per-point :meth:`MPS.apply_circuit` simulation.
What the tree is *allowed* to change is the launch count: mixed batches with
a shared prefix must issue strictly fewer stacked gate applications.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import CpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig, SimulationConfig
from repro.engine import EngineConfig, KernelEngine
from repro.mps import (
    MPS,
    TruncationPolicy,
    circuit_prefix_tokens,
    encode_circuits,
)
from repro.mps.encoding import GateShapeLog

# A prefix family: the layers=1 circuit's gate sequence is a strict prefix of
# the layers=2 circuit's, and the d=2 schedule shares the d=1 schedule's
# opening H + RZ + nearest-neighbour block before diverging.
BASE = dict(num_features=5, gamma=0.8)
ANSATZE = [
    AnsatzConfig(interaction_distance=1, layers=1, **BASE),
    AnsatzConfig(interaction_distance=1, layers=2, **BASE),
    AnsatzConfig(interaction_distance=2, layers=1, **BASE),
]


def _mixed_circuits(rng, counts=(3, 3, 3)):
    circuits = []
    for ansatz, count in zip(ANSATZE, counts):
        for row in rng.uniform(0.05, 1.95, size=(count, 5)):
            circuits.append(build_feature_map_circuit(row, ansatz))
    return circuits


def _reference_states(circuits):
    out = []
    for circuit in circuits:
        state = MPS.zero_state(circuit.num_qubits, TruncationPolicy())
        state.apply_circuit(circuit)
        out.append(state)
    return out


def _blobs(states):
    return [tuple(t.tobytes() for t in s.tensors) for s in states]


# ----------------------------------------------------------------------
# Bit-identicality
# ----------------------------------------------------------------------
def test_mixed_structure_batch_bit_identical_to_per_point(rng):
    circuits = _mixed_circuits(rng)
    tree = encode_circuits(circuits, prefix_sharing=True)
    assert _blobs(tree) == _blobs(_reference_states(circuits))


def test_prefix_sharing_toggle_is_invisible_in_the_states(rng):
    circuits = _mixed_circuits(rng)
    with_tree = encode_circuits(circuits, prefix_sharing=True)
    without = encode_circuits(circuits, prefix_sharing=False)
    assert _blobs(with_tree) == _blobs(without)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_batch_permutation_invariance(seed):
    rng = np.random.default_rng(seed)
    circuits = _mixed_circuits(rng, counts=(2, 3, 2))
    perm = rng.permutation(len(circuits))
    direct = _blobs(encode_circuits(circuits))
    permuted = _blobs(encode_circuits([circuits[i] for i in perm]))
    assert [direct[i] for i in perm] == permuted


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    split=st.integers(min_value=1, max_value=8),
)
def test_prefix_group_partitioning(seed, split):
    """Splitting a batch at any point yields the same states as the union:
    fork scheduling must be value-free."""
    rng = np.random.default_rng(seed)
    circuits = _mixed_circuits(rng)
    together = _blobs(encode_circuits(circuits))
    apart = _blobs(encode_circuits(circuits[:split])) + _blobs(
        encode_circuits(circuits[split:])
    )
    assert together == apart


def test_truncating_policy_rides_the_tree(rng):
    """Forks slice truncated stacks too: a lossy policy stays bit-identical
    to its per-point application."""
    policy = TruncationPolicy(max_bond_dim=4, allow_lossy_cap=True)
    ansatz = AnsatzConfig(num_features=6, interaction_distance=3, layers=2, gamma=1.0)
    circuits = [
        build_feature_map_circuit(row, a)
        for a in (ansatz, AnsatzConfig(num_features=6, interaction_distance=3, layers=1, gamma=1.0))
        for row in rng.uniform(0.05, 1.95, size=(3, 6))
    ]
    tree = encode_circuits(circuits, policy=policy)
    expected = []
    for circuit in circuits:
        state = MPS.zero_state(circuit.num_qubits, policy)
        state.apply_circuit(circuit)
        expected.append(state)
    assert _blobs(tree) == _blobs(expected)
    for a, e in zip(tree, expected):
        assert a.cumulative_discarded_weight == e.cumulative_discarded_weight


# ----------------------------------------------------------------------
# Sharing accounting
# ----------------------------------------------------------------------
def test_prefix_family_shares_launches_and_records_forks(rng):
    circuits = _mixed_circuits(rng)
    log_tree = GateShapeLog()
    encode_circuits(circuits, log=log_tree, prefix_sharing=True)
    log_flat = GateShapeLog()
    encode_circuits(circuits, log=log_flat, prefix_sharing=False)

    assert log_tree.structure_groups == 3
    assert log_flat.structure_groups == 3
    # The three ansatze share the H + RZ + nearest-neighbour prefix, so the
    # tree issues strictly fewer stacked gate applications ...
    assert log_tree.stacked_launches < log_flat.stacked_launches
    # ... and records where the sweeps diverged.
    assert log_tree.prefix_forks >= 2
    assert log_flat.prefix_forks == 0


def test_uniform_batch_never_forks(rng):
    X = rng.uniform(0.05, 1.95, size=(6, 5))
    circuits = [build_feature_map_circuit(row, ANSATZE[0]) for row in X]
    log = GateShapeLog()
    encode_circuits(circuits, log=log, prefix_sharing=True)
    assert log.prefix_forks == 0
    assert log.structure_groups == 1


def test_prefix_tokens_agree_exactly_on_the_shared_prefix(rng):
    rows = rng.uniform(0.05, 1.95, size=(2, 5))
    short = circuit_prefix_tokens(build_feature_map_circuit(rows[0], ANSATZE[0]))
    long = circuit_prefix_tokens(build_feature_map_circuit(rows[1], ANSATZE[1]))
    # layers=1 is a strict gate-schedule prefix of layers=2.
    assert len(short) < len(long)
    assert long[: len(short)] == short


# ----------------------------------------------------------------------
# Through the backend and the engine (counters + cache occupancy)
# ----------------------------------------------------------------------
def test_backend_counters_invariant_under_prefix_sharing(rng):
    circuits = _mixed_circuits(rng, counts=(2, 2, 2))
    with_tree = CpuBackend(SimulationConfig())
    without = CpuBackend(SimulationConfig())
    r_tree = with_tree.simulate_batch(circuits, prefix_sharing=True)
    r_flat = without.simulate_batch(circuits, prefix_sharing=False)
    assert _blobs(r_tree.states) == _blobs(r_flat.states)
    # Per-point accounting is batching-invariant: same modelled seconds and
    # simulation count either way ...
    assert with_tree.num_simulations == without.num_simulations
    assert with_tree.modelled_simulation_time_s == pytest.approx(
        without.modelled_simulation_time_s
    )
    # ... while the stacked launch model credits the shared prefix.
    assert (
        with_tree.modelled_batched_simulation_time_s
        < without.modelled_batched_simulation_time_s
    )


def test_cache_occupancy_does_not_change_tree_states(rng):
    """Warm store entries only shrink the encoded subset; the remaining cold
    rows still tree-share and match the cold encode bit for bit."""
    ansatz = ANSATZE[1]
    X = rng.uniform(0.05, 1.95, size=(8, 5))
    cold = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    cold_states = _blobs(cold.encode_rows(X))

    warm = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    warm.encode_rows(X[2:5])
    warm.backend.reset_counters()
    warm_states = _blobs(warm.encode_rows(X))
    assert warm_states == cold_states
    assert warm.backend.num_simulations == 5
