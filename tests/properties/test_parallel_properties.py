"""Property-based tests for tiling and the distribution strategies."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    NoMessagingStrategy,
    RoundRobinStrategy,
    partition_indices,
    square_tiling,
    tiles_cover_matrix,
)


class ToyWorker:
    """States are indices; kernel value is a deterministic function of them."""

    def simulate(self, index):
        return index, 1.0

    def inner_product(self, a, b):
        return 1.0 / (1.0 + abs(a - b)), 0.1

    @staticmethod
    def state_nbytes(state):
        return 32


def _expected(n):
    K = np.eye(n)
    for i in range(n):
        for j in range(n):
            if i != j:
                K[i, j] = 1.0 / (1.0 + abs(i - j))
    return K


@given(st.integers(1, 64), st.integers(1, 16))
@settings(max_examples=100, deadline=None)
def test_partition_is_a_disjoint_cover(n, k):
    if k > n:
        k = n
    blocks = partition_indices(n, k)
    concatenated = np.concatenate(blocks)
    assert np.array_equal(np.sort(concatenated), np.arange(n))
    assert len(blocks) == k
    sizes = [b.size for b in blocks]
    assert max(sizes) - min(sizes) <= 1  # near-equal


@given(st.integers(2, 40), st.integers(1, 8), st.booleans())
@settings(max_examples=80, deadline=None)
def test_square_tiling_covers_exactly_once(n, num_blocks, symmetric):
    num_blocks = min(num_blocks, n)
    tiles = square_tiling(n, num_blocks, symmetric=symmetric)
    assert tiles_cover_matrix(tiles, n, symmetric=symmetric)


@given(st.integers(2, 20), st.integers(1, 6), st.booleans())
@settings(max_examples=40, deadline=None)
def test_strategies_always_reconstruct_the_full_matrix(n, k, use_round_robin):
    strategy = (RoundRobinStrategy if use_round_robin else NoMessagingStrategy)(k)
    result = strategy.compute(ToyWorker(), n)
    assert np.allclose(result.matrix, _expected(n))
    # Exactly one inner product per unordered pair across all processes.
    assert result.total_inner_products == n * (n - 1) // 2


@given(st.integers(2, 20), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_round_robin_never_duplicates_simulations(n, k):
    class CountingWorker(ToyWorker):
        def __init__(self):
            self.simulated = []

        def simulate(self, index):
            self.simulated.append(index)
            return index, 1.0

    worker = CountingWorker()
    RoundRobinStrategy(k).compute(worker, n)
    assert sorted(worker.simulated) == list(range(n))
