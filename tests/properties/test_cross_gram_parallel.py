"""Properties of the distributed (rect-tiled) cross-Gram fan-out.

The acceptance bar for the distributed Nystrom path is *exactness*: fanning
the ``K_nm`` tiles over workers must reproduce the serial
:class:`~repro.engine.plan.CrossGramPlan` Gram **bit for bit**, for arbitrary
shapes, ragged last tiles and the degenerate ``1 x m`` / ``n x 1`` cases.
The in-parent mode (``max_workers <= 1``) runs the identical worker code
path, so the randomized sweep exercises it cheaply, while a dedicated test
runs a real two-worker process pool.
"""

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine
from repro.parallel import (
    MultiprocessCrossGramComputer,
    NoMessagingCrossStrategy,
    compute_cross_distributed,
    rect_tiling,
    tiles_cover_matrix,
)


ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def serial_engine():
    return KernelEngine(ANSATZ)


def _reference_cross(engine, X_rows, X_cols):
    states = engine.encode_rows(X_cols)
    return engine.cross(X_rows, states).matrix, states


def test_random_shapes_bit_for_bit(serial_engine):
    """Fan-out == serial cross plan exactly, over random (ragged) shapes."""
    rng = np.random.default_rng(123)
    for _ in range(6):
        n = int(rng.integers(1, 9))
        m = int(rng.integers(1, 6))
        blocks = int(rng.integers(1, 4))
        X_rows = rng.uniform(0.1, 1.9, size=(n, 4))
        X_cols = rng.uniform(0.1, 1.9, size=(m, 4))
        reference, col_states = _reference_cross(serial_engine, X_rows, X_cols)
        computer = MultiprocessCrossGramComputer(
            ANSATZ, max_workers=1, num_blocks=blocks
        )
        fanned = computer.compute(X_rows, col_states)
        assert fanned.shape == (n, m)
        assert np.array_equal(fanned, reference), (n, m, blocks)


@pytest.mark.parametrize("shape", [(1, 4), (5, 1), (1, 1)])
def test_degenerate_shapes_bit_for_bit(serial_engine, shape):
    n, m = shape
    rng = np.random.default_rng(7)
    X_rows = rng.uniform(0.1, 1.9, size=(n, 4))
    X_cols = rng.uniform(0.1, 1.9, size=(m, 4))
    reference, col_states = _reference_cross(serial_engine, X_rows, X_cols)
    fanned = MultiprocessCrossGramComputer(ANSATZ, max_workers=1).compute(
        X_rows, col_states
    )
    assert np.array_equal(fanned, reference)


def test_two_worker_pool_bit_for_bit(serial_engine):
    """A real two-process pool reproduces the serial cross-Gram exactly."""
    rng = np.random.default_rng(42)
    X_rows = rng.uniform(0.1, 1.9, size=(6, 4))
    X_cols = rng.uniform(0.1, 1.9, size=(3, 4))
    reference, col_states = _reference_cross(serial_engine, X_rows, X_cols)
    computer = MultiprocessCrossGramComputer(ANSATZ, max_workers=2, num_blocks=2)
    fanned, stats = computer.compute_with_stats(X_rows, col_states)
    assert np.array_equal(fanned, reference)
    # Workers encoded only row circuits; the shipped columns are attached.
    assert stats["num_inner_products"] == 6 * 3
    assert stats["num_simulations"] <= 6 * 2  # rows re-simulated per stripe


def test_engine_multiprocess_cross_matches_sequential(serial_engine):
    rng = np.random.default_rng(3)
    X_rows = rng.uniform(0.1, 1.9, size=(5, 4))
    X_cols = rng.uniform(0.1, 1.9, size=(4, 4))
    reference, col_states = _reference_cross(serial_engine, X_rows, X_cols)
    engine = KernelEngine(
        ANSATZ, config=EngineConfig(executor="multiprocess", max_workers=2, num_blocks=2)
    )
    result = engine.cross(X_rows, col_states)
    assert np.array_equal(result.matrix, reference)
    assert result.num_inner_products == 5 * 4


def test_rect_tiles_cover_random_shapes():
    rng = np.random.default_rng(11)
    for _ in range(25):
        n = int(rng.integers(1, 12))
        m = int(rng.integers(1, 12))
        rb = int(rng.integers(1, n + 1))
        cb = int(rng.integers(1, m + 1))
        owners = int(rng.integers(1, 5))
        tiles = rect_tiling(n, m, rb, cb, num_owners=owners)
        assert tiles_cover_matrix(tiles, n, symmetric=False, num_cols=m)
        assert all(0 <= t.owner < owners for t in tiles)


def test_modeled_cross_strategy_matches_reference(serial_engine):
    rng = np.random.default_rng(19)
    X_rows = rng.uniform(0.1, 1.9, size=(6, 4))
    X_cols = rng.uniform(0.1, 1.9, size=(3, 4))
    reference, _ = _reference_cross(serial_engine, X_rows, X_cols)
    result = compute_cross_distributed(X_rows, X_cols, ANSATZ, num_processes=3)
    assert result.matrix.shape == (6, 3)
    assert np.allclose(result.matrix, reference, atol=1e-12)
    assert result.total_inner_products == 6 * 3
    # Every active process charged its own simulations (no-messaging).
    assert result.total_simulations >= max(6, 3)


def test_modeled_cross_strategy_accounting_is_complete(serial_engine):
    """Per-process inner products sum to the full rectangle, once each."""
    rng = np.random.default_rng(21)
    X_rows = rng.uniform(0.1, 1.9, size=(7, 4))
    X_cols = rng.uniform(0.1, 1.9, size=(4, 4))
    result = compute_cross_distributed(X_rows, X_cols, ANSATZ, num_processes=4)
    assert sum(p.num_inner_products for p in result.per_process) == 7 * 4
    assert result.strategy == "no-messaging-cross"


def test_cross_strategy_rejects_bad_dimensions():
    from repro.exceptions import ParallelError

    strategy = NoMessagingCrossStrategy(2)
    with pytest.raises(ParallelError):
        strategy.compute(None, 4)  # num_cols missing
    with pytest.raises(ParallelError):
        strategy.compute(None, 0, 3)
