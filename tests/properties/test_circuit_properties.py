"""Property-based tests for the circuit layer: ansatz, routing, scheduling."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    GateKind,
    build_feature_map_circuit,
    build_interaction_graph,
    feature_map_angles,
    route_to_linear_chain,
)
from repro.circuits.routing import is_routed, swap_overhead
from repro.circuits.scheduling import circuit_depth, schedule_commuting_layers
from repro.config import AnsatzConfig
from repro.mps import MPS
from repro.statevector import StatevectorSimulator, statevector_fidelity


@st.composite
def ansatz_configs(draw):
    """Valid ansatz configurations (d strictly smaller than m)."""
    num_features = draw(st.integers(min_value=2, max_value=7))
    interaction_distance = draw(
        st.integers(min_value=1, max_value=min(3, num_features - 1))
    )
    return AnsatzConfig(
        num_features=num_features,
        interaction_distance=interaction_distance,
        layers=draw(st.integers(min_value=1, max_value=3)),
        gamma=draw(st.floats(min_value=0.05, max_value=1.5, allow_nan=False)),
    )


@given(ansatz_configs(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_ansatz_gate_counts_match_formulas(config, seed):
    """Gate counts follow directly from m, d, r and the interaction graph."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.05, 1.95, size=config.num_features)
    circuit = build_feature_map_circuit(x, config, routed=False)
    edges = build_interaction_graph(
        config.num_features, config.interaction_distance
    ).number_of_edges()
    assert circuit.count_kind(GateKind.H) == config.num_features
    assert circuit.count_kind(GateKind.RZ) == config.layers * config.num_features
    assert circuit.count_kind(GateKind.RXX) == config.layers * edges
    # Routing adds exactly the SWAP overhead formula's count.
    routed = route_to_linear_chain(circuit)
    assert routed.count_kind(GateKind.SWAP) == swap_overhead(circuit)
    assert is_routed(routed)


@given(ansatz_configs(), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_routed_and_unrouted_circuits_prepare_the_same_state(config, seed):
    """Routing (and depth scheduling) never changes the prepared state."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.05, 1.95, size=config.num_features)
    routed = build_feature_map_circuit(x, config, routed=True, scheduled=True)
    unrouted = build_feature_map_circuit(x, config, routed=False, scheduled=False)

    mps = MPS.zero_state(config.num_features)
    mps.apply_circuit(routed)
    sv = StatevectorSimulator(config.num_features)
    sv.apply_circuit(unrouted)
    assert abs(statevector_fidelity(mps.to_statevector(), sv.statevector) - 1.0) < 1e-8


@given(ansatz_configs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_angles_are_bounded_by_gamma(config, seed):
    """RZ angles are bounded by 2*gamma*max(x) and RXX by gamma^2*pi."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 2.0, size=config.num_features)
    angles = feature_map_angles(x, config)
    assert np.all(np.abs(angles.rz_angles) <= 2 * config.gamma * 2.0 + 1e-12)
    for theta in angles.rxx_angles.values():
        assert abs(theta) <= config.gamma**2 * np.pi + 1e-12


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_scheduling_preserves_operations_and_never_increases_depth(m, d):
    if d >= m:
        d = m - 1
    graph = build_interaction_graph(m, d)
    from repro.circuits import Operation

    ops = [Operation(GateKind.RXX, (i, j), angle=0.1) for i, j in sorted(graph.edges())]
    scheduled = schedule_commuting_layers(ops, m)
    assert sorted(op.qubits for op in scheduled) == sorted(op.qubits for op in ops)
    assert circuit_depth(scheduled) <= circuit_depth(ops)
