"""Property-based tests for the unified kernel engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.backends import CpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine, SymmetricGramPlan
from repro.kernels import is_positive_semidefinite


ANSATZ = AnsatzConfig(num_features=3, interaction_distance=1, layers=1, gamma=0.6)

feature_rows = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 4), st.just(3)),
    elements=st.floats(min_value=0.05, max_value=1.95, allow_nan=False),
)


def _reference_gram(X):
    """Sequential double loop over raw MPS inner products (no engine)."""
    backend = CpuBackend()
    states = [
        backend.simulate(build_feature_map_circuit(row, ANSATZ)).state for row in X
    ]
    n = len(states)
    K = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            K[i, j] = K[j, i] = abs(states[i].inner_product(states[j])) ** 2
    return K


@given(feature_rows)
@settings(max_examples=15, deadline=None)
def test_engine_gram_is_symmetric_unit_diagonal_and_matches_reference(X):
    result = KernelEngine(ANSATZ, config=EngineConfig(batch_size=3)).gram(X)
    K = result.matrix
    n = X.shape[0]
    assert K.shape == (n, n)
    assert np.array_equal(K, K.T)  # mirroring is exact, not approximate
    assert np.allclose(np.diag(K), 1.0, atol=1e-12)
    assert np.all(K >= -1e-12) and np.all(K <= 1.0 + 1e-12)
    assert is_positive_semidefinite(K, atol=1e-7)
    assert np.allclose(K, _reference_gram(X), atol=1e-12)


@given(feature_rows, st.integers(1, 7))
@settings(max_examples=10, deadline=None)
def test_batch_size_never_changes_the_result(X, batch_size):
    base = KernelEngine(ANSATZ).gram(X).matrix
    chunked = KernelEngine(
        ANSATZ, config=EngineConfig(batch_size=batch_size)
    ).gram(X).matrix
    assert np.allclose(base, chunked, atol=1e-13)


@given(feature_rows)
@settings(max_examples=10, deadline=None)
def test_cached_engine_matches_uncached_engine(X):
    uncached = KernelEngine(ANSATZ).gram(X).matrix
    engine = KernelEngine(ANSATZ, config=EngineConfig(use_cache=True))
    engine.gram(X)  # warm the store
    cached = engine.gram(X)
    assert cached.num_simulations == 0
    assert np.allclose(cached.matrix, uncached, atol=1e-13)


@given(st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_symmetric_plan_covers_strict_upper_triangle_exactly_once(n):
    plan = SymmetricGramPlan(n)
    covered = np.zeros((n, n), dtype=int)
    for job in plan.jobs():
        covered[job.row, job.col] += 1
    assert np.array_equal(covered, np.triu(np.ones((n, n), dtype=int), k=1))
    assert plan.num_pairs == n * (n - 1) // 2
