"""Unit tests for the timing helpers."""

import time

import pytest

from repro.profiling import Timer, timed


def test_timer_sections_accumulate():
    timer = Timer()
    with timer.section("work"):
        time.sleep(0.01)
    with timer.section("work"):
        time.sleep(0.01)
    assert timer.total("work") >= 0.02
    assert timer.counts["work"] == 2
    assert timer.mean("work") == pytest.approx(timer.total("work") / 2)
    assert "work" in timer.summary()


def test_timer_manual_add_and_missing_sections():
    timer = Timer()
    timer.add("simulation", 1.5)
    timer.add("simulation", 0.5)
    assert timer.total("simulation") == pytest.approx(2.0)
    assert timer.total("unknown") == 0.0
    assert timer.mean("unknown") == 0.0


def test_timer_records_despite_exception():
    timer = Timer()
    with pytest.raises(ValueError):
        with timer.section("failing"):
            raise ValueError("boom")
    assert timer.counts["failing"] == 1


def test_timed_decorator_returns_result_and_elapsed():
    @timed
    def slow_add(a, b):
        time.sleep(0.005)
        return a + b

    result, elapsed = slow_add(2, 3)
    assert result == 5
    assert elapsed >= 0.005
    assert slow_add.__name__ == "slow_add"
