"""Regression tests: percentile getters fail loudly instead of numpy-crashing."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.profiling import RouterMetrics, ServingMetrics


def _metrics_with_latencies(latencies):
    metrics = ServingMetrics()
    for latency in latencies:
        metrics.record_enqueue(1, 0.0)
    metrics.record_batch(list(latencies), wall_s=0.01, now=1.0)
    return metrics


# ----------------------------------------------------------------------
# Empty-sample guards (the regression: numpy warning / crash before)
# ----------------------------------------------------------------------
def test_latency_percentile_empty_raises_repro_error():
    metrics = ServingMetrics()
    with pytest.raises(ReproError, match="no completed requests"):
        metrics.latency_percentile(50.0)
    with pytest.raises(ReproError):
        _ = metrics.p50_latency_s
    with pytest.raises(ReproError):
        _ = metrics.p99_latency_s


def test_mean_batch_size_empty_raises_repro_error():
    with pytest.raises(ReproError, match="no flushed batches"):
        _ = ServingMetrics().mean_batch_size


def test_throughput_empty_raises_repro_error():
    with pytest.raises(ReproError, match="no completed requests"):
        _ = ServingMetrics().throughput_rps


def test_fleet_percentile_empty_raises_repro_error():
    router = RouterMetrics([ServingMetrics(), ServingMetrics()])
    with pytest.raises(ReproError, match="no replica has completed"):
        router.fleet_latency_percentile(99.0)


# ----------------------------------------------------------------------
# Out-of-range percentiles raise ReproError, not numpy's ValueError
# ----------------------------------------------------------------------
@pytest.mark.parametrize("q", [-1.0, 100.5, 1000.0])
def test_out_of_range_percentile_raises_repro_error(q):
    metrics = _metrics_with_latencies([0.01, 0.02])
    with pytest.raises(ReproError, match=r"percentile must be in \[0, 100\]"):
        metrics.latency_percentile(q)
    router = RouterMetrics([metrics])
    with pytest.raises(ReproError, match=r"percentile must be in \[0, 100\]"):
        router.fleet_latency_percentile(q)


# ----------------------------------------------------------------------
# The happy path still works (and pools across replicas)
# ----------------------------------------------------------------------
def test_percentiles_work_with_samples():
    metrics = _metrics_with_latencies([0.01, 0.02, 0.03, 0.04])
    assert metrics.latency_percentile(0.0) == pytest.approx(0.01)
    assert metrics.latency_percentile(100.0) == pytest.approx(0.04)
    assert metrics.p50_latency_s == pytest.approx(0.025)


def test_fleet_percentile_pools_replica_samples():
    a = _metrics_with_latencies([0.01, 0.01])
    b = _metrics_with_latencies([0.05, 0.05])
    router = RouterMetrics([a, b])
    pooled = np.percentile([0.01, 0.01, 0.05, 0.05], 50.0)
    assert router.fleet_latency_percentile(50.0) == pytest.approx(pooled)
    # One empty replica does not break the fleet view.
    router = RouterMetrics([a, ServingMetrics()])
    assert router.fleet_latency_percentile(100.0) == pytest.approx(0.01)


def test_sample_getters_return_copies():
    metrics = _metrics_with_latencies([0.01, 0.02])
    samples = metrics.latency_samples()
    assert samples == [0.01, 0.02]
    samples.append(99.0)
    assert metrics.latency_samples() == [0.01, 0.02]
    assert metrics.batch_size_samples() == [2]
