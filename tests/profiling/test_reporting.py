"""Unit tests for table formatting and sample summaries."""

import pytest

from repro.exceptions import ReproError
from repro.profiling import format_table, quartiles, summarize_samples


def test_format_table_basic():
    rows = [
        {"kernel": "Gaussian", "auc": 0.892, "recall": 0.883},
        {"kernel": "quantum", "auc": 0.9041, "recall": 0.946},
    ]
    text = format_table(rows, title="Table II")
    lines = text.splitlines()
    assert lines[0] == "Table II"
    assert "kernel" in lines[1]
    assert "0.892" in text
    assert "0.904" in text  # 3-decimal default precision
    # One header, one separator, one title, two data rows.
    assert len(lines) == 5


def test_format_table_column_selection_and_missing_values():
    rows = [{"a": 1, "b": 2.0}, {"a": 3}]
    text = format_table(rows, columns=["a", "b"], precision=1)
    assert "2.0" in text
    # Missing value renders as empty string without crashing.
    assert text.splitlines()[-1].startswith("3")


def test_format_table_empty_raises():
    with pytest.raises(ReproError):
        format_table([])


def test_quartiles_and_summary():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    q1, med, q3 = quartiles(samples)
    assert med == 3.0
    assert q1 == 2.0
    assert q3 == 4.0
    summary = summarize_samples(samples)
    assert summary["median"] == 3.0
    assert summary["mean"] == 3.0
    assert summary["min"] == 1.0
    assert summary["max"] == 5.0
    assert summary["count"] == 5


def test_summary_of_empty_raises():
    with pytest.raises(ReproError):
        summarize_samples([])
    with pytest.raises(ReproError):
        quartiles([])
