"""Unit tests for run records and their aggregation."""

import json

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.profiling import RecordCollection, RunRecord


def test_record_to_dict_and_json():
    record = RunRecord(
        experiment="fig5",
        params={"d": 2, "gamma": np.float64(0.5)},
        metrics={"time_s": np.float32(1.25), "chi": np.int64(8)},
    )
    d = record.to_dict()
    assert d["experiment"] == "fig5"
    assert d["param_d"] == 2
    assert d["param_gamma"] == 0.5
    assert d["metric_chi"] == 8
    parsed = json.loads(record.to_json())
    assert parsed == d


def test_record_handles_arrays_and_nesting():
    record = RunRecord(
        experiment="x",
        metrics={"series": np.arange(3), "nested": {"a": np.float64(1.0)}},
    )
    d = record.to_dict()
    assert d["metric_series"] == [0, 1, 2]
    assert d["metric_nested"] == {"a": 1.0}
    # Must be JSON-serialisable end to end.
    json.dumps(d)


def test_collection_grouping_and_aggregation():
    records = RecordCollection()
    for d in (1, 1, 2, 2):
        records.add(
            RunRecord("fig5", params={"d": d}, metrics={"time_s": float(d) * 2})
        )
    assert len(records) == 4
    groups = records.group_by("d")
    assert set(groups) == {1, 2}
    assert len(groups[1]) == 2

    agg = groups[2].aggregate("time_s")
    assert agg["mean"] == pytest.approx(4.0)
    assert agg["count"] == 2
    assert agg["min"] == agg["max"] == 4.0

    values = records.metric_values("time_s")
    assert values.shape == (4,)


def test_collection_filter_and_json_lines():
    records = RecordCollection(
        [RunRecord("a", metrics={"v": 1.0}), RunRecord("b", metrics={"v": 2.0})]
    )
    only_a = records.filter(lambda r: r.experiment == "a")
    assert len(only_a) == 1
    lines = records.to_json_lines().splitlines()
    assert len(lines) == 2
    json.loads(lines[0])


def test_collection_error_paths():
    records = RecordCollection([RunRecord("a", metrics={"v": 1.0})])
    with pytest.raises(ReproError):
        records.group_by("missing_param")
    with pytest.raises(ReproError):
        records.metric_values("missing_metric")
    with pytest.raises(ReproError):
        RecordCollection().aggregate("v")
