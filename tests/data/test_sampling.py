"""Unit tests for balanced sampling and feature selection."""

import numpy as np
import pytest

from repro.data import (
    DatasetSpec,
    balanced_subsample,
    generate_elliptic_like,
    select_features,
    stratified_indices,
)
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def dataset():
    return generate_elliptic_like(DatasetSpec(num_samples=2000, num_features=12, seed=3))


def test_stratified_indices_counts(dataset):
    idx = stratified_indices(dataset.labels, per_class=50, seed=0)
    assert idx.size == 100
    labels = dataset.labels[idx]
    assert np.sum(labels == 0) == 50
    assert np.sum(labels == 1) == 50
    assert np.unique(idx).size == 100  # no repeats


def test_stratified_indices_insufficient_class(dataset):
    n_pos = dataset.num_positive
    with pytest.raises(DataError):
        stratified_indices(dataset.labels, per_class=n_pos + 1)


def test_balanced_subsample_balance_and_size(dataset):
    sample = balanced_subsample(dataset, 120, seed=1)
    assert sample.num_samples == 120
    assert sample.num_positive == 60
    assert sample.num_negative == 60
    assert sample.num_features == dataset.num_features


def test_balanced_subsample_reproducible(dataset):
    a = balanced_subsample(dataset, 60, seed=9)
    b = balanced_subsample(dataset, 60, seed=9)
    assert np.array_equal(a.features, b.features)
    c = balanced_subsample(dataset, 60, seed=10)
    assert not np.array_equal(a.features, c.features)


def test_balanced_subsample_validation(dataset):
    with pytest.raises(DataError):
        balanced_subsample(dataset, 1)
    with pytest.raises(DataError):
        balanced_subsample(dataset, 31)  # odd


def test_select_features_prefix(dataset):
    X = select_features(dataset.features, 5)
    assert X.shape == (dataset.num_samples, 5)
    assert np.array_equal(X, dataset.features[:, :5])


def test_select_features_validation(dataset):
    with pytest.raises(DataError):
        select_features(dataset.features, 0)
    with pytest.raises(DataError):
        select_features(dataset.features, dataset.num_features + 1)
    with pytest.raises(DataError):
        select_features(dataset.features[0], 2)
