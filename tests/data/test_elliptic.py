"""Unit tests for the synthetic Elliptic-like dataset generator."""

import numpy as np
import pytest

from repro.data import DatasetSpec, EllipticLikeDataset, generate_elliptic_like
from repro.exceptions import DataError


def test_default_spec_shape_and_imbalance():
    data = generate_elliptic_like(DatasetSpec(num_samples=1000, num_features=20))
    assert data.features.shape == (1000, 20)
    assert data.labels.shape == (1000,)
    assert set(np.unique(data.labels)) == {0, 1}
    # Class imbalance close to the Elliptic 9.76% positive rate.
    assert 0.05 < data.class_balance < 0.15
    assert data.num_positive + data.num_negative == 1000


def test_deterministic_given_seed():
    spec = DatasetSpec(num_samples=300, num_features=10, seed=5)
    a = generate_elliptic_like(spec)
    b = generate_elliptic_like(spec)
    assert np.array_equal(a.features, b.features)
    assert np.array_equal(a.labels, b.labels)
    c = generate_elliptic_like(DatasetSpec(num_samples=300, num_features=10, seed=6))
    assert not np.array_equal(a.features, c.features)


def test_feature_importance_is_graded():
    data = generate_elliptic_like(
        DatasetSpec(num_samples=200, num_features=30, informative_fraction=0.5)
    )
    imp = data.feature_importance
    assert imp.shape == (30,)
    n_informative = int(np.sum(imp > 0))
    assert n_informative == 15
    # Informative features are ordered by decreasing importance.
    informative = imp[:n_informative]
    assert np.all(np.diff(informative) <= 0)
    # Noise features carry no importance.
    assert np.allclose(imp[n_informative:], 0.0)


def test_informative_features_are_class_separating():
    """The leading feature should separate classes better than a noise feature."""
    data = generate_elliptic_like(
        DatasetSpec(num_samples=3000, num_features=40, informative_fraction=0.5, seed=0)
    )
    X, y = data.features, data.labels

    def cohen_d(col):
        a, b = col[y == 1], col[y == 0]
        pooled = np.sqrt((a.var() + b.var()) / 2)
        return abs(a.mean() - b.mean()) / pooled if pooled > 0 else 0.0

    assert cohen_d(X[:, 0]) > cohen_d(X[:, -1]) + 0.2


def test_subset():
    data = generate_elliptic_like(DatasetSpec(num_samples=100, num_features=5))
    sub = data.subset(np.arange(10))
    assert sub.num_samples == 10
    assert sub.num_features == 5
    assert np.array_equal(sub.features, data.features[:10])


def test_spec_validation():
    with pytest.raises(DataError):
        DatasetSpec(num_samples=2)
    with pytest.raises(DataError):
        DatasetSpec(num_features=0)
    with pytest.raises(DataError):
        DatasetSpec(positive_fraction=0.0)
    with pytest.raises(DataError):
        DatasetSpec(positive_fraction=1.5)
    with pytest.raises(DataError):
        DatasetSpec(informative_fraction=0.0)
    with pytest.raises(DataError):
        DatasetSpec(cluster_count=0)
    with pytest.raises(DataError):
        DatasetSpec(noise_scale=-1.0)


def test_dataset_validation():
    with pytest.raises(DataError):
        EllipticLikeDataset(
            features=np.ones(5), labels=np.ones(5), spec=DatasetSpec()
        )
    with pytest.raises(DataError):
        EllipticLikeDataset(
            features=np.ones((5, 2)), labels=np.ones(4), spec=DatasetSpec()
        )


def test_all_features_finite():
    data = generate_elliptic_like(DatasetSpec(num_samples=500, num_features=165))
    assert np.all(np.isfinite(data.features))
    assert data.num_features == 165


def test_fully_informative_dataset():
    data = generate_elliptic_like(
        DatasetSpec(num_samples=100, num_features=4, informative_fraction=1.0)
    )
    assert data.features.shape == (100, 4)
    assert np.all(data.feature_importance > 0)
