"""Unit tests for the dense statevector simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.mps import gates
from repro.statevector import StatevectorSimulator, statevector_fidelity


def test_initial_state_is_all_zeros():
    sim = StatevectorSimulator(3)
    vec = sim.statevector
    assert vec[0] == pytest.approx(1.0)
    assert np.allclose(vec[1:], 0.0)
    assert sim.norm() == pytest.approx(1.0)


def test_limits_and_validation():
    with pytest.raises(SimulationError):
        StatevectorSimulator(0)
    with pytest.raises(SimulationError):
        StatevectorSimulator(25)
    sim = StatevectorSimulator(2)
    with pytest.raises(SimulationError):
        sim.apply_gate([0], np.eye(4))
    with pytest.raises(SimulationError):
        sim.apply_gate([0, 0], np.eye(4))
    with pytest.raises(SimulationError):
        sim.apply_gate([0, 1, 2], np.eye(8))
    with pytest.raises(SimulationError):
        sim.apply_gate([5], np.eye(2))


def test_x_gate_flips_most_significant_qubit():
    sim = StatevectorSimulator(2)
    sim.apply_gate([0], gates.pauli_x())
    vec = sim.statevector
    # qubit 0 is the most significant bit -> |10> = index 2
    assert vec[2] == pytest.approx(1.0)


def test_bell_state_on_non_adjacent_qubits():
    sim = StatevectorSimulator(3)
    sim.apply_gate([0], gates.hadamard())
    sim.apply_gate([0, 2], gates.cnot())  # control 0, target 2 (non-adjacent)
    vec = sim.statevector
    # Expect (|000> + |101>) / sqrt(2) -> indices 0 and 5
    assert vec[0] == pytest.approx(1 / np.sqrt(2))
    assert vec[5] == pytest.approx(1 / np.sqrt(2))
    assert abs(vec[1]) < 1e-12 and abs(vec[4]) < 1e-12


def test_cnot_with_reversed_qubit_order():
    sim = StatevectorSimulator(2)
    sim.apply_gate([1], gates.pauli_x())      # state |01>
    sim.apply_gate([1, 0], gates.cnot())       # control qubit 1 -> flips qubit 0
    vec = sim.statevector
    assert vec[3] == pytest.approx(1.0)        # |11>


def test_norm_preserved_and_gate_count(rng):
    sim = StatevectorSimulator(4)
    sim.prepare_plus_state()
    count0 = sim.gates_applied
    for _ in range(12):
        q = int(rng.integers(3))
        sim.apply_gate([q, q + 1], gates.rxx(float(rng.normal())))
    assert sim.norm() == pytest.approx(1.0)
    assert sim.gates_applied == count0 + 12


def test_reset():
    sim = StatevectorSimulator(2)
    sim.apply_gate([0], gates.hadamard())
    sim.reset()
    assert sim.statevector[0] == pytest.approx(1.0)
    assert sim.gates_applied == 0


def test_inner_product_and_fidelity():
    a = StatevectorSimulator(2)
    b = StatevectorSimulator(2)
    b.apply_gate([0], gates.pauli_x())
    assert a.inner_product(b) == pytest.approx(0.0)
    assert a.fidelity(a.statevector) == pytest.approx(1.0)
    with pytest.raises(SimulationError):
        a.inner_product(np.ones(3))


def test_expectation_single():
    sim = StatevectorSimulator(2)
    assert sim.expectation_single(1, gates.pauli_z()) == pytest.approx(1.0)
    sim.apply_gate([1], gates.pauli_x())
    assert sim.expectation_single(1, gates.pauli_z()) == pytest.approx(-1.0)
    with pytest.raises(SimulationError):
        sim.expectation_single(0, np.eye(4))


def test_statevector_fidelity_helper():
    v = np.array([1.0, 0.0])
    w = np.array([0.0, 1.0])
    assert statevector_fidelity(v, v) == pytest.approx(1.0)
    assert statevector_fidelity(v, w) == pytest.approx(0.0)
    with pytest.raises(SimulationError):
        statevector_fidelity(v, np.ones(3))
