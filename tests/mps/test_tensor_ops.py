"""Unit tests for the low-level tensor utilities."""

import numpy as np
import pytest

from repro.mps import gates
from repro.mps.tensor_ops import (
    apply_single_qubit_gate,
    apply_two_qubit_gate_to_theta,
    merge_sites,
    qr_right,
    robust_svd,
    rq_left,
    split_theta,
    tensor_memory_bytes,
)


def _random_site(rng, left, right):
    return rng.normal(size=(left, 2, right)) + 1j * rng.normal(size=(left, 2, right))


def test_robust_svd_reconstructs(rng):
    mat = rng.normal(size=(6, 9)) + 1j * rng.normal(size=(6, 9))
    u, s, vh = robust_svd(mat)
    assert np.allclose(u @ np.diag(s) @ vh, mat)
    assert np.all(np.diff(s) <= 1e-12)  # descending


def test_qr_right_left_isometry_and_reconstruction(rng):
    t = _random_site(rng, 3, 5)
    q, r = qr_right(t)
    # Reconstruction.
    rebuilt = np.tensordot(q, r, axes=([2], [0]))
    assert np.allclose(rebuilt, t)
    # Left isometry: sum_{l,p} Q*[l,p,a] Q[l,p,b] = delta_ab
    q_mat = q.reshape(-1, q.shape[2])
    assert np.allclose(q_mat.conj().T @ q_mat, np.eye(q.shape[2]))


def test_rq_left_right_isometry_and_reconstruction(rng):
    t = _random_site(rng, 5, 3)
    r, q = rq_left(t)
    rebuilt = np.tensordot(r, q, axes=([1], [0]))
    assert np.allclose(rebuilt, t)
    q_mat = q.reshape(q.shape[0], -1)
    assert np.allclose(q_mat @ q_mat.conj().T, np.eye(q.shape[0]))


def test_apply_single_qubit_gate_matches_dense(rng):
    t = _random_site(rng, 2, 3)
    gate = gates.hadamard()
    out = apply_single_qubit_gate(t, gate)
    expected = np.einsum("ab,lbr->lar", gate, t)
    assert np.allclose(out, expected)
    assert out.shape == t.shape


def test_merge_and_split_roundtrip(rng):
    a = _random_site(rng, 2, 4)
    b = _random_site(rng, 4, 3)
    theta = merge_sites(a, b)
    assert theta.shape == (2, 2, 2, 3)
    u, s, vh = split_theta(theta)
    rebuilt = np.einsum("lpk,k,kqr->lpqr", u, s, vh)
    assert np.allclose(rebuilt, theta)


def test_apply_two_qubit_gate_to_theta_identity(rng):
    a = _random_site(rng, 2, 3)
    b = _random_site(rng, 3, 2)
    theta = merge_sites(a, b)
    out = apply_two_qubit_gate_to_theta(theta, np.eye(4))
    assert np.allclose(out, theta)


def test_apply_two_qubit_gate_to_theta_swap(rng):
    a = _random_site(rng, 1, 2)
    b = _random_site(rng, 2, 1)
    theta = merge_sites(a, b)
    swapped = apply_two_qubit_gate_to_theta(theta, gates.swap())
    # SWAP exchanges the two physical indices.
    assert np.allclose(swapped, np.transpose(theta, (0, 2, 1, 3)))


def test_two_qubit_gate_application_is_unitary_norm_preserving(rng):
    a = _random_site(rng, 2, 3)
    b = _random_site(rng, 3, 2)
    theta = merge_sites(a, b)
    gate = gates.rxx(0.8)
    out = apply_two_qubit_gate_to_theta(theta, gate)
    assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(theta))


def test_tensor_memory_bytes():
    t = np.zeros((2, 2, 3), dtype=np.complex128)
    assert tensor_memory_bytes(t) == 2 * 2 * 3 * 16
