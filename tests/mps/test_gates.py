"""Unit tests for the gate-matrix zoo."""

import numpy as np
import pytest

from repro.mps import gates


ALL_FIXED = [
    gates.identity2,
    gates.pauli_x,
    gates.pauli_y,
    gates.pauli_z,
    gates.hadamard,
    gates.swap,
    gates.cnot,
    gates.controlled_z,
]

PARAMETERISED = [gates.rx, gates.ry, gates.rz, gates.rxx, gates.ryy, gates.rzz]


@pytest.mark.parametrize("factory", ALL_FIXED)
def test_fixed_gates_are_unitary(factory):
    assert gates.is_unitary(factory())


@pytest.mark.parametrize("factory", PARAMETERISED)
@pytest.mark.parametrize("theta", [0.0, 0.3, np.pi / 2, np.pi, 2 * np.pi, -1.7])
def test_parameterised_gates_are_unitary(factory, theta):
    assert gates.is_unitary(factory(theta))


@pytest.mark.parametrize("factory", PARAMETERISED)
def test_zero_angle_rotation_is_identity(factory):
    gate = factory(0.0)
    ident = np.eye(gate.shape[0])
    assert np.allclose(gate, ident)


def test_pauli_algebra():
    x, y, z = gates.pauli_x(), gates.pauli_y(), gates.pauli_z()
    ident = gates.identity2()
    assert np.allclose(x @ x, ident)
    assert np.allclose(y @ y, ident)
    assert np.allclose(z @ z, ident)
    # XY = iZ and cyclic permutations.
    assert np.allclose(x @ y, 1j * z)
    assert np.allclose(y @ z, 1j * x)
    assert np.allclose(z @ x, 1j * y)


def test_hadamard_maps_zero_to_plus():
    plus = gates.hadamard() @ np.array([1.0, 0.0])
    assert np.allclose(plus, np.array([1.0, 1.0]) / np.sqrt(2))


def test_rz_matches_exponential():
    theta = 0.731
    expected = np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])
    assert np.allclose(gates.rz(theta), expected)


def test_rxx_matches_exponential():
    theta = 1.234
    xx = np.kron(gates.pauli_x(), gates.pauli_x())
    expected = (
        np.cos(theta / 2) * np.eye(4) - 1j * np.sin(theta / 2) * xx
    )
    assert np.allclose(gates.rxx(theta), expected)


def test_rxx_is_symmetric_under_qubit_exchange():
    theta = 0.9
    m = gates.rxx(theta)
    swap = gates.swap()
    assert np.allclose(swap @ m @ swap, m)


def test_rxx_gates_commute():
    a = gates.rxx(0.4)
    b = gates.rxx(1.3)
    assert np.allclose(a @ b, b @ a)


def test_rotation_composition_adds_angles():
    a, b = 0.35, 1.2
    assert np.allclose(gates.rz(a) @ gates.rz(b), gates.rz(a + b))
    assert np.allclose(gates.rxx(a) @ gates.rxx(b), gates.rxx(a + b))


def test_swap_swaps_basis_states():
    swap = gates.swap()
    # |01> -> |10>
    v01 = np.zeros(4)
    v01[1] = 1.0
    v10 = np.zeros(4)
    v10[2] = 1.0
    assert np.allclose(swap @ v01, v10)
    assert np.allclose(swap @ swap, np.eye(4))


def test_cnot_flips_target_when_control_set():
    cnot = gates.cnot()
    # |10> -> |11>
    v = np.zeros(4)
    v[2] = 1.0
    out = cnot @ v
    expected = np.zeros(4)
    expected[3] = 1.0
    assert np.allclose(out, expected)


def test_kron_builds_multiqubit_operators():
    xx = gates.kron(gates.pauli_x(), gates.pauli_x())
    assert xx.shape == (4, 4)
    assert np.allclose(xx, np.kron(gates.pauli_x(), gates.pauli_x()))
    triple = gates.kron(gates.identity2(), gates.pauli_z(), gates.identity2())
    assert triple.shape == (8, 8)


def test_gate_fidelity_detects_equality_and_difference():
    assert gates.gate_fidelity(gates.rx(0.5), gates.rx(0.5)) == pytest.approx(1.0)
    # Global phase is ignored.
    assert gates.gate_fidelity(
        gates.rz(0.5), np.exp(1j * 0.3) * gates.rz(0.5)
    ) == pytest.approx(1.0)
    assert gates.gate_fidelity(gates.pauli_x(), gates.pauli_z()) == pytest.approx(0.0)


def test_gate_fidelity_shape_mismatch_raises():
    with pytest.raises(ValueError):
        gates.gate_fidelity(gates.pauli_x(), gates.swap())


def test_is_unitary_rejects_non_unitary():
    assert not gates.is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))
    assert not gates.is_unitary(np.ones((2, 3)))
    assert not gates.is_unitary(np.ones(3))


def test_phase_gate():
    theta = 0.77
    p = gates.phase(theta)
    assert gates.is_unitary(p)
    assert p[0, 0] == pytest.approx(1.0)
    assert p[1, 1] == pytest.approx(np.exp(1j * theta))
