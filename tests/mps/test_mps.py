"""Unit tests for the MPS class."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.mps import MPS, TruncationPolicy, gates


def random_statevector(num_qubits, rng):
    vec = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return vec / np.linalg.norm(vec)


def test_zero_state_statevector():
    mps = MPS.zero_state(3)
    vec = mps.to_statevector()
    expected = np.zeros(8)
    expected[0] = 1.0
    assert np.allclose(vec, expected)
    assert mps.norm() == pytest.approx(1.0)
    assert mps.max_bond_dimension == 1


def test_plus_state_statevector():
    mps = MPS.plus_state(3)
    vec = mps.to_statevector()
    assert np.allclose(vec, np.full(8, 1 / np.sqrt(8)))


def test_invalid_constructions():
    with pytest.raises(SimulationError):
        MPS([])
    with pytest.raises(SimulationError):
        MPS.zero_state(0)
    site = np.zeros((1, 3, 1))  # wrong physical dimension
    with pytest.raises(SimulationError):
        MPS([site])
    a = np.zeros((1, 2, 2))
    b = np.zeros((3, 2, 1))  # bond mismatch with a
    with pytest.raises(SimulationError):
        MPS([a, b])
    c = np.zeros((2, 2, 1))  # boundary dimension != 1
    with pytest.raises(SimulationError):
        MPS([c])


def test_single_qubit_gate_application():
    mps = MPS.zero_state(2)
    mps.apply_single_qubit_gate(0, gates.pauli_x())
    vec = mps.to_statevector()
    expected = np.zeros(4)
    expected[2] = 1.0  # |10>
    assert np.allclose(vec, expected)
    assert mps.gates_applied == 1
    assert mps.two_qubit_gates_applied == 0


def test_two_qubit_gate_builds_bell_state():
    mps = MPS.zero_state(2)
    mps.apply_single_qubit_gate(0, gates.hadamard())
    mps.apply_two_qubit_gate(0, gates.cnot())
    vec = mps.to_statevector()
    expected = np.zeros(4)
    expected[0] = expected[3] = 1 / np.sqrt(2)
    assert np.allclose(vec, expected)
    assert mps.max_bond_dimension == 2
    assert mps.two_qubit_gates_applied == 1


def test_two_qubit_gate_requires_adjacency():
    mps = MPS.zero_state(3)
    with pytest.raises(SimulationError):
        mps.apply_gate((0, 2), gates.cnot())
    with pytest.raises(SimulationError):
        mps.apply_two_qubit_gate(2, gates.cnot())  # no right neighbour


def test_gate_shape_validation():
    mps = MPS.zero_state(2)
    with pytest.raises(SimulationError):
        mps.apply_single_qubit_gate(0, np.eye(4))
    with pytest.raises(SimulationError):
        mps.apply_two_qubit_gate(0, np.eye(2))
    with pytest.raises(SimulationError):
        mps.apply_gate((0, 1, 2), np.eye(8))
    with pytest.raises(SimulationError):
        mps.apply_single_qubit_gate(5, np.eye(2))


def test_norm_preserved_by_unitaries(rng):
    mps = MPS.plus_state(4)
    for _ in range(10):
        q = rng.integers(3)
        mps.apply_two_qubit_gate(int(q), gates.rxx(float(rng.normal())))
        mps.apply_single_qubit_gate(int(q), gates.rz(float(rng.normal())))
    assert mps.norm() == pytest.approx(1.0, abs=1e-10)


def test_inner_product_self_is_one():
    mps = MPS.plus_state(5)
    assert abs(mps.inner_product(mps)) == pytest.approx(1.0)
    assert mps.fidelity(mps) == pytest.approx(1.0)


def test_inner_product_orthogonal_states():
    a = MPS.zero_state(3)
    b = MPS.zero_state(3)
    b.apply_single_qubit_gate(1, gates.pauli_x())
    assert abs(a.inner_product(b)) == pytest.approx(0.0, abs=1e-12)


def test_inner_product_qubit_mismatch_raises():
    with pytest.raises(SimulationError):
        MPS.zero_state(2).inner_product(MPS.zero_state(3))


def test_inner_product_conjugates_bra():
    # <0|RZ(theta)|0> = exp(-i theta/2); <psi|0> should be its conjugate.
    theta = 0.7
    a = MPS.zero_state(1)
    a.apply_single_qubit_gate(0, gates.rz(theta))
    b = MPS.zero_state(1)
    forward = b.inner_product(a)   # <0| RZ |0>
    backward = a.inner_product(b)  # <RZ 0 | 0>
    assert forward == pytest.approx(np.exp(-1j * theta / 2))
    assert backward == pytest.approx(np.conj(forward))


def test_from_statevector_roundtrip(rng):
    vec = random_statevector(4, rng)
    mps = MPS.from_statevector(vec)
    assert np.allclose(mps.to_statevector(), vec)
    assert mps.norm() == pytest.approx(1.0)


def test_from_statevector_rejects_bad_length():
    with pytest.raises(SimulationError):
        MPS.from_statevector(np.ones(6))


def test_canonicalize_preserves_state_and_sets_center(rng):
    vec = random_statevector(5, rng)
    mps = MPS.from_statevector(vec)
    for center in [0, 2, 4]:
        mps.canonicalize(center)
        assert mps.orthogonality_center == center
        assert np.allclose(mps.to_statevector(), vec)


def test_canonicalize_invalid_center():
    with pytest.raises(SimulationError):
        MPS.zero_state(3).canonicalize(3)


def test_expectation_single():
    mps = MPS.zero_state(2)
    assert mps.expectation_single(0, gates.pauli_z()) == pytest.approx(1.0)
    mps.apply_single_qubit_gate(0, gates.pauli_x())
    assert mps.expectation_single(0, gates.pauli_z()) == pytest.approx(-1.0)
    plus = MPS.plus_state(2)
    assert plus.expectation_single(1, gates.pauli_x()) == pytest.approx(1.0)
    assert plus.expectation_single(1, gates.pauli_z()) == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(SimulationError):
        plus.expectation_single(0, np.eye(4))


def test_copy_is_independent():
    mps = MPS.plus_state(3)
    clone = mps.copy()
    clone.apply_single_qubit_gate(0, gates.pauli_z())
    assert mps.fidelity(clone) != pytest.approx(1.0)
    # Original unchanged.
    assert np.allclose(mps.to_statevector(), MPS.plus_state(3).to_statevector())


def test_schmidt_values_and_entropy_of_bell_state():
    mps = MPS.zero_state(2)
    mps.apply_single_qubit_gate(0, gates.hadamard())
    mps.apply_two_qubit_gate(0, gates.cnot())
    s = mps.schmidt_values(0)
    assert np.allclose(np.sort(s)[::-1], [1 / np.sqrt(2), 1 / np.sqrt(2)])
    assert mps.entanglement_entropy(0) == pytest.approx(np.log(2))


def test_entropy_of_product_state_is_zero():
    mps = MPS.plus_state(4)
    for bond in range(3):
        assert mps.entanglement_entropy(bond) == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(SimulationError):
        mps.schmidt_values(3)


def test_normalize():
    mps = MPS.zero_state(2)
    mps._tensors[0] *= 3.0  # deliberately denormalise
    assert mps.norm() == pytest.approx(3.0)
    mps.normalize()
    assert mps.norm() == pytest.approx(1.0)


def test_truncation_error_tracking_stays_negligible(rng):
    mps = MPS.plus_state(6, TruncationPolicy(cutoff=1e-16))
    for _ in range(20):
        q = int(rng.integers(5))
        mps.apply_two_qubit_gate(q, gates.rxx(float(rng.normal())))
    assert mps.cumulative_discarded_weight < 1e-12
    assert len(mps.truncation_records) == 20


def test_memory_bytes_grows_with_entanglement():
    product = MPS.plus_state(6)
    entangled = MPS.plus_state(6)
    # |+...+> is an eigenstate of XX, so RZZ is used to generate entanglement.
    for q in range(5):
        entangled.apply_two_qubit_gate(q, gates.rzz(0.9))
    assert entangled.memory_bytes > product.memory_bytes
    assert entangled.max_bond_dimension > 1


def test_densify_limit():
    mps = MPS.zero_state(21)
    with pytest.raises(SimulationError):
        mps.to_statevector()


def test_refuses_normalising_zero_state():
    site = np.zeros((1, 2, 1))
    mps = MPS([site])
    with pytest.raises(SimulationError):
        mps.normalize()
