"""Cross-validation of the MPS engine against the dense statevector simulator.

These are the strongest correctness tests of the simulation substrate: random
circuits and the actual feature-map ansatz are simulated with both engines
and must agree to floating-point precision (the paper's truncation threshold
guarantees machine-precision accuracy).
"""

import numpy as np
import pytest

from repro.circuits import Circuit, GateKind, build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.mps import MPS, gates
from repro.statevector import StatevectorSimulator, statevector_fidelity


def _random_adjacent_circuit(num_qubits, num_gates, rng):
    """Random circuit with only adjacent two-qubit gates (MPS-ready)."""
    circuit = Circuit(num_qubits)
    single = [GateKind.RX, GateKind.RY, GateKind.RZ, GateKind.H]
    double = [GateKind.RXX, GateKind.RZZ, GateKind.CNOT, GateKind.SWAP]
    for _ in range(num_gates):
        if rng.random() < 0.5 or num_qubits == 1:
            kind = single[rng.integers(len(single))]
            angle = float(rng.uniform(-np.pi, np.pi)) if kind.is_parameterised else 0.0
            circuit.add(kind, int(rng.integers(num_qubits)), angle=angle)
        else:
            kind = double[rng.integers(len(double))]
            q = int(rng.integers(num_qubits - 1))
            angle = float(rng.uniform(-np.pi, np.pi)) if kind.is_parameterised else 0.0
            circuit.add(kind, (q, q + 1), angle=angle)
    return circuit


@pytest.mark.parametrize("num_qubits", [2, 3, 5, 7])
@pytest.mark.parametrize("seed", [0, 1])
def test_random_circuits_agree(num_qubits, seed):
    rng = np.random.default_rng(seed)
    circuit = _random_adjacent_circuit(num_qubits, 25, rng)

    mps = MPS.zero_state(num_qubits)
    mps.apply_circuit(circuit)

    sv = StatevectorSimulator(num_qubits)
    sv.apply_circuit(circuit)

    assert statevector_fidelity(mps.to_statevector(), sv.statevector) == pytest.approx(
        1.0, abs=1e-10
    )


@pytest.mark.parametrize("distance", [1, 2, 3])
@pytest.mark.parametrize("gamma", [0.1, 0.5, 1.0])
def test_feature_map_circuit_agrees(distance, gamma):
    cfg = AnsatzConfig(
        num_features=6, interaction_distance=distance, layers=2, gamma=gamma
    )
    rng = np.random.default_rng(42)
    x = rng.uniform(0.05, 1.95, size=6)

    routed = build_feature_map_circuit(x, cfg, routed=True)
    unrouted = build_feature_map_circuit(x, cfg, routed=False)

    mps = MPS.zero_state(6)
    mps.apply_circuit(routed)

    sv = StatevectorSimulator(6)
    sv.apply_circuit(unrouted)

    assert statevector_fidelity(mps.to_statevector(), sv.statevector) == pytest.approx(
        1.0, abs=1e-10
    )
    assert mps.cumulative_discarded_weight < 1e-12


def test_kernel_entries_agree_between_simulators():
    cfg = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.8)
    rng = np.random.default_rng(3)
    X = rng.uniform(0.1, 1.9, size=(3, 5))

    mps_states = []
    sv_states = []
    for row in X:
        circuit = build_feature_map_circuit(row, cfg)
        mps = MPS.zero_state(5)
        mps.apply_circuit(circuit)
        mps_states.append(mps)

        sv = StatevectorSimulator(5)
        sv.apply_circuit(build_feature_map_circuit(row, cfg, routed=False))
        sv_states.append(sv.statevector)

    for i in range(3):
        for j in range(3):
            k_mps = mps_states[i].fidelity(mps_states[j])
            k_sv = statevector_fidelity(sv_states[i], sv_states[j])
            assert k_mps == pytest.approx(k_sv, abs=1e-10)


def test_expectation_values_agree(rng):
    cfg = AnsatzConfig(num_features=4, interaction_distance=2, layers=1, gamma=0.6)
    x = rng.uniform(0.1, 1.9, size=4)
    mps = MPS.zero_state(4)
    mps.apply_circuit(build_feature_map_circuit(x, cfg))
    sv = StatevectorSimulator(4)
    sv.apply_circuit(build_feature_map_circuit(x, cfg, routed=False))
    for q in range(4):
        for op in (gates.pauli_x(), gates.pauli_y(), gates.pauli_z()):
            assert np.real(mps.expectation_single(q, op)) == pytest.approx(
                np.real(sv.expectation_single(q, op)), abs=1e-10
            )


def test_statevector_prepare_plus_matches_mps():
    sv = StatevectorSimulator(4)
    sv.prepare_plus_state()
    mps = MPS.plus_state(4)
    assert statevector_fidelity(sv.statevector, mps.to_statevector()) == pytest.approx(
        1.0
    )
