"""Unit tests for truncation policies and error accounting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TruncationError
from repro.mps.truncation import (
    TruncationPolicy,
    TruncationRecord,
    truncate_singular_values,
)


def test_default_policy_keeps_significant_values():
    policy = TruncationPolicy()
    s = np.array([1.0, 0.5, 0.25])
    kept, discarded = policy.select_rank(s)
    assert kept == 3
    assert discarded == 0.0


def test_policy_discards_negligible_values():
    policy = TruncationPolicy(cutoff=1e-16)
    s = np.array([1.0, 1e-10])
    kept, discarded = policy.select_rank(s)
    assert kept == 1
    assert discarded <= 1e-16


def test_policy_respects_relative_cutoff():
    # All values equal: discarding any one of 4 loses 25% of the weight.
    policy = TruncationPolicy(cutoff=0.30)
    s = np.array([1.0, 1.0, 1.0, 1.0])
    kept, discarded = policy.select_rank(s)
    assert kept == 3
    assert discarded == pytest.approx(0.25)


def test_policy_keeps_at_least_one_value():
    policy = TruncationPolicy(cutoff=1.0)
    s = np.array([0.7, 0.1])
    kept, _ = policy.select_rank(s)
    assert kept >= 1


def test_zero_singular_values_handled():
    policy = TruncationPolicy()
    kept, discarded = policy.select_rank(np.zeros(5))
    assert kept == 1
    assert discarded == 0.0


def test_bond_cap_raises_when_lossy():
    policy = TruncationPolicy(cutoff=1e-16, max_bond_dim=1)
    s = np.array([1.0, 0.9])
    with pytest.raises(TruncationError):
        policy.select_rank(s)


def test_bond_cap_allowed_when_lossy_permitted():
    policy = TruncationPolicy(cutoff=1e-16, max_bond_dim=1, allow_lossy_cap=True)
    s = np.array([1.0, 0.9])
    kept, discarded = policy.select_rank(s)
    assert kept == 1
    assert discarded == pytest.approx(0.81 / 1.81)


def test_bond_cap_not_lossy_when_within_cutoff():
    policy = TruncationPolicy(cutoff=1e-16, max_bond_dim=2)
    s = np.array([1.0, 0.5, 1e-12])
    kept, discarded = policy.select_rank(s)
    assert kept == 2
    assert discarded <= 1e-16


def test_invalid_policy_parameters():
    with pytest.raises(ConfigurationError):
        TruncationPolicy(cutoff=-1.0)
    with pytest.raises(ConfigurationError):
        TruncationPolicy(max_bond_dim=0)


def test_select_rank_rejects_bad_input():
    policy = TruncationPolicy()
    with pytest.raises(TruncationError):
        policy.select_rank(np.zeros((2, 2)))
    with pytest.raises(TruncationError):
        policy.select_rank(np.array([]))


def test_truncate_singular_values_shapes_and_record():
    u = np.random.default_rng(0).normal(size=(3, 2, 4))
    s = np.array([1.0, 0.5, 1e-12, 1e-13])
    vh = np.random.default_rng(1).normal(size=(4, 2, 3))
    policy = TruncationPolicy(cutoff=1e-16)
    u2, s2, vh2, record = truncate_singular_values(u, s, vh, policy)
    assert isinstance(record, TruncationRecord)
    assert record.bond_dimension_before == 4
    assert record.bond_dimension_after == record.kept == 2
    assert record.discarded == 2
    assert u2.shape == (3, 2, 2)
    assert s2.shape == (2,)
    assert vh2.shape == (2, 2, 3)
    assert record.fidelity_lower_bound == pytest.approx(1.0, abs=1e-12)


def test_record_fidelity_bound_is_clamped():
    record = TruncationRecord(
        kept=1,
        discarded=1,
        discarded_weight=1.5,
        bond_dimension_before=2,
        bond_dimension_after=1,
    )
    assert record.fidelity_lower_bound == 0.0
