"""Unit tests for the batched (stacked-sweep) circuit encoding path."""

import numpy as np
import pytest

from repro.backends import CpuBackend, SimulatedGpuBackend
from repro.circuits import Circuit, GateKind, build_feature_map_circuit
from repro.config import AnsatzConfig, SimulationConfig
from repro.exceptions import BackendError, SimulationError
from repro.mps import (
    MPS,
    InstrumentedMPS,
    TruncationPolicy,
    circuit_structure_signature,
    encode_circuits,
    group_circuits_by_structure,
)


def _reference_state(circuit, policy=None):
    state = MPS.zero_state(circuit.num_qubits, policy or TruncationPolicy())
    state.apply_circuit(circuit)
    return state


def _assert_states_bit_identical(actual, expected):
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert a.num_qubits == e.num_qubits
        for ta, te in zip(a.tensors, e.tensors):
            assert ta.shape == te.shape
            assert ta.tobytes() == te.tobytes()


# ----------------------------------------------------------------------
# Structure grouping
# ----------------------------------------------------------------------
def test_same_ansatz_circuits_share_one_structure(rng):
    ansatz = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.7)
    X = rng.uniform(0.1, 1.9, size=(6, 5))
    circuits = [build_feature_map_circuit(row, ansatz) for row in X]
    signatures = {circuit_structure_signature(c) for c in circuits}
    assert len(signatures) == 1
    groups = group_circuits_by_structure(circuits)
    assert list(groups.values()) == [[0, 1, 2, 3, 4, 5]]


def test_different_ansatz_configs_split_structures(rng):
    a1 = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.7)
    a2 = AnsatzConfig(num_features=4, interaction_distance=2, layers=1, gamma=0.7)
    rows = rng.uniform(0.1, 1.9, size=(2, 4))
    circuits = [
        build_feature_map_circuit(rows[0], a1),
        build_feature_map_circuit(rows[1], a2),
        build_feature_map_circuit(rows[1], a1),
    ]
    groups = group_circuits_by_structure(circuits)
    assert list(groups.values()) == [[0, 2], [1]]


# ----------------------------------------------------------------------
# Bit-identicality to per-point simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "distance,features,layers",
    [(1, 4, 2), (2, 6, 2), (3, 8, 1), (2, 5, 3)],
)
def test_encode_circuits_bit_identical_to_per_point(rng, distance, features, layers):
    ansatz = AnsatzConfig(
        num_features=features,
        interaction_distance=distance,
        layers=layers,
        gamma=0.8,
    )
    X = rng.uniform(0.05, 1.95, size=(7, features))
    circuits = [build_feature_map_circuit(row, ansatz) for row in X]
    batched = encode_circuits(circuits)
    _assert_states_bit_identical(batched, [_reference_state(c) for c in circuits])


def test_truncation_divergence_regroups_and_stays_identical(rng):
    # Features equal to 1.0 zero the RXX angles, so those members keep a
    # smaller bond dimension and must split off into their own shape group
    # mid-sweep.
    ansatz = AnsatzConfig(num_features=6, interaction_distance=2, layers=2, gamma=0.8)
    X = rng.uniform(0.05, 1.95, size=(10, 6))
    X[2] = 1.0
    X[5] = 1.0
    X[7, :3] = 1.0
    circuits = [build_feature_map_circuit(row, ansatz) for row in X]
    batched = encode_circuits(circuits)
    assert len({s.max_bond_dimension for s in batched}) > 1
    _assert_states_bit_identical(batched, [_reference_state(c) for c in circuits])


def test_mixed_structure_batch(rng):
    a1 = AnsatzConfig(num_features=5, interaction_distance=1, layers=1, gamma=0.6)
    a2 = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.6)
    rows = rng.uniform(0.1, 1.9, size=(6, 5))
    circuits = [
        build_feature_map_circuit(rows[i], a1 if i % 2 == 0 else a2, )
        for i in range(6)
    ]
    batched = encode_circuits(circuits)
    _assert_states_bit_identical(batched, [_reference_state(c) for c in circuits])


def test_accounting_matches_per_point(rng):
    ansatz = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.7)
    X = rng.uniform(0.1, 1.9, size=(5, 5))
    circuits = [build_feature_map_circuit(row, ansatz) for row in X]
    for state, circuit in zip(encode_circuits(circuits), circuits):
        reference = _reference_state(circuit)
        assert state.orthogonality_center == reference.orthogonality_center
        assert state.gates_applied == reference.gates_applied
        assert (
            state.two_qubit_gates_applied == reference.two_qubit_gates_applied
        )
        assert (
            state.cumulative_discarded_weight
            == reference.cumulative_discarded_weight
        )
        assert state.truncation_records == reference.truncation_records


def test_empty_and_single_circuit():
    assert encode_circuits([]) == []
    ansatz = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.5)
    circuit = build_feature_map_circuit(np.full(4, 0.7), ansatz)
    _assert_states_bit_identical(
        encode_circuits([circuit]), [_reference_state(circuit)]
    )


def test_unrouted_circuit_raises():
    circuit = Circuit(3)
    circuit.add(GateKind.H, 0)
    circuit.add(GateKind.RXX, (0, 2), angle=0.3)
    with pytest.raises(SimulationError):
        encode_circuits([circuit])


# ----------------------------------------------------------------------
# Backend.simulate_batch
# ----------------------------------------------------------------------
@pytest.fixture
def circuits(rng):
    ansatz = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.7)
    X = rng.uniform(0.1, 1.9, size=(6, 5))
    return [build_feature_map_circuit(row, ansatz) for row in X]


def test_simulate_batch_counters_match_per_point(circuits):
    loop_backend = CpuBackend()
    for circuit in circuits:
        loop_backend.simulate(circuit)
    batch_backend = CpuBackend()
    result = batch_backend.simulate_batch(circuits)

    assert batch_backend.num_simulations == loop_backend.num_simulations
    assert result.num_circuits == len(circuits)
    assert result.num_structure_groups == 1
    # Modelled time is the sum of per-point device times (addition order
    # aside), so engine accounting is invariant under batching.
    assert result.modelled_time_s == pytest.approx(
        loop_backend.modelled_simulation_time_s, rel=1e-12
    )
    _assert_states_bit_identical(
        list(result.states), [loop_backend.simulate(c).state for c in circuits]
    )


def test_simulate_batch_stacked_cost_model(circuits):
    cpu = CpuBackend().simulate_batch(circuits)
    gpu = SimulatedGpuBackend().simulate_batch(circuits)
    # One launch per stacked contraction can only help, and it helps the
    # overhead-heavy GPU model far more (the Fig. 5 small-chi regime).
    assert cpu.modelled_batched_time_s < cpu.modelled_time_s
    assert gpu.modelled_batched_time_s < gpu.modelled_time_s
    gpu_gain = gpu.modelled_time_s / gpu.modelled_batched_time_s
    cpu_gain = cpu.modelled_time_s / cpu.modelled_batched_time_s
    assert gpu_gain > cpu_gain


def test_simulate_batch_rejects_initial_state(circuits):
    backend = CpuBackend()
    with pytest.raises(BackendError):
        backend.simulate_batch(circuits, initial_state=MPS.zero_state(5))


def test_simulate_batch_empty():
    result = CpuBackend().simulate_batch([])
    assert result.states == ()
    assert result.num_circuits == 0


def test_simulate_batch_track_memory_falls_back(circuits):
    backend = CpuBackend(SimulationConfig(track_memory=True))
    result = backend.simulate_batch(circuits)
    assert all(isinstance(s, InstrumentedMPS) for s in result.states)
    assert all(len(s.trace) == c.num_gates for s, c in zip(result.states, circuits))
