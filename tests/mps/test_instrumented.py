"""Unit tests for the instrumented MPS and memory traces."""

import numpy as np
import pytest

from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.mps import InstrumentedMPS, MemoryTrace, MemorySample, gates


def test_trace_records_every_gate():
    mps = InstrumentedMPS.plus_state(4)
    mps.apply_single_qubit_gate(0, gates.rz(0.3))
    mps.apply_two_qubit_gate(1, gates.rxx(0.7))
    assert len(mps.trace) == 2
    samples = list(mps.trace)
    assert samples[0].is_two_qubit is False
    assert samples[1].is_two_qubit is True
    assert samples[1].gate_index == 2


def test_trace_memory_matches_state():
    mps = InstrumentedMPS.plus_state(5)
    for q in range(4):
        mps.apply_two_qubit_gate(q, gates.rxx(0.9))
    last = mps.trace.samples[-1]
    assert last.memory_bytes == mps.memory_bytes
    assert last.max_bond_dimension == mps.max_bond_dimension
    assert last.memory_mib == pytest.approx(mps.memory_bytes / 2**20)


def test_trace_axes_and_peaks():
    cfg = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=1.0)
    x = np.linspace(0.2, 1.8, 5)
    circuit = build_feature_map_circuit(x, cfg)
    mps = InstrumentedMPS.zero_state(5)
    mps.apply_circuit(circuit)

    trace = mps.trace
    progress = trace.progress_axis()
    memory = trace.memory_axis_mib()
    chi = trace.bond_dimension_axis()
    assert len(progress) == len(memory) == len(chi) == circuit.num_gates
    assert progress[0] > 0 and progress[-1] == pytest.approx(100.0)
    assert np.all(np.diff(progress) > 0)
    assert trace.peak_memory_bytes >= trace.final_memory_bytes
    assert trace.peak_bond_dimension == max(chi)


def test_trace_resample():
    trace = MemoryTrace(
        [
            MemorySample(i, False, 100 * i, 1, 0.0)
            for i in range(1, 101)
        ]
    )
    small = trace.resample(10)
    assert len(small) == 10
    assert small.samples[0].gate_index == 1
    assert small.samples[-1].gate_index == 100
    # Resampling to more points than available returns everything.
    assert len(trace.resample(500)) == 100
    assert len(trace.resample(0)) == 100


def test_empty_trace_defaults():
    trace = MemoryTrace()
    assert trace.peak_memory_bytes == 0
    assert trace.final_memory_bytes == 0
    assert trace.peak_bond_dimension == 1
    assert trace.progress_axis().size == 0


def test_zero_state_constructor():
    mps = InstrumentedMPS.zero_state(3)
    assert mps.num_qubits == 3
    assert len(mps.trace) == 0
