"""Statistical coverage validation of split-conformal prediction sets.

The split-conformal guarantee is *marginal*: over exchangeable draws of the
calibration set, prediction sets contain the true label with probability at
least ``1 - alpha`` (Vovk et al.; Park et al. 2022 study the same guarantee
in the cross-validation / few-shot regime).  A single split therefore
fluctuates around the target, so the test averages the empirical coverage
over several deterministic calibration/test splits of one held-out pool --
the quantity the guarantee actually bounds -- and requires the mean to clear
``1 - alpha`` for both the exact SMO model and the Nystrom-backed linear
model, at ``alpha`` in {0.1, 0.2}.

Everything is seeded, so the assertion is exact and stable, not flaky.
"""

import numpy as np
import pytest

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.svm import train_test_split
from repro.svm.conformal import SplitConformalClassifier


ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)
NUM_SPLITS = 8


@pytest.fixture(scope="module")
def scored_models():
    """Held-out decision values and labels for the exact and Nystrom models."""
    data = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=1200, num_features=4, positive_fraction=0.45, seed=13
            )
        ),
        240,
        seed=5,
    )
    X_train, X_rest, y_train, y_rest = train_test_split(
        data.features, data.labels, test_fraction=5 / 6, seed=0
    )
    scored = {}
    for label, approx in (
        ("exact", None),
        ("nystroem", NystroemConfig(num_landmarks=10, seed=0)),
    ):
        engine = QuantumKernelInferenceEngine(ANSATZ, approximation=approx)
        engine.fit(X_train, y_train)
        scored[label] = (engine.decision_function(X_rest), y_rest)
    return scored


def _mean_coverage(scores: np.ndarray, labels: np.ndarray, alpha: float) -> float:
    n = labels.size
    coverages = []
    for split_seed in range(NUM_SPLITS):
        rng = np.random.default_rng(split_seed)
        perm = rng.permutation(n)
        cal, test = perm[: n // 2], perm[n // 2 :]
        conformal = SplitConformalClassifier(alpha=alpha).calibrate(
            scores[cal], labels[cal]
        )
        sets = conformal.predict_set(scores[test])
        coverages.append(conformal.empirical_coverage(labels[test], sets))
    return float(np.mean(coverages))


@pytest.mark.parametrize("model", ["exact", "nystroem"])
@pytest.mark.parametrize("alpha", [0.1, 0.2])
def test_mean_coverage_meets_guarantee(scored_models, model, alpha):
    scores, labels = scored_models[model]
    coverage = _mean_coverage(scores, labels, alpha)
    assert coverage >= 1.0 - alpha, (model, alpha, coverage)


@pytest.mark.parametrize("model", ["exact", "nystroem"])
def test_sets_shrink_as_alpha_grows(scored_models, model):
    """Higher miscoverage tolerance can only make prediction sets smaller."""
    scores, labels = scored_models[model]
    n = labels.size
    rng = np.random.default_rng(0)
    perm = rng.permutation(n)
    cal, test = perm[: n // 2], perm[n // 2 :]
    sizes = []
    for alpha in (0.05, 0.1, 0.2, 0.4):
        conformal = SplitConformalClassifier(alpha=alpha).calibrate(
            scores[cal], labels[cal]
        )
        sets = conformal.predict_set(scores[test])
        sizes.append(conformal.average_set_size(sets))
    assert all(a >= b for a, b in zip(sizes, sizes[1:])), sizes
