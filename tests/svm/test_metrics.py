"""Unit tests for the classification metrics."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.svm import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


def test_confusion_matrix_counts():
    y_true = np.array([0, 0, 1, 1, 1, 0])
    y_pred = np.array([0, 1, 1, 0, 1, 0])
    cm = confusion_matrix(y_true, y_pred)
    assert cm.tolist() == [[2, 1], [1, 2]]


def test_accuracy_precision_recall_f1():
    y_true = np.array([1, 1, 1, 0, 0, 0, 0, 0])
    y_pred = np.array([1, 1, 0, 1, 0, 0, 0, 0])
    assert accuracy_score(y_true, y_pred) == pytest.approx(6 / 8)
    assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)


def test_perfect_and_worst_predictions():
    y = np.array([0, 1, 0, 1])
    assert accuracy_score(y, y) == 1.0
    assert precision_score(y, y) == 1.0
    assert recall_score(y, y) == 1.0
    flipped = 1 - y
    assert accuracy_score(y, flipped) == 0.0
    assert recall_score(y, flipped) == 0.0


def test_degenerate_precision_recall_return_zero():
    # No predicted positives -> precision 0; no true positives -> recall 0.
    assert precision_score([0, 1], [0, 0]) == 0.0
    assert recall_score([0, 0], [0, 1]) == 0.0
    assert f1_score([0, 1], [0, 0]) == 0.0


def test_signed_labels_accepted():
    y_true = np.array([-1, -1, 1, 1])
    y_pred = np.array([-1, 1, 1, 1])
    assert accuracy_score(y_true, y_pred) == pytest.approx(0.75)


def test_invalid_labels_rejected():
    with pytest.raises(DataError):
        accuracy_score([0, 2], [0, 1])
    with pytest.raises(DataError):
        accuracy_score([], [])
    with pytest.raises(DataError):
        accuracy_score([0, 1, 1], [0, 1])


def test_roc_curve_perfect_separation():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    fpr, tpr, thresholds = roc_curve(y, scores)
    assert roc_auc_score(y, scores) == pytest.approx(1.0)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == 1.0 and tpr[-1] == 1.0
    assert thresholds[0] == np.inf


def test_roc_auc_random_scores_near_half():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, size=2000)
    scores = rng.normal(size=2000)
    auc = roc_auc_score(y, scores)
    assert 0.45 < auc < 0.55


def test_roc_auc_inverted_scores():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.9, 0.8, 0.2, 0.1])
    assert roc_auc_score(y, scores) == pytest.approx(0.0)


def test_roc_auc_with_ties():
    y = np.array([0, 1, 0, 1])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert roc_auc_score(y, scores) == pytest.approx(0.5)


def test_roc_requires_both_classes():
    with pytest.raises(DataError):
        roc_auc_score([1, 1, 1], [0.2, 0.3, 0.4])


def test_roc_auc_is_threshold_invariant():
    """AUC depends only on the ranking of the scores."""
    rng = np.random.default_rng(5)
    y = rng.integers(0, 2, size=100)
    y[:5] = 1  # ensure both classes
    y[-5:] = 0
    scores = rng.normal(size=100)
    a = roc_auc_score(y, scores)
    b = roc_auc_score(y, 3.0 * scores + 10.0)
    assert a == pytest.approx(b)


def test_classification_report_keys_and_values():
    y_true = np.array([0, 1, 1, 0])
    y_pred = np.array([0, 1, 0, 0])
    scores = np.array([-1.0, 2.0, 0.1, -0.5])
    report = classification_report(y_true, y_pred, scores)
    assert set(report) == {"accuracy", "precision", "recall", "f1", "auc"}
    assert report["accuracy"] == pytest.approx(0.75)
    assert report["auc"] == pytest.approx(roc_auc_score(y_true, scores))
    # Without scores the predictions are used.
    fallback = classification_report(y_true, y_pred)
    assert fallback["auc"] == pytest.approx(roc_auc_score(y_true, y_pred))
