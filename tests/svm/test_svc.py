"""Unit tests for the SMO-trained precomputed-kernel SVM."""

import numpy as np
import pytest

from repro.exceptions import SVMError
from repro.kernels import gaussian_gram_matrix
from repro.svm import PrecomputedKernelSVC, accuracy_score, roc_auc_score


def _blobs(n_per_class=30, separation=3.0, seed=0, dim=2):
    """Two Gaussian blobs, linearly separable for large separation."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per_class, dim))
    b = rng.normal(size=(n_per_class, dim)) + separation
    X = np.vstack([a, b])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    perm = rng.permutation(2 * n_per_class)
    return X[perm], y[perm]


def _linear_kernel(A, B=None):
    B = A if B is None else B
    return A @ B.T


def test_separable_blobs_linear_kernel():
    X, y = _blobs(separation=5.0)
    K = _linear_kernel(X)
    model = PrecomputedKernelSVC(C=1.0)
    model.fit(K, y)
    preds = model.predict(K)
    assert accuracy_score(y, preds) == 1.0
    assert model.support_ is not None and model.support_.size > 0
    assert model.n_iter_ > 0


def test_gaussian_kernel_nonlinear_problem():
    # XOR-like data: not linearly separable, solvable with an RBF kernel.
    rng = np.random.default_rng(1)
    n = 40
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(int)
    # Guarantee both classes present.
    y[0], y[1] = 0, 1
    K = gaussian_gram_matrix(X, alpha=2.0)
    model = PrecomputedKernelSVC(C=5.0)
    model.fit(K, y)
    acc = accuracy_score(y, model.predict(K))
    assert acc >= 0.9


def test_decision_function_scores_rank_better_than_chance():
    X, y = _blobs(separation=2.0, seed=3)
    K = gaussian_gram_matrix(X)
    model = PrecomputedKernelSVC(C=1.0)
    model.fit(K, y)
    scores = model.decision_function(K)
    assert roc_auc_score(y, scores) > 0.9


def test_dual_constraints_satisfied():
    X, y = _blobs(separation=1.5, seed=5)
    K = gaussian_gram_matrix(X)
    C = 0.7
    model = PrecomputedKernelSVC(C=C)
    model.fit(K, y)
    alpha = model.alpha_
    y_signed = np.where(y > 0, 1.0, -1.0)
    assert np.all(alpha >= -1e-10)
    assert np.all(alpha <= C + 1e-10)
    # Equality constraint sum alpha_i y_i = 0.
    assert float(np.dot(alpha, y_signed)) == pytest.approx(0.0, abs=1e-8)


def test_dual_objective_increases_with_more_iterations():
    X, y = _blobs(separation=1.0, seed=7)
    K = gaussian_gram_matrix(X)
    short = PrecomputedKernelSVC(C=1.0, max_iter=5)
    short.fit(K, y)
    long = PrecomputedKernelSVC(C=1.0)
    long.fit(K, y)
    assert long.dual_objective(K) >= short.dual_objective(K) - 1e-9


def test_test_kernel_prediction_shape_and_validation():
    X, y = _blobs(separation=4.0, seed=11)
    X_test, _ = _blobs(n_per_class=5, separation=4.0, seed=12)
    K = _linear_kernel(X)
    K_test = _linear_kernel(X_test, X)
    model = PrecomputedKernelSVC().fit(K, y)
    preds = model.predict(K_test)
    assert preds.shape == (10,)
    assert set(np.unique(preds)) <= {0, 1}
    # 1-D row is accepted and treated as a single sample.
    single = model.decision_function(K_test[0])
    assert single.shape == (1,)
    with pytest.raises(SVMError):
        model.decision_function(np.ones((2, 7)))


def test_signed_labels_supported():
    X, y = _blobs(separation=5.0, seed=2)
    y_signed = np.where(y > 0, 1, -1)
    K = _linear_kernel(X)
    model = PrecomputedKernelSVC().fit(K, y_signed)
    assert accuracy_score(y, model.predict(K)) == 1.0


def test_invalid_inputs():
    with pytest.raises(SVMError):
        PrecomputedKernelSVC(C=0.0)
    with pytest.raises(SVMError):
        PrecomputedKernelSVC(tol=-1.0)
    with pytest.raises(SVMError):
        PrecomputedKernelSVC(max_iter=0)
    model = PrecomputedKernelSVC()
    with pytest.raises(SVMError):
        model.fit(np.eye(3), np.array([0, 1]))  # size mismatch
    with pytest.raises(SVMError):
        model.fit(np.eye(2), np.array([1, 1]))  # single class
    with pytest.raises(SVMError):
        model.fit(np.ones((2, 3)), np.array([0, 1]))  # non-square kernel
    with pytest.raises(SVMError):
        model.fit(np.eye(1), np.array([1]))  # too few samples
    with pytest.raises(SVMError):
        model.fit(np.eye(2), np.array([0, 2]))  # non-binary labels
    with pytest.raises(SVMError):
        model.decision_function(np.eye(2))  # not fitted
    with pytest.raises(SVMError):
        model.dual_objective(np.eye(2))  # not fitted


def test_regularisation_controls_margin_violations():
    """Smaller C allows more support vectors at the box bound."""
    X, y = _blobs(separation=0.8, seed=21)
    K = gaussian_gram_matrix(X)
    loose = PrecomputedKernelSVC(C=0.01).fit(K, y)
    tight = PrecomputedKernelSVC(C=10.0).fit(K, y)
    at_bound_loose = np.sum(np.isclose(loose.alpha_, 0.01, atol=1e-6))
    at_bound_tight = np.sum(np.isclose(tight.alpha_, 10.0, atol=1e-4))
    assert at_bound_loose >= at_bound_tight


def test_deterministic_given_seed():
    X, y = _blobs(separation=1.2, seed=30)
    K = gaussian_gram_matrix(X)
    a = PrecomputedKernelSVC(C=1.0, random_state=3).fit(K, y)
    b = PrecomputedKernelSVC(C=1.0, random_state=3).fit(K, y)
    assert np.allclose(a.alpha_, b.alpha_)
    assert a.intercept_ == pytest.approx(b.intercept_)


# ----------------------------------------------------------------------
# Platt-scaled probabilities
# ----------------------------------------------------------------------
def test_predict_proba_on_separable_toy_problem():
    X, y = _blobs(separation=5.0, seed=11)
    K = _linear_kernel(X)
    model = PrecomputedKernelSVC(C=1.0).fit(K, y)
    proba = model.predict_proba(K)
    assert proba.shape == (X.shape[0], 2)
    assert np.all(proba >= 0.0) and np.all(proba <= 1.0)
    assert np.allclose(proba.sum(axis=1), 1.0)
    # Confident, correct probabilities on a cleanly separable problem.
    assert np.all(proba[y == 1, 1] > 0.5)
    assert np.all(proba[y == 0, 1] < 0.5)
    assert proba[y == 1, 1].mean() > 0.8
    assert proba[y == 0, 0].mean() > 0.8


def test_predict_proba_is_monotone_in_decision_value():
    X, y = _blobs(separation=2.0, seed=13)
    K = _linear_kernel(X)
    model = PrecomputedKernelSVC(C=1.0).fit(K, y)
    scores = model.decision_function(K)
    p1 = model.predict_proba(K)[:, 1]
    order = np.argsort(scores)
    assert np.all(np.diff(p1[order]) >= -1e-12)


def test_predict_proba_matches_predictions_in_ranking():
    X, y = _blobs(separation=1.5, seed=17)
    K = _linear_kernel(X)
    model = PrecomputedKernelSVC(C=1.0).fit(K, y)
    auc_scores = roc_auc_score(y, model.decision_function(K))
    auc_proba = roc_auc_score(y, model.predict_proba(K)[:, 1])
    assert abs(auc_scores - auc_proba) < 1e-9


def test_predict_proba_unfitted_raises():
    model = PrecomputedKernelSVC()
    with pytest.raises(SVMError):
        model.predict_proba(np.eye(3))
