"""Unit tests for the split-conformal prediction-set wrapper."""

import numpy as np
import pytest

from repro.approx import LinearSVC
from repro.exceptions import SVMError
from repro.svm import SplitConformalClassifier


def _noisy_blobs(n_per_class, separation=1.2, seed=0, dim=3):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per_class, dim))
    b = rng.normal(size=(n_per_class, dim)) + separation
    X = np.vstack([a, b])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    perm = rng.permutation(2 * n_per_class)
    return X[perm], y[perm]


@pytest.fixture(scope="module")
def calibrated():
    """Model trained, calibrated and evaluated on three disjoint splits."""
    X, y = _noisy_blobs(300, seed=5)
    X_train, y_train = X[:200], y[:200]
    X_cal, y_cal = X[200:400], y[200:400]
    X_test, y_test = X[400:], y[400:]
    model = LinearSVC(C=1.0).fit(X_train, y_train)
    conformal = SplitConformalClassifier(alpha=0.1).calibrate(
        model.decision_function(X_cal), y_cal
    )
    return conformal, model, X_test, y_test


def test_marginal_coverage_on_synthetic_data(calibrated):
    conformal, model, X_test, y_test = calibrated
    sets = conformal.predict_set(model.decision_function(X_test))
    coverage = conformal.empirical_coverage(y_test, sets)
    # Finite-sample guarantee is >= 1 - alpha marginally; allow sampling slack
    # on this single draw (200 test points).
    assert coverage >= 1.0 - conformal.alpha - 0.05
    # Sets must be informative, not vacuous {0, 1} everywhere.
    assert conformal.average_set_size(sets) < 2.0


def test_sets_shrink_as_alpha_grows(calibrated):
    _, model, X_test, y_test = calibrated
    X, y = _noisy_blobs(300, seed=5)
    X_cal, y_cal = X[200:400], y[200:400]
    scores_cal = model.decision_function(X_cal)
    scores_test = model.decision_function(X_test)
    sizes = []
    for alpha in (0.05, 0.2, 0.4):
        conf = SplitConformalClassifier(alpha=alpha).calibrate(scores_cal, y_cal)
        sizes.append(conf.average_set_size(conf.predict_set(scores_test)))
    assert sizes[0] >= sizes[1] >= sizes[2]


def test_tiny_calibration_set_gives_vacuous_sets():
    conf = SplitConformalClassifier(alpha=0.05)
    conf.calibrate(np.array([1.0, -1.0]), np.array([1, 0]))
    assert conf.quantile_ == float("inf")
    sets = conf.predict_set(np.array([3.0, -3.0]))
    assert sets == [{0, 1}, {0, 1}]


def test_prediction_set_matrix_layout(calibrated):
    conformal, model, X_test, _ = calibrated
    scores = model.decision_function(X_test[:5])
    member = conformal.prediction_set_matrix(scores)
    assert member.shape == (5, 2)
    sets = conformal.predict_set(scores)
    for i, s in enumerate(sets):
        assert (0 in s) == bool(member[i, 0])
        assert (1 in s) == bool(member[i, 1])


def test_confident_points_get_singletons(calibrated):
    conformal, _, _, _ = calibrated
    sets = conformal.predict_set(np.array([50.0, -50.0]))
    assert sets == [{1}, {0}]


def test_validation_errors(calibrated):
    conformal, model, X_test, y_test = calibrated
    with pytest.raises(SVMError):
        SplitConformalClassifier(alpha=0.0)
    with pytest.raises(SVMError):
        SplitConformalClassifier(alpha=1.0)
    with pytest.raises(SVMError):
        SplitConformalClassifier().predict_set(np.array([0.0]))
    with pytest.raises(SVMError):
        SplitConformalClassifier().calibrate(np.array([1.0]), np.array([1, 0]))
    with pytest.raises(SVMError):
        conformal.empirical_coverage(y_test[:3], conformal.predict_set(np.zeros(2)))
