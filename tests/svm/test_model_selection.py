"""Unit tests for train/test splitting and the C-grid scan."""

import numpy as np
import pytest

from repro.exceptions import DataError, SVMError
from repro.kernels import gaussian_gram_matrix
from repro.svm import GridSearchResult, grid_search_c, train_test_split


def _blobs(n_per_class=30, separation=3.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per_class, 3))
    b = rng.normal(size=(n_per_class, 3)) + separation
    X = np.vstack([a, b])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    return X, y


def test_split_sizes_and_disjointness():
    X, y = _blobs(25)
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.2, seed=1)
    assert X_train.shape[0] + X_test.shape[0] == 50
    assert X_test.shape[0] == 10
    assert y_train.size == X_train.shape[0]
    # No row appears in both splits (rows are unique with probability 1).
    train_rows = {tuple(r) for r in X_train}
    test_rows = {tuple(r) for r in X_test}
    assert not (train_rows & test_rows)


def test_split_stratification_preserves_balance():
    X, y = _blobs(40)
    _, _, y_train, y_test = train_test_split(X, y, test_fraction=0.25, seed=0)
    assert abs(np.mean(y_train) - 0.5) < 1e-9
    assert abs(np.mean(y_test) - 0.5) < 1e-9


def test_split_reproducible_and_seed_sensitive():
    X, y = _blobs(20)
    a = train_test_split(X, y, seed=7)
    b = train_test_split(X, y, seed=7)
    c = train_test_split(X, y, seed=8)
    assert np.array_equal(a[0], b[0])
    assert not np.array_equal(a[0], c[0])


def test_split_unstratified():
    X, y = _blobs(20)
    X_train, X_test, *_ = train_test_split(X, y, test_fraction=0.3, stratify=False)
    assert X_test.shape[0] == 12
    assert X_train.shape[0] == 28


def test_split_validation():
    X, y = _blobs(10)
    with pytest.raises(DataError):
        train_test_split(X, y[:-1])
    with pytest.raises(DataError):
        train_test_split(X, y, test_fraction=0.0)
    with pytest.raises(DataError):
        train_test_split(X.ravel(), np.ones(X.size))
    with pytest.raises(DataError):
        train_test_split(np.ones((2, 2)), np.array([0, 1]), test_fraction=0.9)


def test_grid_search_selects_best_auc():
    X, y = _blobs(30, separation=1.5, seed=4)
    X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
    K_train = gaussian_gram_matrix(X_train)
    K_test = gaussian_gram_matrix(X_test, X_train)
    result = grid_search_c(K_train, y_train, K_test, y_test, c_grid=(0.01, 0.1, 1.0, 4.0))
    assert isinstance(result, GridSearchResult)
    assert result.best_C in (0.01, 0.1, 1.0, 4.0)
    best_auc = result.best_test_auc
    # The winner's AUC must be the max over the per-C reports.
    all_aucs = [v["test"]["auc"] for v in result.per_C.values()]
    assert best_auc == pytest.approx(max(all_aucs))
    assert set(result.best_test_metrics) == {"accuracy", "precision", "recall", "f1", "auc"}
    assert result.best_model is not None
    assert len(result.per_C) == 4


def test_grid_search_validation():
    K = np.eye(4)
    y = np.array([0, 1, 0, 1])
    with pytest.raises(SVMError):
        grid_search_c(K, y, np.ones((2, 5)), np.array([0, 1]), c_grid=(1.0,))
    with pytest.raises(SVMError):
        grid_search_c(K, y, np.ones((2, 4)), np.array([0, 1]), c_grid=())


def test_grid_search_alternative_selection_metric():
    X, y = _blobs(20, separation=2.0, seed=9)
    X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
    K_train = gaussian_gram_matrix(X_train)
    K_test = gaussian_gram_matrix(X_test, X_train)
    result = grid_search_c(
        K_train, y_train, K_test, y_test, c_grid=(0.1, 1.0), selection_metric="accuracy"
    )
    accs = [v["test"]["accuracy"] for v in result.per_C.values()]
    assert result.best_test_metrics["accuracy"] == pytest.approx(max(accs))


# ----------------------------------------------------------------------
# Linear (explicit-feature) C scan and Nystrom cross-validation
# ----------------------------------------------------------------------
def test_grid_search_c_linear_selects_best_auc():
    from repro.svm import grid_search_c_linear

    X, y = _blobs(30, separation=2.0, seed=4)
    rng = np.random.default_rng(0)
    test_idx = rng.choice(60, size=15, replace=False)
    train_mask = np.ones(60, dtype=bool)
    train_mask[test_idx] = False
    result = grid_search_c_linear(
        X[train_mask], y[train_mask], X[test_idx], y[test_idx], c_grid=(0.1, 1.0, 10.0)
    )
    assert isinstance(result, GridSearchResult)
    assert result.best_C in (0.1, 1.0, 10.0)
    assert set(result.per_C) == {0.1, 1.0, 10.0}
    assert result.best_test_auc == max(
        m["test"]["auc"] for m in result.per_C.values()
    )
    from repro.approx import LinearSVC

    assert isinstance(result.best_model, LinearSVC)


def test_grid_search_c_linear_validation():
    from repro.svm import grid_search_c_linear

    X, y = _blobs(10)
    with pytest.raises(SVMError):
        grid_search_c_linear(X, y, X, y, c_grid=())
    with pytest.raises(SVMError):
        grid_search_c_linear(X, y, X[:, :2], y)


def test_cross_validate_nystroem_selects_a_candidate():
    from repro.config import AnsatzConfig
    from repro.engine import EngineConfig, KernelEngine
    from repro.approx import NystroemConfig
    from repro.svm import cross_validate_nystroem

    rng = np.random.default_rng(6)
    X = rng.uniform(0.1, 1.9, size=(24, 4))
    y = (X[:, 0] + 0.2 * rng.normal(size=24) > 1.0).astype(int)
    if np.unique(y).size < 2:  # pragma: no cover - seed guard
        y[0] = 1 - y[0]
    ansatz = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)
    configs = [
        NystroemConfig(num_landmarks=4),
        NystroemConfig(num_landmarks=8, strategy="greedy"),
    ]
    result = cross_validate_nystroem(
        lambda: KernelEngine(ansatz, config=EngineConfig(use_cache=True)),
        X,
        y,
        configs,
        n_folds=2,
        seed=0,
    )
    assert result.best_config in configs
    assert set(result.mean_scores) == set(configs)
    assert all(len(v) == 2 for v in result.fold_scores.values())
    assert 0.0 <= result.best_score <= 1.0
    assert result.best_score == max(result.mean_scores.values())


def test_cross_validate_nystroem_validation():
    from repro.config import AnsatzConfig
    from repro.engine import KernelEngine
    from repro.approx import NystroemConfig
    from repro.svm import cross_validate_nystroem

    ansatz = AnsatzConfig(num_features=4)
    factory = lambda: KernelEngine(ansatz)
    X = np.random.default_rng(0).uniform(0.1, 1.9, size=(12, 4))
    y = np.array([0, 1] * 6)
    with pytest.raises(SVMError):
        cross_validate_nystroem(factory, X, y, [], n_folds=2)
    with pytest.raises(SVMError):
        cross_validate_nystroem(
            factory, X, y, [NystroemConfig(num_landmarks=4)], n_folds=1
        )
    with pytest.raises(SVMError):
        cross_validate_nystroem(
            factory, X, y, [NystroemConfig(num_landmarks=12)], n_folds=2
        )


def test_cross_validate_nystroem_distinguishes_rank_variants():
    """Candidates sharing (m, strategy) but differing in rank keep separate scores."""
    from repro.config import AnsatzConfig
    from repro.engine import EngineConfig, KernelEngine
    from repro.approx import NystroemConfig
    from repro.svm import cross_validate_nystroem

    rng = np.random.default_rng(8)
    X = rng.uniform(0.1, 1.9, size=(16, 4))
    y = np.array([0, 1] * 8)
    ansatz = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)
    configs = [
        NystroemConfig(num_landmarks=6, rank=2),
        NystroemConfig(num_landmarks=6, rank=6),
    ]
    result = cross_validate_nystroem(
        lambda: KernelEngine(ansatz, config=EngineConfig(use_cache=True)),
        X, y, configs, n_folds=2, seed=0,
    )
    assert len(result.mean_scores) == 2
    assert set(result.mean_scores) == set(configs)
