"""Unit tests for feature scaling."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.svm import FeatureScaler, scale_to_interval


def test_scale_to_interval_bounds(rng):
    X = rng.normal(size=(30, 5)) * 10
    scaled = scale_to_interval(X)
    assert scaled.min() >= 0.0
    assert scaled.max() <= 2.0
    assert scaled.min(axis=0) == pytest.approx(np.zeros(5))
    assert scaled.max(axis=0) == pytest.approx(np.full(5, 2.0))


def test_scale_to_interval_constant_feature():
    X = np.column_stack([np.ones(10), np.arange(10.0)])
    scaled = scale_to_interval(X)
    assert np.allclose(scaled[:, 0], 1.0)  # midpoint of (0, 2)


def test_scale_to_interval_validates_shape():
    with pytest.raises(DataError):
        scale_to_interval(np.ones(5))


def test_scaler_fit_transform_interval(rng):
    X = rng.normal(size=(50, 4)) * 3 + 7
    scaler = FeatureScaler()
    Xt = scaler.fit_transform(X)
    lo, hi = scaler.interval()
    assert Xt.min() >= lo - 1e-12
    assert Xt.max() <= hi + 1e-12
    assert scaler.is_fitted


def test_scaler_clips_unseen_extremes(rng):
    X_train = rng.uniform(0, 1, size=(20, 3))
    X_test = X_train.copy()
    X_test[0, 0] = 100.0   # far outside the training range
    X_test[1, 1] = -100.0
    scaler = FeatureScaler()
    scaler.fit(X_train)
    Xt = scaler.transform(X_test)
    lo, hi = scaler.interval()
    assert Xt.max() <= hi
    assert Xt.min() >= lo


def test_scaler_transform_before_fit_raises():
    with pytest.raises(DataError):
        FeatureScaler().transform(np.ones((3, 2)))


def test_scaler_feature_count_mismatch():
    scaler = FeatureScaler()
    scaler.fit(np.ones((5, 3)) * np.arange(3))
    with pytest.raises(DataError):
        scaler.transform(np.ones((5, 4)))


def test_scaler_invalid_parameters():
    with pytest.raises(DataError):
        FeatureScaler(lower=2.0, upper=1.0)
    with pytest.raises(DataError):
        FeatureScaler(margin=-0.1)
    with pytest.raises(DataError):
        FeatureScaler(margin=1.5)
    with pytest.raises(DataError):
        FeatureScaler().fit(np.ones((0, 3)))
    with pytest.raises(DataError):
        FeatureScaler().fit(np.ones(3))


def test_scaler_is_monotone_per_feature(rng):
    X = rng.normal(size=(40, 2))
    scaler = FeatureScaler()
    Xt = scaler.fit_transform(X)
    for col in range(2):
        order_before = np.argsort(X[:, col])
        order_after = np.argsort(Xt[:, col])
        assert np.array_equal(order_before, order_after)
