"""Unit tests for the adaptive controller's damped observe/propose/apply loop.

The controller duck-types its target, so these tests drive it with fake
queues/fleets whose signals are set directly -- every damping behaviour
(bound clamping, cooldown, dead band, the never-enable-shedding rule) is
pinned without spinning up a real serving stack.  End-to-end behaviour over
real fleets lives in ``tests/properties/test_control_metamorphic.py`` and
``benchmarks/bench_control.py``.
"""

import time

import pytest

from repro.config import TuningConfig
from repro.control import (
    AdaptiveController,
    ControlDecision,
    DepthProportionalPolicy,
    StaticPolicy,
)
from repro.exceptions import ControlError
from repro.serving import QueueTuning


class FakeMetrics:
    def __init__(self):
        self.total_enqueued = 0
        self.total_requests = 0
        self.latencies = []
        self.batches = []

    def to_dict(self):
        return {
            "total_enqueued": self.total_enqueued,
            "total_requests": self.total_requests,
        }

    def latency_samples(self):
        return list(self.latencies)

    def batch_size_samples(self):
        return list(self.batches)


class FakeQueue:
    """The AsyncServingQueue surface the controller reads and writes."""

    def __init__(self, max_batch=8, max_wait_ms=5.0, wait_jitter_ms=0.0):
        self._tuning = QueueTuning(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            wait_jitter_ms=wait_jitter_ms,
        )
        self.pending = 0
        self.metrics = FakeMetrics()
        self.encode_batch_size = None
        self.applied = []

    @property
    def tuning(self):
        return self._tuning

    def apply_tuning(self, **kwargs):
        self.applied.append(dict(kwargs))
        current = self._tuning
        encode = kwargs.pop("encode_batch_size", None)
        if encode is not None:
            self.encode_batch_size = int(encode)
        self._tuning = QueueTuning(
            max_batch=int(kwargs.get("max_batch") or current.max_batch),
            max_wait_ms=float(
                current.max_wait_ms
                if kwargs.get("max_wait_ms") is None
                else kwargs["max_wait_ms"]
            ),
            wait_jitter_ms=float(
                current.wait_jitter_ms
                if kwargs.get("wait_jitter_ms") is None
                else kwargs["wait_jitter_ms"]
            ),
            version=current.version + 1,
        )
        return self._tuning


class FakeFleet:
    """The ReplicaRouter surface: queues + shed threshold + shed counter."""

    def __init__(self, num_replicas=2, high_water=None, **queue_kwargs):
        self.queues = [FakeQueue(**queue_kwargs) for _ in range(num_replicas)]
        self.high_water = high_water
        self.metrics = FakeMetrics()
        self.metrics.shed_count = 0

    @property
    def alive_replicas(self):
        return list(range(len(self.queues)))

    def apply_tuning(self, **kwargs):
        return [q.apply_tuning(**kwargs) for q in self.queues]

    def set_high_water(self, value):
        self.high_water = value


BOUNDS = TuningConfig(
    min_batch=1,
    batch_ceiling=64,
    min_wait_ms=1.0,
    wait_ceiling_ms=20.0,
    min_high_water=4,
    high_water_ceiling=256,
)


def controller(target, policy="depth-proportional", **kwargs):
    kwargs.setdefault("tuning", BOUNDS)
    kwargs.setdefault("cooldown_steps", 0)
    kwargs.setdefault("deadband", 0.0)
    return AdaptiveController(target, policy=policy, **kwargs)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_constructor_validates_parameters():
    queue = FakeQueue()
    with pytest.raises(ControlError, match="cooldown_steps"):
        AdaptiveController(queue, cooldown_steps=-1)
    with pytest.raises(ControlError, match="deadband"):
        AdaptiveController(queue, deadband=-0.1)
    with pytest.raises(ControlError, match="history"):
        AdaptiveController(queue, history=0)
    with pytest.raises(ControlError, match="unknown control policy"):
        AdaptiveController(queue, policy="pid")


def test_policy_instances_are_accepted():
    ctl = AdaptiveController(FakeQueue(), policy=DepthProportionalPolicy())
    assert ctl.policy.name == "depth-proportional"


# ----------------------------------------------------------------------
# Observation
# ----------------------------------------------------------------------
def test_observe_pools_fleet_signals_and_tracks_rates():
    fleet = FakeFleet(num_replicas=2)
    fleet.queues[0].pending = 3
    fleet.queues[1].pending = 7
    fleet.queues[0].metrics.total_enqueued = 10
    fleet.queues[1].metrics.total_enqueued = 20
    fleet.queues[0].metrics.latencies = [0.010] * 9 + [0.100]
    fleet.metrics.shed_count = 2
    ctl = controller(fleet, policy="static")

    first = ctl.observe(now=100.0)
    assert first.queue_depth == 7  # deepest replica, not the sum
    assert first.enqueued_requests == 30
    assert first.arrival_rate_rps == 0.0  # no previous observation
    assert first.shed_delta == 2
    assert first.alive_replicas == 2
    assert first.p50_latency_ms == pytest.approx(10.0)
    assert first.p99_latency_ms > first.p50_latency_ms

    fleet.queues[0].metrics.total_enqueued = 40
    fleet.metrics.shed_count = 5
    second = ctl.observe(now=102.0)
    assert second.arrival_rate_rps == pytest.approx(30 / 2.0)
    assert second.shed_delta == 3
    assert second.elapsed_s == pytest.approx(2.0)


def test_current_knobs_reads_the_live_objects():
    fleet = FakeFleet(high_water=64, max_batch=4, max_wait_ms=2.0)
    ctl = controller(fleet, policy="static")
    assert ctl.current_knobs() == {
        "max_batch": 4,
        "max_wait_ms": 2.0,
        "wait_jitter_ms": 0.0,
        "encode_batch_size": None,
        "queue_depth_high_water": 64,
    }


# ----------------------------------------------------------------------
# The step loop: damping and application
# ----------------------------------------------------------------------
def test_static_policy_steps_are_pure_observation():
    queue = FakeQueue()
    queue.pending = 1000
    ctl = controller(queue, policy="static")
    decision = ctl.step(now=0.0)
    assert isinstance(decision, ControlDecision)
    assert decision.proposed == {}
    assert decision.applied == {}
    assert ctl.adjustment_count == 0
    assert queue.applied == []
    assert queue.tuning.version == 0


def test_depth_pressure_grows_the_batch_through_apply_tuning():
    queue = FakeQueue(max_batch=8)
    queue.pending = 16
    ctl = controller(queue)
    decision = ctl.step(now=0.0)
    assert decision.applied["max_batch"] == 16
    assert decision.applied["encode_batch_size"] == 16
    assert queue.tuning.max_batch == 16
    assert queue.encode_batch_size == 16
    assert queue.tuning.version == 1
    assert ctl.adjustment_count == len(decision.applied)


def test_adjustments_clamp_into_the_configured_bounds():
    queue = FakeQueue(max_batch=60)
    queue.pending = 120  # proposes 60 + 8 = 68, above the 64 ceiling
    ctl = controller(queue)
    decision = ctl.step(now=0.0)
    assert decision.proposed["max_batch"] == 68
    assert decision.applied["max_batch"] == 64
    assert queue.tuning.max_batch == 64


def test_cooldown_refuses_to_move_a_knob_twice_in_a_row():
    queue = FakeQueue(max_batch=8)
    queue.pending = 16
    ctl = controller(queue, cooldown_steps=2)
    first = ctl.step(now=0.0)
    assert "max_batch" in first.applied
    queue.pending = 64  # still under pressure: the policy keeps proposing
    second = ctl.step(now=1.0)
    assert "max_batch" in second.proposed
    assert "max_batch" not in second.applied  # cooldown window
    third = ctl.step(now=2.0)
    assert "max_batch" not in third.applied
    fourth = ctl.step(now=3.0)
    assert "max_batch" in fourth.applied  # window expired


def test_deadband_suppresses_subthreshold_nudges():
    queue = FakeQueue(max_batch=8, max_wait_ms=10.0)
    queue.pending = 4  # hysteresis band: only max_wait_ms is proposed
    ctl = controller(queue, deadband=0.2)
    # Proposal: 1.0 + 0.5 * 19.0 = 10.5ms -- a 5% nudge from 10.0, under
    # the 20% dead band.
    decision = ctl.step(now=0.0)
    assert decision.proposed["max_wait_ms"] == pytest.approx(10.5)
    assert "max_wait_ms" not in decision.applied
    assert queue.tuning.version == 0


def test_high_water_is_never_enabled_when_unconfigured():
    fleet = FakeFleet(high_water=None, max_batch=8)
    fleet.queues[0].pending = 16
    ctl = controller(fleet)
    decision = ctl.step(now=0.0)
    assert "queue_depth_high_water" not in decision.applied
    assert fleet.high_water is None


def test_high_water_tracks_the_batch_when_configured():
    fleet = FakeFleet(high_water=64, max_batch=8)
    fleet.queues[0].pending = 16
    ctl = controller(fleet)
    decision = ctl.step(now=0.0)
    assert decision.applied["queue_depth_high_water"] == 8 * 16
    assert fleet.high_water == 128
    # The queue knobs fanned out to every replica.
    assert all(q.tuning.max_batch == 16 for q in fleet.queues)


def test_unknown_policy_knobs_never_reach_the_target():
    class RoguePolicy(StaticPolicy):
        name = "rogue"

        def propose(self, signals, knobs, bounds, context=None):
            return {"num_replicas": 99, "max_batch": 16}

    queue = FakeQueue(max_batch=8)
    ctl = controller(queue, policy=RoguePolicy())
    decision = ctl.step(now=0.0)
    assert "num_replicas" not in decision.applied
    assert decision.applied["max_batch"] == 16


# ----------------------------------------------------------------------
# Replica recommendation
# ----------------------------------------------------------------------
def test_recommends_scale_out_only_at_the_batch_ceiling():
    fleet = FakeFleet(num_replicas=2, max_batch=64)  # at BOUNDS ceiling
    fleet.queues[0].pending = 128  # pressure 2.0
    ctl = controller(fleet, policy="static")
    assert ctl.step(now=0.0).recommended_replicas == 3

    growable = FakeFleet(num_replicas=2, max_batch=8)
    growable.queues[0].pending = 16
    ctl2 = controller(growable, policy="static")
    # Batch can still grow: don't recommend replicas yet.
    assert ctl2.step(now=0.0).recommended_replicas == 2


def test_recommends_scale_out_on_shedding_and_scale_in_when_idle():
    fleet = FakeFleet(num_replicas=2, max_batch=8)
    fleet.metrics.shed_count = 4
    ctl = controller(fleet, policy="static")
    assert ctl.step(now=0.0).recommended_replicas == 3
    # Next step: no new sheds, empty queues -> scale in.
    assert ctl.step(now=1.0).recommended_replicas == 1


def test_recommendation_defaults_before_any_step():
    fleet = FakeFleet(num_replicas=3)
    assert controller(fleet).recommended_replicas == 3
    assert controller(FakeQueue()).recommended_replicas == 1


# ----------------------------------------------------------------------
# Summary and background loop
# ----------------------------------------------------------------------
def test_summary_exposes_the_dashboard_fields():
    queue = FakeQueue()
    ctl = controller(queue, policy="static")
    ctl.step(now=0.0)
    summary = ctl.summary()
    assert summary["policy"] == "static"
    assert summary["step_count"] == 1
    assert summary["adjustment_count"] == 0
    assert summary["knobs"]["max_batch"] == 8
    assert summary["recommended_replicas"] == 1


def test_decision_history_is_bounded():
    queue = FakeQueue()
    ctl = controller(queue, policy="static", history=4)
    for i in range(10):
        ctl.step(now=float(i))
    assert len(ctl.decisions) == 4
    assert ctl.decisions[-1].step == 9
    assert ctl.decisions[-1].to_dict()["policy"] == "static"


def test_background_loop_steps_and_stops_cleanly():
    queue = FakeQueue()
    ctl = controller(queue, policy="static")
    with pytest.raises(ControlError, match="interval_s"):
        ctl.start(0.0)
    ctl.start(0.005)
    with pytest.raises(ControlError, match="already running"):
        ctl.start(0.005)
    deadline = time.monotonic() + 5.0
    while ctl.step_count < 2 and time.monotonic() < deadline:
        time.sleep(0.005)
    ctl.stop()
    assert ctl.step_count >= 2
    stopped_at = ctl.step_count
    time.sleep(0.02)
    assert ctl.step_count == stopped_at  # no steps after stop
    ctl.stop()  # idempotent
