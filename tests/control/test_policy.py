"""Unit tests for the control policies: pure signals-in, proposals-out."""

import pytest

from repro.config import TuningConfig
from repro.control import (
    CONTROL_POLICIES,
    ControlSignals,
    CostContext,
    CostModelPolicy,
    DepthProportionalPolicy,
    StaticPolicy,
    make_control_policy,
)
from repro.exceptions import ControlError

BOUNDS = TuningConfig(
    max_batch=8,
    min_batch=1,
    batch_ceiling=64,
    min_wait_ms=1.0,
    wait_ceiling_ms=20.0,
)


def knobs(max_batch=8, high_water=None):
    return {
        "max_batch": max_batch,
        "max_wait_ms": 5.0,
        "wait_jitter_ms": 0.0,
        "encode_batch_size": None,
        "queue_depth_high_water": high_water,
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_resolves_all_shipped_policies():
    assert sorted(CONTROL_POLICIES) == [
        "cost-model",
        "depth-proportional",
        "static",
    ]
    for name, cls in CONTROL_POLICIES.items():
        policy = make_control_policy(name)
        assert isinstance(policy, cls)
        assert policy.name == name


def test_registry_passes_instances_through_and_rejects_unknown():
    instance = DepthProportionalPolicy(grow_step=4)
    assert make_control_policy(instance) is instance
    with pytest.raises(ControlError, match="unknown control policy"):
        make_control_policy("pid")


# ----------------------------------------------------------------------
# Static
# ----------------------------------------------------------------------
def test_static_policy_never_proposes():
    policy = StaticPolicy()
    overloaded = ControlSignals(queue_depth=10_000, shed_delta=50)
    assert policy.propose(overloaded, knobs(), BOUNDS) == {}


# ----------------------------------------------------------------------
# Depth-proportional AIMD
# ----------------------------------------------------------------------
def test_depth_policy_validates_parameters():
    with pytest.raises(ControlError, match="grow_step"):
        DepthProportionalPolicy(grow_step=0)
    with pytest.raises(ControlError, match="shrink_factor"):
        DepthProportionalPolicy(shrink_factor=1.0)
    with pytest.raises(ControlError, match="pressure thresholds"):
        DepthProportionalPolicy(low_pressure=1.0, high_pressure=0.5)
    with pytest.raises(ControlError, match="hw_batches"):
        DepthProportionalPolicy(hw_batches=0)


def test_depth_policy_grows_additively_under_pressure():
    policy = DepthProportionalPolicy(grow_step=8)
    # Pressure = 16 / 8 = 2.0 >= high threshold: grow.
    out = policy.propose(ControlSignals(queue_depth=16), knobs(8), BOUNDS)
    assert out["max_batch"] == 16
    assert out["encode_batch_size"] == 16
    # Saturated queue tolerates the wait ceiling.
    assert out["max_wait_ms"] == BOUNDS.wait_ceiling_ms


def test_depth_policy_grows_on_shedding_even_when_shallow():
    policy = DepthProportionalPolicy(grow_step=8)
    out = policy.propose(
        ControlSignals(queue_depth=0, shed_delta=3), knobs(8), BOUNDS
    )
    assert out["max_batch"] == 16


def test_depth_policy_shrinks_multiplicatively_when_idle():
    policy = DepthProportionalPolicy(shrink_factor=0.5)
    out = policy.propose(ControlSignals(queue_depth=0), knobs(32), BOUNDS)
    assert out["max_batch"] == 16
    # An idle queue flushes near-immediately.
    assert out["max_wait_ms"] == BOUNDS.min_wait_ms


def test_depth_policy_holds_in_the_hysteresis_band():
    policy = DepthProportionalPolicy(low_pressure=0.25, high_pressure=1.0)
    # Pressure = 4 / 8 = 0.5: inside the dead band, batch holds.
    out = policy.propose(ControlSignals(queue_depth=4), knobs(8), BOUNDS)
    assert "max_batch" not in out
    assert "encode_batch_size" not in out
    # The wait still interpolates with pressure.
    expected = BOUNDS.min_wait_ms + 0.5 * (
        BOUNDS.wait_ceiling_ms - BOUNDS.min_wait_ms
    )
    assert out["max_wait_ms"] == pytest.approx(expected)


def test_depth_policy_tracks_high_water_only_when_configured():
    policy = DepthProportionalPolicy(grow_step=8, hw_batches=8)
    unconfigured = policy.propose(
        ControlSignals(queue_depth=16), knobs(8, high_water=None), BOUNDS
    )
    assert "queue_depth_high_water" not in unconfigured
    configured = policy.propose(
        ControlSignals(queue_depth=16), knobs(8, high_water=64), BOUNDS
    )
    assert configured["queue_depth_high_water"] == 8 * 16


# ----------------------------------------------------------------------
# Cost-model
# ----------------------------------------------------------------------
class _LinearCostModel:
    """sweep(batch) = fixed per-flush overhead + linear per-pair work."""

    def __init__(self, overhead_s=0.010, per_pair_s=0.0001):
        self.overhead_s = overhead_s
        self.per_pair_s = per_pair_s

    def batched_inner_product_time(self, batch, num_qubits, chi):
        return self.overhead_s + batch * self.per_pair_s


def _context(**kwargs):
    return CostContext(
        cost_model=_LinearCostModel(**kwargs),
        num_qubits=4,
        num_landmarks=1,
        chi=2,
    )


def test_cost_policy_validates_parameters():
    with pytest.raises(ControlError, match="overhead_ms"):
        CostModelPolicy(overhead_ms=-1.0)
    with pytest.raises(ControlError, match="hw_batches"):
        CostModelPolicy(hw_batches=0)


def test_cost_policy_needs_context_and_arrivals():
    policy = CostModelPolicy()
    busy = ControlSignals(queue_depth=10, arrival_rate_rps=100.0)
    assert policy.propose(busy, knobs(), BOUNDS, context=None) == {}
    idle = ControlSignals(queue_depth=10, arrival_rate_rps=0.0)
    assert policy.propose(idle, knobs(), BOUNDS, context=_context()) == {}


def test_cost_policy_prefers_small_batches_at_low_rate():
    # At 10 rps a single request is serviced long before the next arrives:
    # every candidate is stable and B=1 minimises latency (no fill wait).
    policy = CostModelPolicy()
    out = policy.propose(
        ControlSignals(arrival_rate_rps=10.0), knobs(), BOUNDS, _context()
    )
    assert out["max_batch"] == BOUNDS.min_batch
    assert out["encode_batch_size"] == out["max_batch"]
    assert out["max_wait_ms"] == pytest.approx(0.0)


def test_cost_policy_grows_batch_under_load():
    # At 500 rps, B=1 services only 1/0.0101 ~ 99 rps -- unstable.  The
    # fixed per-flush overhead amortises with B, so the stability filter
    # forces the batch up until B / sweep(B) >= 500 (B=8 is the first
    # stable power of two: 8 / 0.0108 ~ 740 rps).
    policy = CostModelPolicy()
    out = policy.propose(
        ControlSignals(arrival_rate_rps=500.0), knobs(), BOUNDS, _context()
    )
    assert out["max_batch"] == 8
    # The wait deadline agrees with the expected fill time of that batch.
    assert out["max_wait_ms"] == pytest.approx(1000.0 * 7 / 500.0)


def test_cost_policy_falls_back_to_max_throughput_when_saturated():
    # No candidate keeps pace with 1e6 rps: propose the highest-throughput
    # batch (the ceiling, since throughput grows monotonically here).
    policy = CostModelPolicy()
    out = policy.propose(
        ControlSignals(arrival_rate_rps=1e6), knobs(), BOUNDS, _context()
    )
    assert out["max_batch"] == BOUNDS.batch_ceiling


def test_cost_policy_tracks_high_water_only_when_configured():
    policy = CostModelPolicy(hw_batches=4)
    signals = ControlSignals(arrival_rate_rps=500.0)
    assert "queue_depth_high_water" not in policy.propose(
        signals, knobs(high_water=None), BOUNDS, _context()
    )
    out = policy.propose(signals, knobs(high_water=64), BOUNDS, _context())
    assert out["queue_depth_high_water"] == 4 * out["max_batch"]


def test_cost_policy_candidates_span_bounds_with_powers_of_two():
    policy = CostModelPolicy()
    bounds = TuningConfig(min_batch=3, batch_ceiling=20)
    assert policy._candidates(bounds) == [3, 4, 8, 16, 20]
