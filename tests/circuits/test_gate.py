"""Unit tests for the Operation / GateKind IR."""

import numpy as np
import pytest

from repro.circuits import GateKind, Operation
from repro.exceptions import CircuitError
from repro.mps import gates


def test_gate_kind_arity():
    assert GateKind.H.num_qubits == 1
    assert GateKind.RZ.num_qubits == 1
    assert GateKind.RXX.num_qubits == 2
    assert GateKind.SWAP.num_qubits == 2


def test_gate_kind_parameterised_flag():
    assert GateKind.RZ.is_parameterised
    assert GateKind.RXX.is_parameterised
    assert not GateKind.H.is_parameterised
    assert not GateKind.SWAP.is_parameterised


def test_operation_matrix_dispatch():
    op = Operation(GateKind.RXX, (0, 1), angle=0.4)
    assert np.allclose(op.matrix(), gates.rxx(0.4))
    fixed = Operation(GateKind.H, (2,))
    assert np.allclose(fixed.matrix(), gates.hadamard())


def test_operation_validation():
    with pytest.raises(CircuitError):
        Operation(GateKind.RXX, (0,), angle=0.1)  # wrong arity
    with pytest.raises(CircuitError):
        Operation(GateKind.RZ, (0, 1), angle=0.1)  # wrong arity
    with pytest.raises(CircuitError):
        Operation(GateKind.RXX, (1, 1), angle=0.1)  # duplicate qubits
    with pytest.raises(CircuitError):
        Operation(GateKind.RZ, (-1,), angle=0.1)  # negative index
    with pytest.raises(CircuitError):
        Operation(GateKind.H, (0,), angle=0.5)  # angle on fixed gate


def test_operation_is_frozen_and_hashable():
    op = Operation(GateKind.RZ, (1,), angle=0.2)
    assert op.is_two_qubit is False
    assert hash(op) == hash(Operation(GateKind.RZ, (1,), angle=0.2))
    with pytest.raises(AttributeError):
        op.angle = 1.0  # type: ignore[misc]


def test_operation_remap():
    op = Operation(GateKind.RXX, (0, 3), angle=0.7, tag="HXX")
    remapped = op.remap({0: 2, 3: 5})
    assert remapped.qubits == (2, 5)
    assert remapped.angle == 0.7
    assert remapped.tag == "HXX"
    # Unmapped qubits stay unchanged.
    assert op.remap({}).qubits == (0, 3)
