"""Unit tests for commuting-gate scheduling and depth measurement."""

import numpy as np
import pytest

from repro.circuits import Circuit, GateKind, Operation
from repro.circuits.scheduling import circuit_depth, schedule_commuting_layers
from repro.config import AnsatzConfig
from repro.circuits.ansatz import build_feature_map_circuit, build_interaction_graph
from repro.exceptions import CircuitError


def _rxx(i, j, angle=0.1):
    return Operation(GateKind.RXX, (i, j), angle=angle)


def test_schedule_preserves_multiset_of_operations():
    ops = [_rxx(0, 1), _rxx(2, 3), _rxx(1, 2), _rxx(0, 3)]
    scheduled = schedule_commuting_layers(ops, 4)
    assert sorted(op.qubits for op in scheduled) == sorted(op.qubits for op in ops)
    assert len(scheduled) == len(ops)


def test_schedule_reduces_depth_for_chain():
    # Nearest-neighbour RXX on a chain of 6: naive order has depth 5,
    # scheduled order achieves depth 2 (even/odd bonds).
    ops = [_rxx(i, i + 1) for i in range(5)]
    naive_depth = circuit_depth(ops)
    scheduled = schedule_commuting_layers(ops, 6)
    assert circuit_depth(scheduled) <= 2
    assert naive_depth >= circuit_depth(scheduled)


def test_schedule_rejects_out_of_range():
    with pytest.raises(CircuitError):
        schedule_commuting_layers([_rxx(0, 7)], 4)


def test_depth_of_empty_and_single_gate():
    assert circuit_depth([]) == 0
    assert circuit_depth([_rxx(0, 1)]) == 1


def test_depth_counts_sequential_dependencies():
    ops = [_rxx(0, 1), _rxx(1, 2), _rxx(2, 3)]
    assert circuit_depth(ops) == 3


def test_depth_works_on_circuit_objects():
    c = Circuit(3)
    c.add("H", 0)
    c.add("H", 1)
    c.add("RXX", (0, 1), angle=0.3)
    assert circuit_depth(c) == 2


def test_hxx_block_depth_close_to_2d_bound():
    """Paper footnote 3: the e^{-i H_XX} block can be realised in ~2d layers."""
    m, d = 10, 2
    graph = build_interaction_graph(m, d)
    ops = [_rxx(i, j) for i, j in sorted(graph.edges())]
    scheduled = schedule_commuting_layers(ops, m)
    # Greedy packing is not guaranteed optimal; allow a small slack over 2d.
    assert circuit_depth(scheduled) <= 2 * d + 2


def test_full_ansatz_depth_grows_with_layers():
    x = np.linspace(0.1, 1.9, 6)
    shallow = build_feature_map_circuit(
        x, AnsatzConfig(num_features=6, layers=1, gamma=0.5), routed=False
    )
    deep = build_feature_map_circuit(
        x, AnsatzConfig(num_features=6, layers=4, gamma=0.5), routed=False
    )
    assert circuit_depth(deep) > circuit_depth(shallow)
