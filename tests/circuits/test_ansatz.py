"""Unit tests for the Ising feature-map ansatz builder."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import (
    GateKind,
    build_feature_map_circuit,
    build_interaction_graph,
    feature_map_angles,
    rescale_features,
)
from repro.circuits.routing import is_routed
from repro.config import AnsatzConfig
from repro.exceptions import CircuitError


def test_rescale_features_range():
    x = np.array([-3.0, 0.0, 5.0, 2.0])
    scaled = rescale_features(x)
    assert scaled.min() == pytest.approx(0.0)
    assert scaled.max() == pytest.approx(2.0)
    # Monotone: order preserved.
    assert np.all(np.argsort(scaled) == np.argsort(x))


def test_rescale_constant_vector_maps_to_midpoint():
    scaled = rescale_features(np.full(5, 3.3), lower=0.0, upper=2.0)
    assert np.allclose(scaled, 1.0)


def test_rescale_empty_raises():
    with pytest.raises(CircuitError):
        rescale_features(np.array([]))


@pytest.mark.parametrize("m,d", [(5, 1), (6, 2), (8, 3), (4, 3)])
def test_interaction_graph_edges(m, d):
    g = build_interaction_graph(m, d)
    assert g.number_of_nodes() == m
    expected_edges = sum(1 for i in range(m) for j in range(i + 1, m) if j - i <= d)
    assert g.number_of_edges() == expected_edges
    for i, j in g.edges():
        assert abs(i - j) <= d


def test_interaction_graph_d1_is_path():
    g = build_interaction_graph(6, 1)
    path = nx.path_graph(6)
    assert nx.is_isomorphic(g, path)


def test_interaction_graph_validation():
    with pytest.raises(CircuitError):
        build_interaction_graph(0, 1)
    with pytest.raises(CircuitError):
        build_interaction_graph(4, 0)


def test_feature_map_angles_formulas():
    cfg = AnsatzConfig(num_features=3, interaction_distance=1, layers=1, gamma=0.5)
    x = np.array([0.2, 1.0, 1.8])
    angles = feature_map_angles(x, cfg)
    # RZ angle: 2 * gamma * x_i
    assert np.allclose(angles.rz_angles, 2 * 0.5 * x)
    # RXX angle: gamma^2 * pi * (1 - x_i)(1 - x_j)
    expected_01 = 0.25 * np.pi * (1 - 0.2) * (1 - 1.0)
    expected_12 = 0.25 * np.pi * (1 - 1.0) * (1 - 1.8)
    assert angles.rxx_angles[(0, 1)] == pytest.approx(expected_01)
    assert angles.rxx_angles[(1, 2)] == pytest.approx(expected_12)
    assert set(angles.rxx_angles) == {(0, 1), (1, 2)}


def test_feature_map_angles_wrong_length():
    cfg = AnsatzConfig(num_features=3)
    with pytest.raises(CircuitError):
        feature_map_angles(np.ones(4), cfg)


def test_circuit_structure_counts():
    m, d, r = 6, 2, 3
    cfg = AnsatzConfig(num_features=m, interaction_distance=d, layers=r, gamma=1.0)
    x = np.linspace(0.1, 1.9, m)
    circuit = build_feature_map_circuit(x, cfg, routed=False)
    # One H per qubit, r * m RZ gates, r * |E| RXX gates.
    num_edges = build_interaction_graph(m, d).number_of_edges()
    assert circuit.count_kind(GateKind.H) == m
    assert circuit.count_kind(GateKind.RZ) == r * m
    assert circuit.count_kind(GateKind.RXX) == r * num_edges
    assert circuit.count_kind(GateKind.SWAP) == 0


def test_routed_circuit_has_swaps_only_for_long_range():
    cfg1 = AnsatzConfig(num_features=5, interaction_distance=1, layers=1, gamma=0.5)
    x = np.linspace(0.1, 1.9, 5)
    c1 = build_feature_map_circuit(x, cfg1, routed=True)
    assert c1.count_kind(GateKind.SWAP) == 0
    assert is_routed(c1)

    cfg3 = AnsatzConfig(num_features=5, interaction_distance=3, layers=1, gamma=0.5)
    c3 = build_feature_map_circuit(x, cfg3, routed=True)
    assert c3.count_kind(GateKind.SWAP) > 0
    assert is_routed(c3)


def test_swap_count_matches_formula():
    # An RXX at distance k costs 2 (k - 1) SWAPs.
    m, d = 6, 3
    cfg = AnsatzConfig(num_features=m, interaction_distance=d, layers=1, gamma=0.5)
    x = np.linspace(0.1, 1.9, m)
    routed = build_feature_map_circuit(x, cfg, routed=True)
    graph = build_interaction_graph(m, d)
    expected_swaps = sum(2 * (abs(i - j) - 1) for i, j in graph.edges())
    assert routed.count_kind(GateKind.SWAP) == expected_swaps


def test_state_prep_can_be_omitted():
    cfg = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.5)
    x = np.linspace(0.1, 1.9, 4)
    bare = build_feature_map_circuit(x, cfg, include_state_prep=False)
    assert bare.count_kind(GateKind.H) == 0


def test_gamma_scales_angles():
    m = 4
    x = np.linspace(0.3, 1.7, m)
    small = feature_map_angles(x, AnsatzConfig(num_features=m, gamma=0.1))
    large = feature_map_angles(x, AnsatzConfig(num_features=m, gamma=1.0))
    assert np.all(np.abs(large.rz_angles) > np.abs(small.rz_angles))
    for edge in small.rxx_angles:
        assert abs(large.rxx_angles[edge]) >= abs(small.rxx_angles[edge])


def test_scheduling_does_not_change_the_state():
    cfg = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.9)
    x = np.linspace(0.1, 1.9, 5)
    from repro.mps import MPS

    scheduled = build_feature_map_circuit(x, cfg, scheduled=True)
    unscheduled = build_feature_map_circuit(x, cfg, scheduled=False)
    a = MPS.zero_state(5)
    a.apply_circuit(scheduled)
    b = MPS.zero_state(5)
    b.apply_circuit(unscheduled)
    assert a.fidelity(b) == pytest.approx(1.0, abs=1e-10)
