"""Unit tests for the Circuit container."""

import pytest

from repro.circuits import Circuit, GateKind, Operation
from repro.exceptions import CircuitError


def test_empty_circuit():
    c = Circuit(3)
    assert c.num_qubits == 3
    assert c.num_gates == 0
    assert c.num_two_qubit_gates == 0
    assert len(c) == 0
    assert list(c) == []


def test_invalid_width():
    with pytest.raises(CircuitError):
        Circuit(0)


def test_add_and_counts():
    c = Circuit(4)
    c.add("H", 0)
    c.add(GateKind.RZ, 1, angle=0.3)
    c.add("RXX", (1, 2), angle=0.5, tag="HXX")
    c.add("SWAP", (2, 3))
    assert c.num_gates == 4
    assert c.num_two_qubit_gates == 2
    assert c.num_single_qubit_gates == 2
    assert c.count_kind(GateKind.RXX) == 1
    assert c.count_kind(GateKind.H) == 1
    assert c[2].tag == "HXX"


def test_append_rejects_out_of_range_targets():
    c = Circuit(2)
    with pytest.raises(CircuitError):
        c.add("RZ", 2, angle=0.1)
    with pytest.raises(CircuitError):
        c.append(Operation(GateKind.RXX, (0, 5), angle=0.1))


def test_extend_and_copy_and_equality():
    ops = [
        Operation(GateKind.H, (0,)),
        Operation(GateKind.RXX, (0, 1), angle=0.2),
    ]
    a = Circuit(2, ops)
    b = a.copy()
    assert a == b
    b.add("RZ", 0, angle=0.1)
    assert a != b
    assert a != "not a circuit"  # NotImplemented path falls back to False


def test_remap_qubits():
    c = Circuit(3)
    c.add("RXX", (0, 1), angle=0.4)
    remapped = c.remap_qubits({0: 2, 1: 0})
    assert remapped[0].qubits == (2, 0)
    assert remapped.num_qubits == 3


def test_summary():
    c = Circuit(2)
    c.add("H", 0)
    c.add("H", 1)
    c.add("RXX", (0, 1), angle=0.3)
    summary = c.summary()
    assert summary["num_qubits"] == 2
    assert summary["num_gates"] == 3
    assert summary["num_two_qubit_gates"] == 1
    assert summary["count_H"] == 2
    assert summary["count_RXX"] == 1


def test_iteration_order_matches_insertion():
    c = Circuit(2)
    c.add("H", 0)
    c.add("H", 1)
    kinds = [op.qubits for op in c]
    assert kinds == [(0,), (1,)]
