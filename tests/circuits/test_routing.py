"""Unit tests for SWAP routing onto the linear chain."""

import pytest

from repro.circuits import Circuit, GateKind
from repro.circuits.routing import is_routed, route_to_linear_chain, swap_overhead
from repro.exceptions import RoutingError
from repro.mps import MPS
from repro.statevector import StatevectorSimulator, statevector_fidelity


def test_adjacent_gates_pass_through():
    c = Circuit(3)
    c.add("RXX", (0, 1), angle=0.3)
    c.add("RZ", 2, angle=0.1)
    routed = route_to_linear_chain(c)
    assert routed.num_gates == 2
    assert routed.count_kind(GateKind.SWAP) == 0
    assert is_routed(routed)


def test_long_range_gate_gets_swap_sandwich():
    c = Circuit(4)
    c.add("RXX", (0, 3), angle=0.5)
    routed = route_to_linear_chain(c)
    # distance 3 -> 2 * (3 - 1) = 4 SWAPs
    assert routed.count_kind(GateKind.SWAP) == 4
    assert routed.count_kind(GateKind.RXX) == 1
    assert is_routed(routed)
    assert swap_overhead(c) == 4


def test_descending_symmetric_gate_is_normalised():
    c = Circuit(3)
    c.add("RXX", (2, 0), angle=0.4)
    routed = route_to_linear_chain(c)
    assert is_routed(routed)
    rxx_ops = [op for op in routed if op.kind == GateKind.RXX]
    assert rxx_ops[0].qubits == (1, 2)


def test_descending_non_symmetric_gate_raises():
    c = Circuit(3)
    c.add("CNOT", (2, 0))
    with pytest.raises(RoutingError):
        route_to_linear_chain(c)


def test_routing_preserves_unitary_action(rng):
    """Routed circuit on the MPS equals the unrouted circuit on the dense sim."""
    c = Circuit(5)
    c.add("H", 0)
    c.add("H", 2)
    c.add("RXX", (0, 4), angle=0.7)
    c.add("RZZ", (1, 3), angle=-0.4)
    c.add("RXX", (2, 0), angle=0.9)
    routed = route_to_linear_chain(c)

    mps = MPS.zero_state(5)
    mps.apply_circuit(routed)
    sv = StatevectorSimulator(5)
    sv.apply_circuit(c)
    assert statevector_fidelity(mps.to_statevector(), sv.statevector) == pytest.approx(
        1.0, abs=1e-10
    )


def test_is_routed_detects_unrouted():
    c = Circuit(4)
    c.add("RXX", (0, 2), angle=0.2)
    assert not is_routed(c)


def test_swap_overhead_ignores_existing_swaps_and_single_qubit():
    c = Circuit(4)
    c.add("SWAP", (0, 3))
    c.add("RZ", 1, angle=0.3)
    assert swap_overhead(c) == 0


def test_routing_tags_inserted_swaps():
    c = Circuit(4)
    c.add("RXX", (0, 2), angle=0.5, tag="HXX")
    routed = route_to_linear_chain(c)
    swap_tags = {op.tag for op in routed if op.kind == GateKind.SWAP}
    assert swap_tags == {"routing"}
    rxx_tags = {op.tag for op in routed if op.kind == GateKind.RXX}
    assert rxx_tags == {"HXX"}
