"""Unit tests for the metrics registry and the Prometheus text round trip."""

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "A test counter.")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(TelemetryError):
        counter.inc(-1)
    with pytest.raises(TelemetryError):
        counter.set_total(-3)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_test_depth", "A test gauge.")
    gauge.set(7)
    gauge.dec(2.5)
    gauge.inc()
    assert gauge.value == pytest.approx(5.5)


def test_labeled_series_are_independent():
    registry = MetricsRegistry()
    counter = registry.counter("repro_routed_total", "Routed.", ("replica",))
    counter.labels(replica="0").inc(3)
    counter.labels(replica="1").inc(1)
    assert counter.labels(replica="0").value == 3
    assert counter.labels(replica="1").value == 1
    with pytest.raises(TelemetryError):
        counter.labels(shard="0")  # wrong label name
    with pytest.raises(TelemetryError):
        counter.inc()  # unlabeled use of a labeled family


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram(
        "repro_test_sizes", "Sizes.", buckets=(1.0, 2.0, 4.0)
    )
    for value in (0.5, 1.0, 3.0, 100.0):
        hist.observe(value)
    series = dict(registry.to_dict()["repro_test_sizes"]["series"][0])
    assert series["count"] == 4
    assert series["sum"] == pytest.approx(104.5)
    assert series["buckets"] == {"1": 2, "2": 2, "4": 3, "+Inf": 4}


def test_histogram_replace_rebuilds_from_samples():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_test_lat", "Latency.", buckets=(1.0,))
    hist.observe(0.5)
    hist.replace([2.0, 3.0])
    series = dict(registry.to_dict()["repro_test_lat"]["series"][0])
    assert series["count"] == 2
    assert series["buckets"]["1"] == 0


def test_histogram_validates_buckets():
    registry = MetricsRegistry()
    with pytest.raises(TelemetryError):
        registry.histogram("repro_bad", "x", buckets=())
    with pytest.raises(TelemetryError):
        registry.histogram("repro_bad2", "x", buckets=(2.0, 1.0))


def test_invalid_names_rejected():
    registry = MetricsRegistry()
    with pytest.raises(TelemetryError):
        registry.counter("9starts_with_digit", "x")
    with pytest.raises(TelemetryError):
        registry.counter("repro_ok_total", "x", ("bad-label",))


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_registration_is_idempotent_but_conflicts_raise():
    registry = MetricsRegistry()
    a = registry.counter("repro_x_total", "x")
    b = registry.counter("repro_x_total", "x")
    assert a is b
    with pytest.raises(TelemetryError):
        registry.gauge("repro_x_total", "x")
    with pytest.raises(TelemetryError):
        registry.counter("repro_x_total", "x", ("replica",))


def test_named_collectors_replace_not_stack():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_pulled", "x")
    calls = []
    registry.register_collector(lambda: calls.append("old"), name="slot")
    registry.register_collector(
        lambda: (calls.append("new"), gauge.set(1)), name="slot"
    )
    registry.collect()
    assert calls == ["new"]
    registry.unregister_collector("slot")
    calls.clear()
    registry.collect()
    assert calls == []


def test_deterministic_snapshot_drops_wall_clock_families():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "x").inc()
    registry.gauge("repro_wall_time_seconds", "x").set(1.23)
    registry.gauge("repro_throughput_rps", "x").set(50.0)
    snapshot = registry.deterministic_snapshot()
    assert "repro_requests_total" in snapshot
    assert "repro_wall_time_seconds" not in snapshot
    assert "repro_throughput_rps" not in snapshot


# ----------------------------------------------------------------------
# Prometheus text format: render + strict parse round trip
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests.", ("replica",)).labels(
        replica="0"
    ).inc(12)
    registry.gauge("repro_depth", "Depth.").set(3)
    hist = registry.histogram(
        "repro_latency_seconds", "Latency.", buckets=(0.01, 0.1)
    )
    hist.observe(0.005)
    hist.observe(0.5)
    return registry


def test_render_parse_round_trip():
    registry = _populated_registry()
    families = parse_prometheus_text(render_prometheus(registry))
    assert families["repro_requests_total"]["type"] == "counter"
    samples = {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in families["repro_requests_total"]["samples"]
    }
    assert samples[("repro_requests_total", (("replica", "0"),))] == 12
    hist = families["repro_latency_seconds"]
    bucket_values = {
        labels["le"]: value
        for name, labels, value in hist["samples"]
        if name.endswith("_bucket")
    }
    assert bucket_values == {"0.01": 1, "0.1": 1, "+Inf": 2}


def test_label_values_escape_round_trip():
    registry = MetricsRegistry()
    ugly = 'quote " backslash \\ newline \n end'
    registry.counter("repro_escaped_total", "x", ("tag",)).labels(tag=ugly).inc()
    families = parse_prometheus_text(render_prometheus(registry))
    (_, labels, value) = families["repro_escaped_total"]["samples"][0]
    assert labels["tag"] == ugly
    assert value == 1


@pytest.mark.parametrize(
    "text",
    [
        "repro_untyped 1\n",  # sample with no TYPE declaration
        "# TYPE repro_x counter\nrepro_x{bad= 1\n",  # malformed labels
        "# TYPE repro_x counter\nrepro_x one\n",  # unparseable value
        "# TYPE repro_x counter\nrepro_x 1\nrepro_x 2\n",  # duplicate sample
        "# TYPE repro_x wibble\n",  # invalid type
        "#HELP repro_x broken\n",  # malformed comment
        # Histogram whose +Inf bucket disagrees with _count:
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="+Inf"} 3\nrepro_h_sum 1\nrepro_h_count 2\n',
        # Histogram with no +Inf bucket at all:
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 2\nrepro_h_sum 1\nrepro_h_count 2\n',
    ],
)
def test_parser_rejects_malformed_exposition(text):
    with pytest.raises(TelemetryError):
        parse_prometheus_text(text)


def test_parser_accepts_free_form_comments():
    families = parse_prometheus_text(
        "# scraped by test\n# TYPE repro_x counter\nrepro_x 1\n"
    )
    assert families["repro_x"]["samples"][0][2] == 1
