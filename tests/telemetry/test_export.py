"""Integration tests: endpoint, bindings, tracing and the disabled contract."""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import numpy as np
import pytest

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import SVMError, TelemetryError
from repro.serving import ReplicaRouter
from repro.svm import SplitConformalClassifier
from repro.telemetry import (
    TRACER,
    MetricsRegistry,
    TelemetryServer,
    attach_endpoint,
    bind_classifier_coverage,
    parse_prometheus_text,
)

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
        20,
        seed=2,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(53)
    return rng.normal(size=(10, 4))


@pytest.fixture()
def tracing():
    """Enable the global tracer for one test, restoring the disabled default."""
    TRACER.reset()
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.reset()


def _get_json(url):
    with urlopen(url) as response:
        return json.loads(response.read().decode("utf-8")), response.status


def _get_text(url):
    with urlopen(url) as response:
        return response.read().decode("utf-8"), response.headers.get("Content-Type")


# ----------------------------------------------------------------------
# /metrics against a live queue
# ----------------------------------------------------------------------
def test_queue_endpoint_serves_parseable_metrics(served_engine, queries):
    with served_engine.serving_queue(max_batch=4, max_wait_ms=2.0) as queue:
        with attach_endpoint(queue) as server:
            futures = [queue.submit(row) for row in queries]
            queue.flush()
            [f.result(timeout=10) for f in futures]

            body, content_type = _get_text(server.url + "/metrics")
            assert "version=0.0.4" in content_type
            families = parse_prometheus_text(body)  # strict: raises if malformed
            # The acceptance surface: latency histogram, store counters,
            # encode launch counters, serving counters.
            for name in (
                "repro_serving_request_latency_seconds",
                "repro_serving_requests_total",
                "repro_serving_batch_size",
                "repro_store_hits_total",
                "repro_store_misses_total",
                "repro_store_evictions_total",
                "repro_encode_launches_total",
                "repro_backend_simulations_total",
            ):
                assert name in families, name
            requests = {
                tuple(sorted(labels.items())): value
                for name, labels, value in families["repro_serving_requests_total"]["samples"]
            }
            assert requests[(("replica", "0"),)] == len(queries)
            hist = families["repro_serving_request_latency_seconds"]
            counts = [
                value for name, _, value in hist["samples"] if name.endswith("_count")
            ]
            assert counts == [len(queries)]


def test_queue_health_reflects_lifecycle(served_engine):
    queue = served_engine.serving_queue(max_batch=4)
    with attach_endpoint(queue) as server:
        health, status = _get_json(server.url + "/health")
        assert status == 200
        assert health["status"] == "ok"
        queue.close()
        with pytest.raises(HTTPError) as err:
            _get_json(server.url + "/health")
        assert err.value.code == 503
        assert json.loads(err.value.read().decode())["status"] == "down"


def test_unknown_path_is_404(served_engine):
    with served_engine.serving_queue(max_batch=4) as queue:
        with attach_endpoint(queue) as server:
            with pytest.raises(HTTPError) as err:
                urlopen(server.url + "/nope")
            assert err.value.code == 404


# ----------------------------------------------------------------------
# Router fleet: /health liveness + router families
# ----------------------------------------------------------------------
def test_router_endpoint_reflects_replica_liveness(payload, queries):
    router = ReplicaRouter(payload, num_replicas=2, max_batch=4, max_wait_ms=2.0)
    try:
        with attach_endpoint(router) as server:
            futures = [router.submit(row) for row in queries]
            router.flush()
            [f.result(timeout=10) for f in futures]

            families = parse_prometheus_text(
                _get_text(server.url + "/metrics")[0]
            )
            for name in (
                "repro_router_routed_total",
                "repro_router_shed_total",
                "repro_router_failover_total",
                "repro_router_alive_replicas",
            ):
                assert name in families, name
            routed = sum(
                value
                for _, _, value in families["repro_router_routed_total"]["samples"]
            )
            assert routed == len(queries)
            # Both replicas publish under their own label.
            replicas = {
                labels["replica"]
                for _, labels, _ in families["repro_serving_requests_total"]["samples"]
            }
            assert replicas == {"0", "1"}

            health, _ = _get_json(server.url + "/health")
            assert health["status"] == "ok"
            assert health["alive_replicas"] == 2

            router.kill_replica(0)
            health, _ = _get_json(server.url + "/health")
            assert health["status"] == "degraded"
            assert health["alive_replicas"] == 1
    finally:
        router.close()


def test_attach_endpoint_rejects_unknown_targets():
    with pytest.raises(TelemetryError):
        attach_endpoint(object())


# ----------------------------------------------------------------------
# Tracing through the serving stack
# ----------------------------------------------------------------------
def test_traced_request_yields_linked_span_tree(served_engine, queries, tracing):
    with served_engine.serving_queue(max_batch=len(queries), max_wait_ms=5000.0) as queue:
        futures = [queue.submit(row) for row in queries]
        queue.flush()
        [f.result(timeout=10) for f in futures]

    # The flush span lives in the oldest coalesced request's trace and links
    # the other requests' roots; find that trace.
    flush_traces = [
        trace
        for trace in tracing.recent_traces(limit=64)
        if any(s["name"] == "serving.flush" for s in trace["spans"])
    ]
    assert flush_traces
    spans = {s["name"]: s for s in flush_traces[0]["spans"]}
    # The acceptance criterion: >= 4 linked phases in one tree.
    for name in (
        "serving.request",
        "serving.wait",
        "serving.flush",
        "serving.score",
        "engine.encode",
        "engine.overlap",
    ):
        assert name in spans, name
    root = spans["serving.request"]
    assert root["parent_id"] is None
    assert spans["serving.wait"]["parent_id"] == root["span_id"]
    assert spans["serving.flush"]["parent_id"] == root["span_id"]
    assert spans["serving.score"]["parent_id"] == spans["serving.flush"]["span_id"]
    assert spans["engine.encode"]["parent_id"] == spans["serving.score"]["span_id"]
    # The flush links every other coalesced request's root span.
    assert len(spans["serving.flush"]["links"]) == len(queries) - 1


def test_traces_endpoint_serves_json_and_text(served_engine, queries, tracing):
    with served_engine.serving_queue(max_batch=4, max_wait_ms=2.0) as queue:
        with attach_endpoint(queue) as server:
            futures = [queue.submit(row) for row in queries[:4]]
            queue.flush()
            [f.result(timeout=10) for f in futures]

            dump, _ = _get_json(server.url + "/traces/recent?limit=3")
            assert dump["enabled"] is True
            assert 1 <= len(dump["traces"]) <= 3
            assert all(t["num_spans"] >= 1 for t in dump["traces"])

            text, content_type = _get_text(
                server.url + "/traces/recent?limit=2&format=text"
            )
            assert content_type.startswith("text/plain")
            assert "serving.request" in text

            with pytest.raises(HTTPError) as err:
                urlopen(server.url + "/traces/recent?limit=zero")
            assert err.value.code == 400


def test_traces_endpoint_without_tracer_reports_disabled(served_engine):
    with served_engine.serving_queue(max_batch=4) as queue:
        registry = MetricsRegistry()
        with TelemetryServer(registry, tracer=None) as server:
            dump, _ = _get_json(server.url + "/traces/recent")
            assert dump == {"enabled": False, "traces": []}


# ----------------------------------------------------------------------
# The disabled contract: byte-identical predictions, no recorded traces
# ----------------------------------------------------------------------
def test_disabled_telemetry_leaves_predictions_byte_identical(
    served_engine, queries
):
    assert TRACER.enabled is False  # the module default

    def serve():
        with served_engine.serving_queue(max_batch=4, max_wait_ms=2.0) as queue:
            futures = [queue.submit(row) for row in queries]
            queue.flush()
            return [f.result(timeout=10) for f in futures]

    baseline = serve()
    TRACER.reset()
    TRACER.enable()
    try:
        traced = serve()
    finally:
        TRACER.disable()
        TRACER.reset()
    untraced = serve()

    base_bytes = np.array([r.decision_value for r in baseline]).tobytes()
    assert np.array([r.decision_value for r in traced]).tobytes() == base_bytes
    assert np.array([r.decision_value for r in untraced]).tobytes() == base_bytes
    assert [r.prediction for r in traced] == [r.prediction for r in baseline]


def test_disabled_tracer_records_nothing(served_engine, queries):
    TRACER.reset()
    with served_engine.serving_queue(max_batch=4, max_wait_ms=2.0) as queue:
        futures = [queue.submit(row) for row in queries[:4]]
        queue.flush()
        [f.result(timeout=10) for f in futures]
    assert TRACER.trace_ids() == []


# ----------------------------------------------------------------------
# Rolling conformal coverage
# ----------------------------------------------------------------------
def test_conformal_coverage_gauge(served_engine, queries):
    clf = served_engine.streaming_classifier()
    calibration = served_engine.streaming_classifier().classify(queries)
    conformal = SplitConformalClassifier(alpha=0.2).calibrate(
        calibration.decision_values,
        (calibration.decision_values > 0).astype(int),
    )
    clf.attach_conformal(conformal, window=64)

    registry = MetricsRegistry()
    bind_classifier_coverage(registry, clf)
    snapshot = registry.to_dict()
    assert snapshot["repro_conformal_feedback_total"]["series"][0]["value"] == 0

    result = clf.classify(queries)
    coverage = clf.record_feedback(
        result.decision_values, (result.decision_values > 0).astype(int)
    )
    assert 0.0 <= coverage <= 1.0
    assert clf.rolling_coverage() == pytest.approx(coverage)

    snapshot = registry.to_dict()
    assert snapshot["repro_conformal_feedback_total"]["series"][0]["value"] == len(
        queries
    )
    gauge = snapshot["repro_conformal_rolling_coverage"]["series"][0]["value"]
    assert gauge == pytest.approx(clf.rolling_coverage())


def test_record_feedback_requires_attachment(served_engine, queries):
    clf = served_engine.streaming_classifier()
    with pytest.raises(SVMError):
        clf.record_feedback(np.zeros(3), [0, 1, 0])
    conformal = SplitConformalClassifier(alpha=0.2).calibrate(
        np.array([1.0, -1.0, 2.0, -2.0]), np.array([1, 0, 1, 0])
    )
    clf.attach_conformal(conformal)
    assert clf.rolling_coverage() is None
    with pytest.raises(SVMError):
        clf.record_feedback(np.zeros(2), [0])  # length mismatch
    with pytest.raises(SVMError):
        clf.record_feedback(np.zeros(0), [])  # empty batch
