"""Unit tests for the tracer: span trees, links, rings, flamegraphs."""

import threading

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import Tracer, render_trace_text


@pytest.fixture()
def tracer():
    return Tracer().enable()


# ----------------------------------------------------------------------
# Disabled-by-default contract
# ----------------------------------------------------------------------
def test_disabled_tracer_is_inert():
    tracer = Tracer()
    assert tracer.mint_request("r") is None
    with tracer.span("phase") as span:
        assert span is None
    assert tracer.trace_ids() == []


def test_disabled_span_context_is_shared_singleton():
    tracer = Tracer()
    assert tracer.span("a") is tracer.span("b")


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
def test_nested_spans_share_trace_and_link_parents(tracer):
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    spans = tracer.trace_spans(outer.trace_id)
    assert [s.name for s in spans] == ["inner", "outer"]  # finish order
    assert all(s.duration_s is not None and s.duration_s >= 0 for s in spans)


def test_cross_thread_flush_topology(tracer):
    """The queue's topology: roots minted on one thread, flush on another."""
    roots = [tracer.mint_request("request") for _ in range(3)]

    def consumer():
        flush = tracer.start_span("flush", roots[0])
        for other in roots[1:]:
            flush.add_link(other)
        with tracer.use_span(flush):
            with tracer.span("score"):
                pass
        flush.end()

    thread = threading.Thread(target=consumer)
    thread.start()
    thread.join()
    for root in roots:
        root.end()

    spans = {s.name: s for s in tracer.trace_spans(roots[0].trace_id)}
    assert spans["flush"].parent_id == roots[0].span_id
    assert spans["score"].parent_id == spans["flush"].span_id
    linked = {trace for trace, _ in spans["flush"].links}
    assert linked == {r.trace_id for r in roots[1:]}


def test_record_span_backdates(tracer):
    root = tracer.start_trace("request", start_time=10.0)
    wait = tracer.record_span("wait", root, 10.0, 10.5)
    root.end(11.0)
    assert wait.duration_s == pytest.approx(0.5)
    assert wait.parent_id == root.span_id


def test_deterministic_ids(tracer):
    a = tracer.start_trace("x")
    b = tracer.start_trace("y")
    assert a.trace_id == "t00000001"
    assert b.trace_id == "t00000003"  # ids shared between traces and spans
    tracer.reset()
    assert tracer.start_trace("z").trace_id == "t00000001"


def test_trace_ring_evicts_oldest():
    tracer = Tracer(max_traces=2).enable()
    ids = []
    for i in range(4):
        root = tracer.start_trace(f"r{i}")
        root.end()
        ids.append(root.trace_id)
    assert tracer.trace_ids() == ids[-2:]
    with pytest.raises(TelemetryError):
        tracer.trace_spans(ids[0])


def test_recent_traces_json_shape(tracer):
    root = tracer.start_trace("request")
    tracer.record_span("wait", root, root.start_s, root.start_s + 0.001)
    root.end()
    traces = tracer.recent_traces(limit=4)
    assert len(traces) == 1
    dump = traces[0]
    assert dump["root"] == "request"
    assert dump["num_spans"] == 2
    names = {s["name"] for s in dump["spans"]}
    assert names == {"request", "wait"}
    for span in dump["spans"]:
        assert span["duration_ms"] is not None


def test_validation_errors():
    with pytest.raises(TelemetryError):
        Tracer(max_traces=0)
    tracer = Tracer().enable()
    with pytest.raises(TelemetryError):
        tracer.recent_traces(limit=0)
    with pytest.raises(TelemetryError):
        tracer.trace_spans("t-nope")


# ----------------------------------------------------------------------
# Flamegraph rendering
# ----------------------------------------------------------------------
def test_render_trace_text_indents_children(tracer):
    root = tracer.start_trace("request", start_time=0.0)
    tracer.record_span("wait", root, 0.0, 0.3)
    flush = tracer.start_span("flush", root, start_time=0.3)
    tracer.record_span("score", flush, 0.35, 0.9)
    flush.end(1.0)
    root.end(1.0)
    text = render_trace_text(tracer.trace_spans(root.trace_id))
    lines = text.splitlines()
    assert "request" in lines[0] and root.trace_id in lines[0]
    # Children are indented deeper than their parents.
    indent = {line.strip().split()[0]: len(line) - len(line.lstrip()) for line in lines[1:]}
    assert indent["wait"] > indent["request"]
    assert indent["score"] > indent["flush"] > indent["request"]
    # Every rendered line carries a timeline bar.
    assert all("|" in line for line in lines[1:])


def test_render_trace_text_rejects_empty():
    with pytest.raises(TelemetryError):
        render_trace_text([])
