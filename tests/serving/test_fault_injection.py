"""Fault injection: process kill-and-restart, replica crashes mid-batch.

The durable tier's acceptance bar is survival of *ungraceful* death: the
kill-and-restart test SIGKILLs a real serving process after it snapshots (no
atexit, no context-manager cleanup ran) and proves a warm-started successor
produces byte-identical predictions with zero circuit simulations.  The
router tests model the single-replica failure modes: a classifier that blows
up mid-batch, and a queue that was closed behind the router's back.
"""

import os
import pickle
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.serving import PersistentStateStore, ReplicaRouter

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)

# The serving process that gets SIGKILLed: fit, serve, snapshot, die hard.
# It persists its payload and its served outputs so the restarted process
# (the test) can prove byte-identical recovery without refitting.
_CRASHING_SERVER = """
import os, pickle, signal, sys
import numpy as np
from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.serving import PersistentStateStore

root = sys.argv[1]
data = balanced_subsample(
    generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
    20,
    seed=2,
)
engine = QuantumKernelInferenceEngine(
    AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6),
    approximation=NystroemConfig(num_landmarks=6, seed=0),
)
engine.fit(data.features, data.labels)
payload = engine.serving_payload()

store = PersistentStateStore(os.path.join(root, "tier"))
classifier = StreamingNystroemClassifier.from_serving_payload(payload, store=store)
store.fingerprint = classifier.feature_map.engine.fingerprint

queries = np.random.default_rng(53).normal(size=(10, 4))
result = classifier.classify(queries)
assert result.num_simulations == queries.shape[0]  # genuinely cold

manifest = store.snapshot()
with open(os.path.join(root, "payload.pkl"), "wb") as fh:
    pickle.dump(payload, fh)
np.save(os.path.join(root, "decisions.npy"), result.decision_values)
np.save(os.path.join(root, "predictions.npy"), result.predictions)
np.save(os.path.join(root, "kernel_rows.npy"), result.kernel_rows)
sys.stdout.write(f"served={result.num_points} snapshot={len(manifest.keys)}\\n")
sys.stdout.flush()
os.kill(os.getpid(), signal.SIGKILL)  # no graceful shutdown, ever
"""


def _run_crashing_server(root: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CRASHING_SERVER, str(root)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture(scope="module")
def crashed_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("crash")
    proc = _run_crashing_server(root)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert "snapshot=10" in proc.stdout
    return root


def test_kill_and_restart_round_trip_is_byte_identical(crashed_server):
    root = crashed_server
    with open(root / "payload.pkl", "rb") as fh:
        payload = pickle.load(fh)

    # A fresh process (this one) warm-starts from the dead server's snapshot.
    store = PersistentStateStore(root / "tier")
    classifier = StreamingNystroemClassifier.from_serving_payload(
        payload, store=store
    )
    store.fingerprint = classifier.feature_map.engine.fingerprint
    report = store.warm_up()
    assert report.available == 10
    assert report.loaded == 10

    queries = np.random.default_rng(53).normal(size=(10, 4))
    result = classifier.classify(queries)
    assert result.num_simulations == 0  # everything came from the snapshot
    assert np.array_equal(result.decision_values, np.load(root / "decisions.npy"))
    assert np.array_equal(result.predictions, np.load(root / "predictions.npy"))
    assert np.array_equal(result.kernel_rows, np.load(root / "kernel_rows.npy"))


def test_kill_and_restart_warm_starts_a_router_fleet(crashed_server):
    root = crashed_server
    with open(root / "payload.pkl", "rb") as fh:
        payload = pickle.load(fh)
    queries = np.random.default_rng(53).normal(size=(10, 4))
    with ReplicaRouter(
        payload,
        num_replicas=2,
        policy="least-depth",
        persistence_root=root / "tier",
        max_batch=4,
        max_wait_ms=2.0,
    ) as router:
        assert all(r.loaded == 10 for r in router.warm_up_reports)
        futures = router.submit_many(queries)
        decisions = np.array([f.result(timeout=60).decision_value for f in futures])
        # Warm evidence: no replica missed the state store even once.
        for store in router.replica_stores:
            assert store.stats().misses == 0
        assert router.metrics_view()["warm_hit_ratio"] == 1.0
    assert np.array_equal(decisions, np.load(root / "decisions.npy"))


# ----------------------------------------------------------------------
# Replica-level faults inside one process
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
        20,
        seed=2,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(53)
    return rng.normal(size=(8, 4))


def test_replica_crash_mid_batch_fails_only_its_futures(
    served_engine, payload, queries, monkeypatch
):
    reference = served_engine.streaming_classifier().classify(queries)
    router = ReplicaRouter(
        payload,
        num_replicas=2,
        policy="round-robin",
        max_batch=1000,
        max_wait_ms=10_000.0,
    )
    try:
        def crash(rows):
            raise RuntimeError("replica storage dropped mid-batch")

        monkeypatch.setattr(router._queues[0].classifier, "classify", crash)
        futures = router.submit_many(queries)  # even indices land on replica 0
        router.flush()
        failed = [i for i, f in enumerate(futures) if f.exception() is not None]
        assert failed == list(range(0, len(queries), 2))
        for i in failed:
            assert isinstance(futures[i].exception(), RuntimeError)
        # The healthy replica's futures resolved, byte-identical.
        for i in range(1, len(queries), 2):
            assert futures[i].result().decision_value == reference.decision_values[i]

        # Operator response: retire the bad replica, resubmit the failures.
        router.kill_replica(0)
        assert router.alive_replicas == [1]
        retries = [router.submit(queries[i]) for i in failed]
        router.flush()
        for i, future in zip(failed, retries):
            assert future.result(timeout=60).decision_value == (
                reference.decision_values[i]
            )
    finally:
        router.close()


def test_router_routes_around_a_queue_closed_behind_its_back(
    served_engine, payload, queries
):
    reference = served_engine.streaming_classifier().classify(queries)
    router = ReplicaRouter(
        payload, num_replicas=2, policy="round-robin", max_batch=4, max_wait_ms=2.0
    )
    try:
        router._queues[0].close()  # abrupt death the router was never told about
        futures = router.submit_many(queries)
        decisions = np.array([f.result(timeout=60).decision_value for f in futures])
        assert np.array_equal(decisions, reference.decision_values)
        assert router.alive_replicas == [1]
        view = router.metrics_view()
        assert view["failover_count"] >= 1
        assert view["routed_per_replica"][0] == 0
        assert view["routed_per_replica"][1] == len(queries)
    finally:
        router.close()


def test_kill_replica_folds_access_log_into_survivor(payload, queries, tmp_path):
    router = ReplicaRouter(
        payload,
        num_replicas=2,
        policy="key-affinity",
        persistence_root=tmp_path / "tier",
        max_batch=4,
        max_wait_ms=2.0,
    )
    try:
        futures = router.submit_many(queries)
        for f in futures:
            f.result(timeout=60)
        dead, survivor = 0, 1
        dead_tallies = dict(router.replica_stores[dead].access_counts)
        router.kill_replica(dead)
        merged = router.replica_stores[survivor].access_counts
        for key, count in dead_tallies.items():
            assert merged.get(key, 0) >= count
        manifest = router.snapshot()  # fleet union is still snapshottable
        assert len(manifest.keys) == len(queries)
    finally:
        router.close()
