"""Unit tests for the replica router: policies, shedding, metrics, fleet ops."""

import numpy as np
import pytest

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig, ServingConfig, TuningConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import LoadShedError, ServingError
from repro.profiling import RouterMetrics, ServingMetrics
from repro.serving import (
    KeyAffinityPolicy,
    LeastDepthPolicy,
    ReplicaRouter,
    RoundRobinPolicy,
    make_routing_policy,
)

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
        20,
        seed=2,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(53)
    return rng.normal(size=(12, 4))


# ----------------------------------------------------------------------
# Policies in isolation
# ----------------------------------------------------------------------
def test_round_robin_cycles_and_adapts_to_fleet_size():
    policy = RoundRobinPolicy()
    picks = [policy.select(b"k", [0, 0, 0]) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    # A replica died: the cycle keeps covering the smaller fleet.
    assert policy.select(b"k", [0, 0]) in (0, 1)


def test_least_depth_picks_shallowest_with_deterministic_ties():
    policy = LeastDepthPolicy()
    assert policy.select(b"k", [3, 1, 2]) == 1
    assert policy.select(b"k", [2, 2, 2]) == 0  # tie -> lowest index


def test_key_affinity_is_stable_and_content_addressed():
    policy = KeyAffinityPolicy()
    rng = np.random.default_rng(0)
    keys = [rng.normal(size=4).tobytes() for _ in range(32)]
    first = [policy.select(k, [0] * 4) for k in keys]
    second = [policy.select(k, [9, 9, 9, 9]) for k in keys]
    assert first == second  # depth never matters, only content
    assert len(set(first)) > 1  # keys actually spread over the fleet


def test_make_routing_policy_registry():
    assert isinstance(make_routing_policy("round-robin"), RoundRobinPolicy)
    assert isinstance(make_routing_policy("least-depth"), LeastDepthPolicy)
    assert isinstance(make_routing_policy("key-affinity"), KeyAffinityPolicy)
    instance = LeastDepthPolicy()
    assert make_routing_policy(instance) is instance
    with pytest.raises(ServingError, match="unknown routing policy"):
        make_routing_policy("random-walk")


# ----------------------------------------------------------------------
# Router behaviour
# ----------------------------------------------------------------------
def test_router_validates_parameters(payload):
    with pytest.raises(ServingError):
        ReplicaRouter(payload, num_replicas=0)
    with pytest.raises(ServingError):
        ReplicaRouter(payload, num_replicas=1, queue_depth_high_water=0)


def test_router_rejects_malformed_rows(payload):
    with ReplicaRouter(payload, num_replicas=1, max_batch=4) as router:
        with pytest.raises(ServingError):
            router.submit(np.zeros(3))


def test_router_serves_identically_to_direct_classifier(
    served_engine, payload, queries
):
    reference = served_engine.streaming_classifier().classify(queries)
    with ReplicaRouter(
        payload, num_replicas=2, policy="round-robin", max_batch=4, max_wait_ms=2.0
    ) as router:
        futures = router.submit_many(queries)
        results = [f.result(timeout=60) for f in futures]
    decisions = np.array([r.decision_value for r in results])
    predictions = np.array([r.prediction for r in results])
    assert np.array_equal(decisions, reference.decision_values)
    assert np.array_equal(predictions, reference.predictions)
    view = router.metrics_view()
    assert view["total_routed"] == len(queries)
    assert sum(view["routed_per_replica"]) == len(queries)
    assert view["shed_count"] == 0
    assert len(view["replicas"]) == 2


def test_key_affinity_routes_repeats_to_one_replica(payload, queries):
    with ReplicaRouter(
        payload, num_replicas=3, policy="key-affinity", max_batch=8, max_wait_ms=2.0
    ) as router:
        row = queries[0]
        futures = [router.submit(row) for _ in range(6)]
        for f in futures:
            f.result(timeout=60)
        view = router.metrics_view()
    assert sorted(view["routed_per_replica"]) == [0, 0, 6]


def test_load_shedding_at_high_water(payload, queries):
    # Stalled coalescers (huge batch + wait) let pending depth build
    # deterministically: with high-water 2 and 2 replicas, the fifth
    # submission finds every replica saturated and must be shed.
    router = ReplicaRouter(
        payload,
        num_replicas=2,
        policy="round-robin",
        queue_depth_high_water=2,
        max_batch=1000,
        max_wait_ms=10_000.0,
    )
    try:
        accepted = [router.submit(queries[i]) for i in range(4)]
        assert router.pending() == [2, 2]
        with pytest.raises(LoadShedError):
            router.submit(queries[4])
        view = router.metrics_view()
        assert view["shed_count"] == 1
        assert view["total_routed"] == 4
        router.flush()
        for f in accepted:
            assert f.result(timeout=60).prediction in (0, 1)
    finally:
        router.close()


def test_saturated_pick_fails_over_to_shallowest(payload, queries):
    # Key-affinity pins every copy of one row onto a single replica; once
    # that replica hits high water the router must divert to the idle one
    # instead of shedding.
    router = ReplicaRouter(
        payload,
        num_replicas=2,
        policy="key-affinity",
        queue_depth_high_water=2,
        max_batch=1000,
        max_wait_ms=10_000.0,
    )
    try:
        row = queries[0]
        for _ in range(3):
            router.submit(row)
        depths = router.pending()
        assert sorted(depths) == [1, 2]  # third went to the other replica
        view = router.metrics_view()
        assert view["failover_count"] == 1
        assert view["shed_count"] == 0
        router.flush()
    finally:
        router.close()


def test_from_config_builds_matching_fleet(payload, tmp_path):
    config = ServingConfig(
        tuning=TuningConfig(
            max_batch=4, max_wait_ms=2.0, queue_depth_high_water=16
        ),
        num_replicas=2,
        routing_policy="least-depth",
        snapshot_root=str(tmp_path / "snaps"),
    )
    with ReplicaRouter.from_config(payload, config) as router:
        assert router.num_replicas == 2
        assert isinstance(router.policy, LeastDepthPolicy)
        assert router.high_water == 16
        assert all(store is not None for store in router.replica_stores)
        future = router.submit(np.zeros(4))
        assert future.result(timeout=60).prediction in (0, 1)


def test_from_config_accepts_deprecated_loose_knobs(payload):
    with pytest.warns(DeprecationWarning, match="loose serving knobs"):
        config = ServingConfig(max_batch=4, max_wait_ms=2.0)
    assert config.tuning.max_batch == 4
    with ReplicaRouter.from_config(payload, config) as router:
        assert router.queues[0].max_batch == 4
        future = router.submit(np.zeros(4))
        assert future.result(timeout=60).prediction in (0, 1)


def test_router_apply_tuning_fans_out_and_sets_high_water(payload):
    with ReplicaRouter(
        payload, num_replicas=2, max_batch=4, queue_depth_high_water=16
    ) as router:
        tunings = router.apply_tuning(
            max_batch=8, max_wait_ms=3.0, queue_depth_high_water=32
        )
        assert len(tunings) == 2
        assert all(t.max_batch == 8 for t in tunings)
        assert all(q.max_batch == 8 for q in router.queues)
        assert router.high_water == 32
        assert router.knob_adjustments == 1
        # Explicit None disables shedding entirely.
        router.apply_tuning(queue_depth_high_water=None)
        assert router.high_water is None
        with pytest.raises(ServingError):
            router.set_high_water(0)


def test_router_metrics_view_shapes():
    metrics = RouterMetrics([ServingMetrics(), ServingMetrics()])
    metrics.record_route(0)
    metrics.record_route(1)
    metrics.record_route(1)
    metrics.record_shed()
    metrics.record_failover()
    view = metrics.view(warm_hits=3, warm_lookups=4)
    assert view["routed_per_replica"] == [1, 2]
    assert view["total_routed"] == 3
    assert view["shed_count"] == 1
    assert view["failover_count"] == 1
    assert view["warm_hit_ratio"] == pytest.approx(0.75)
    # Replicas with no completed requests report null percentiles, not errors.
    assert view["replicas"][0]["p99_latency_s"] is None
    no_warm = metrics.view()
    assert "warm_hit_ratio" not in no_warm
