"""Unit tests for the async serving queue and the shared landmark store."""

import pickle
import threading

import numpy as np
import pytest

from repro.approx import NystroemConfig
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import ReproError, ServingError
from repro.profiling import ServingMetrics
from repro.serving import AsyncServingQueue, SharedLandmarkStore, ServedPrediction
from repro.serving.store import shared_store_kernel_rows


ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
        24,
        seed=2,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(53)
    return rng.normal(size=(12, 4))


# ----------------------------------------------------------------------
# Queue behaviour
# ----------------------------------------------------------------------
def test_queue_validates_parameters(served_engine):
    clf = served_engine.streaming_classifier()
    with pytest.raises(ServingError):
        AsyncServingQueue(clf, max_batch=0)
    with pytest.raises(ServingError):
        AsyncServingQueue(clf, max_wait_ms=-1)
    with pytest.raises(ServingError):
        AsyncServingQueue(clf, workers=-1)
    with pytest.raises(ServingError):
        AsyncServingQueue(clf, memo_capacity=0)


def test_queue_rejects_malformed_rows(served_engine):
    with served_engine.serving_queue(max_batch=4) as queue:
        with pytest.raises(ServingError):
            queue.submit(np.zeros(3))


def test_queue_rejects_after_close(served_engine, queries):
    queue = served_engine.serving_queue(max_batch=4)
    queue.close()
    with pytest.raises(ServingError):
        queue.submit(queries[0])
    queue.close()  # idempotent


def test_close_flushes_pending_requests(served_engine, queries):
    queue = served_engine.serving_queue(max_batch=64, max_wait_ms=10_000.0)
    futures = queue.submit_many(queries)
    queue.close()
    results = [f.result(timeout=10) for f in futures]
    assert len(results) == len(queries)
    reference = served_engine.streaming_classifier().classify(queries)
    assert np.array_equal(
        np.array([r.decision_value for r in results]), reference.decision_values
    )


def test_flush_forces_partial_batch(served_engine, queries):
    with served_engine.serving_queue(max_batch=64, max_wait_ms=10_000.0) as queue:
        futures = queue.submit_many(queries[:3])
        queue.flush()
        results = [f.result(timeout=10) for f in futures]
    assert [r.batch_size for r in results] == [3, 3, 3]


def test_max_wait_flushes_without_full_batch(served_engine, queries):
    with served_engine.serving_queue(max_batch=64, max_wait_ms=20.0) as queue:
        future = queue.submit(queries[0])
        result = future.result(timeout=10)
    assert result.batch_size == 1
    assert result.latency_s >= 0.0


def test_queue_propagates_classifier_errors(served_engine, queries):
    clf = served_engine.streaming_classifier()

    class Exploding:
        feature_map = clf.feature_map

        def scale(self, rows):
            return clf.scale(rows)

        def classify(self, rows):
            raise RuntimeError("backend on fire")

    with AsyncServingQueue(Exploding(), max_batch=2, max_wait_ms=1.0) as queue:
        futures = [queue.submit(queries[0]), queue.submit(queries[1])]
        for future in futures:
            with pytest.raises(RuntimeError, match="backend on fire"):
                future.result(timeout=10)


def test_memo_hits_and_capacity(served_engine, queries):
    with served_engine.serving_queue(
        max_batch=4, max_wait_ms=1.0, memo_capacity=2
    ) as queue:
        for _ in range(3):
            futures = queue.submit_many(queries[:2])
            [f.result(timeout=10) for f in futures]
        assert queue.memo_hits >= 2
        assert len(queue._slot.memo) <= 2


def test_memo_can_be_disabled(served_engine, queries):
    with served_engine.serving_queue(
        max_batch=4, max_wait_ms=1.0, memoize=False
    ) as queue:
        futures = queue.submit_many(np.vstack([queries[:2], queries[:2]]))
        results = [f.result(timeout=10) for f in futures]
        assert queue.memo_hits == 0
    assert results[0].decision_value == results[2].decision_value


def test_queue_metrics_accounting(served_engine, queries):
    with served_engine.serving_queue(max_batch=4, max_wait_ms=1.0) as queue:
        futures = queue.submit_many(queries)
        [f.result(timeout=10) for f in futures]
        queue.flush()
    metrics = queue.metrics
    assert metrics.total_requests == len(queries)
    assert metrics.total_batches >= len(queries) // 4
    assert metrics.p50_latency_s <= metrics.p99_latency_s
    assert metrics.queue_depth_high_water >= 1
    snapshot = metrics.to_dict()
    assert snapshot["total_requests"] == len(queries)
    assert snapshot["throughput_rps"] > 0


def test_served_prediction_validates():
    with pytest.raises(ServingError):
        ServedPrediction(prediction=1, decision_value=0.5, latency_s=0.1, batch_size=0)


def test_concurrent_submitters_all_served(served_engine, queries):
    """Many threads submitting at once: every request resolves correctly."""
    reference = served_engine.streaming_classifier().classify(queries)
    with served_engine.serving_queue(max_batch=5, max_wait_ms=2.0) as queue:
        results = {}

        def submit_one(i):
            results[i] = queue.submit(queries[i]).result(timeout=30)

        threads = [
            threading.Thread(target=submit_one, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    decisions = np.array([results[i].decision_value for i in range(len(queries))])
    assert np.array_equal(decisions, reference.decision_values)


# ----------------------------------------------------------------------
# Shared landmark store
# ----------------------------------------------------------------------
def test_shared_store_round_trip(served_engine, queries):
    clf = served_engine.streaming_classifier()
    payload = clf.serving_payload()
    # The payload must survive pickling (it crosses process boundaries).
    payload = pickle.loads(pickle.dumps(payload))
    replica = SharedLandmarkStore.attach(payload)
    assert replica.num_landmarks == 6
    reference = clf.classify(queries)
    assert np.array_equal(replica.decision_function(queries), reference.decision_values)
    assert np.array_equal(replica.predict(queries), reference.predictions)


def test_shared_store_rejects_incomplete_payload(served_engine):
    payload = served_engine.streaming_classifier().serving_payload()
    payload.pop("normalization")
    with pytest.raises(ServingError, match="missing keys"):
        SharedLandmarkStore.attach(payload)


def test_worker_task_requires_attachment():
    import repro.serving.store as store_module

    saved = store_module._ATTACHED
    store_module._ATTACHED = None
    try:
        with pytest.raises(ServingError, match="no attached landmark store"):
            shared_store_kernel_rows(np.zeros((1, 4)))
    finally:
        store_module._ATTACHED = saved


def test_two_worker_queue_matches_in_process(served_engine, queries):
    reference = served_engine.streaming_classifier().classify(queries)
    with served_engine.serving_queue(
        max_batch=6, max_wait_ms=2.0, workers=2, memoize=False
    ) as queue:
        futures = queue.submit_many(queries)
        results = [f.result(timeout=120) for f in futures]
    decisions = np.array([r.decision_value for r in results])
    assert np.array_equal(decisions, reference.decision_values)


# ----------------------------------------------------------------------
# ServingMetrics unit behaviour
# ----------------------------------------------------------------------
def test_serving_metrics_empty_state_raises():
    metrics = ServingMetrics()
    with pytest.raises(ReproError):
        metrics.p50_latency_s
    with pytest.raises(ReproError):
        metrics.throughput_rps
    with pytest.raises(ReproError):
        metrics.mean_batch_size
    with pytest.raises(ReproError):
        metrics.record_batch([], 0.0, 0.0)
    assert metrics.to_dict()["total_requests"] == 0


def test_serving_metrics_percentiles():
    metrics = ServingMetrics()
    metrics.record_enqueue(1, now=0.0)
    metrics.record_batch([0.001 * (i + 1) for i in range(100)], 0.2, now=1.0)
    assert metrics.total_requests == 100
    assert metrics.p50_latency_s == pytest.approx(0.0505, abs=1e-3)
    assert metrics.p99_latency_s <= 0.1
    assert metrics.throughput_rps == pytest.approx(100.0, rel=1e-6)
