"""Unit tests for the one-call serving surface: repro.serve() / ServingHandle."""

import urllib.request

import numpy as np
import pytest

import repro
from repro.approx import NystroemConfig
from repro.config import AnsatzConfig, ServingConfig, TuningConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import ServingError
from repro.serving import ServingHandle, resolve_serving_payload, serve

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


def _fit_engine(landmark_seed=0):
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
        20,
        seed=2,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=landmark_seed)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def served_engine():
    return _fit_engine()


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(53)
    return rng.normal(size=(8, 4))


# ----------------------------------------------------------------------
# Payload resolution
# ----------------------------------------------------------------------
def test_resolve_accepts_mappings_and_payload_objects(served_engine, payload):
    assert resolve_serving_payload(payload) == payload
    from_engine = resolve_serving_payload(served_engine)
    assert from_engine.keys() == payload.keys()
    with pytest.raises(ServingError, match="serving_payload"):
        resolve_serving_payload(42)


# ----------------------------------------------------------------------
# The handle surface
# ----------------------------------------------------------------------
def test_serve_is_exported_at_top_level():
    assert repro.serve is serve
    assert repro.ServingHandle is ServingHandle


def test_serve_round_trips_predictions(served_engine, payload, queries):
    reference = served_engine.streaming_classifier().classify(queries)
    config = ServingConfig(
        tuning=TuningConfig(max_batch=4, max_wait_ms=2.0), num_replicas=2
    )
    with serve(payload, config) as handle:
        futures = handle.submit_many(queries)
        results = [f.result(timeout=60) for f in futures]
        single = handle.predict(queries[0])
    decisions = np.array([r.decision_value for r in results])
    assert np.array_equal(decisions, reference.decision_values)
    assert single.decision_value == reference.decision_values[0]


def test_serve_accepts_a_model_object_directly(served_engine, queries):
    with serve(served_engine) as handle:
        assert handle.predict(queries[0]).prediction in (0, 1)
        # Default config: one replica, static policy, no endpoint.
        assert handle.config.control_policy == "static"
        assert handle.router.num_replicas == 1
        assert handle.url is None


def test_metrics_view_carries_a_control_section(payload, queries):
    with serve(payload) as handle:
        handle.predict(queries[0])
        handle.controller.step()
        view = handle.metrics()
    assert view["total_routed"] == 1
    control = view["control"]
    assert control["policy"] == "static"
    assert control["step_count"] == 1
    assert control["knobs"]["max_batch"] == TuningConfig().max_batch


def test_swap_rolls_a_new_model_across_the_fleet(payload, queries):
    replacement = _fit_engine(landmark_seed=5)
    expected = replacement.streaming_classifier().classify(queries)
    with serve(payload, ServingConfig(num_replicas=2)) as handle:
        before = handle.predict(queries[0])
        assert handle.model_version == 0
        version = handle.swap(replacement)  # model object, not payload
        assert version == 1 and handle.model_version == 1
        after = [handle.predict(q) for q in queries]
    assert all(r.model_version == 1 for r in after)
    decisions = np.array([r.decision_value for r in after])
    assert np.array_equal(decisions, expected.decision_values)
    assert before.model_version == 0


def test_handle_close_is_idempotent_and_final(payload, queries):
    handle = serve(payload)
    handle.predict(queries[0])
    handle.close()
    handle.close()  # second close is a no-op
    with pytest.raises(ServingError):
        handle.submit(queries[0])


# ----------------------------------------------------------------------
# Controller integration
# ----------------------------------------------------------------------
def test_serve_wires_the_configured_control_policy(payload, queries):
    config = ServingConfig(
        tuning=TuningConfig(max_batch=4, batch_ceiling=64),
        control_policy="depth-proportional",
    )
    with serve(payload, config) as handle:
        assert handle.controller.policy.name == "depth-proportional"
        assert handle.controller.bounds is config.tuning
        handle.predict(queries[0])
        decision = handle.controller.step()
    assert decision.policy == "depth-proportional"


def test_control_interval_runs_the_loop_in_the_background(payload):
    config = ServingConfig(control_interval_s=0.005)
    with serve(payload, config) as handle:
        deadline = 200
        while handle.controller.step_count == 0 and deadline:
            deadline -= 1
            import time

            time.sleep(0.005)
        assert handle.controller.step_count > 0
    # close() stopped the loop thread.
    assert handle.controller._loop_thread is None


def test_cost_model_context_is_reachable_from_a_real_fleet(payload):
    with serve(payload, ServingConfig(control_policy="cost-model")) as handle:
        context = handle.controller._context
        assert context is not None
        assert context.num_landmarks == 6
        assert context.num_qubits == 4
        assert context.chi >= 2


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_telemetry_endpoint_exports_the_control_families(payload, queries):
    with serve(payload, telemetry=True) as handle:
        assert handle.url is not None
        handle.predict(queries[0])
        handle.controller.step()
        with urllib.request.urlopen(handle.url + "/metrics", timeout=10) as resp:
            text = resp.read().decode()
    assert 'repro_control_knob{knob="max_batch"}' in text
    assert "repro_control_steps_total 1" in text
    assert 'repro_control_policy{policy="static"} 1' in text
    assert "repro_control_recommended_replicas" in text
    # The serving families ride along on the same registry.
    assert "repro_router_routed_total" in text
