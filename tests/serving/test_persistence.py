"""Durable snapshot tier: round-trips, atomicity, integrity, warm-up.

The persistence layer's contract has two halves.  *Durability*: a snapshot
written by one store instance restores into another with byte-identical
states -- the kernel rows a warm-started engine computes match the writer's
exactly.  *Safety*: a crash mid-write can never corrupt the previous good
snapshot (write-temp-then-rename), and corrupted, truncated or partially
written artifacts are rejected at load time instead of poisoning serving.
"""

import json
import os

import numpy as np
import pytest

import repro.serving.persistence as persistence_module
from repro.approx import NystroemConfig, StreamingNystroemClassifier
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.engine import StateStore
from repro.exceptions import PersistenceError
from repro.mps import MPS
from repro.serving import PersistentStateStore, SnapshotManifest

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture(scope="module")
def served_engine():
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=4, seed=31)),
        20,
        seed=2,
    )
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=6, seed=0)
    )
    engine.fit(data.features, data.labels)
    return engine


@pytest.fixture(scope="module")
def payload(served_engine):
    return served_engine.serving_payload()


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(53)
    return rng.normal(size=(10, 4))


def _durable_classifier(payload, root):
    """A serving replica whose engine store is the durable tier at ``root``."""
    store = PersistentStateStore(root)
    classifier = StreamingNystroemClassifier.from_serving_payload(
        payload, store=store
    )
    store.fingerprint = classifier.feature_map.engine.fingerprint
    return classifier, store


def _plus_state(num_qubits: int) -> MPS:
    return MPS.plus_state(num_qubits)


# ----------------------------------------------------------------------
# Snapshot round trip
# ----------------------------------------------------------------------
def test_snapshot_round_trip_is_byte_identical(payload, queries, tmp_path):
    clf_a, store_a = _durable_classifier(payload, tmp_path)
    result_a = clf_a.classify(queries)
    assert result_a.num_simulations == len(queries)  # genuinely cold
    manifest = store_a.snapshot()
    assert manifest.num_entries == len(queries)
    assert sum(manifest.entry_bytes.values()) == store_a.bytes_in_use

    # "Restart": a fresh store + engine over the same root and payload.
    clf_b, store_b = _durable_classifier(payload, tmp_path)
    assert store_b.restore() == len(queries)
    result_b = clf_b.classify(queries)
    assert result_b.num_simulations == 0  # served entirely from the snapshot
    assert np.array_equal(result_a.kernel_rows, result_b.kernel_rows)
    assert np.array_equal(result_a.decision_values, result_b.decision_values)
    assert np.array_equal(result_a.predictions, result_b.predictions)


def test_snapshot_subset_and_manifest_fields(payload, queries, tmp_path):
    clf, store = _durable_classifier(payload, tmp_path)
    clf.classify(queries)
    subset = store.keys()[:3]
    manifest = store.snapshot(keys=subset)
    assert manifest.keys == tuple(subset)
    assert manifest.fingerprint == store.fingerprint
    assert (tmp_path / manifest.payload_file).stat().st_size == manifest.payload_bytes
    # The manifest on disk reparses to the same object.
    assert store.latest_manifest() == manifest


def test_restore_without_snapshot_raises(tmp_path):
    store = PersistentStateStore(tmp_path)
    assert not store.has_snapshot()
    with pytest.raises(PersistenceError):
        store.restore()
    # warm_up treats the same situation as a normal cold start.
    report = store.warm_up()
    assert report.loaded == 0 and report.available == 0


# ----------------------------------------------------------------------
# Crash atomicity
# ----------------------------------------------------------------------
def test_crash_between_temp_write_and_rename_preserves_old_snapshot(
    tmp_path, monkeypatch
):
    store = PersistentStateStore(tmp_path)
    store.put("a", _plus_state(2))
    good = store.snapshot()

    store.put("b", _plus_state(3))
    real_replace = os.replace
    calls = {"n": 0}

    def crash_on_manifest_rename(src, dst):
        # Let the payload land, then die before the manifest rename -- the
        # worst-ordered crash a snapshot writer can suffer.
        calls["n"] += 1
        if str(dst).endswith("MANIFEST.json"):
            raise OSError("simulated crash during rename")
        return real_replace(src, dst)

    monkeypatch.setattr(persistence_module.os, "replace", crash_on_manifest_rename)
    with pytest.raises(OSError):
        store.snapshot()
    monkeypatch.setattr(persistence_module.os, "replace", real_replace)
    assert calls["n"] >= 1

    # The manifest still references the old, complete, verifiable snapshot.
    recovered = PersistentStateStore(tmp_path)
    manifest = recovered.latest_manifest()
    assert manifest is not None and manifest.checksum == good.checksum
    assert recovered.restore() == 1
    assert "a" in recovered and "b" not in recovered


def test_crash_during_temp_write_leaves_no_tmp_after_recovery(tmp_path, monkeypatch):
    store = PersistentStateStore(tmp_path)
    store.put("a", _plus_state(2))

    def crash_on_any_rename(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(persistence_module.os, "replace", crash_on_any_rename)
    with pytest.raises(OSError):
        store.snapshot()
    monkeypatch.undo()
    # The dead writer left a *.tmp behind...
    stale = list(tmp_path.rglob("*.tmp"))
    assert stale
    # ...which the next store instance sweeps on startup.
    recovered = PersistentStateStore(tmp_path)
    assert not list(tmp_path.rglob("*.tmp"))
    assert not recovered.has_snapshot()
    assert recovered.warm_up().loaded == 0


# ----------------------------------------------------------------------
# Integrity: corruption, truncation, partial manifests
# ----------------------------------------------------------------------
def _snapshot_with_entries(tmp_path):
    store = PersistentStateStore(tmp_path)
    store.put("a", _plus_state(2))
    store.put("b", _plus_state(3))
    manifest = store.snapshot()
    return store, manifest


def test_corrupted_payload_is_rejected_by_checksum(tmp_path):
    _store, manifest = _snapshot_with_entries(tmp_path)
    payload_path = tmp_path / manifest.payload_file
    blob = bytearray(payload_path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # flip one byte mid-payload
    payload_path.write_bytes(bytes(blob))

    fresh = PersistentStateStore(tmp_path)
    with pytest.raises(PersistenceError, match="checksum"):
        fresh.restore()
    with pytest.raises(PersistenceError, match="checksum"):
        fresh.warm_up()
    assert len(fresh) == 0  # nothing corrupt was attached


def test_truncated_payload_is_rejected_before_deserialising(tmp_path):
    _store, manifest = _snapshot_with_entries(tmp_path)
    payload_path = tmp_path / manifest.payload_file
    blob = payload_path.read_bytes()
    payload_path.write_bytes(blob[: len(blob) // 2])

    fresh = PersistentStateStore(tmp_path)
    with pytest.raises(PersistenceError, match="truncated"):
        fresh.restore()


def test_missing_payload_file_is_rejected(tmp_path):
    _store, manifest = _snapshot_with_entries(tmp_path)
    (tmp_path / manifest.payload_file).unlink()
    with pytest.raises(PersistenceError, match="missing"):
        PersistentStateStore(tmp_path).restore()


def test_partial_manifest_is_rejected(tmp_path):
    _store, manifest = _snapshot_with_entries(tmp_path)
    manifest_path = tmp_path / "MANIFEST.json"

    # Truncated JSON: the shape a crashed non-atomic writer would leave.
    text = manifest_path.read_text()
    manifest_path.write_text(text[: len(text) // 2])
    with pytest.raises(PersistenceError, match="JSON"):
        PersistentStateStore(tmp_path).latest_manifest()

    # Syntactically valid but missing required fields.
    partial = manifest.to_dict()
    del partial["checksum"]
    manifest_path.write_text(json.dumps(partial))
    with pytest.raises(PersistenceError, match="missing fields"):
        PersistentStateStore(tmp_path).latest_manifest()

    # Unsupported future version.
    future = manifest.to_dict()
    future["version"] = 99
    manifest_path.write_text(json.dumps(future))
    with pytest.raises(PersistenceError, match="version"):
        PersistentStateStore(tmp_path).warm_up()


def test_manifest_validates_key_size_consistency():
    raw = {
        "version": 1,
        "fingerprint": "fp",
        "keys": ["a", "b"],
        "entry_bytes": {"a": 10},  # "b" has no recorded size
        "payload_file": "snapshots/x.pkl",
        "payload_bytes": 10,
        "checksum": "0" * 64,
        "created_at": 0.0,
    }
    with pytest.raises(PersistenceError, match="entry_bytes"):
        SnapshotManifest.from_dict(raw)


def test_fingerprint_mismatch_is_rejected(tmp_path):
    store = PersistentStateStore(tmp_path, fingerprint="policy-A")
    store.put("a", _plus_state(2))
    store.snapshot()

    other = PersistentStateStore(tmp_path, fingerprint="policy-B")
    with pytest.raises(PersistenceError, match="fingerprint"):
        other.restore()
    with pytest.raises(PersistenceError, match="fingerprint"):
        other.warm_up()


# ----------------------------------------------------------------------
# Warm-up ordering and budgets
# ----------------------------------------------------------------------
def test_warm_up_prefers_hottest_keys_and_respects_budgets(tmp_path):
    store = PersistentStateStore(tmp_path)
    for name, qubits in (("cold", 2), ("warm", 2), ("hot", 2)):
        store.put(name, _plus_state(qubits))
    # Heat: "hot" 3 lookups, "warm" 2, "cold" 1.
    for key, count in (("hot", 3), ("warm", 2), ("cold", 1)):
        for _ in range(count):
            store.get(key)
    store.snapshot()

    fresh = PersistentStateStore(tmp_path)
    report = fresh.warm_up(max_keys=2)
    assert report.available == 3
    assert report.loaded == 2
    assert report.keys == ("hot", "warm")
    # Hottest-is-MRU: under pressure the LRU sheds "warm" before "hot".
    assert fresh.keys() == ["warm", "hot"]

    one_entry = _plus_state(2).memory_bytes
    tight = PersistentStateStore(tmp_path)
    tight_report = tight.warm_up(max_bytes=one_entry)
    assert tight_report.loaded == 1
    assert tight_report.keys == ("hot",)
    assert tight_report.bytes_loaded == one_entry


def test_warm_up_tie_breaks_deterministically_by_payload_order(tmp_path):
    store = PersistentStateStore(tmp_path)
    store.put("first", _plus_state(2))
    store.put("second", _plus_state(2))
    store.snapshot()  # no accesses: all counts zero

    fresh = PersistentStateStore(tmp_path)
    report = fresh.warm_up(max_keys=1)
    assert report.keys == ("first",)


def test_access_log_survives_restart_and_merges(tmp_path):
    store = PersistentStateStore(tmp_path)
    store.put("a", _plus_state(2))
    store.get("a")
    store.get("a")
    store.get("never-seen")  # misses count as interest too
    store.save_access_log()

    reborn = PersistentStateStore(tmp_path)
    assert reborn.access_counts == {"a": 2, "never-seen": 1}
    reborn.record_accesses({"a": 3, "b": 1})
    assert reborn.access_counts["a"] == 5
    assert reborn.access_counts["b"] == 1


def test_corrupt_access_log_is_advisory_not_fatal(tmp_path):
    (tmp_path / "access_log.json").write_text("{not json")
    store = PersistentStateStore(tmp_path)
    assert store.access_counts == {}


# ----------------------------------------------------------------------
# Store-surface passthrough (the engine's view of the tier)
# ----------------------------------------------------------------------
def test_wrapper_delegates_store_surface(tmp_path):
    inner = StateStore(max_bytes=10**9)
    store = PersistentStateStore(tmp_path, store=inner)
    state = _plus_state(2)
    store.put("a", state)
    assert len(store) == 1
    assert "a" in store
    assert store.get("a") is state
    assert store.get("missing") is None
    assert store.bytes_in_use == inner.bytes_in_use
    assert store.max_bytes == 10**9
    stats = store.stats()
    assert stats.hits == 1 and stats.misses == 1
    # dump/load interoperate with plain StateStores.
    other = StateStore()
    assert other.load_entries(store.dump_entries()) == 1
    store.clear()
    assert len(store) == 0
    assert store.load_entries(other.dump_entries()) == 1
