"""Unit tests for the kernel-bandwidth study."""

import pytest

from repro.analysis import bandwidth_study
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.exceptions import KernelError


@pytest.fixture(scope="module")
def data():
    dataset = generate_elliptic_like(DatasetSpec(num_samples=400, num_features=6, seed=8))
    sample = balanced_subsample(dataset, 16, seed=1)
    return sample.features, sample.labels


def test_bandwidth_study_structure(data):
    X, y = data
    points = bandwidth_study(X, y, gammas=(0.05, 0.5, 2.0))
    assert [p.gamma for p in points] == [0.05, 0.5, 2.0]
    for p in points:
        assert 0.0 <= p.off_diagonal_mean <= 1.0
        assert p.off_diagonal_std >= 0.0
        assert -1.0 <= p.alignment <= 1.0
        assert p.max_bond_dimension >= 1
        assert p.modelled_simulation_time_s > 0


def test_larger_bandwidth_shrinks_overlaps(data):
    X, y = data
    points = bandwidth_study(X, y, gammas=(0.05, 2.0))
    assert points[1].off_diagonal_mean < points[0].off_diagonal_mean


def test_tiny_bandwidth_is_not_concentrated(data):
    X, y = data
    (point,) = bandwidth_study(X, y, gammas=(0.01,))
    assert not point.is_concentrated
    assert point.off_diagonal_mean > 0.5


def test_validation(data):
    X, y = data
    with pytest.raises(KernelError):
        bandwidth_study(X, y[:-1], gammas=(0.5,))
    with pytest.raises(KernelError):
        bandwidth_study(X, y, gammas=())
    with pytest.raises(KernelError):
        bandwidth_study(X, y, gammas=(0.5,), num_features=100)
