"""Unit tests for the ablation utilities."""

import numpy as np
import pytest

from repro.analysis import (
    canonicalization_ablation,
    strategy_duplication_factor,
    truncation_cutoff_sweep,
)
from repro.config import AnsatzConfig
from repro.exceptions import SimulationError


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=6, interaction_distance=2, layers=2, gamma=1.0)


def test_truncation_sweep_accuracy_memory_tradeoff(ansatz):
    cutoffs = (1e-16, 1e-8, 1e-3, 1e-1)
    points = truncation_cutoff_sweep(ansatz, cutoffs, seed=1)
    assert [p.cutoff for p in points] == list(cutoffs)
    # Machine-precision point is numerically exact.
    assert points[0].fidelity_vs_exact == pytest.approx(1.0, abs=1e-9)
    # Memory (and chi) never increases as the cut-off is relaxed.
    mems = [p.memory_bytes for p in points]
    chis = [p.max_bond_dimension for p in points]
    assert all(np.diff(mems) <= 0)
    assert all(np.diff(chis) <= 0)
    # Fidelity degrades (weakly) as the cut-off grows, and the loss stays
    # in the same ballpark as the accumulated discarded weight.
    fids = [p.fidelity_vs_exact for p in points]
    assert all(np.diff(fids) <= 1e-9)
    for p in points:
        assert p.fidelity_vs_exact <= 1.0 + 1e-9
        assert p.cumulative_discarded_weight >= 0.0


def test_truncation_sweep_requires_cutoffs(ansatz):
    with pytest.raises(SimulationError):
        truncation_cutoff_sweep(ansatz, ())


def test_canonicalization_ablation(ansatz):
    result = canonicalization_ablation(ansatz, cutoff=5e-2, seed=2)
    assert set(result) >= {
        "fidelity_with_canonicalization",
        "fidelity_without_canonicalization",
        "discarded_with",
        "discarded_without",
    }
    # Canonical truncation is locally optimal: it should not be (meaningfully)
    # worse than the non-canonical variant.
    assert (
        result["fidelity_with_canonicalization"]
        >= result["fidelity_without_canonicalization"] - 5e-2
    )
    assert 0.0 <= result["fidelity_with_canonicalization"] <= 1.0 + 1e-9


def test_strategy_duplication_factor_grows_with_processes():
    rows = strategy_duplication_factor(num_points=24, process_counts=(1, 4, 9))
    factors = [r["duplication_factor"] for r in rows]
    assert factors[0] >= 1.0
    assert all(np.diff(factors) >= 0)
    assert factors[-1] > factors[0]
    for r in rows:
        assert r["total_simulations"] >= 24
