"""Unit tests for the entanglement diagnostics."""

import numpy as np
import pytest

from repro.analysis import bond_dimension_growth, entanglement_profile
from repro.config import AnsatzConfig
from repro.exceptions import SimulationError
from repro.mps import MPS, gates


def test_profile_of_product_state_is_trivial():
    profile = entanglement_profile(MPS.plus_state(5))
    assert profile.max_bond_dimension == 1
    assert np.allclose(profile.entropies, 0.0, atol=1e-10)
    assert profile.mean_entropy == pytest.approx(0.0, abs=1e-10)
    assert np.all(profile.bond_dimensions == 1)


def test_profile_of_bell_pair():
    state = MPS.zero_state(2)
    state.apply_single_qubit_gate(0, gates.hadamard())
    state.apply_two_qubit_gate(0, gates.cnot())
    profile = entanglement_profile(state)
    assert profile.max_bond_dimension == 2
    assert profile.peak_entropy == pytest.approx(np.log(2))
    assert profile.memory_bytes == state.memory_bytes


def test_profile_of_single_qubit():
    profile = entanglement_profile(MPS.plus_state(1))
    assert profile.entropies.size == 0
    assert profile.mean_entropy == 0.0
    assert profile.peak_entropy == 0.0


def test_bond_dimension_growth_with_distance():
    base = AnsatzConfig(num_features=8, interaction_distance=1, layers=2, gamma=1.0)
    rows = bond_dimension_growth(base, distances=(1, 2, 3), num_samples=2, seed=3)
    assert [r["interaction_distance"] for r in rows] == [1, 2, 3]
    chis = [r["avg_max_chi"] for r in rows]
    mems = [r["avg_memory_bytes"] for r in rows]
    assert all(np.diff(chis) > 0)
    assert all(np.diff(mems) > 0)
    assert rows[-1]["avg_peak_entropy"] > rows[0]["avg_peak_entropy"]


def test_bond_dimension_growth_validation():
    base = AnsatzConfig(num_features=6)
    with pytest.raises(SimulationError):
        bond_dimension_growth(base, distances=(1,), num_samples=0)
