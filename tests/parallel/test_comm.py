"""Unit tests for the simulated communicator and communication model."""

import numpy as np
import pytest

from repro.exceptions import CommunicationError
from repro.parallel import CommunicationModel, SimulatedComm


def test_communication_model_transfer_time():
    model = CommunicationModel(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    assert model.transfer_time(0) == pytest.approx(1e-6)
    assert model.transfer_time(10**9) == pytest.approx(1.0 + 1e-6)
    with pytest.raises(CommunicationError):
        model.transfer_time(-1)
    with pytest.raises(CommunicationError):
        CommunicationModel(latency_s=-1)
    with pytest.raises(CommunicationError):
        CommunicationModel(bandwidth_bytes_per_s=0)


def test_send_deliver_receive_roundtrip():
    comm = SimulatedComm(3)
    comm.send(0, 1, {"payload": 42}, nbytes=100)
    comm.send(2, 1, "hello", nbytes=50)
    # Nothing visible before deliver.
    assert comm.receive_all(1) == []
    comm.deliver()
    received = comm.receive_all(1)
    assert len(received) == 2
    assert {"payload": 42} in received
    assert "hello" in received
    # Mailbox drained.
    assert comm.receive_all(1) == []
    assert comm.supersteps == 1


def test_byte_accounting():
    comm = SimulatedComm(2)
    comm.send(0, 1, "a", nbytes=128)
    comm.send(0, 1, "b", nbytes=256)
    comm.deliver()
    assert comm.bytes_sent[0] == 384
    assert comm.bytes_sent[1] == 0
    assert comm.messages_sent[0] == 2
    assert comm.send_time_s[0] > 0
    assert comm.recv_time_s[1] > 0
    summary = comm.communication_summary()
    assert summary["total_bytes"] == 384
    assert summary["total_messages"] == 2
    assert summary["supersteps"] == 1


def test_tagged_receive():
    comm = SimulatedComm(2)
    comm.send(0, 1, "block", nbytes=1, tag="ring")
    comm.send(0, 1, "result", nbytes=1, tag="gather")
    comm.deliver()
    ring_msgs = comm.receive_all(1, tag="ring")
    assert ring_msgs == ["block"]
    assert comm.pending_count(1) == 1
    assert comm.receive_all(1, tag="gather") == ["result"]


def test_invalid_usage():
    comm = SimulatedComm(2)
    with pytest.raises(CommunicationError):
        SimulatedComm(0)
    with pytest.raises(CommunicationError):
        comm.send(0, 5, "x", nbytes=1)
    with pytest.raises(CommunicationError):
        comm.send(0, 0, "x", nbytes=1)
    with pytest.raises(CommunicationError):
        comm.send(0, 1, "x", nbytes=-1)
    with pytest.raises(CommunicationError):
        comm.receive_all(7)


def test_gather():
    comm = SimulatedComm(3)
    payloads = {0: np.zeros(10), 1: np.ones(10), 2: np.full(10, 2.0)}
    gathered = comm.gather(payloads, root=0)
    assert len(gathered) == 3
    assert np.allclose(gathered[2], 2.0)
    # Root does not send to itself.
    assert comm.messages_sent[0] == 0
    assert comm.messages_sent[1] == 1
    assert comm.bytes_sent[1] == 80
