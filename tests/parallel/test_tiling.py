"""Unit tests for Gram-matrix tiling."""

import numpy as np
import pytest

from repro.exceptions import TilingError
from repro.parallel import partition_indices, square_tiling, tiles_cover_matrix
from repro.parallel.tiling import Tile


def test_partition_even_and_uneven():
    blocks = partition_indices(10, 2)
    assert [b.size for b in blocks] == [5, 5]
    blocks = partition_indices(10, 3)
    assert [b.size for b in blocks] == [4, 3, 3]
    # Every index appears exactly once, in order.
    assert np.array_equal(np.concatenate(blocks), np.arange(10))


def test_partition_validation():
    with pytest.raises(TilingError):
        partition_indices(0, 1)
    with pytest.raises(TilingError):
        partition_indices(5, 0)
    with pytest.raises(TilingError):
        partition_indices(3, 4)


def test_square_tiling_counts_symmetric():
    tiles = square_tiling(8, 2, symmetric=True)
    # Upper-triangular block grid of side 2: 3 tiles.
    assert len(tiles) == 3
    diag = [t for t in tiles if t.symmetric_diagonal]
    assert len(diag) == 2
    assert tiles_cover_matrix(tiles, 8, symmetric=True)


def test_square_tiling_counts_full():
    tiles = square_tiling(6, 3, symmetric=False)
    assert len(tiles) == 9
    assert tiles_cover_matrix(tiles, 6, symmetric=False)


def test_square_tiling_owner_assignment():
    tiles = square_tiling(10, 3, symmetric=True, num_owners=2)
    owners = {t.owner for t in tiles}
    assert owners <= {0, 1}
    # Work is spread over both owners.
    assert len(owners) == 2
    with pytest.raises(TilingError):
        square_tiling(10, 3, num_owners=0)


def test_tile_entry_pairs_and_required_states():
    tile = Tile(
        row_block=0,
        col_block=1,
        row_indices=(0, 1),
        col_indices=(2, 3),
        owner=0,
    )
    assert tile.num_entries == 4
    assert set(tile.entry_pairs()) == {(0, 2), (0, 3), (1, 2), (1, 3)}
    assert tile.required_states == (0, 1, 2, 3)

    diag = Tile(
        row_block=0,
        col_block=0,
        row_indices=(0, 1, 2),
        col_indices=(0, 1, 2),
        owner=0,
        symmetric_diagonal=True,
    )
    assert diag.num_entries == 3
    assert set(diag.entry_pairs()) == {(0, 1), (0, 2), (1, 2)}
    assert diag.required_states == (0, 1, 2)


def test_cover_detects_gaps_and_overlaps():
    tiles = square_tiling(6, 2, symmetric=True)
    # Dropping a tile leaves entries uncovered.
    assert not tiles_cover_matrix(tiles[:-1], 6, symmetric=True)
    # Duplicating a tile double-covers entries.
    assert not tiles_cover_matrix(tiles + [tiles[0]], 6, symmetric=True)


# ----------------------------------------------------------------------
# Rectangular (cross-Gram) tiling
# ----------------------------------------------------------------------
def test_rect_tiling_covers_rectangle_exactly_once():
    from repro.parallel import rect_tiling

    tiles = rect_tiling(7, 4, 3)
    assert tiles_cover_matrix(tiles, 7, symmetric=False, num_cols=4)
    assert sum(t.num_entries for t in tiles) == 7 * 4
    assert all(not t.symmetric_diagonal for t in tiles)


def test_rect_tiling_block_grid_and_owners():
    from repro.parallel import rect_tiling

    tiles = rect_tiling(6, 6, 2, 3, num_owners=2)
    assert len(tiles) == 2 * 3
    assert {t.owner for t in tiles} == {0, 1}
    # default column blocks mirror the row blocks, capped at num_cols
    narrow = rect_tiling(8, 2, 4)
    assert len(narrow) == 4 * 2


def test_rect_tiling_validation():
    from repro.parallel import rect_tiling

    with pytest.raises(TilingError):
        rect_tiling(4, 4, 5)
    with pytest.raises(TilingError):
        rect_tiling(4, 4, 2, num_owners=0)
    with pytest.raises(TilingError):
        rect_tiling(0, 4, 1)


def test_symmetric_cover_check_rejects_rectangles():
    from repro.parallel import rect_tiling

    tiles = rect_tiling(4, 3, 2)
    with pytest.raises(TilingError):
        tiles_cover_matrix(tiles, 4, symmetric=True, num_cols=3)
