"""Unit tests for the wall-clock scaling projection."""

import pytest

from repro.exceptions import ParallelError
from repro.parallel import CommunicationModel, ScalingProjection, project_wall_clock


@pytest.fixture
def projection():
    return ScalingProjection(
        simulation_time_per_circuit_s=2.0,
        inner_product_time_s=0.02,
        bytes_per_state=15 * 1024,
        communication=CommunicationModel(),
    )


def test_simulation_phase_scales_with_points_over_processes(projection):
    assert projection.simulation_wall_s(100, 10) == pytest.approx(10 * 2.0)
    # Doubling both keeps the simulation wall-clock constant (Fig. 8).
    assert projection.simulation_wall_s(200, 20) == pytest.approx(
        projection.simulation_wall_s(100, 10)
    )


def test_inner_product_phase_scales_quadratically(projection):
    t1 = projection.inner_product_wall_s(100, 10)
    t2 = projection.inner_product_wall_s(200, 20)
    # Twice the data with twice the processes -> roughly twice the time.
    assert 1.8 < t2 / t1 < 2.2


def test_total_and_breakdown(projection):
    breakdown = projection.breakdown(64, 8)
    assert breakdown["total_wall_s"] == pytest.approx(
        breakdown["simulation_wall_s"]
        + breakdown["inner_product_wall_s"]
        + breakdown["communication_wall_s"]
    )
    assert projection.total_wall_s(64, 8) == pytest.approx(breakdown["total_wall_s"])


def test_paper_extrapolation_64000_points():
    """The paper: 64,000 points in ~30 h on 320 GPUs, ~15 h on 640 GPUs.
    With the paper's own per-primitive numbers (2 s per simulation, 0.02 s
    per inner product) the projection reproduces both figures within 50%."""
    projection = ScalingProjection(
        simulation_time_per_circuit_s=2.0,
        inner_product_time_s=0.02,
        bytes_per_state=15 * 1024,
    )
    hours_320 = projection.total_wall_s(64_000, 320) / 3600.0
    hours_640 = projection.total_wall_s(64_000, 640) / 3600.0
    assert 15 < hours_320 < 55
    assert 7.5 < hours_640 < 27
    # Doubling the processes roughly halves the time.
    assert hours_320 / hours_640 == pytest.approx(2.0, rel=0.1)


def test_inference_projection(projection):
    t = projection.inference_wall_s(num_train=64_000, num_processes=320)
    # Paper: ~2 s simulation + ~4 s of inner products.
    assert 4.0 < t < 10.0
    no_sim = projection.inference_wall_s(64_000, 320, simulate_new_point=False)
    assert no_sim < t


def test_communication_phase(projection):
    assert projection.communication_wall_s(100, 1) == 0.0
    assert projection.communication_wall_s(100, 8) > 0.0


def test_validation(projection):
    with pytest.raises(ParallelError):
        ScalingProjection(-1.0, 0.1)
    with pytest.raises(ParallelError):
        ScalingProjection(1.0, 0.1, bytes_per_state=-5)
    with pytest.raises(ParallelError):
        projection.total_wall_s(0, 4)
    with pytest.raises(ParallelError):
        projection.total_wall_s(4, 0)


def test_project_wall_clock_from_measurement():
    measured = {
        "simulation_wall_s": 10.0,
        "inner_product_wall_s": 5.0,
        "communication_wall_s": 0.1,
    }
    projected = project_wall_clock(
        measured,
        measured_points=16,
        measured_processes=2,
        target_points=64,
        target_processes=8,
    )
    # Simulation: same points-per-process -> same wall-clock.
    assert projected["simulation_wall_s"] == pytest.approx(10.0)
    # Inner products: 4x the per-process pair count -> ~4x the time.
    assert projected["inner_product_wall_s"] == pytest.approx(20.0, rel=0.15)
    with pytest.raises(ParallelError):
        project_wall_clock(measured, 1, 1, 10, 10)
