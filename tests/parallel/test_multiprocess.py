"""Unit tests for the process-pool Gram-matrix computer."""

import numpy as np
import pytest

from repro.config import AnsatzConfig, SimulationConfig
from repro.exceptions import ParallelError
from repro.kernels import QuantumKernel
from repro.parallel import MultiprocessGramComputer
from repro.parallel.multiprocess import compute_tile_entries


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture
def X(rng):
    return rng.uniform(0.1, 1.9, size=(6, 4))


def test_serial_mode_matches_sequential_kernel(ansatz, X):
    """max_workers <= 1 runs in-process and must equal the reference kernel."""
    reference = QuantumKernel(ansatz).gram_matrix(X).matrix
    computer = MultiprocessGramComputer(ansatz, max_workers=1)
    K = computer.compute(X)
    assert np.allclose(K, reference, atol=1e-10)
    assert np.allclose(np.diag(K), 1.0)


def test_process_pool_matches_sequential_kernel(ansatz, X):
    """With a real process pool the result is identical (slower, but exact)."""
    reference = QuantumKernel(ansatz).gram_matrix(X).matrix
    computer = MultiprocessGramComputer(ansatz, max_workers=2, num_blocks=2)
    K = computer.compute(X)
    assert np.allclose(K, reference, atol=1e-10)


def test_worker_function_computes_tile_entries(ansatz, X):
    entries = compute_tile_entries(
        X,
        ansatz.to_dict(),
        SimulationConfig().to_dict(),
        row_indices=(0, 1),
        col_indices=(2, 3),
        symmetric_diagonal=False,
    )
    assert len(entries) == 4
    reference = QuantumKernel(ansatz).gram_matrix(X).matrix
    for (i, j, value) in entries:
        assert value == pytest.approx(reference[i, j], abs=1e-10)

    diag_entries = compute_tile_entries(
        X,
        ansatz.to_dict(),
        SimulationConfig().to_dict(),
        row_indices=(0, 1, 2),
        col_indices=(0, 1, 2),
        symmetric_diagonal=True,
    )
    assert len(diag_entries) == 3
    assert all(i < j for (i, j, _v) in diag_entries)


def test_validation(ansatz, X, rng):
    computer = MultiprocessGramComputer(ansatz, max_workers=1)
    with pytest.raises(ParallelError):
        computer.compute(X[:1])  # too few rows
    with pytest.raises(ParallelError):
        computer.compute(rng.uniform(size=(4, 7)))  # wrong feature count
    with pytest.raises(ParallelError):
        MultiprocessGramComputer(ansatz, max_workers=-1).compute(X)
