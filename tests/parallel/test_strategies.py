"""Unit tests for the no-messaging and round-robin distribution strategies.

A deterministic toy worker (kernel value derived from the indices, unit
costs) lets the tests verify exact coverage, duplicate-simulation counts and
timing aggregation without running any MPS simulation; a final test wires the
real quantum-kernel worker in and compares against the sequential reference.
"""

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.exceptions import ParallelError
from repro.kernels import QuantumKernel
from repro.parallel import (
    KernelWorker,
    NoMessagingStrategy,
    RoundRobinStrategy,
    compute_gram_distributed,
)


class ToyWorker:
    """Worker whose 'states' are the data indices themselves."""

    def __init__(self):
        self.simulation_calls = []
        self.inner_product_calls = []

    def simulate(self, index):
        self.simulation_calls.append(index)
        return index, 1.0  # unit simulation time

    def inner_product(self, a, b):
        self.inner_product_calls.append((a, b))
        value = 1.0 / (1.0 + abs(a - b))
        return value, 0.1  # constant inner-product time

    @staticmethod
    def state_nbytes(state):
        return 64


def _expected_matrix(n):
    K = np.eye(n)
    for i in range(n):
        for j in range(n):
            if i != j:
                K[i, j] = 1.0 / (1.0 + abs(i - j))
    return K


@pytest.mark.parametrize("strategy_cls", [NoMessagingStrategy, RoundRobinStrategy])
@pytest.mark.parametrize("num_processes,n", [(1, 5), (2, 8), (3, 9), (4, 10), (5, 7)])
def test_strategies_produce_correct_matrix(strategy_cls, num_processes, n):
    worker = ToyWorker()
    result = strategy_cls(num_processes).compute(worker, n)
    assert np.allclose(result.matrix, _expected_matrix(n))
    assert result.num_processes == num_processes
    assert result.total_inner_products == n * (n - 1) // 2
    assert result.strategy in ("no-messaging", "round-robin")


def test_round_robin_simulates_each_circuit_exactly_once():
    worker = ToyWorker()
    RoundRobinStrategy(4).compute(worker, 12)
    assert sorted(worker.simulation_calls) == list(range(12))


def test_no_messaging_resimulates_shared_circuits():
    worker = ToyWorker()
    result = NoMessagingStrategy(4).compute(worker, 12)
    # With multiple tiles per row/column some circuits are simulated on
    # several processes: strictly more total simulations than data points.
    assert result.total_simulations > 12
    # ... but no communication at all.
    assert result.communication_wall_s == 0.0
    assert all(p.bytes_sent == 0 for p in result.per_process)


def test_round_robin_communicates_only_with_multiple_processes():
    single = RoundRobinStrategy(1).compute(ToyWorker(), 6)
    assert single.communication_wall_s == 0.0
    multi = RoundRobinStrategy(3).compute(ToyWorker(), 9)
    assert multi.communication_wall_s > 0.0
    assert any(p.bytes_sent > 0 for p in multi.per_process)


def test_wall_clock_is_max_over_processes():
    worker = ToyWorker()
    result = RoundRobinStrategy(2).compute(worker, 8)
    assert result.simulation_wall_s == pytest.approx(
        max(p.simulation_s for p in result.per_process)
    )
    assert result.total_wall_s == pytest.approx(
        result.simulation_wall_s
        + result.inner_product_wall_s
        + result.communication_wall_s
    )
    breakdown = result.breakdown()
    assert breakdown["strategy"] == "round-robin"
    assert breakdown["total_wall_s"] == pytest.approx(result.total_wall_s)


def test_round_robin_parallel_scaling_of_simulation_phase():
    """Doubling data and processes keeps simulation wall-clock constant
    (the paper's Fig. 8 observation), with unit per-circuit cost."""
    small = RoundRobinStrategy(2).compute(ToyWorker(), 8)
    large = RoundRobinStrategy(4).compute(ToyWorker(), 16)
    assert small.simulation_wall_s == pytest.approx(large.simulation_wall_s)
    # The inner-product wall-clock roughly doubles (quadratic work, linear
    # process growth).
    ratio = large.inner_product_wall_s / small.inner_product_wall_s
    assert 1.5 < ratio < 2.6


def test_more_processes_than_points_is_handled():
    result = RoundRobinStrategy(8).compute(ToyWorker(), 4)
    assert np.allclose(result.matrix, _expected_matrix(4))
    # Surplus ranks stayed idle.
    idle = [p for p in result.per_process if p.num_simulations == 0]
    assert len(idle) == 4


def test_invalid_configurations():
    with pytest.raises(ParallelError):
        NoMessagingStrategy(0)
    with pytest.raises(ParallelError):
        RoundRobinStrategy(2).compute(ToyWorker(), 1)
    with pytest.raises(ParallelError):
        NoMessagingStrategy(2).compute(ToyWorker(), 0)


def test_distributed_matches_sequential_quantum_kernel(rng):
    """End-to-end: the distributed Gram matrix equals the sequential one."""
    ansatz = AnsatzConfig(num_features=3, interaction_distance=1, layers=1, gamma=0.7)
    X = rng.uniform(0.1, 1.9, size=(6, 3))

    sequential = QuantumKernel(ansatz).gram_matrix(X).matrix
    for strategy in ("round-robin", "no-messaging"):
        distributed = compute_gram_distributed(
            X, ansatz, num_processes=3, strategy=strategy
        )
        assert np.allclose(distributed.matrix, sequential, atol=1e-10)


def test_compute_gram_distributed_validation(rng):
    ansatz = AnsatzConfig(num_features=3)
    X = rng.uniform(0.1, 1.9, size=(4, 3))
    with pytest.raises(ParallelError):
        compute_gram_distributed(X, ansatz, 2, strategy="unknown")
    with pytest.raises(ParallelError):
        KernelWorker(QuantumKernel(ansatz), X, time_source="bogus")
    with pytest.raises(ParallelError):
        KernelWorker(QuantumKernel(ansatz), np.ones((3, 5)))
    worker = KernelWorker(QuantumKernel(ansatz), X, time_source="modelled")
    with pytest.raises(ParallelError):
        worker.simulate(10)
    state, seconds = worker.simulate(0)
    assert seconds > 0
    assert worker.state_nbytes(state) == state.memory_bytes
