"""Unit tests for the declarative pairwise work plans."""

import numpy as np
import pytest

from repro.engine import CrossGramPlan, KernelRowPlan, PairJob, SymmetricGramPlan
from repro.exceptions import KernelError


def test_symmetric_plan_enumerates_upper_triangle_once():
    plan = SymmetricGramPlan(4)
    jobs = plan.job_list()
    assert plan.shape == (4, 4)
    assert plan.num_pairs == 6
    assert len(jobs) == 6
    assert all(job.mirror for job in jobs)
    assert all(job.left == job.row and job.right == job.col for job in jobs)
    assert sorted((job.row, job.col) for job in jobs) == [
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
    ]


def test_symmetric_plan_initial_matrix_is_identity():
    K = SymmetricGramPlan(3).initial_matrix()
    assert np.array_equal(K, np.eye(3))


def test_symmetric_plan_single_point_has_no_jobs():
    plan = SymmetricGramPlan(1)
    assert plan.num_pairs == 0
    assert plan.job_list() == []
    assert np.array_equal(plan.initial_matrix(), np.eye(1))


def test_cross_plan_enumerates_every_pair():
    plan = CrossGramPlan(2, 3)
    jobs = plan.job_list()
    assert plan.shape == (2, 3)
    assert plan.num_pairs == 6
    assert len(jobs) == 6
    assert not any(job.mirror for job in jobs)
    assert {(job.row, job.col) for job in jobs} == {
        (i, j) for i in range(2) for j in range(3)
    }
    assert np.array_equal(plan.initial_matrix(), np.zeros((2, 3)))


def test_kernel_row_plan_is_a_cross_plan_over_train_states():
    plan = KernelRowPlan(5, num_rows=2)
    assert isinstance(plan, CrossGramPlan)
    assert plan.shape == (2, 5)
    assert plan.num_train == 5
    assert plan.num_pairs == 10


def test_plan_validation():
    with pytest.raises(KernelError):
        SymmetricGramPlan(0)
    with pytest.raises(KernelError):
        CrossGramPlan(0, 3)
    with pytest.raises(KernelError):
        CrossGramPlan(3, 0)


def test_pair_job_is_hashable_value_object():
    a = PairJob(left=0, right=1, row=0, col=1, mirror=True)
    b = PairJob(left=0, right=1, row=0, col=1, mirror=True)
    assert a == b
    assert hash(a) == hash(b)
