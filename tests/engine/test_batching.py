"""Unit tests for the batched transfer-matrix overlap path."""

import numpy as np
import pytest

from repro.backends import CpuBackend
from repro.circuits import build_feature_map_circuit
from repro.config import AnsatzConfig
from repro.engine import batched_overlaps, group_pairs_by_shape, pair_shape_signature
from repro.exceptions import SimulationError
from repro.mps import MPS


@pytest.fixture
def encoded_states(rng):
    ansatz = AnsatzConfig(num_features=4, interaction_distance=2, layers=2, gamma=0.8)
    backend = CpuBackend()
    X = rng.uniform(0.1, 1.9, size=(5, 4))
    return [backend.simulate(build_feature_map_circuit(row, ansatz)).state for row in X]


def test_batched_overlaps_match_sequential_reference(encoded_states):
    pairs = [
        (encoded_states[i], encoded_states[j])
        for i in range(len(encoded_states))
        for j in range(i + 1, len(encoded_states))
    ]
    batched = batched_overlaps(pairs)
    reference = np.array([bra.inner_product(ket) for bra, ket in pairs])
    assert batched.shape == (len(pairs),)
    assert np.allclose(batched, reference, atol=1e-13)


def test_mixed_shape_pairs_fall_back_correctly(encoded_states):
    # A product state has different per-site shapes than the encoded states,
    # so its pairs form singleton groups that use the sequential fallback.
    plus = MPS.plus_state(4)
    pairs = [
        (encoded_states[0], encoded_states[1]),
        (plus, encoded_states[2]),
        (encoded_states[3], encoded_states[4]),
        (encoded_states[2], plus),
    ]
    batched = batched_overlaps(pairs)
    reference = np.array([bra.inner_product(ket) for bra, ket in pairs])
    assert np.allclose(batched, reference, atol=1e-13)


def test_grouping_by_shape_signature(encoded_states):
    plus_pair = (MPS.plus_state(4), MPS.plus_state(4))
    pairs = [
        (encoded_states[0], encoded_states[1]),
        plus_pair,
        (encoded_states[2], encoded_states[3]),
    ]
    groups = group_pairs_by_shape(pairs)
    same_sig = pair_shape_signature(*pairs[0])
    assert groups[same_sig] == [0, 2]
    assert groups[pair_shape_signature(*plus_pair)] == [1]


def test_empty_input_returns_empty_array():
    values = batched_overlaps([])
    assert values.shape == (0,)
    assert values.dtype == np.complex128


def test_mismatched_qubit_counts_raise():
    with pytest.raises(SimulationError):
        batched_overlaps([(MPS.plus_state(3), MPS.plus_state(4))])


def test_backend_batched_api_matches_single_pair_api(encoded_states):
    backend = CpuBackend()
    pairs = [
        (encoded_states[0], encoded_states[1]),
        (encoded_states[1], encoded_states[2]),
        (encoded_states[0], encoded_states[2]),
    ]
    backend.reset_counters()
    singles = [backend.inner_product(bra, ket) for bra, ket in pairs]
    single_summary = backend.timing_summary()

    backend.reset_counters()
    batch = backend.inner_product_batch(pairs)
    batch_summary = backend.timing_summary()

    assert np.allclose(batch.values, [r.value for r in singles], atol=1e-13)
    assert batch.num_pairs == len(pairs)
    # Counters advance identically on both paths (same modelled seconds,
    # same inner-product count); only the measured wall time may differ.
    assert batch_summary["num_inner_products"] == single_summary["num_inner_products"]
    assert batch_summary["modelled_inner_product_time_s"] == pytest.approx(
        single_summary["modelled_inner_product_time_s"]
    )
    assert batch.max_bond_dimension == max(r.bond_dimension for r in singles)
