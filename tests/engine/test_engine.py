"""Unit tests for the KernelEngine facade: executors, caching, reuse."""

import numpy as np
import pytest

from repro.backends import CpuBackend
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.engine import (
    CrossGramPlan,
    EngineConfig,
    KernelEngine,
    StateStore,
    SymmetricGramPlan,
)
from repro.exceptions import EngineError, KernelError


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=4, interaction_distance=2, layers=2, gamma=0.8)


@pytest.fixture
def X(rng):
    return rng.uniform(0.1, 1.9, size=(6, 4))


def _reference_gram(ansatz, X):
    """Hand-rolled sequential double loop, bypassing all engine machinery."""
    from repro.circuits import build_feature_map_circuit

    backend = CpuBackend()
    states = [
        backend.simulate(build_feature_map_circuit(row, ansatz)).state for row in X
    ]
    n = len(states)
    K = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            K[i, j] = K[j, i] = abs(states[i].inner_product(states[j])) ** 2
    return K, states


def test_engine_gram_matches_reference_exactly(ansatz, X):
    K_ref, _ = _reference_gram(ansatz, X)
    result = KernelEngine(ansatz).gram(X)
    assert np.allclose(result.matrix, K_ref, atol=1e-12)
    assert result.num_simulations == X.shape[0]
    assert result.num_inner_products == X.shape[0] * (X.shape[0] - 1) // 2
    assert len(result.states) == X.shape[0]


def test_all_executors_agree(ansatz, X):
    K_ref, _ = _reference_gram(ansatz, X)
    for config in (
        EngineConfig(executor="sequential", batch_size=4),
        EngineConfig(executor="tiled", num_blocks=3),
        EngineConfig(executor="multiprocess", max_workers=1),
    ):
        K = KernelEngine(ansatz, config=config).gram(X).matrix
        assert np.allclose(K, K_ref, atol=1e-12), config.executor


def test_cross_plan_matches_gram_block(ansatz, X):
    engine = KernelEngine(ansatz)
    train_result = engine.gram(X[:4])
    cross = engine.cross(X[4:], train_result.states)
    full = engine.gram(X).matrix
    assert cross.matrix.shape == (2, 4)
    assert np.allclose(cross.matrix, full[4:, :4], atol=1e-12)


def test_execute_plan_validates_state_counts(ansatz, X):
    engine = KernelEngine(ansatz)
    states = engine.encode_rows(X[:3])
    with pytest.raises(EngineError):
        engine.execute_plan(SymmetricGramPlan(5), states)
    with pytest.raises(EngineError):
        engine.execute_plan(CrossGramPlan(2, 5), states[:2], states)
    with pytest.raises(KernelError):
        engine.cross(X[:1], [])


def test_engine_config_validation():
    with pytest.raises(EngineError):
        EngineConfig(executor="quantum-teleport")
    with pytest.raises(EngineError):
        EngineConfig(batch_size=0)


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
def test_cached_engine_never_resimulates_known_rows(ansatz, X):
    engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    first = engine.gram(X)
    assert first.num_simulations == X.shape[0]
    assert first.cache_misses == X.shape[0]
    assert first.cache_hits == 0

    second = engine.gram(X)
    assert second.num_simulations == 0
    assert second.cache_hits == X.shape[0]
    assert np.allclose(first.matrix, second.matrix, atol=1e-15)


def test_shared_store_across_engines(ansatz, X):
    store = StateStore()
    engine_a = KernelEngine(ansatz, store=store)
    engine_b = KernelEngine(ansatz, store=store)
    engine_a.gram(X)
    result = engine_b.gram(X)
    assert result.num_simulations == 0
    assert result.cache_hits == X.shape[0]


def test_cache_respects_ansatz_changes(X, ansatz):
    store = StateStore()
    other = AnsatzConfig(num_features=4, interaction_distance=2, layers=3, gamma=0.8)
    KernelEngine(ansatz, store=store).gram(X)
    result = KernelEngine(other, store=store).gram(X)
    # Different ansatz -> different keys -> all misses, all re-simulated.
    assert result.num_simulations == X.shape[0]
    assert result.cache_hits == 0


# ----------------------------------------------------------------------
# Train-then-infer reuse (the acceptance scenario)
# ----------------------------------------------------------------------
def test_train_then_infer_reuses_cached_states(small_dataset):
    from repro.data import select_features
    from repro.svm import train_test_split

    X = select_features(small_dataset.features, 5)
    X_train, X_test, y_train, y_test = train_test_split(
        X, small_dataset.labels, test_fraction=0.25, seed=4
    )
    ansatz = AnsatzConfig(num_features=5, interaction_distance=1, layers=2, gamma=0.5)

    cached = QuantumKernelInferenceEngine(ansatz, C=2.0, use_cache=True)
    cached.fit(X_train, y_train)
    baseline = QuantumKernelInferenceEngine(ansatz, C=2.0, use_cache=False)
    baseline.fit(X_train, y_train)

    # Classify points the engine has already encoded (training rows).
    repeat = X_train[:3]
    cached_result = cached.kernel_rows(repeat)
    baseline_result = baseline.kernel_rows(repeat)

    assert cached_result.cache_hits >= 1
    assert cached_result.num_simulations == 0
    assert cached_result.num_simulations < baseline_result.num_simulations
    assert np.allclose(
        cached_result.kernel_rows, baseline_result.kernel_rows, atol=1e-12
    )
    assert np.array_equal(cached_result.predictions, baseline_result.predictions)

    stats = cached.cache_stats()
    assert stats is not None and stats.hits >= 3
    assert baseline.cache_stats() is None


def test_tiled_executor_covers_cross_plans(ansatz, X, rng):
    """The tiled job stream over a rectangular plan matches sequential."""
    X_rows = rng.uniform(0.1, 1.9, size=(5, 4))
    seq = KernelEngine(ansatz)
    train_states = seq.encode_rows(X)
    K_seq = seq.cross(X_rows, train_states).matrix

    tiled = KernelEngine(ansatz, config=EngineConfig(executor="tiled", num_blocks=2))
    K_tiled = tiled.cross(X_rows, train_states).matrix
    assert np.allclose(K_tiled, K_seq, atol=1e-12)

    # kernel-row (serving) plans take the same tiled path
    K_rows = tiled.kernel_rows(X_rows, train_states).matrix
    assert np.allclose(K_rows, K_seq, atol=1e-12)
