"""Unit tests for the content-addressed MPS state store."""

import numpy as np
import pytest

from repro.config import AnsatzConfig, SimulationConfig
from repro.engine import (
    StateStore,
    ansatz_fingerprint,
    deserialize_states,
    serialize_states,
    simulation_fingerprint,
    state_key,
)
from repro.exceptions import EngineError
from repro.mps import MPS


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=4, interaction_distance=1, layers=2, gamma=0.5)


def _product_state(num_qubits: int) -> MPS:
    return MPS.plus_state(num_qubits)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_identical_feature_row_gives_identical_key(ansatz):
    fp_a = ansatz_fingerprint(ansatz)
    fp_s = simulation_fingerprint(SimulationConfig())
    row = np.array([0.1, 0.2, 0.3, 0.4])
    # Same values from a different array object / layout still collide.
    row_copy = np.asarray(list(row))
    assert state_key(row, fp_a, fp_s) == state_key(row_copy, fp_a, fp_s)


def test_key_changes_with_data_ansatz_and_truncation(ansatz):
    fp_a = ansatz_fingerprint(ansatz)
    fp_s = simulation_fingerprint(SimulationConfig())
    row = np.array([0.1, 0.2, 0.3, 0.4])
    base = state_key(row, fp_a, fp_s)

    assert state_key(row + 1e-9, fp_a, fp_s) != base

    other_ansatz = AnsatzConfig(
        num_features=4, interaction_distance=1, layers=3, gamma=0.5
    )
    assert state_key(row, ansatz_fingerprint(other_ansatz), fp_s) != base

    other_sim = simulation_fingerprint(SimulationConfig(truncation_cutoff=1e-8))
    assert state_key(row, fp_a, other_sim) != base


# ----------------------------------------------------------------------
# Hit / miss accounting
# ----------------------------------------------------------------------
def test_store_hit_and_miss_statistics():
    store = StateStore()
    state = _product_state(3)
    assert store.get("k1") is None  # miss
    store.put("k1", state)
    assert store.get("k1") is state  # hit
    stats = store.stats()
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.lookups == 2
    assert stats.hit_rate == pytest.approx(0.5)
    assert stats.num_entries == 1
    assert stats.bytes_in_use == state.memory_bytes


def test_store_len_and_contains():
    store = StateStore()
    store.put("a", _product_state(2))
    assert len(store) == 1
    assert "a" in store and "b" not in store
    store.clear()
    assert len(store) == 0
    assert store.bytes_in_use == 0


# ----------------------------------------------------------------------
# LRU eviction under a byte budget
# ----------------------------------------------------------------------
def test_lru_eviction_under_byte_budget():
    one_state_bytes = _product_state(3).memory_bytes
    store = StateStore(max_bytes=2 * one_state_bytes)
    store.put("a", _product_state(3))
    store.put("b", _product_state(3))
    assert len(store) == 2

    # Touch "a" so "b" becomes least recently used, then overflow.
    assert store.get("a") is not None
    store.put("c", _product_state(3))
    assert len(store) == 2
    assert "a" in store and "c" in store
    assert "b" not in store
    assert store.stats().evictions == 1
    assert store.bytes_in_use <= 2 * one_state_bytes


def test_state_larger_than_budget_is_not_retained():
    small = _product_state(2)
    store = StateStore(max_bytes=small.memory_bytes)
    store.put("big", _product_state(8))  # bigger than the whole budget
    assert len(store) == 0
    store.put("small", small)
    assert "small" in store


def test_put_refreshes_existing_entry_without_double_counting():
    store = StateStore()
    store.put("k", _product_state(3))
    store.put("k", _product_state(3))
    assert len(store) == 1
    assert store.bytes_in_use == _product_state(3).memory_bytes


def test_negative_budget_rejected():
    with pytest.raises(EngineError):
        StateStore(max_bytes=-1)


# ----------------------------------------------------------------------
# Serialisation (cross-process attach)
# ----------------------------------------------------------------------
def test_serialize_states_round_trip_is_exact():
    states = [_product_state(n) for n in (2, 3, 5)]
    restored = deserialize_states(serialize_states(states))
    assert len(restored) == 3
    for original, copy in zip(states, restored):
        assert copy.num_qubits == original.num_qubits
        for a, b in zip(original.tensors, copy.tensors):
            assert np.array_equal(a, b)


def test_deserialize_rejects_non_state_payload():
    import pickle

    with pytest.raises(EngineError):
        deserialize_states(pickle.dumps(["not", "states"]))


def test_dump_and_load_entries_between_stores():
    source = StateStore()
    source.put("a", _product_state(2))
    source.put("b", _product_state(3))
    payload = source.dump_entries()

    target = StateStore()
    assert target.load_entries(payload) == 2
    assert "a" in target and "b" in target
    assert target.bytes_in_use == source.bytes_in_use


def test_dump_entries_subset_and_unknown_key():
    store = StateStore()
    store.put("a", _product_state(2))
    store.put("b", _product_state(3))
    partial = StateStore()
    partial.load_entries(store.dump_entries(keys=["b"]))
    assert "b" in partial and "a" not in partial
    with pytest.raises(EngineError):
        store.dump_entries(keys=["missing"])


def test_loaded_entries_respect_byte_budget():
    source = StateStore()
    source.put("a", _product_state(2))
    source.put("b", _product_state(2))
    one_state_bytes = _product_state(2).memory_bytes
    target = StateStore(max_bytes=one_state_bytes)
    target.load_entries(source.dump_entries())
    assert len(target) == 1  # LRU applied on attach


def test_load_entries_skips_oversized_entries_without_crashing():
    # Regression: an entry whose tensors alone exceed the budget must be
    # skipped (it could never be retained) and must not inflate the count.
    source = StateStore()
    source.put("small", _product_state(2))
    source.put("huge", _product_state(6))
    small_bytes = _product_state(2).memory_bytes
    assert _product_state(6).memory_bytes > small_bytes

    target = StateStore(max_bytes=small_bytes)
    accepted = target.load_entries(source.dump_entries())
    assert accepted == 1
    assert "small" in target and "huge" not in target
    assert target.bytes_in_use == small_bytes
    # The skip is not an eviction: nothing was ever inserted.
    assert target.stats().evictions == 0


def test_load_entries_validates_payload_shape():
    import pickle

    store = StateStore()
    bad_payloads = [
        pickle.dumps({"a": _product_state(2)}),  # dict, not a list of pairs
        pickle.dumps([("a", _product_state(2), "extra")]),  # 3-tuples
        pickle.dumps([("a", "not a state")]),  # value is not an MPS
        pickle.dumps([(7, _product_state(2))]),  # key is not a string
        b"definitely not a pickle",
    ]
    for payload in bad_payloads:
        with pytest.raises(EngineError):
            store.load_entries(payload)
        assert len(store) == 0  # never half-loaded


def test_keys_and_entry_sizes_follow_lru_order():
    store = StateStore()
    store.put("a", _product_state(2))
    store.put("b", _product_state(3))
    assert store.keys() == ["a", "b"]
    store.get("a")  # refresh: "a" becomes most recently used
    assert store.keys() == ["b", "a"]
    sizes = store.entry_sizes()
    assert set(sizes) == {"a", "b"}
    assert sizes["a"] == _product_state(2).memory_bytes
    assert sum(sizes.values()) == store.bytes_in_use
