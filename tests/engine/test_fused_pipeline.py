"""Tests for the fused encode-to-overlap pipeline and the cross block sweep.

The fused pipeline is a *scheduling* change: a cold serving flush runs the
stacked encode of its store misses straight into the landmark block sweep,
writing the state store only after the kernel block exists.  Every test here
pins the contract that makes that safe -- byte-identical kernel values, the
same cache hit/miss deltas and the same store occupancy as the unfused path
-- plus the one thing that *should* differ: no store write sits on the
critical path between encode and overlap.
"""

import numpy as np
import pytest

from repro.backends import (
    CPU_COST_MODEL,
    CpuBackend,
    DeviceCostModel,
    SimulatedGpuBackend,
)
from repro.config import AnsatzConfig, SimulationConfig
from repro.engine import (
    EngineConfig,
    FusedEncodeOverlapPlan,
    KernelEngine,
    KernelRowPlan,
    StackedStateBlock,
    StateStore,
)

ANSATZ = AnsatzConfig(num_features=5, interaction_distance=2, layers=1, gamma=0.8)


class ProbeStore(StateStore):
    """State store recording every get/put into a shared event list."""

    def __init__(self, events):
        super().__init__()
        self.events = events

    def get(self, key):
        state = super().get(key)
        self.events.append(("get", state is not None))
        return state

    def put(self, key, state):
        self.events.append(("put",))
        super().put(key, state)


def _engine(fused, store=None, use_cache=True, cross_backend=None, **cfg):
    config = EngineConfig(use_cache=use_cache, fused_pipeline=fused, **cfg)
    return KernelEngine(
        ANSATZ,
        backend=CpuBackend(SimulationConfig()),
        config=config,
        store=store,
        cross_backend=cross_backend,
    )


@pytest.fixture(scope="module")
def train_parts():
    rng = np.random.default_rng(5)
    X_train = rng.uniform(0.05, 1.95, size=(7, 5))
    engine = _engine(fused=False, use_cache=False)
    states = engine.encode_rows(X_train)
    return states, StackedStateBlock(states)


def _spy_block_sweep(engine, events):
    """Record a ``("block",)`` event whenever the overlap sweep runs."""
    original = engine.backend.inner_product_block

    def spy(bras, block):
        events.append(("block",))
        return original(bras, block)

    engine.backend.inner_product_block = spy


# ----------------------------------------------------------------------
# Value + accounting equivalence across cache states
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch_rows", [1, 2, 5, 9])
def test_fused_rows_byte_identical_cold(train_parts, batch_rows):
    states, block = train_parts
    rng = np.random.default_rng(batch_rows)
    X = rng.uniform(0.05, 1.95, size=(batch_rows, 5))
    r_unfused = _engine(fused=False).kernel_rows(X, states, block=block)
    r_fused = _engine(fused=True).kernel_rows(X, states, block=block)
    assert r_fused.matrix.tobytes() == r_unfused.matrix.tobytes()
    assert r_fused.matrix.shape == (batch_rows, len(states))
    assert (r_fused.cache_hits, r_fused.cache_misses) == (
        r_unfused.cache_hits,
        r_unfused.cache_misses,
    )
    assert r_fused.num_simulations == r_unfused.num_simulations


@pytest.mark.parametrize("warm_rows", [0, 2, 6])
def test_fused_rows_byte_identical_with_warm_store(train_parts, warm_rows):
    states, block = train_parts
    rng = np.random.default_rng(17)
    X = rng.uniform(0.05, 1.95, size=(6, 5))
    results = []
    for fused in (False, True):
        engine = _engine(fused=fused)
        if warm_rows:
            engine.encode_rows(X[:warm_rows])
        results.append(engine.kernel_rows(X, states, block=block))
    unfused, fused_r = results
    assert fused_r.matrix.tobytes() == unfused.matrix.tobytes()
    assert (fused_r.cache_hits, fused_r.cache_misses) == (
        unfused.cache_hits,
        unfused.cache_misses,
    )
    assert fused_r.cache_hits >= warm_rows


def test_fused_rows_with_intra_batch_duplicates(train_parts):
    states, block = train_parts
    rng = np.random.default_rng(29)
    X = rng.uniform(0.05, 1.95, size=(6, 5))
    X[3] = X[0]
    X[5] = X[0]
    r_unfused = _engine(fused=False).kernel_rows(X, states, block=block)
    r_fused = _engine(fused=True).kernel_rows(X, states, block=block)
    assert r_fused.matrix.tobytes() == r_unfused.matrix.tobytes()
    assert np.array_equal(r_fused.matrix[3], r_fused.matrix[0])
    assert np.array_equal(r_fused.matrix[5], r_fused.matrix[0])
    # Duplicates resolve to store hits in both schedules.
    assert (r_fused.cache_hits, r_fused.cache_misses) == (
        r_unfused.cache_hits,
        r_unfused.cache_misses,
    )
    # Only the 4 distinct rows were simulated.
    assert r_fused.num_simulations == 4


def test_fused_rows_without_a_store(train_parts):
    states, block = train_parts
    rng = np.random.default_rng(31)
    X = rng.uniform(0.05, 1.95, size=(4, 5))
    r_unfused = _engine(fused=False, use_cache=False).kernel_rows(
        X, states, block=block
    )
    r_fused = _engine(fused=True, use_cache=False).kernel_rows(X, states, block=block)
    assert r_fused.matrix.tobytes() == r_unfused.matrix.tobytes()
    assert r_fused.cache_hits == r_fused.cache_misses == 0


def test_fused_leaves_identical_store_occupancy(train_parts):
    states, block = train_parts
    rng = np.random.default_rng(37)
    X = rng.uniform(0.05, 1.95, size=(5, 5))
    stores = []
    for fused in (False, True):
        store = StateStore()
        _engine(fused=fused, store=store).kernel_rows(X, states, block=block)
        stores.append(store)
    unfused_store, fused_store = stores
    assert unfused_store.stats().num_entries == fused_store.stats().num_entries
    assert unfused_store.stats().bytes_in_use == fused_store.stats().bytes_in_use


def test_fused_per_point_encoding_fallback(train_parts):
    """With batch_encoding off the fused path encodes misses point by point
    -- still fused with the sweep, still byte-identical."""
    states, block = train_parts
    rng = np.random.default_rng(41)
    X = rng.uniform(0.05, 1.95, size=(4, 5))
    r_unfused = _engine(fused=False, batch_encoding=False).kernel_rows(
        X, states, block=block
    )
    r_fused = _engine(fused=True, batch_encoding=False).kernel_rows(
        X, states, block=block
    )
    assert r_fused.matrix.tobytes() == r_unfused.matrix.tobytes()


# ----------------------------------------------------------------------
# The scheduling difference itself
# ----------------------------------------------------------------------
def test_unfused_store_writes_sit_before_the_sweep(train_parts):
    states, block = train_parts
    X = np.random.default_rng(43).uniform(0.05, 1.95, size=(5, 5))
    events = []
    engine = _engine(fused=False, store=ProbeStore(events))
    _spy_block_sweep(engine, events)
    engine.kernel_rows(X, states, block=block)
    sweep_at = events.index(("block",))
    assert sum(1 for e in events[:sweep_at] if e == ("put",)) == 5


def test_fused_store_writes_are_off_the_critical_path(train_parts):
    states, block = train_parts
    X = np.random.default_rng(43).uniform(0.05, 1.95, size=(5, 5))
    X[4] = X[1]  # one intra-batch duplicate rides along
    events = []
    engine = _engine(fused=True, store=ProbeStore(events))
    _spy_block_sweep(engine, events)
    result = engine.kernel_rows(X, states, block=block)
    sweep_at = events.index(("block",))
    before, after = events[:sweep_at], events[sweep_at + 1 :]
    # Critical path: only the initial store lookups -- zero writes.
    assert all(e[0] == "get" for e in before)
    assert sum(1 for e in before if e == ("put",)) == 0
    # The same writes (one per distinct miss) and the duplicate's hit happen
    # after the kernel block exists.
    assert sum(1 for e in after if e == ("put",)) == 4
    assert ("get", True) in after
    assert (result.cache_hits, result.cache_misses) == (1, 4)


def test_fused_plan_jobs_match_the_row_plan():
    fused = FusedEncodeOverlapPlan(6, num_rows=3)
    plain = KernelRowPlan(6, num_rows=3)
    assert fused.shape == plain.shape
    assert fused.job_list() == plain.job_list()
    assert fused.num_pairs == plain.num_pairs


# ----------------------------------------------------------------------
# Cross block sweep + modelled dispatch
# ----------------------------------------------------------------------
def test_cross_block_sweep_byte_identical_to_pair_path(train_parts):
    states, _ = train_parts
    X = np.random.default_rng(47).uniform(0.05, 1.95, size=(6, 5))
    pairs = _engine(fused=False, cross_block_sweep=False).cross(X, states)
    sweep = _engine(fused=False, cross_block_sweep=True).cross(X, states)
    assert sweep.matrix.tobytes() == pairs.matrix.tobytes()
    assert sweep.num_inner_products == pairs.num_inner_products
    assert sweep.modelled_batched_inner_product_time_s == pytest.approx(
        pairs.modelled_batched_inner_product_time_s
    )


def test_tiled_executor_keeps_its_job_stream(train_parts):
    """cross_block_sweep only applies to the sequential executor; tiled stays
    on the chunked pair path and agrees bit for bit."""
    states, _ = train_parts
    X = np.random.default_rng(53).uniform(0.05, 1.95, size=(4, 5))
    sequential = _engine(fused=False).cross(X, states)
    tiled = _engine(fused=False, executor="tiled", num_blocks=2).cross(X, states)
    assert tiled.matrix.tobytes() == sequential.matrix.tobytes()


def test_dispatch_stays_on_cpu_at_small_chi(train_parts):
    """With the real device models, a small-chi block never clears the GPU's
    launch overhead: the sweep stays on the primary backend."""
    states, _ = train_parts
    gpu = SimulatedGpuBackend(SimulationConfig())
    engine = _engine(fused=False, cross_backend=gpu)
    X = np.random.default_rng(59).uniform(0.05, 1.95, size=(4, 5))
    reference = _engine(fused=False).cross(X, states)
    routed = engine.cross(X, states)
    assert routed.matrix.tobytes() == reference.matrix.tobytes()
    assert gpu.num_inner_products == 0


def test_dispatch_moves_to_the_cheaper_modelled_device(train_parts):
    """A cross backend whose model predicts a cheaper stacked sweep receives
    the block -- and, both backends running identical numerics, the kernel
    does not move a bit."""
    states, _ = train_parts
    fast_model = DeviceCostModel(
        "always-cheaper",
        gate_overhead_s=CPU_COST_MODEL.gate_overhead_s / 1e6,
        svd_overhead_s=CPU_COST_MODEL.svd_overhead_s / 1e6,
        contraction_gflops=CPU_COST_MODEL.contraction_gflops * 1e6,
        svd_gflops=CPU_COST_MODEL.svd_gflops * 1e6,
    )
    fast = CpuBackend(SimulationConfig(), cost_model=fast_model)
    engine = _engine(fused=False, cross_backend=fast)
    X = np.random.default_rng(61).uniform(0.05, 1.95, size=(4, 5))
    reference = _engine(fused=False).cross(X, states)
    routed = engine.cross(X, states)
    assert routed.matrix.tobytes() == reference.matrix.tobytes()
    assert fast.num_inner_products == 4 * len(states)
    # The dispatched backend's accounting is merged into the result.
    assert routed.num_inner_products == reference.num_inner_products


def test_result_carries_the_stacked_launch_model(train_parts):
    states, block = train_parts
    X = np.random.default_rng(67).uniform(0.05, 1.95, size=(5, 5))
    result = _engine(fused=True).kernel_rows(X, states, block=block)
    assert result.modelled_batched_simulation_time_s > 0.0
    assert result.modelled_batched_inner_product_time_s > 0.0
    # Stacking can only amortise launches, never add work.
    assert result.modelled_batched_total_time_s <= result.modelled_total_time_s
    assert result.modelled_batched_total_time_s == pytest.approx(
        result.modelled_batched_simulation_time_s
        + result.modelled_batched_inner_product_time_s
    )
