"""Unit tests for the streaming Nystrom classification service."""

import numpy as np
import pytest

from repro.approx import (
    LinearSVC,
    NystroemConfig,
    NystroemFeatureMap,
    StreamingNystroemClassifier,
)
from repro.config import AnsatzConfig
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like
from repro.engine import EngineConfig, KernelEngine
from repro.exceptions import KernelError
from repro.svm import FeatureScaler, train_test_split


@pytest.fixture(scope="module")
def served():
    """A fitted feature map + linear model + scaler over a small dataset."""
    data = balanced_subsample(
        generate_elliptic_like(DatasetSpec(num_samples=400, num_features=5, seed=9)),
        48,
        seed=2,
    )
    X_train, X_test, y_train, y_test = train_test_split(
        data.features, data.labels, seed=0
    )
    scaler = FeatureScaler()
    ansatz = AnsatzConfig(num_features=5, interaction_distance=1, layers=1, gamma=0.6)
    engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=10))
    phi = fmap.fit_transform(scaler.fit_transform(X_train))
    model = LinearSVC(C=1.0).fit(phi, y_train)
    return fmap, model, scaler, X_test


def test_classify_batch_costs_m_overlaps_per_point(served):
    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler)
    result = clf.classify(X_test)
    assert result.num_points == X_test.shape[0]
    assert result.num_inner_products == X_test.shape[0] * 10
    assert result.kernel_rows.shape == (X_test.shape[0], 10)
    assert set(np.unique(result.predictions)) <= {0, 1}
    assert clf.num_served == X_test.shape[0]


def test_streamed_predictions_match_batch_path(served):
    fmap, model, scaler, X_test = served
    batch = StreamingNystroemClassifier(fmap, model, scaler=scaler).classify(X_test)

    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler, buffer_size=4)
    collected = []
    for row in X_test:
        out = clf.submit(row)
        if out is not None:
            collected.append(out)
    tail = clf.flush()
    if tail is not None:
        collected.append(tail)
    preds = np.concatenate([o.predictions for o in collected])
    decisions = np.concatenate([o.decision_values for o in collected])
    assert np.array_equal(preds, batch.predictions)
    assert np.allclose(decisions, batch.decision_values, atol=1e-9)
    assert clf.pending == 0


def test_buffer_flushes_at_capacity(served):
    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler, buffer_size=3)
    assert clf.submit(X_test[0]) is None
    assert clf.submit(X_test[1]) is None
    out = clf.submit(X_test[2])
    assert out is not None and out.num_points == 3
    assert clf.pending == 0
    assert clf.flush() is None


def test_repeat_queries_are_simulation_free(served):
    """A previously-classified point is served entirely from the state store."""
    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler)
    clf.classify(X_test[:2])
    warm = clf.classify(X_test[:2])
    assert warm.num_simulations == 0
    assert warm.cache_misses == 0
    assert warm.cache_hits >= 2


def test_single_row_classification(served):
    fmap, model, scaler, X_test = served
    result = StreamingNystroemClassifier(fmap, model, scaler=scaler).classify(
        X_test[0]
    )
    assert result.num_points == 1


def test_requires_fitted_feature_map(served):
    fmap, model, scaler, _ = served
    engine = fmap.engine
    unfitted = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=4))
    with pytest.raises(KernelError):
        StreamingNystroemClassifier(unfitted, model)
    with pytest.raises(KernelError):
        StreamingNystroemClassifier(fmap, model, buffer_size=0)


def test_submit_rejects_malformed_rows_without_poisoning_buffer(served):
    from repro.exceptions import SVMError

    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler, buffer_size=4)
    clf.submit(X_test[0])
    with pytest.raises(SVMError):
        clf.submit(np.ones(X_test.shape[1] + 2))
    # the valid row is still pending and classifiable
    assert clf.pending == 1
    out = clf.flush()
    assert out is not None and out.num_points == 1


# ----------------------------------------------------------------------
# Conformal feedback wiring: misconfiguration must fail at its cause, not
# deep inside the serving loop (regression tests for the drift path).
# ----------------------------------------------------------------------
def test_record_feedback_before_attach_raises(served):
    from repro.exceptions import ReproError, SVMError

    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler)
    with pytest.raises(SVMError, match="attach_conformal"):
        clf.record_feedback(np.array([0.5, -0.5]), [1, 0])
    # The drift controller catches ReproError; the gap this pins is that an
    # unattached classifier used to surface a bare AttributeError instead.
    assert issubclass(SVMError, ReproError)


def test_attach_conformal_rejects_uncalibrated(served):
    from repro.exceptions import SVMError
    from repro.svm import SplitConformalClassifier

    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler)
    with pytest.raises(SVMError, match="calibrated"):
        clf.attach_conformal(SplitConformalClassifier(alpha=0.1))
    with pytest.raises(SVMError, match="calibrated"):
        clf.attach_conformal(None)
    with pytest.raises(SVMError, match="window"):
        clf.attach_conformal(
            SplitConformalClassifier(alpha=0.1).calibrate(
                np.linspace(-2, 2, 20), np.tile([0, 1], 10)
            ),
            window=0,
        )


def test_record_feedback_validates_batch(served):
    from repro.exceptions import SVMError
    from repro.svm import SplitConformalClassifier

    fmap, model, scaler, X_test = served
    clf = StreamingNystroemClassifier(fmap, model, scaler=scaler)
    clf.attach_conformal(
        SplitConformalClassifier(alpha=0.1).calibrate(
            np.linspace(-2, 2, 20), np.tile([0, 1], 10)
        )
    )
    with pytest.raises(SVMError, match="labels"):
        clf.record_feedback(np.array([0.5, -0.5]), [1])
    with pytest.raises(SVMError, match="at least one"):
        clf.record_feedback(np.array([]), [])
    coverage = clf.record_feedback(np.array([3.0, -3.0]), [1, 0])
    assert coverage == 1.0
    assert clf.feedback_count == 2
