"""Unit tests for the Nystrom feature map."""

import numpy as np
import pytest

from repro.approx import NystroemConfig, NystroemFeatureMap
from repro.config import AnsatzConfig
from repro.engine import EngineConfig, KernelEngine
from repro.exceptions import KernelError


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)


@pytest.fixture
def engine(ansatz):
    return KernelEngine(ansatz, config=EngineConfig(use_cache=True))


@pytest.fixture
def X(rng):
    return rng.uniform(0.1, 1.9, size=(24, 4))


def test_full_rank_nystroem_reproduces_exact_kernel(ansatz, engine, X):
    """With m = n landmarks the reconstruction equals the exact Gram matrix."""
    exact = KernelEngine(ansatz).gram(X).matrix
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=X.shape[0]))
    phi = fmap.fit_transform(X)
    assert np.allclose(fmap.approximate_kernel(phi), exact, atol=1e-6)


def test_low_rank_error_decreases_with_landmarks(ansatz, X):
    exact = KernelEngine(ansatz).gram(X).matrix
    errors = []
    for m in (4, 12, 24):
        engine = KernelEngine(ansatz, config=EngineConfig(use_cache=True))
        fmap = NystroemFeatureMap(
            engine, NystroemConfig(num_landmarks=m, strategy="greedy")
        )
        phi = fmap.fit_transform(X)
        errors.append(np.linalg.norm(fmap.approximate_kernel(phi) - exact))
    assert errors[0] > errors[-1]
    assert errors[-1] < 1e-6  # m = n is exact


def test_pair_budget_is_respected(engine, X):
    """fit issues exactly m(m-1)/2 + n*m pairs -- the subsystem's raison d'etre."""
    n, m = X.shape[0], 6
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=m))
    fmap.fit(X)
    assert fmap.report.fit_pair_evaluations == m * (m - 1) // 2 + n * m
    assert fmap.report.fit_pair_evaluations <= fmap.fit_pair_budget(n)
    assert fmap.fit_pair_budget(n) <= n * m + m * m
    # far below the exact path's n(n-1)/2 once n >> m
    assert fmap.report.fit_pair_evaluations < n * (n - 1) // 2


def test_transform_agrees_with_train_features(engine, X):
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=8))
    phi_train = fmap.fit_transform(X)
    phi_again = fmap.transform(X)
    assert np.allclose(phi_again, phi_train, atol=1e-9)
    assert fmap.report.transform_pair_evaluations == X.shape[0] * 8


def test_transform_uses_cached_landmark_states(engine, X, rng):
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=8))
    fmap.fit(X)
    X_new = rng.uniform(0.1, 1.9, size=(3, 4))
    _, result = fmap.transform_result(X_new)
    # only the 3 new points are simulated; landmarks come from the store
    assert result.num_simulations == 3
    assert result.num_inner_products == 3 * 8


def test_spectral_rank_truncation(engine, X):
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=12, rank=5))
    phi = fmap.fit_transform(X)
    assert fmap.rank_ <= 5
    assert phi.shape == (X.shape[0], fmap.rank_)


def test_unfitted_transform_raises(engine, X):
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=4))
    with pytest.raises(KernelError):
        fmap.transform(X)


def test_config_validation():
    with pytest.raises(KernelError):
        NystroemConfig(num_landmarks=0)
    with pytest.raises(KernelError):
        NystroemConfig(num_landmarks=4, jitter=-1.0)
    with pytest.raises(KernelError):
        NystroemConfig(num_landmarks=4, rank=0)


def test_more_landmarks_than_samples_raises(engine, X):
    fmap = NystroemFeatureMap(engine, NystroemConfig(num_landmarks=X.shape[0] + 1))
    with pytest.raises(KernelError):
        fmap.fit(X)
