"""Unit tests for the primal squared-hinge linear SVM."""

import numpy as np
import pytest

from repro.approx import LinearSVC
from repro.exceptions import ConvergenceError, SVMError
from repro.svm import PrecomputedKernelSVC, accuracy_score, roc_auc_score


def _blobs(n_per_class=30, separation=3.0, seed=0, dim=3):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per_class, dim))
    b = rng.normal(size=(n_per_class, dim)) + separation
    X = np.vstack([a, b])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    perm = rng.permutation(2 * n_per_class)
    return X[perm], y[perm]


def test_separable_blobs_are_classified_perfectly():
    X, y = _blobs(separation=5.0)
    model = LinearSVC(C=1.0).fit(X, y)
    assert accuracy_score(y, model.predict(X)) == 1.0
    assert model.coef_ is not None and model.coef_.shape == (X.shape[1],)
    assert model.n_iter_ >= 1


def test_overlapping_blobs_beat_chance():
    X, y = _blobs(separation=1.5, seed=3)
    model = LinearSVC(C=1.0).fit(X, y)
    assert roc_auc_score(y, model.decision_function(X)) > 0.8


def test_agrees_with_dual_smo_on_linear_kernel():
    """Primal squared-hinge and dual hinge SVM rank points near-identically."""
    X, y = _blobs(separation=2.0, seed=5)
    primal = LinearSVC(C=1.0).fit(X, y)
    dual = PrecomputedKernelSVC(C=1.0).fit(X @ X.T, y)
    s1 = primal.decision_function(X)
    s2 = dual.decision_function(X @ X.T)
    # identical AUC => identical ranking of the two decision functions
    assert abs(roc_auc_score(y, s1) - roc_auc_score(y, s2)) < 1e-6


def test_signed_and_01_labels_agree():
    X, y = _blobs(seed=2)
    m1 = LinearSVC().fit(X, y)
    m2 = LinearSVC().fit(X, np.where(y == 1, 1, -1))
    assert np.allclose(m1.coef_, m2.coef_)
    assert np.isclose(m1.intercept_, m2.intercept_)


def test_larger_C_fits_training_data_harder():
    X, y = _blobs(separation=1.0, seed=7)
    loose = LinearSVC(C=0.01).fit(X, y)
    tight = LinearSVC(C=100.0).fit(X, y)
    assert accuracy_score(y, tight.predict(X)) >= accuracy_score(y, loose.predict(X))


def test_objective_decreases_from_origin():
    X, y = _blobs(seed=9)
    model = LinearSVC(C=1.0).fit(X, y)
    fitted_obj = model.objective(X, y)
    # objective at w = 0, b = 0 is C * n (every margin violated by 1)
    assert fitted_obj < model.C * X.shape[0]


def test_no_intercept_mode():
    X, y = _blobs(separation=4.0, seed=1)
    X = X - X.mean(axis=0)  # boundary through the origin
    model = LinearSVC(C=1.0, fit_intercept=False).fit(X, y)
    assert model.intercept_ == 0.0
    assert accuracy_score(y, model.predict(X)) > 0.9


def test_strict_convergence_raises_when_capped():
    X, y = _blobs(separation=1.0, seed=4)
    with pytest.raises(ConvergenceError):
        LinearSVC(C=10.0, max_iter=1, tol=1e-14, strict_convergence=True).fit(X, y)


def test_validation_errors():
    X, y = _blobs()
    with pytest.raises(SVMError):
        LinearSVC(C=-1.0)
    with pytest.raises(SVMError):
        LinearSVC().fit(X, y[:-1])
    with pytest.raises(SVMError):
        LinearSVC().fit(X, np.zeros(X.shape[0]))  # single class
    model = LinearSVC().fit(X, y)
    with pytest.raises(SVMError):
        model.decision_function(np.ones((2, X.shape[1] + 1)))
    with pytest.raises(SVMError):
        LinearSVC().decision_function(X)  # unfitted


# ----------------------------------------------------------------------
# Warm-start equivalence: the objective is convex, so an initial point can
# change only the iteration count, never the minimiser.  The drift path's
# incremental refits (grow the basis, start from [w_old; 0]) rely on this.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("growth", [1, 3, 6])
def test_warm_start_reaches_the_cold_solution(seed, growth):
    rng = np.random.default_rng(seed + 100)
    X, y = _blobs(separation=2.0, seed=seed, dim=4)
    cold_small = LinearSVC(C=1.0).fit(X, y)

    # Grow the feature basis the way a landmark-set growth does: the old
    # columns survive unchanged and `growth` new ones are appended.
    X_grown = np.hstack([X, 0.3 * rng.normal(size=(X.shape[0], growth))])
    w_init = np.concatenate([cold_small.coef_, np.zeros(growth)])

    cold = LinearSVC(C=1.0).fit(X_grown, y)
    warm = LinearSVC(C=1.0).fit(
        X_grown, y, coef_init=w_init, intercept_init=cold_small.intercept_
    )
    assert np.allclose(warm.coef_, cold.coef_, atol=1e-5)
    assert np.isclose(warm.intercept_, cold.intercept_, atol=1e-5)
    assert np.isclose(
        warm.objective(X_grown, y), cold.objective(X_grown, y), rtol=1e-8
    )


def test_warm_start_from_the_optimum_converges_immediately():
    X, y = _blobs(separation=2.0, seed=11)
    cold = LinearSVC(C=1.0).fit(X, y)
    warm = LinearSVC(C=1.0).fit(
        X, y, coef_init=cold.coef_, intercept_init=cold.intercept_
    )
    assert warm.n_iter_ == 0  # first gradient check already passes
    assert np.array_equal(warm.coef_, cold.coef_)
    assert warm.intercept_ == cold.intercept_


def test_warm_start_near_the_optimum_is_cheaper_than_cold():
    """A perturbed optimum must cost strictly fewer iterations than zero init.

    This is the steady-state drift refresh: the previous generation's
    solution is close to the new optimum, so the semismooth Newton solver
    needs fewer iterations than a from-scratch fit.
    """
    X, y = _blobs(n_per_class=60, separation=1.2, seed=13, dim=6)
    cold = LinearSVC(C=5.0).fit(X, y)
    rng = np.random.default_rng(17)
    w_near = cold.coef_ + 1e-4 * rng.normal(size=cold.coef_.size)
    warm = LinearSVC(C=5.0).fit(
        X, y, coef_init=w_near, intercept_init=cold.intercept_
    )
    assert warm.n_iter_ < cold.n_iter_
    assert np.allclose(warm.coef_, cold.coef_, atol=1e-5)


def test_warm_start_validates_coefficient_width():
    X, y = _blobs(seed=6)
    with pytest.raises(SVMError, match="coef_init"):
        LinearSVC().fit(X, y, coef_init=np.zeros(X.shape[1] + 2))


def test_intercept_init_ignored_without_intercept():
    X, y = _blobs(separation=4.0, seed=8)
    X = X - X.mean(axis=0)
    model = LinearSVC(C=1.0, fit_intercept=False).fit(
        X, y, intercept_init=5.0
    )
    assert model.intercept_ == 0.0
