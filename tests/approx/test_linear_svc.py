"""Unit tests for the primal squared-hinge linear SVM."""

import numpy as np
import pytest

from repro.approx import LinearSVC
from repro.exceptions import ConvergenceError, SVMError
from repro.svm import PrecomputedKernelSVC, accuracy_score, roc_auc_score


def _blobs(n_per_class=30, separation=3.0, seed=0, dim=3):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per_class, dim))
    b = rng.normal(size=(n_per_class, dim)) + separation
    X = np.vstack([a, b])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    perm = rng.permutation(2 * n_per_class)
    return X[perm], y[perm]


def test_separable_blobs_are_classified_perfectly():
    X, y = _blobs(separation=5.0)
    model = LinearSVC(C=1.0).fit(X, y)
    assert accuracy_score(y, model.predict(X)) == 1.0
    assert model.coef_ is not None and model.coef_.shape == (X.shape[1],)
    assert model.n_iter_ >= 1


def test_overlapping_blobs_beat_chance():
    X, y = _blobs(separation=1.5, seed=3)
    model = LinearSVC(C=1.0).fit(X, y)
    assert roc_auc_score(y, model.decision_function(X)) > 0.8


def test_agrees_with_dual_smo_on_linear_kernel():
    """Primal squared-hinge and dual hinge SVM rank points near-identically."""
    X, y = _blobs(separation=2.0, seed=5)
    primal = LinearSVC(C=1.0).fit(X, y)
    dual = PrecomputedKernelSVC(C=1.0).fit(X @ X.T, y)
    s1 = primal.decision_function(X)
    s2 = dual.decision_function(X @ X.T)
    # identical AUC => identical ranking of the two decision functions
    assert abs(roc_auc_score(y, s1) - roc_auc_score(y, s2)) < 1e-6


def test_signed_and_01_labels_agree():
    X, y = _blobs(seed=2)
    m1 = LinearSVC().fit(X, y)
    m2 = LinearSVC().fit(X, np.where(y == 1, 1, -1))
    assert np.allclose(m1.coef_, m2.coef_)
    assert np.isclose(m1.intercept_, m2.intercept_)


def test_larger_C_fits_training_data_harder():
    X, y = _blobs(separation=1.0, seed=7)
    loose = LinearSVC(C=0.01).fit(X, y)
    tight = LinearSVC(C=100.0).fit(X, y)
    assert accuracy_score(y, tight.predict(X)) >= accuracy_score(y, loose.predict(X))


def test_objective_decreases_from_origin():
    X, y = _blobs(seed=9)
    model = LinearSVC(C=1.0).fit(X, y)
    fitted_obj = model.objective(X, y)
    # objective at w = 0, b = 0 is C * n (every margin violated by 1)
    assert fitted_obj < model.C * X.shape[0]


def test_no_intercept_mode():
    X, y = _blobs(separation=4.0, seed=1)
    X = X - X.mean(axis=0)  # boundary through the origin
    model = LinearSVC(C=1.0, fit_intercept=False).fit(X, y)
    assert model.intercept_ == 0.0
    assert accuracy_score(y, model.predict(X)) > 0.9


def test_strict_convergence_raises_when_capped():
    X, y = _blobs(separation=1.0, seed=4)
    with pytest.raises(ConvergenceError):
        LinearSVC(C=10.0, max_iter=1, tol=1e-14, strict_convergence=True).fit(X, y)


def test_validation_errors():
    X, y = _blobs()
    with pytest.raises(SVMError):
        LinearSVC(C=-1.0)
    with pytest.raises(SVMError):
        LinearSVC().fit(X, y[:-1])
    with pytest.raises(SVMError):
        LinearSVC().fit(X, np.zeros(X.shape[0]))  # single class
    model = LinearSVC().fit(X, y)
    with pytest.raises(SVMError):
        model.decision_function(np.ones((2, X.shape[1] + 1)))
    with pytest.raises(SVMError):
        LinearSVC().decision_function(X)  # unfitted
