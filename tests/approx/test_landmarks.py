"""Unit tests for the landmark selection registry."""

import numpy as np
import pytest

from repro.approx import (
    GreedyLandmarkSelector,
    RidgeLeverageLandmarkSelector,
    available_landmark_strategies,
    get_landmark_selector,
    register_landmark_selector,
    select_landmarks,
)
from repro.approx.landmarks import UniformLandmarkSelector
from repro.exceptions import KernelError


@pytest.fixture
def X(rng):
    return rng.uniform(0.0, 2.0, size=(40, 5))


@pytest.mark.parametrize("strategy", ["uniform", "kmeans", "greedy", "ridge-leverage"])
def test_selectors_return_valid_indices(strategy, X):
    idx = select_landmarks(X, 8, strategy=strategy, seed=3)
    assert idx.shape == (8,)
    assert np.unique(idx).size == 8
    assert idx.min() >= 0 and idx.max() < X.shape[0]
    assert np.array_equal(idx, np.sort(idx))


@pytest.mark.parametrize("strategy", ["uniform", "kmeans", "greedy", "ridge-leverage"])
def test_selectors_are_deterministic_given_seed(strategy, X):
    a = select_landmarks(X, 10, strategy=strategy, seed=7)
    b = select_landmarks(X, 10, strategy=strategy, seed=7)
    assert np.array_equal(a, b)


def test_all_points_as_landmarks_is_identity_set(X):
    idx = select_landmarks(X, X.shape[0], strategy="uniform", seed=0)
    assert np.array_equal(idx, np.arange(X.shape[0]))


def test_greedy_spreads_landmarks(X):
    """Farthest-point landmarks must have a larger minimum pairwise
    distance than a clumped contiguous-prefix baseline."""
    idx = GreedyLandmarkSelector()(X, 6, seed=0)
    chosen = X[idx]

    def min_pairwise(P):
        d = np.linalg.norm(P[:, None, :] - P[None, :, :], axis=-1)
        return d[np.triu_indices(len(P), k=1)].min()

    order = np.argsort(X[:, 0], kind="stable")
    clumped = X[order[:6]]
    assert min_pairwise(chosen) > min_pairwise(clumped)


def test_validation_errors(X):
    with pytest.raises(KernelError):
        select_landmarks(X, 0)
    with pytest.raises(KernelError):
        select_landmarks(X, X.shape[0] + 1)
    with pytest.raises(KernelError):
        select_landmarks(X, 4, strategy="no-such-strategy")


def test_ridge_leverage_rejects_nonpositive_lam():
    with pytest.raises(KernelError):
        RidgeLeverageLandmarkSelector(lam=0.0)
    with pytest.raises(KernelError):
        RidgeLeverageLandmarkSelector(lam=-1e-3)


def test_ridge_leverage_scores_peak_on_isolated_points(rng):
    """A point far from a tight cluster carries more of the kernel's
    effective dimension than any cluster member, so its leverage score must
    dominate -- the property that makes the selector grow the landmark set
    toward the *shifted* region of drifted traffic."""
    cluster = rng.normal(scale=0.05, size=(30, 4))
    outlier = np.full((1, 4), 5.0)
    X = np.vstack([cluster, outlier])
    scores = RidgeLeverageLandmarkSelector().leverage_scores(X)
    assert scores.shape == (31,)
    assert np.all(scores > 0)
    assert scores[-1] > scores[:-1].max()


def test_ridge_leverage_handles_degenerate_pool():
    """An all-identical pool has no median bandwidth; the selector must
    still return a valid (uniform-scored) choice instead of dividing by
    zero."""
    X = np.ones((12, 3))
    scores = RidgeLeverageLandmarkSelector().leverage_scores(X)
    assert np.allclose(scores, scores[0])
    idx = select_landmarks(X, 4, strategy="ridge-leverage", seed=0)
    assert idx.shape == (4,)


def test_registry_round_trip(X):
    assert {"uniform", "kmeans", "greedy", "ridge-leverage"} <= set(
        available_landmark_strategies()
    )

    class FirstK(UniformLandmarkSelector):
        name = "first-k"

        def select(self, X, num_landmarks, rng):
            return np.arange(num_landmarks)

    register_landmark_selector("first-k", FirstK)
    try:
        assert "first-k" in available_landmark_strategies()
        idx = get_landmark_selector("first-k")(X, 5, seed=0)
        assert np.array_equal(idx, np.arange(5))
    finally:
        from repro.approx import landmarks as _mod

        _mod._SELECTORS.pop("first-k", None)
