"""Drift controller suite: alarm discipline, shadow fits, live recovery.

The fast tests drive the hysteresis alarm with hand-built conformal state
(no engine), pinning exactly when it may and may not fire.  The slow tests
run the full loop against seeded drift-injection scenarios from
``tests/conftest.py``: the alarm must stay silent on i.i.d. traffic, fire
under injected covariate and label shift, and -- after a shadow fit and an
atomic swap -- rolling coverage must recover to the conformal target while
the serving queue never drops or pauses a request.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.approx import (
    DriftConfig,
    DriftController,
    NystroemConfig,
)
from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.exceptions import DriftError, ReproError
from repro.svm.conformal import SplitConformalClassifier

ANSATZ = AnsatzConfig(num_features=4, interaction_distance=1, layers=1, gamma=0.6)
ALPHA = 0.15


# ----------------------------------------------------------------------
# Hand-built conformal state: quantile 0.5, so a point with decision value
# 0.0 is always covered (both labels fit) and one with |decision| = 10 and
# the wrong-side label never is.
# ----------------------------------------------------------------------
def _stub_conformal(alpha: float = ALPHA) -> SplitConformalClassifier:
    conformal = SplitConformalClassifier(alpha=alpha)
    conformal.quantile_ = 0.5
    conformal.num_calibration_ = 100
    return conformal


_COVERED = (0.0, 1)  # decision value, label
_MISSED = (10.0, 0)


def _controller(config: DriftConfig, classifier=None) -> DriftController:
    if classifier is None:
        classifier = SimpleNamespace(feature_map=SimpleNamespace(landmark_rows_=None))
    return DriftController(classifier, _stub_conformal(), config=config)


def _feed(controller: DriftController, points, dim: int = 4) -> None:
    rows = np.zeros((len(points), dim))
    decisions = np.array([p[0] for p in points])
    labels = np.array([p[1] for p in points])
    controller.record_feedback(rows, decisions, labels)


# ----------------------------------------------------------------------
# Configuration and construction guards
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"hysteresis": -0.1},
        {"hysteresis": 1.0},
        {"window": 0},
        {"min_samples": 0},
        {"min_samples": 50, "window": 20},
        {"buffer_size": 1},
        {"min_refit_samples": 1},
        {"calibration_fraction": 0.0},
        {"calibration_fraction": 1.0},
        {"max_new_landmarks": -1},
        {"reconstruction_bound": -0.5},
    ],
)
def test_invalid_config_raises(kwargs):
    with pytest.raises(DriftError):
        DriftConfig(**kwargs)


def test_drift_error_is_repro_error():
    assert issubclass(DriftError, ReproError)


def test_controller_rejects_uncalibrated_conformal():
    with pytest.raises(DriftError, match="calibrated"):
        DriftController(SimpleNamespace(), SplitConformalClassifier(alpha=ALPHA))


# ----------------------------------------------------------------------
# Alarm discipline (hysteresis + minimum-sample guard)
# ----------------------------------------------------------------------
def test_alarm_waits_for_min_samples():
    ctrl = _controller(DriftConfig(min_samples=20, window=40))
    _feed(ctrl, [_MISSED] * 19)
    assert ctrl.rolling_coverage() == 0.0
    assert not ctrl.alarm_active and ctrl.alarm_count == 0
    _feed(ctrl, [_MISSED])
    assert ctrl.alarm_active and ctrl.alarm_count == 1


def test_alarm_does_not_fire_inside_hysteresis_band():
    # target 0.85, hysteresis 0.05: coverage 0.84 sits inside the dead band.
    ctrl = _controller(DriftConfig(min_samples=50, window=50, hysteresis=0.05))
    _feed(ctrl, [_COVERED] * 42 + [_MISSED] * 8)
    assert ctrl.rolling_coverage() == pytest.approx(0.84)
    assert not ctrl.alarm_active


def test_alarm_fires_below_hysteresis_band():
    ctrl = _controller(DriftConfig(min_samples=50, window=50, hysteresis=0.05))
    _feed(ctrl, [_COVERED] * 39 + [_MISSED] * 11)
    assert ctrl.rolling_coverage() == pytest.approx(0.78)
    assert ctrl.alarm_active and ctrl.alarm_count == 1


def test_alarm_latches_until_coverage_reaches_target():
    ctrl = _controller(DriftConfig(min_samples=10, window=20, hysteresis=0.05))
    _feed(ctrl, [_MISSED] * 20)
    assert ctrl.alarm_active
    # Coverage climbs into the dead band: still latched (no flapping).
    _feed(ctrl, [_COVERED] * 16)
    assert ctrl.rolling_coverage() == pytest.approx(0.8)
    assert ctrl.alarm_active
    # Clearing the target re-arms; the count does not double-increment.
    _feed(ctrl, [_COVERED] * 4)
    assert ctrl.rolling_coverage() >= 1 - ALPHA
    assert not ctrl.alarm_active
    assert ctrl.alarm_count == 1


def test_feedback_batch_shape_mismatch_raises():
    ctrl = _controller(DriftConfig())
    with pytest.raises(DriftError, match="inconsistent"):
        ctrl.record_feedback(np.zeros((3, 4)), np.zeros(2), np.zeros(3, dtype=int))
    with pytest.raises(DriftError, match="at least one"):
        ctrl.record_feedback(np.zeros((0, 4)), np.zeros(0), np.zeros(0, dtype=int))


# ----------------------------------------------------------------------
# Adaptation guards
# ----------------------------------------------------------------------
def test_adapt_requires_min_refit_samples():
    ctrl = _controller(DriftConfig(min_refit_samples=10))
    _feed(ctrl, [_COVERED] * 5)
    with pytest.raises(DriftError, match="min_refit_samples"):
        ctrl.adapt()


def test_adapt_requires_both_classes():
    ctrl = _controller(DriftConfig(min_refit_samples=4))
    _feed(ctrl, [_COVERED] * 8)  # every label is 1
    with pytest.raises(DriftError, match="single class"):
        ctrl.adapt()


def test_adapt_requires_landmark_rows():
    ctrl = _controller(DriftConfig(min_refit_samples=4))
    _feed(ctrl, [_COVERED] * 4 + [_MISSED] * 4)
    with pytest.raises(DriftError, match="landmark rows"):
        ctrl.adapt()


# ----------------------------------------------------------------------
# End-to-end drift injection (engine-backed, seeded scenarios)
# ----------------------------------------------------------------------
def _fitted_stack(scenario, drift_config: DriftConfig):
    engine = QuantumKernelInferenceEngine(
        ANSATZ, approximation=NystroemConfig(num_landmarks=10, seed=0)
    )
    engine.fit(scenario.X_train, scenario.y_train)
    conformal = SplitConformalClassifier(alpha=ALPHA).calibrate(
        engine.decision_function(scenario.X_calib), scenario.y_calib
    )
    controller = DriftController(
        engine.streaming_classifier(), conformal, config=drift_config
    )
    return engine, controller


# The alarm band is sized to the window's binomial noise: with alpha 0.15
# and 160-sample windows the coverage estimate has sd ~0.028, so a 0.10
# hysteresis puts the fire threshold ~3.5 sigma below the target -- wide
# enough that exchangeable traffic never trips it, narrow enough that the
# injected shifts (which push window coverage to 0.4-0.6) fire within ~70
# post-changepoint points.
_E2E_CONFIG = DriftConfig(
    hysteresis=0.10,
    window=160,
    min_samples=80,
    buffer_size=256,
    min_refit_samples=60,
    calibration_fraction=0.3,
    max_new_landmarks=8,
    reconstruction_bound=0.02,
    seed=0,
)


def _scenario(drifted_stream, kind):
    return drifted_stream(
        kind=kind, calib_size=100, stream_size=600, changepoint=120
    )


@pytest.mark.slow
def test_alarm_never_fires_under_iid_traffic(drifted_stream):
    scenario = _scenario(drifted_stream, "iid")
    engine, controller = _fitted_stack(scenario, _E2E_CONFIG)
    for i in range(0, scenario.X_stream.shape[0], 20):
        rows = scenario.X_stream[i : i + 20]
        labels = scenario.y_stream[i : i + 20]
        controller.record_feedback(rows, engine.decision_function(rows), labels)
    assert controller.alarm_count == 0
    assert not controller.alarm_active
    assert controller.rolling_coverage() >= 1 - ALPHA - _E2E_CONFIG.hysteresis


@pytest.mark.slow
@pytest.mark.parametrize("kind", ["covariate", "label"])
def test_alarm_fires_after_injected_shift(drifted_stream, kind):
    scenario = _scenario(drifted_stream, kind)
    engine, controller = _fitted_stack(scenario, _E2E_CONFIG)
    fired_at = None
    for i in range(0, scenario.X_stream.shape[0], 10):
        rows = scenario.X_stream[i : i + 10]
        labels = scenario.y_stream[i : i + 10]
        controller.record_feedback(rows, engine.decision_function(rows), labels)
        if controller.alarm_active:
            fired_at = i + 10
            break
    assert fired_at is not None, f"alarm never fired under {kind} shift"
    # Shift injection starts at the changepoint; a pre-changepoint alarm
    # would be a false positive on exchangeable traffic.
    assert fired_at > scenario.changepoint


@pytest.mark.slow
def test_coverage_recovers_after_adaptation_and_swap(drifted_stream):
    """The acceptance loop: dip -> alarm -> shadow fit -> swap -> recover.

    Serving runs through the async queue the whole time; every submitted
    request must resolve (zero dropped), pre-swap answers carry model
    version 0 and post-swap answers version 1.
    """
    scenario = _scenario(drifted_stream, "covariate")
    engine, _ = _fitted_stack(scenario, _E2E_CONFIG)
    conformal = SplitConformalClassifier(alpha=ALPHA).calibrate(
        engine.decision_function(scenario.X_calib), scenario.y_calib
    )
    submitted = 0
    resolved = 0
    versions = []

    with engine.serving_queue(max_batch=8, max_wait_ms=2.0) as queue:
        controller = DriftController(
            engine.streaming_classifier(),
            conformal,
            target=queue,
            config=_E2E_CONFIG,
        )

        def serve(rows, labels, chunk=10):
            nonlocal submitted, resolved
            for j in range(0, len(rows), chunk):
                part_rows, part_labels = rows[j : j + chunk], labels[j : j + chunk]
                futures = queue.submit_many(part_rows)
                submitted += len(futures)
                queue.flush()
                results = [f.result(timeout=60) for f in futures]
                resolved += len(results)
                versions.extend(r.model_version for r in results)
                controller.record_feedback(
                    part_rows,
                    np.array([r.decision_value for r in results]),
                    part_labels,
                )

        # Pre-changepoint (exchangeable) traffic: no alarm.
        serve(scenario.X_stream[:120], scenario.y_stream[:120])
        assert controller.alarm_count == 0

        # Shifted traffic until the alarm latches, plus enough extra for the
        # buffer to hold shifted material worth refitting on.
        i = scenario.changepoint
        while i < 400 and not controller.alarm_active:
            serve(scenario.X_stream[i : i + 10], scenario.y_stream[i : i + 10])
            i += 10
        assert controller.alarm_active, "alarm never fired under covariate shift"
        dip = controller.rolling_coverage()
        assert dip < 1 - ALPHA - _E2E_CONFIG.hysteresis
        serve(scenario.X_stream[i:400], scenario.y_stream[i:400])
        i = 400

        adaptation = controller.adapt()
        assert queue.model_version == adaptation.version == 1
        assert queue.swap_count == 1
        assert adaptation.new_num_landmarks > adaptation.old_num_landmarks
        assert adaptation.warm_iterations >= 0
        assert not controller.alarm_active

        # Post-swap traffic from the shifted distribution: coverage must
        # recover to the conformal target (within the 0.02 gate) because the
        # quantile was recalibrated on held-out fresh samples.
        serve(scenario.X_stream[i:], scenario.y_stream[i:])
        recovered = controller.rolling_coverage()
        assert recovered >= 1 - ALPHA - 0.02, (
            f"coverage {recovered:.3f} below recovery gate after adaptation"
        )

    assert submitted == resolved and submitted > 0  # zero dropped requests
    assert set(versions) == {0, 1}
    # Version stamps are monotone: once the swap lands no answer regresses.
    first_v1 = versions.index(1)
    assert all(v == 1 for v in versions[first_v1:])
    assert controller.refit_count == 1 and controller.swap_count == 1
