"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like


@pytest.fixture(scope="session")
def small_dataset():
    """A small balanced dataset reused by pipeline/integration tests."""
    full = generate_elliptic_like(
        DatasetSpec(num_samples=600, num_features=8, seed=11)
    )
    return balanced_subsample(full, 40, seed=3)


@dataclass(frozen=True)
class DriftScenario:
    """One seeded drift-injection scenario for the adaptation suites.

    A training split, a disjoint calibration split, and a labelled request
    stream whose distribution changes at ``changepoint``: rows before it are
    exchangeable with the calibration data, rows from it onward carry the
    injected shift.  ``kind`` is one of:

    * ``"iid"``       -- no shift (the false-alarm control);
    * ``"covariate"`` -- the post-changepoint rows are translated by
      ``shift`` training standard deviations per feature (labels keep their
      pre-shift meaning, the input geometry moves);
    * ``"label"``     -- post-changepoint labels of class 1 flip to 0 with
      probability ``flip`` (the geometry stays, the concept moves).
    """

    kind: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_calib: np.ndarray
    y_calib: np.ndarray
    X_stream: np.ndarray
    y_stream: np.ndarray
    changepoint: int


def make_drifted_stream(
    kind: str = "covariate",
    num_features: int = 4,
    train_size: int = 60,
    calib_size: int = 60,
    stream_size: int = 600,
    changepoint: int = 120,
    shift: float = 2.0,
    flip: float = 0.6,
    seed: int = 0,
) -> DriftScenario:
    """Build a :class:`DriftScenario` with fully seeded randomness.

    All three splits are disjoint slices of **one** balanced subsample of a
    single generated dataset: the generator draws fresh cluster centroids
    per seed, so independently seeded datasets are *different*
    distributions -- splitting one shuffled pool is what makes the
    calibration data and the pre-changepoint stream genuinely exchangeable,
    leaving the injected change as the only shift present.
    """
    if kind not in ("iid", "covariate", "label"):
        raise ValueError(f"unknown drift kind {kind!r}")
    total = train_size + calib_size + stream_size
    pool = balanced_subsample(
        generate_elliptic_like(
            DatasetSpec(
                num_samples=max(4000, 8 * total),
                num_features=num_features,
                seed=seed + 11,
            )
        ),
        total if total % 2 == 0 else total + 1,
        seed=seed + 3,
    )
    X = np.array(pool.features, dtype=float)
    y = np.array(pool.labels, dtype=int)
    X_train, y_train = X[:train_size], y[:train_size]
    X_calib = X[train_size : train_size + calib_size]
    y_calib = y[train_size : train_size + calib_size]
    X_stream = X[train_size + calib_size : total].copy()
    y_stream = y[train_size + calib_size : total].copy()
    rng = np.random.default_rng(seed + 41)
    if kind == "covariate":
        X_stream[changepoint:] += shift * np.std(X_train, axis=0)
    elif kind == "label":
        tail = y_stream[changepoint:]
        flips = (tail == 1) & (rng.random(tail.size) < flip)
        y_stream[changepoint:] = np.where(flips, 0, tail)
    return DriftScenario(
        kind=kind,
        X_train=X_train,
        y_train=y_train,
        X_calib=X_calib,
        y_calib=y_calib,
        X_stream=X_stream,
        y_stream=y_stream,
        changepoint=changepoint,
    )


@pytest.fixture
def drifted_stream():
    """Factory fixture: ``drifted_stream(kind=..., seed=...)`` scenarios."""
    return make_drifted_stream


@pytest.fixture
def rng():
    """Deterministic NumPy generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_ansatz():
    """A 4-qubit ansatz cheap enough for exhaustive cross-validation."""
    return AnsatzConfig(num_features=4, interaction_distance=2, layers=2, gamma=0.8)


def random_statevector(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Normalised random complex statevector on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-ish random unitary via QR of a complex Gaussian matrix."""
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(mat)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases
