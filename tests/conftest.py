"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like


@pytest.fixture(scope="session")
def small_dataset():
    """A small balanced dataset reused by pipeline/integration tests."""
    full = generate_elliptic_like(
        DatasetSpec(num_samples=600, num_features=8, seed=11)
    )
    return balanced_subsample(full, 40, seed=3)


@pytest.fixture
def rng():
    """Deterministic NumPy generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_ansatz():
    """A 4-qubit ansatz cheap enough for exhaustive cross-validation."""
    return AnsatzConfig(num_features=4, interaction_distance=2, layers=2, gamma=0.8)


def random_statevector(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Normalised random complex statevector on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-ish random unitary via QR of a complex Gaussian matrix."""
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(mat)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases
