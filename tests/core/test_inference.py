"""Unit tests for the inference engine."""

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import select_features
from repro.exceptions import SVMError
from repro.svm import train_test_split


@pytest.fixture
def trained_engine(small_dataset):
    X = select_features(small_dataset.features, 5)
    X_train, X_test, y_train, y_test = train_test_split(
        X, small_dataset.labels, test_fraction=0.25, seed=4
    )
    ansatz = AnsatzConfig(num_features=5, interaction_distance=1, layers=2, gamma=0.5)
    engine = QuantumKernelInferenceEngine(ansatz, C=2.0)
    engine.fit(X_train, y_train)
    return engine, X_test, y_test


def test_fit_stores_training_states(trained_engine):
    engine, X_test, _ = trained_engine
    assert engine.is_fitted
    assert engine.num_training_states > 0


def test_predict_shapes_and_values(trained_engine):
    engine, X_test, y_test = trained_engine
    result = engine.kernel_rows(X_test)
    assert result.num_points == X_test.shape[0]
    assert result.kernel_rows.shape == (X_test.shape[0], engine.num_training_states)
    assert np.all(result.kernel_rows >= -1e-12)
    assert np.all(result.kernel_rows <= 1.0 + 1e-12)
    assert set(np.unique(result.predictions)) <= {0, 1}
    assert result.decision_values.shape == result.predictions.shape
    assert result.num_inner_products == X_test.shape[0] * engine.num_training_states
    # predict / decision_function are consistent with kernel_rows.
    assert np.array_equal(engine.predict(X_test), result.predictions)


def test_inference_learns_something(trained_engine):
    engine, X_test, y_test = trained_engine
    from repro.svm import roc_auc_score

    auc = roc_auc_score(y_test, engine.decision_function(X_test))
    assert auc > 0.6


def test_single_point_inference(trained_engine):
    engine, X_test, _ = trained_engine
    single = engine.predict(X_test[0])
    assert single.shape == (1,)


def test_unfitted_engine_raises(small_dataset):
    ansatz = AnsatzConfig(num_features=5)
    engine = QuantumKernelInferenceEngine(ansatz)
    with pytest.raises(SVMError):
        engine.predict(np.ones((1, 5)))


# ----------------------------------------------------------------------
# StateStore round-trip: serving a known point is simulation-free
# ----------------------------------------------------------------------
def test_classifying_training_points_hits_cache_only(trained_engine):
    """A point encoded during fit() must classify with zero cache misses."""
    engine, X_test, _ = trained_engine
    stats_before = engine.cache_stats()
    assert stats_before is not None

    # Recover two raw training rows from the fitted scaler's state: instead,
    # classify a test point twice -- the second pass must be a pure cache hit.
    first = engine.kernel_rows(X_test[:3])
    assert first.cache_misses == first.num_points  # cold: one encode each
    second = engine.kernel_rows(X_test[:3])
    assert second.cache_misses == 0
    assert second.num_simulations == 0
    assert second.cache_hits == second.num_points
    assert np.allclose(second.kernel_rows, first.kernel_rows, atol=1e-12)


def test_training_point_round_trip_is_simulation_free(small_dataset):
    """fit() populates the store; classifying a training point re-uses it."""
    from repro.data import select_features

    X = select_features(small_dataset.features, 5)[:12]
    y = small_dataset.labels[:12]
    if np.unique(y).size < 2:  # pragma: no cover - fixture guard
        y = np.asarray(y).copy()
        y[0] = 1 - y[0]
    ansatz = AnsatzConfig(num_features=5, interaction_distance=1, layers=1, gamma=0.5)
    engine = QuantumKernelInferenceEngine(ansatz, C=1.0)
    engine.fit(X, y)
    result = engine.kernel_rows(X[:4])
    assert result.cache_misses == 0
    assert result.num_simulations == 0
    assert result.cache_hits >= 4


# ----------------------------------------------------------------------
# Nystrom-backed serving
# ----------------------------------------------------------------------
def test_nystroem_backed_inference(small_dataset):
    from repro.approx import NystroemConfig
    from repro.data import select_features

    X = select_features(small_dataset.features, 5)
    X_train, X_test, y_train, y_test = train_test_split(
        X, small_dataset.labels, test_fraction=0.25, seed=4
    )
    m = 8
    engine = QuantumKernelInferenceEngine(
        AnsatzConfig(num_features=5, interaction_distance=1, layers=2, gamma=0.5),
        C=2.0,
        approximation=NystroemConfig(num_landmarks=m, strategy="greedy"),
    )
    engine.fit(X_train, y_train)
    assert engine.is_fitted and engine.is_approximate
    assert engine.num_training_states == m  # landmarks only, not the full set

    result = engine.kernel_rows(X_test)
    assert result.num_inner_products == X_test.shape[0] * m
    assert result.kernel_rows.shape == (X_test.shape[0], m)
    assert set(np.unique(result.predictions)) <= {0, 1}
    assert np.array_equal(engine.predict(X_test), result.predictions)

    from repro.svm import roc_auc_score

    assert roc_auc_score(y_test, engine.decision_function(X_test)) > 0.6
