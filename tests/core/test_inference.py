"""Unit tests for the inference engine."""

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.core import QuantumKernelInferenceEngine
from repro.data import select_features
from repro.exceptions import SVMError
from repro.svm import train_test_split


@pytest.fixture
def trained_engine(small_dataset):
    X = select_features(small_dataset.features, 5)
    X_train, X_test, y_train, y_test = train_test_split(
        X, small_dataset.labels, test_fraction=0.25, seed=4
    )
    ansatz = AnsatzConfig(num_features=5, interaction_distance=1, layers=2, gamma=0.5)
    engine = QuantumKernelInferenceEngine(ansatz, C=2.0)
    engine.fit(X_train, y_train)
    return engine, X_test, y_test


def test_fit_stores_training_states(trained_engine):
    engine, X_test, _ = trained_engine
    assert engine.is_fitted
    assert engine.num_training_states > 0


def test_predict_shapes_and_values(trained_engine):
    engine, X_test, y_test = trained_engine
    result = engine.kernel_rows(X_test)
    assert result.num_points == X_test.shape[0]
    assert result.kernel_rows.shape == (X_test.shape[0], engine.num_training_states)
    assert np.all(result.kernel_rows >= -1e-12)
    assert np.all(result.kernel_rows <= 1.0 + 1e-12)
    assert set(np.unique(result.predictions)) <= {0, 1}
    assert result.decision_values.shape == result.predictions.shape
    assert result.num_inner_products == X_test.shape[0] * engine.num_training_states
    # predict / decision_function are consistent with kernel_rows.
    assert np.array_equal(engine.predict(X_test), result.predictions)


def test_inference_learns_something(trained_engine):
    engine, X_test, y_test = trained_engine
    from repro.svm import roc_auc_score

    auc = roc_auc_score(y_test, engine.decision_function(X_test))
    assert auc > 0.6


def test_single_point_inference(trained_engine):
    engine, X_test, _ = trained_engine
    single = engine.predict(X_test[0])
    assert single.shape == (1,)


def test_unfitted_engine_raises(small_dataset):
    ansatz = AnsatzConfig(num_features=5)
    engine = QuantumKernelInferenceEngine(ansatz)
    with pytest.raises(SVMError):
        engine.predict(np.ones((1, 5)))
