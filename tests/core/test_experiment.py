"""Unit tests for the declarative classification experiments."""

import pytest

from repro.core import (
    ClassificationExperiment,
    ClassificationOutcome,
    run_classification_experiment,
)
from repro.data import DatasetSpec, generate_elliptic_like
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return generate_elliptic_like(DatasetSpec(num_samples=800, num_features=10, seed=1))


def test_experiment_validation():
    with pytest.raises(ConfigurationError):
        ClassificationExperiment(num_features=4, sample_size=4)
    with pytest.raises(ConfigurationError):
        ClassificationExperiment(num_features=4, sample_size=33)
    with pytest.raises(ConfigurationError):
        ClassificationExperiment(num_features=4, sample_size=32, test_fraction=1.5)


def test_experiment_ansatz_and_describe():
    exp = ClassificationExperiment(
        num_features=5, sample_size=24, interaction_distance=2, layers=3, gamma=0.5
    )
    ansatz = exp.ansatz()
    assert ansatz.num_features == 5
    assert ansatz.interaction_distance == 2
    assert ansatz.layers == 3
    desc = exp.describe()
    assert desc["kernel"] == "quantum"
    assert desc["gamma"] == 0.5


def test_run_quantum_experiment(dataset):
    exp = ClassificationExperiment(num_features=5, sample_size=24, gamma=0.5, seed=4)
    outcome = run_classification_experiment(exp, dataset=dataset, c_grid=(1.0, 4.0))
    assert isinstance(outcome, ClassificationOutcome)
    assert 0.0 <= outcome.test_auc <= 1.0
    assert 0.0 <= outcome.train_auc <= 1.0
    row = outcome.row()
    assert row["num_features"] == 5
    assert set(row) >= {"auc", "recall", "precision", "accuracy", "best_C"}


def test_run_gaussian_experiment(dataset):
    exp = ClassificationExperiment(
        num_features=5, sample_size=24, kernel="gaussian", seed=4
    )
    outcome = run_classification_experiment(exp, dataset=dataset, c_grid=(1.0,))
    assert outcome.result.kernel_name == "gaussian"


def test_run_without_dataset_generates_one():
    exp = ClassificationExperiment(num_features=4, sample_size=16, gamma=0.5, seed=2)
    outcome = run_classification_experiment(exp, c_grid=(1.0,))
    assert 0.0 <= outcome.test_auc <= 1.0


def test_feature_count_exceeding_dataset_raises(dataset):
    exp = ClassificationExperiment(num_features=50, sample_size=16)
    with pytest.raises(ConfigurationError):
        run_classification_experiment(exp, dataset=dataset, c_grid=(1.0,))


def test_reproducible_given_seed(dataset):
    exp = ClassificationExperiment(num_features=5, sample_size=20, gamma=0.5, seed=9)
    a = run_classification_experiment(exp, dataset=dataset, c_grid=(1.0,))
    b = run_classification_experiment(exp, dataset=dataset, c_grid=(1.0,))
    assert a.test_auc == pytest.approx(b.test_auc)
    assert a.row() == b.row()
