"""Unit tests for the end-to-end classification pipeline."""

import numpy as np
import pytest

from repro.backends import SimulatedGpuBackend
from repro.config import AnsatzConfig
from repro.core import PipelineResult, QuantumKernelPipeline
from repro.exceptions import ConfigurationError, DataError


@pytest.fixture
def split(small_dataset):
    from repro.svm import train_test_split
    from repro.data import select_features

    X = select_features(small_dataset.features, 6)
    return train_test_split(X, small_dataset.labels, test_fraction=0.25, seed=2)


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=6, interaction_distance=1, layers=2, gamma=0.5)


def test_quantum_pipeline_runs(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz, c_grid=(0.5, 1.0, 4.0))
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert isinstance(result, PipelineResult)
    assert result.kernel_name == "quantum"
    assert 0.0 <= result.test_auc <= 1.0
    assert result.best_C in (0.5, 1.0, 4.0)
    n_train, n_test = X_train.shape[0], X_test.shape[0]
    assert result.train_kernel.shape == (n_train, n_train)
    assert result.test_kernel.shape == (n_test, n_train)
    assert result.resource_metrics["num_simulations"] == n_train + n_test
    assert result.resource_metrics["max_bond_dimension"] >= 1
    assert "off_diagonal_mean" in result.kernel_diagnostics
    assert set(result.test_metrics) == {"accuracy", "precision", "recall", "f1", "auc"}


def test_quantum_pipeline_learns_something(split, ansatz):
    """On the synthetic fraud data the quantum kernel should beat chance."""
    X_train, X_test, y_train, y_test = split
    result = QuantumKernelPipeline(ansatz, c_grid=(1.0, 4.0)).run(
        X_train, y_train, X_test, y_test
    )
    assert result.test_auc > 0.6


def test_gaussian_pipeline(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz, kernel="gaussian", c_grid=(1.0,))
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert result.kernel_name == "gaussian"
    assert result.resource_metrics == {}
    assert result.test_auc > 0.6


def test_projected_pipeline(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz, kernel="projected", c_grid=(1.0,))
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert result.kernel_name == "projected"
    assert 0.0 <= result.test_auc <= 1.0
    # The projected kernel reports resource accounting like the fidelity
    # kernel: simulation counts/timing and bond-dimension statistics.
    n_train, n_test = X_train.shape[0], X_test.shape[0]
    assert result.resource_metrics["num_simulations"] == n_train + n_test
    assert result.resource_metrics["max_bond_dimension"] >= 1
    assert result.resource_metrics["simulation_time_s"] > 0
    assert result.resource_metrics["train_state_memory_bytes"] > 0


def test_pipeline_with_gpu_backend_matches_cpu(split, ansatz):
    """Backend choice changes timing, never results."""
    X_train, X_test, y_train, y_test = split
    cpu = QuantumKernelPipeline(ansatz, c_grid=(1.0,)).run(
        X_train, y_train, X_test, y_test
    )
    gpu = QuantumKernelPipeline(
        ansatz, backend=SimulatedGpuBackend(), c_grid=(1.0,)
    ).run(X_train, y_train, X_test, y_test)
    assert np.allclose(cpu.train_kernel, gpu.train_kernel, atol=1e-12)
    assert cpu.test_auc == pytest.approx(gpu.test_auc)


def test_pipeline_validation(ansatz, rng):
    pipeline = QuantumKernelPipeline(ansatz, c_grid=(1.0,))
    X = rng.normal(size=(10, 6))
    y = np.array([0, 1] * 5)
    with pytest.raises(DataError):
        pipeline.run(X, y[:-1], X, y)  # label mismatch
    with pytest.raises(DataError):
        pipeline.run(X, y, rng.normal(size=(4, 5)), np.array([0, 1, 0, 1]))  # width
    with pytest.raises(DataError):
        pipeline.run(rng.normal(size=(10, 3)), y, rng.normal(size=(4, 3)),
                     np.array([0, 1, 0, 1]))  # ansatz mismatch
    with pytest.raises(ConfigurationError):
        QuantumKernelPipeline(ansatz, kernel="polynomial")


# ----------------------------------------------------------------------
# Nystrom approximation branch
# ----------------------------------------------------------------------
def test_nystroem_pipeline_runs_and_respects_pair_budget(split, ansatz):
    from repro.approx import NystroemConfig

    X_train, X_test, y_train, y_test = split
    m = 8
    pipeline = QuantumKernelPipeline(
        ansatz,
        c_grid=(0.5, 2.0),
        approximation=NystroemConfig(num_landmarks=m, strategy="greedy"),
    )
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert result.kernel_name == "quantum-nystroem"
    assert result.approximation is not None
    n = X_train.shape[0]
    report = result.approximation["report"]
    assert report["fit_pair_evaluations"] <= n * m + m * m
    assert report["fit_pair_evaluations"] < n * (n - 1) // 2
    assert 0.0 <= result.test_auc <= 1.0
    assert result.train_kernel.shape == (n, n)
    assert result.test_kernel.shape == (X_test.shape[0], n)
    assert "off_diagonal_mean" in result.kernel_diagnostics


def test_nystroem_pipeline_tracks_exact_at_full_rank(split, ansatz):
    """With m = n the low-rank path must match the exact pipeline's AUC."""
    from repro.approx import NystroemConfig

    X_train, X_test, y_train, y_test = split
    exact = QuantumKernelPipeline(ansatz, c_grid=(1.0,)).run(
        X_train, y_train, X_test, y_test
    )
    approx = QuantumKernelPipeline(
        ansatz,
        c_grid=(1.0,),
        approximation=NystroemConfig(num_landmarks=X_train.shape[0]),
    ).run(X_train, y_train, X_test, y_test)
    assert np.allclose(approx.train_kernel, exact.train_kernel, atol=1e-6)
    # Same kernel information; the residual gap is SMO-hinge vs primal
    # squared-hinge on a 10-point test split (AUC granularity 0.04).
    assert abs(approx.test_auc - exact.test_auc) < 0.2


def test_rank_sweep_shares_one_state_store(split, ansatz):
    from repro.approx import NystroemConfig

    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(
        ansatz,
        c_grid=(1.0,),
        approximation=NystroemConfig(num_landmarks=4),
    )
    results = pipeline.run_rank_sweep(X_train, y_train, X_test, y_test, [4, 8])
    assert set(results) == {4, 8}
    # every point was encoded for m=4; the m=8 pass must be simulation-free
    assert results[8].approximation["report"]["cache_misses"] == 0
    assert all(r.kernel_name == "quantum-nystroem" for r in results.values())


def test_nystroem_requires_quantum_kernel(ansatz):
    from repro.approx import NystroemConfig

    with pytest.raises(ConfigurationError):
        QuantumKernelPipeline(
            ansatz,
            kernel="gaussian",
            approximation=NystroemConfig(num_landmarks=4),
        )


def test_rank_sweep_requires_approximation_config(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz)
    with pytest.raises(ConfigurationError):
        pipeline.run_rank_sweep(X_train, y_train, X_test, y_test, [4])
    from repro.approx import NystroemConfig

    pipeline = QuantumKernelPipeline(
        ansatz, approximation=NystroemConfig(num_landmarks=4)
    )
    with pytest.raises(ConfigurationError):
        pipeline.run_rank_sweep(X_train, y_train, X_test, y_test, [])
