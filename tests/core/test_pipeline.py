"""Unit tests for the end-to-end classification pipeline."""

import numpy as np
import pytest

from repro.backends import SimulatedGpuBackend
from repro.config import AnsatzConfig
from repro.core import PipelineResult, QuantumKernelPipeline
from repro.exceptions import ConfigurationError, DataError


@pytest.fixture
def split(small_dataset):
    from repro.svm import train_test_split
    from repro.data import select_features

    X = select_features(small_dataset.features, 6)
    return train_test_split(X, small_dataset.labels, test_fraction=0.25, seed=2)


@pytest.fixture
def ansatz():
    return AnsatzConfig(num_features=6, interaction_distance=1, layers=2, gamma=0.5)


def test_quantum_pipeline_runs(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz, c_grid=(0.5, 1.0, 4.0))
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert isinstance(result, PipelineResult)
    assert result.kernel_name == "quantum"
    assert 0.0 <= result.test_auc <= 1.0
    assert result.best_C in (0.5, 1.0, 4.0)
    n_train, n_test = X_train.shape[0], X_test.shape[0]
    assert result.train_kernel.shape == (n_train, n_train)
    assert result.test_kernel.shape == (n_test, n_train)
    assert result.resource_metrics["num_simulations"] == n_train + n_test
    assert result.resource_metrics["max_bond_dimension"] >= 1
    assert "off_diagonal_mean" in result.kernel_diagnostics
    assert set(result.test_metrics) == {"accuracy", "precision", "recall", "f1", "auc"}


def test_quantum_pipeline_learns_something(split, ansatz):
    """On the synthetic fraud data the quantum kernel should beat chance."""
    X_train, X_test, y_train, y_test = split
    result = QuantumKernelPipeline(ansatz, c_grid=(1.0, 4.0)).run(
        X_train, y_train, X_test, y_test
    )
    assert result.test_auc > 0.6


def test_gaussian_pipeline(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz, kernel="gaussian", c_grid=(1.0,))
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert result.kernel_name == "gaussian"
    assert result.resource_metrics == {}
    assert result.test_auc > 0.6


def test_projected_pipeline(split, ansatz):
    X_train, X_test, y_train, y_test = split
    pipeline = QuantumKernelPipeline(ansatz, kernel="projected", c_grid=(1.0,))
    result = pipeline.run(X_train, y_train, X_test, y_test)
    assert result.kernel_name == "projected"
    assert 0.0 <= result.test_auc <= 1.0
    # The projected kernel reports resource accounting like the fidelity
    # kernel: simulation counts/timing and bond-dimension statistics.
    n_train, n_test = X_train.shape[0], X_test.shape[0]
    assert result.resource_metrics["num_simulations"] == n_train + n_test
    assert result.resource_metrics["max_bond_dimension"] >= 1
    assert result.resource_metrics["simulation_time_s"] > 0
    assert result.resource_metrics["train_state_memory_bytes"] > 0


def test_pipeline_with_gpu_backend_matches_cpu(split, ansatz):
    """Backend choice changes timing, never results."""
    X_train, X_test, y_train, y_test = split
    cpu = QuantumKernelPipeline(ansatz, c_grid=(1.0,)).run(
        X_train, y_train, X_test, y_test
    )
    gpu = QuantumKernelPipeline(
        ansatz, backend=SimulatedGpuBackend(), c_grid=(1.0,)
    ).run(X_train, y_train, X_test, y_test)
    assert np.allclose(cpu.train_kernel, gpu.train_kernel, atol=1e-12)
    assert cpu.test_auc == pytest.approx(gpu.test_auc)


def test_pipeline_validation(ansatz, rng):
    pipeline = QuantumKernelPipeline(ansatz, c_grid=(1.0,))
    X = rng.normal(size=(10, 6))
    y = np.array([0, 1] * 5)
    with pytest.raises(DataError):
        pipeline.run(X, y[:-1], X, y)  # label mismatch
    with pytest.raises(DataError):
        pipeline.run(X, y, rng.normal(size=(4, 5)), np.array([0, 1, 0, 1]))  # width
    with pytest.raises(DataError):
        pipeline.run(rng.normal(size=(10, 3)), y, rng.normal(size=(4, 3)),
                     np.array([0, 1, 0, 1]))  # ansatz mismatch
    with pytest.raises(ConfigurationError):
        QuantumKernelPipeline(ansatz, kernel="polynomial")
