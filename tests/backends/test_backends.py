"""Unit tests for the CPU / simulated-GPU backends."""

import pytest

from repro.backends import (
    Backend,
    BackendResult,
    CpuBackend,
    SimulatedGpuBackend,
)
from repro.circuits import Circuit, build_feature_map_circuit
from repro.config import AnsatzConfig, SimulationConfig
from repro.exceptions import BackendError
from repro.mps import MPS, InstrumentedMPS


@pytest.fixture
def circuit(rng):
    cfg = AnsatzConfig(num_features=5, interaction_distance=2, layers=2, gamma=0.9)
    x = rng.uniform(0.1, 1.9, size=5)
    return build_feature_map_circuit(x, cfg)


def test_simulate_returns_backend_result(circuit):
    backend = CpuBackend()
    result = backend.simulate(circuit)
    assert isinstance(result, BackendResult)
    assert result.state.num_qubits == 5
    assert result.max_bond_dimension == result.state.max_bond_dimension
    assert result.memory_bytes == result.state.memory_bytes
    assert result.memory_mib == pytest.approx(result.memory_bytes / 2**20)
    assert result.num_gates == circuit.num_gates
    assert result.num_two_qubit_gates == circuit.num_two_qubit_gates
    assert result.modelled_time_s > 0
    assert result.wall_time_s > 0


def test_backends_produce_identical_states(circuit):
    cpu_state = CpuBackend().simulate(circuit).state
    gpu_state = SimulatedGpuBackend().simulate(circuit).state
    assert cpu_state.fidelity(gpu_state) == pytest.approx(1.0, abs=1e-12)
    assert cpu_state.bond_dimensions == gpu_state.bond_dimensions


def test_gpu_modelled_time_higher_for_small_circuits(circuit):
    """Small bond dimensions are the CPU-favoured regime (Fig. 5)."""
    cpu_time = CpuBackend().simulate(circuit).modelled_time_s
    gpu_time = SimulatedGpuBackend().simulate(circuit).modelled_time_s
    assert gpu_time > cpu_time


def test_inner_product_and_counters(circuit):
    backend = CpuBackend()
    a = backend.simulate(circuit).state
    b = backend.simulate(circuit).state
    ip = backend.inner_product(a, b)
    assert abs(ip.value) == pytest.approx(1.0)
    assert ip.modelled_time_s > 0
    assert ip.bond_dimension == max(a.max_bond_dimension, b.max_bond_dimension)

    summary = backend.timing_summary()
    assert summary["num_simulations"] == 2
    assert summary["num_inner_products"] == 1
    assert summary["modelled_simulation_time_s"] > 0
    backend.reset_counters()
    assert backend.timing_summary()["num_simulations"] == 0


def test_unrouted_circuit_rejected():
    c = Circuit(4)
    c.add("RXX", (0, 3), angle=0.3)
    with pytest.raises(BackendError):
        CpuBackend().simulate(c)


def test_initial_state_override(circuit):
    backend = CpuBackend()
    init = MPS.plus_state(5)
    result = backend.simulate(circuit, initial_state=init)
    # Initial state is copied, not mutated.
    assert init.max_bond_dimension == 1
    assert result.state is not init


def test_track_memory_uses_instrumented_mps(circuit):
    backend = CpuBackend(SimulationConfig(track_memory=True))
    result = backend.simulate(circuit)
    assert isinstance(result.state, InstrumentedMPS)
    assert len(result.state.trace) == circuit.num_gates


def test_backend_requires_cost_model():
    class BadBackend(Backend):
        @property
        def name(self):
            return "bad"

    with pytest.raises(BackendError):
        BadBackend(cost_model=None)


def test_truncation_config_propagates(circuit):
    backend = CpuBackend(SimulationConfig(truncation_cutoff=1e-16))
    result = backend.simulate(circuit)
    assert result.state.cumulative_discarded_weight < 1e-12
