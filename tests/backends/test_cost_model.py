"""Unit tests for the device cost models."""

import pytest

from repro.backends import (
    CPU_COST_MODEL,
    GPU_COST_MODEL,
    DeviceCostModel,
    preferred_cross_model,
)
from repro.exceptions import ConfigurationError


def test_default_models_are_valid():
    assert CPU_COST_MODEL.name.startswith("cpu")
    assert GPU_COST_MODEL.name.startswith("gpu")
    assert GPU_COST_MODEL.gate_overhead_s > CPU_COST_MODEL.gate_overhead_s
    assert GPU_COST_MODEL.contraction_gflops > CPU_COST_MODEL.contraction_gflops


def test_invalid_models_rejected():
    with pytest.raises(ConfigurationError):
        DeviceCostModel("bad", 0.0, 0.0, contraction_gflops=0.0, svd_gflops=1.0)
    with pytest.raises(ConfigurationError):
        DeviceCostModel("bad", -1.0, 0.0, contraction_gflops=1.0, svd_gflops=1.0)


def test_times_increase_with_bond_dimension():
    for model in (CPU_COST_MODEL, GPU_COST_MODEL):
        assert model.two_qubit_gate_time(2, 2, 2) < model.two_qubit_gate_time(64, 64, 64)
        assert model.inner_product_time(100, 2) < model.inner_product_time(100, 256)
        assert model.single_qubit_gate_time(2, 2) < model.single_qubit_gate_time(128, 128)


def test_times_scale_with_qubit_count():
    assert CPU_COST_MODEL.inner_product_time(50, 16) < CPU_COST_MODEL.inner_product_time(
        200, 16
    )


def test_gpu_slower_at_small_chi_faster_at_large_chi():
    """The CPU/GPU crossover of Figure 5 exists in the cost models."""
    small_cpu = CPU_COST_MODEL.two_qubit_gate_time(4, 4, 4)
    small_gpu = GPU_COST_MODEL.two_qubit_gate_time(4, 4, 4)
    assert small_gpu > small_cpu  # overhead dominates tiny tensors

    large_cpu = CPU_COST_MODEL.two_qubit_gate_time(1024, 1024, 1024)
    large_gpu = GPU_COST_MODEL.two_qubit_gate_time(1024, 1024, 1024)
    assert large_gpu < large_cpu  # throughput dominates large tensors

    ip_small_cpu = CPU_COST_MODEL.inner_product_time(100, 8)
    ip_small_gpu = GPU_COST_MODEL.inner_product_time(100, 8)
    assert ip_small_gpu > ip_small_cpu
    ip_large_cpu = CPU_COST_MODEL.inner_product_time(100, 512)
    ip_large_gpu = GPU_COST_MODEL.inner_product_time(100, 512)
    assert ip_large_gpu < ip_large_cpu


def test_crossover_chi_is_a_few_hundred():
    """Find the chi where the GPU inner product overtakes the CPU; the paper
    reports chi ~ 320 -- we only require the same order of magnitude."""
    crossover = None
    for chi in range(2, 4096, 2):
        if GPU_COST_MODEL.inner_product_time(100, chi) < CPU_COST_MODEL.inner_product_time(
            100, chi
        ):
            crossover = chi
            break
    assert crossover is not None
    assert 50 <= crossover <= 1500


def test_flop_counts_positive_and_monotone():
    assert DeviceCostModel.single_qubit_gate_flops(1, 1) > 0
    assert DeviceCostModel.two_qubit_gate_flops(1, 1, 1) > 0
    assert DeviceCostModel.inner_product_flops(10, 1) > 0
    assert DeviceCostModel.inner_product_flops(10, 8) < DeviceCostModel.inner_product_flops(
        10, 16
    )


# ----------------------------------------------------------------------
# Stacked cross-sweep entries
# ----------------------------------------------------------------------
def test_batched_inner_product_time_equals_per_point_at_batch_one():
    """The stacked model degenerates to the per-point model for one pair."""
    for model in (CPU_COST_MODEL, GPU_COST_MODEL):
        assert model.batched_inner_product_time(1, 24, 16) == pytest.approx(
            model.inner_product_time(24, 16)
        )


def test_batched_inner_product_time_amortises_launch_overhead():
    """Launches are charged once per stack, so the stacked time is strictly
    below batch x per-point and strictly above the pure flop time."""
    for model in (CPU_COST_MODEL, GPU_COST_MODEL):
        batch, nq, chi = 64, 24, 16
        stacked = model.batched_inner_product_time(batch, nq, chi)
        per_point = batch * model.inner_product_time(nq, chi)
        flops_only = model.batched_inner_product_flops(batch, nq, chi) / (
            model.contraction_gflops * 1e9
        )
        assert flops_only < stacked < per_point


def test_batched_inner_product_flops_scale_linearly():
    assert DeviceCostModel.batched_inner_product_flops(
        8, 24, 16
    ) == 8 * DeviceCostModel.inner_product_flops(24, 16)


def test_cross_sweep_time_is_the_full_block_as_one_stack():
    for model in (CPU_COST_MODEL, GPU_COST_MODEL):
        assert model.cross_sweep_time(6, 7, 24, 16) == pytest.approx(
            model.batched_inner_product_time(42, 24, 16)
        )


def test_preferred_cross_model_picks_cpu_then_gpu():
    """The modelled Fig. 5 dispatch: small-chi blocks stay on the CPU, a
    large stacked sweep's flops overtake the GPU's launch overhead."""
    pairs = 32 * 64  # a serving-scale landmark block
    assert preferred_cross_model(pairs, 24, 4) is CPU_COST_MODEL
    assert preferred_cross_model(pairs, 24, 256) is GPU_COST_MODEL
    # The crossover chi for a block this size is far below the per-point
    # chi ~ 320: batching amortises the GPU's launch cost over the stack.
    block_crossover = next(
        chi
        for chi in range(2, 1024)
        if GPU_COST_MODEL.batched_inner_product_time(pairs, 24, chi)
        < CPU_COST_MODEL.batched_inner_product_time(pairs, 24, chi)
    )
    per_point_crossover = next(
        chi
        for chi in range(2, 4096)
        if GPU_COST_MODEL.inner_product_time(24, chi)
        < CPU_COST_MODEL.inner_product_time(24, chi)
    )
    assert block_crossover < per_point_crossover


def test_preferred_cross_model_rejects_empty_candidates():
    with pytest.raises(ConfigurationError):
        preferred_cross_model(10, 24, 8, models=())
