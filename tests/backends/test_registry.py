"""Unit tests for the backend registry."""

import pytest

from repro.backends import (
    CpuBackend,
    SimulatedGpuBackend,
    available_backends,
    get_backend,
)
from repro.backends.registry import register_backend
from repro.config import SimulationConfig
from repro.exceptions import BackendError


def test_available_backends_lists_builtins():
    names = available_backends()
    assert "cpu" in names
    assert "gpu" in names


def test_get_backend_returns_correct_types():
    assert isinstance(get_backend("cpu"), CpuBackend)
    assert isinstance(get_backend("gpu"), SimulatedGpuBackend)


def test_get_backend_passes_config():
    config = SimulationConfig(truncation_cutoff=1e-12)
    backend = get_backend("cpu", config)
    assert backend.config.truncation_cutoff == 1e-12


def test_unknown_backend_raises():
    with pytest.raises(BackendError):
        get_backend("tpu")


def test_register_custom_backend_and_duplicate_rejection():
    name = "custom-test-backend"
    if name not in available_backends():
        register_backend(name, lambda config: CpuBackend(config))
    assert name in available_backends()
    assert isinstance(get_backend(name), CpuBackend)
    with pytest.raises(BackendError):
        register_backend(name, lambda config: CpuBackend(config))
