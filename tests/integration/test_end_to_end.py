"""Integration tests exercising the full stack at toy scale.

These mirror the paper's experiments in miniature: kernel construction on a
balanced fraud sample, the quantum-versus-Gaussian comparison, the distributed
Gram matrix feeding the SVM, and the depth-induced kernel concentration.
"""

import numpy as np
import pytest

from repro.config import AnsatzConfig
from repro.core import ClassificationExperiment, run_classification_experiment
from repro.data import DatasetSpec, balanced_subsample, generate_elliptic_like, select_features
from repro.kernels import QuantumKernel, kernel_concentration
from repro.parallel import compute_gram_distributed
from repro.svm import FeatureScaler, PrecomputedKernelSVC, roc_auc_score, train_test_split


@pytest.fixture(scope="module")
def dataset():
    return generate_elliptic_like(DatasetSpec(num_samples=900, num_features=10, seed=21))


def test_quantum_and_gaussian_both_learn(dataset):
    """Both kernels reach AUC well above chance on the synthetic fraud task."""
    results = {}
    for kernel in ("quantum", "gaussian"):
        exp = ClassificationExperiment(
            num_features=6, sample_size=40, gamma=0.5, kernel=kernel, seed=5
        )
        outcome = run_classification_experiment(exp, dataset=dataset, c_grid=(1.0, 4.0))
        results[kernel] = outcome.test_auc
    assert results["quantum"] > 0.65
    assert results["gaussian"] > 0.65


def test_more_training_data_does_not_hurt(dataset):
    """Trend behind Fig. 10: larger samples give equal or better test AUC
    (checked with a tolerance because the samples are tiny)."""
    aucs = []
    for size in (16, 48):
        exp = ClassificationExperiment(
            num_features=6, sample_size=size, gamma=0.5, seed=13
        )
        aucs.append(
            run_classification_experiment(exp, dataset=dataset, c_grid=(1.0, 4.0)).test_auc
        )
    assert aucs[1] >= aucs[0] - 0.1


def test_distributed_gram_feeds_svm(dataset):
    """Round-robin distributed kernel -> SVM gives the same AUC as sequential."""
    sample = balanced_subsample(dataset, 24, seed=2)
    X = select_features(sample.features, 5)
    y = sample.labels
    X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
    scaler = FeatureScaler()
    Xs_train = scaler.fit_transform(X_train)
    Xs_test = scaler.transform(X_test)

    ansatz = AnsatzConfig(num_features=5, interaction_distance=1, layers=2, gamma=0.5)

    # Sequential reference.
    qk = QuantumKernel(ansatz)
    train_states = qk.encode(Xs_train)
    K_train_seq = qk.gram_matrix(Xs_train).matrix
    K_test = qk.cross_matrix(Xs_test, train_states).matrix

    # Distributed training kernel.
    distributed = compute_gram_distributed(
        Xs_train, ansatz, num_processes=3, strategy="round-robin"
    )
    assert np.allclose(distributed.matrix, K_train_seq, atol=1e-10)

    model_seq = PrecomputedKernelSVC(C=2.0).fit(K_train_seq, y_train)
    model_dist = PrecomputedKernelSVC(C=2.0).fit(distributed.matrix, y_train)
    auc_seq = roc_auc_score(y_test, model_seq.decision_function(K_test))
    auc_dist = roc_auc_score(y_test, model_dist.decision_function(K_test))
    assert auc_seq == pytest.approx(auc_dist, abs=1e-9)


def test_depth_causes_kernel_concentration(dataset):
    """Trend behind Table III: deep ansatze concentrate the kernel."""
    sample = balanced_subsample(dataset, 16, seed=7)
    X = select_features(sample.features, 5)
    scaler = FeatureScaler()
    Xs = scaler.fit_transform(X)

    means = []
    for layers in (1, 2, 8):
        ansatz = AnsatzConfig(num_features=5, layers=layers, gamma=1.0)
        K = QuantumKernel(ansatz).gram_matrix(Xs).matrix
        means.append(kernel_concentration(K)["off_diagonal_mean"])
    assert means[2] < means[0]
    # All kernels are valid similarity matrices regardless of depth.
    assert all(0.0 <= m <= 1.0 for m in means)


def test_interaction_distance_increases_resource_usage(dataset):
    """Trend behind Fig. 5 / Table I: larger d means larger bond dimension,
    more memory and more modelled simulation time."""
    sample = balanced_subsample(dataset, 8, seed=3)
    X = select_features(sample.features, 8)
    Xs = FeatureScaler().fit_transform(X)

    stats = {}
    for d in (1, 3):
        ansatz = AnsatzConfig(num_features=8, interaction_distance=d, layers=2, gamma=1.0)
        result = QuantumKernel(ansatz).gram_matrix(Xs)
        stats[d] = result
    assert stats[3].max_bond_dimension >= stats[1].max_bond_dimension
    assert stats[3].total_state_memory_bytes >= stats[1].total_state_memory_bytes
    assert stats[3].modelled_simulation_time_s > stats[1].modelled_simulation_time_s
