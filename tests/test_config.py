"""Unit tests for the configuration dataclasses."""

import numpy as np
import pytest

from repro.config import (
    DEFAULT_C_GRID,
    AnsatzConfig,
    ExperimentConfig,
    SimulationConfig,
    SVMConfig,
    config_from_mapping,
    make_rng,
)
from repro.exceptions import ConfigurationError


def test_make_rng_accepts_seed_none_and_generator():
    a = make_rng(3)
    b = make_rng(3)
    assert a.integers(1000) == b.integers(1000)
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen
    assert make_rng(None) is not None


def test_simulation_config_defaults_and_validation():
    cfg = SimulationConfig()
    assert cfg.truncation_cutoff == 1e-16
    assert cfg.max_bond_dim is None
    d = cfg.to_dict()
    assert d["dtype"] == "complex128"
    with pytest.raises(ConfigurationError):
        SimulationConfig(truncation_cutoff=-1)
    with pytest.raises(ConfigurationError):
        SimulationConfig(max_bond_dim=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(dtype=np.float64)


def test_ansatz_config_validation():
    cfg = AnsatzConfig(num_features=10, interaction_distance=3, layers=2, gamma=0.5)
    assert cfg.num_qubits == 10
    assert cfg.to_dict()["gamma"] == 0.5
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=0)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, interaction_distance=0)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, interaction_distance=5)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, layers=0)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, gamma=0.0)


def test_single_feature_ansatz_allowed():
    cfg = AnsatzConfig(num_features=1, interaction_distance=1)
    assert cfg.num_qubits == 1


def test_svm_config_validation():
    assert SVMConfig().C == 1.0
    assert SVMConfig().to_dict()["tol"] == 1e-3
    with pytest.raises(ConfigurationError):
        SVMConfig(C=0)
    with pytest.raises(ConfigurationError):
        SVMConfig(tol=0)
    with pytest.raises(ConfigurationError):
        SVMConfig(max_iter=0)


def test_default_c_grid_matches_paper_range():
    assert min(DEFAULT_C_GRID) == 0.01
    assert max(DEFAULT_C_GRID) == 4.0
    assert all(c > 0 for c in DEFAULT_C_GRID)


def test_experiment_config_roundtrip():
    exp = ExperimentConfig(
        ansatz=AnsatzConfig(num_features=8, interaction_distance=2, gamma=0.5),
        train_size=32,
        test_size=8,
        seed=11,
    )
    mapping = exp.to_dict()
    rebuilt = config_from_mapping(mapping)
    assert rebuilt.ansatz == exp.ansatz
    assert rebuilt.train_size == 32
    assert rebuilt.seed == 11
    assert rebuilt.simulation.truncation_cutoff == exp.simulation.truncation_cutoff


def test_experiment_config_validation():
    ansatz = AnsatzConfig(num_features=4)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, train_size=1)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, test_size=0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, svm_c_grid=())
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, svm_c_grid=(0.0, 1.0))
