"""Unit tests for the configuration dataclasses."""

import numpy as np
import pytest

from repro.config import (
    DEFAULT_C_GRID,
    AnsatzConfig,
    ExperimentConfig,
    ServingConfig,
    SimulationConfig,
    SVMConfig,
    TuningConfig,
    config_from_mapping,
    make_rng,
)
from repro.exceptions import ConfigurationError


def test_make_rng_accepts_seed_none_and_generator():
    a = make_rng(3)
    b = make_rng(3)
    assert a.integers(1000) == b.integers(1000)
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen
    assert make_rng(None) is not None


def test_simulation_config_defaults_and_validation():
    cfg = SimulationConfig()
    assert cfg.truncation_cutoff == 1e-16
    assert cfg.max_bond_dim is None
    d = cfg.to_dict()
    assert d["dtype"] == "complex128"
    with pytest.raises(ConfigurationError):
        SimulationConfig(truncation_cutoff=-1)
    with pytest.raises(ConfigurationError):
        SimulationConfig(max_bond_dim=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(dtype=np.float64)


def test_ansatz_config_validation():
    cfg = AnsatzConfig(num_features=10, interaction_distance=3, layers=2, gamma=0.5)
    assert cfg.num_qubits == 10
    assert cfg.to_dict()["gamma"] == 0.5
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=0)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, interaction_distance=0)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, interaction_distance=5)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, layers=0)
    with pytest.raises(ConfigurationError):
        AnsatzConfig(num_features=5, gamma=0.0)


def test_single_feature_ansatz_allowed():
    cfg = AnsatzConfig(num_features=1, interaction_distance=1)
    assert cfg.num_qubits == 1


def test_svm_config_validation():
    assert SVMConfig().C == 1.0
    assert SVMConfig().to_dict()["tol"] == 1e-3
    with pytest.raises(ConfigurationError):
        SVMConfig(C=0)
    with pytest.raises(ConfigurationError):
        SVMConfig(tol=0)
    with pytest.raises(ConfigurationError):
        SVMConfig(max_iter=0)


def test_default_c_grid_matches_paper_range():
    assert min(DEFAULT_C_GRID) == 0.01
    assert max(DEFAULT_C_GRID) == 4.0
    assert all(c > 0 for c in DEFAULT_C_GRID)


def test_experiment_config_roundtrip():
    exp = ExperimentConfig(
        ansatz=AnsatzConfig(num_features=8, interaction_distance=2, gamma=0.5),
        train_size=32,
        test_size=8,
        seed=11,
    )
    mapping = exp.to_dict()
    rebuilt = config_from_mapping(mapping)
    assert rebuilt.ansatz == exp.ansatz
    assert rebuilt.train_size == 32
    assert rebuilt.seed == 11
    assert rebuilt.simulation.truncation_cutoff == exp.simulation.truncation_cutoff


def test_experiment_config_validation():
    ansatz = AnsatzConfig(num_features=4)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, train_size=1)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, test_size=0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, svm_c_grid=())
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ansatz=ansatz, svm_c_grid=(0.0, 1.0))


def test_tuning_config_defaults_and_roundtrip():
    tuning = TuningConfig()
    assert tuning.max_batch == 32
    assert tuning.encode_batch_size is None
    assert tuning.queue_depth_high_water is None
    assert tuning.min_batch <= tuning.batch_ceiling
    d = tuning.to_dict()
    assert TuningConfig(**d) == tuning


def test_tuning_config_validates_knobs():
    # Regression: these used to slip through to the serving layer unvalidated.
    with pytest.raises(ConfigurationError, match="wait_jitter_ms"):
        TuningConfig(wait_jitter_ms=-0.5)
    with pytest.raises(ConfigurationError, match="queue_depth_high_water"):
        TuningConfig(queue_depth_high_water=0)
    with pytest.raises(ConfigurationError, match="max_batch"):
        TuningConfig(max_batch=0)
    with pytest.raises(ConfigurationError, match="max_wait_ms"):
        TuningConfig(max_wait_ms=-1.0)
    with pytest.raises(ConfigurationError, match="encode_batch_size"):
        TuningConfig(encode_batch_size=0)


def test_tuning_config_validates_bounds():
    with pytest.raises(ConfigurationError, match="min_batch"):
        TuningConfig(min_batch=0)
    with pytest.raises(ConfigurationError, match="batch_ceiling"):
        TuningConfig(min_batch=8, batch_ceiling=4)
    with pytest.raises(ConfigurationError, match="min_wait_ms"):
        TuningConfig(min_wait_ms=-1.0)
    with pytest.raises(ConfigurationError, match="wait_ceiling_ms"):
        TuningConfig(min_wait_ms=10.0, wait_ceiling_ms=5.0)
    with pytest.raises(ConfigurationError, match="min_high_water"):
        TuningConfig(min_high_water=0)
    with pytest.raises(ConfigurationError, match="high_water_ceiling"):
        TuningConfig(min_high_water=16, high_water_ceiling=8)


def test_tuning_config_initial_knob_may_sit_outside_bounds():
    # Compatibility: a fixed knob outside the adaptation interval stays
    # legal -- the static policy never moves it.
    tuning = TuningConfig(max_wait_ms=0.0, min_wait_ms=0.5)
    assert tuning.max_wait_ms == 0.0


def test_serving_config_nested_tuning_is_canonical():
    config = ServingConfig(
        tuning=TuningConfig(max_batch=4, max_wait_ms=2.0),
        num_replicas=2,
    )
    assert config.tuning.max_batch == 4
    # Legacy attribute readers see the effective tuning.
    assert config.max_batch == 4
    assert config.max_wait_ms == 2.0
    assert config.queue_depth_high_water is None


def test_serving_config_loose_knobs_deprecated_but_folded():
    with pytest.warns(DeprecationWarning, match="loose serving knobs"):
        config = ServingConfig(max_batch=8, wait_jitter_ms=1.0)
    assert config.tuning == TuningConfig(max_batch=8, wait_jitter_ms=1.0)
    assert config.max_batch == 8


def test_serving_config_rejects_loose_and_nested_together():
    with pytest.raises(ConfigurationError, match="not both"):
        ServingConfig(max_batch=8, tuning=TuningConfig())


def test_serving_config_validates_control_fields():
    with pytest.raises(ConfigurationError, match="num_replicas"):
        ServingConfig(num_replicas=0)
    with pytest.raises(ConfigurationError, match="control_policy"):
        ServingConfig(control_policy="")
    with pytest.raises(ConfigurationError, match="control_interval_s"):
        ServingConfig(control_interval_s=-1.0)
    with pytest.raises(ConfigurationError, match="warm_max_keys"):
        ServingConfig(warm_max_keys=-1)
