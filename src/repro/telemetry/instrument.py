"""Pull-model bindings from the library's accounting silos to the registry.

Each ``bind_*`` helper attaches one *collector* to a
:class:`~repro.telemetry.registry.MetricsRegistry`: a callback that runs at
collection time (a scrape, a snapshot, a bench dump), reads the bound
object's existing counters, and mirrors them into named metric families.
The bound objects are **duck-typed** -- this module never imports
``serving``, ``engine`` or ``backends``, so telemetry stays a leaf package
and the hot paths those silos already instrument gain zero per-request work.

Collector names are stable per bound slot (``queue-0``, ``backend-0-primary``
...), so re-binding after a replica restart replaces the stale collector
instead of stacking a second reader of a dead object.

Metric families follow the registry's naming conventions: ``repro_`` prefix,
``_total`` for monotone counts, ``_seconds`` reserved for wall-clock values
(which :meth:`MetricsRegistry.deterministic_snapshot` excludes).
"""

from __future__ import annotations

from typing import List, Optional

from .registry import MetricsRegistry

__all__ = [
    "bind_queue",
    "bind_router",
    "bind_state_store",
    "bind_backend",
    "bind_engine",
    "bind_classifier_coverage",
    "bind_drift_controller",
    "bind_controller",
]

#: Batch sizes are small integers; powers of two up to a generous max batch.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def bind_queue(
    registry: MetricsRegistry,
    queue,
    replica: str = "0",
    bind_engine_too: bool = True,
) -> List[str]:
    """Publish one serving queue's metrics (and, by default, its engine's).

    ``queue`` is anything with the :class:`repro.serving.AsyncServingQueue`
    surface: a ``metrics`` accounting object, ``memo_hits``, ``pending``.
    Returns the registered collector names.
    """
    requests = registry.counter(
        "repro_serving_requests_total",
        "Requests completed by the serving queue (appeared in a flushed batch).",
        ("replica",),
    )
    enqueued = registry.counter(
        "repro_serving_enqueued_total",
        "Requests accepted by the serving queue.",
        ("replica",),
    )
    batches = registry.counter(
        "repro_serving_batches_total",
        "Batches flushed by the coalescer.",
        ("replica",),
    )
    memo_hits = registry.counter(
        "repro_serving_memo_hits_total",
        "Requests answered from the response memo without touching the engine.",
        ("replica",),
    )
    depth_high_water = registry.gauge(
        "repro_serving_queue_depth_high_water",
        "Deepest the pending buffer has ever been.",
        ("replica",),
    )
    pending = registry.gauge(
        "repro_serving_queue_pending",
        "Requests accepted but not yet flushed, at scrape time.",
        ("replica",),
    )
    latency = registry.histogram(
        "repro_serving_request_latency_seconds",
        "End-to-end request latency (enqueue to result), in seconds.",
        ("replica",),
    )
    batch_size = registry.histogram(
        "repro_serving_batch_size",
        "Size of flushed batches (the coalescing win).",
        ("replica",),
        buckets=BATCH_SIZE_BUCKETS,
    )
    throughput = registry.gauge(
        "repro_serving_throughput_rps",
        "Completed requests per second of observed serving time.",
        ("replica",),
    )
    model_version = registry.gauge(
        "repro_serving_model_version",
        "Version of the model slot currently answering requests.",
        ("replica",),
    )
    swaps = registry.counter(
        "repro_serving_swaps_total",
        "Atomic model swaps installed on the serving queue.",
        ("replica",),
    )

    def collect() -> None:
        metrics = queue.metrics
        snapshot = metrics.to_dict()
        requests.labels(replica=replica).set_total(snapshot["total_requests"])
        enqueued.labels(replica=replica).set_total(snapshot["total_enqueued"])
        batches.labels(replica=replica).set_total(snapshot["total_batches"])
        memo_hits.labels(replica=replica).set_total(queue.memo_hits)
        depth_high_water.labels(replica=replica).set(
            snapshot["queue_depth_high_water"]
        )
        pending.labels(replica=replica).set(queue.pending)
        latency.labels(replica=replica).replace(metrics.latency_samples())
        batch_size.labels(replica=replica).replace(metrics.batch_size_samples())
        throughput.labels(replica=replica).set(snapshot.get("throughput_rps", 0.0))
        model_version.labels(replica=replica).set(
            getattr(queue, "model_version", 0)
        )
        swaps.labels(replica=replica).set_total(getattr(queue, "swap_count", 0))

    names = [registry.register_collector(collect, name=f"queue-{replica}")]
    engine = getattr(
        getattr(getattr(queue, "classifier", None), "feature_map", None),
        "engine",
        None,
    )
    if bind_engine_too and engine is not None:
        names.extend(bind_engine(registry, engine, replica=replica))
    return names


def bind_state_store(
    registry: MetricsRegistry, store, replica: str = "0"
) -> List[str]:
    """Publish one content-addressed state store's hit/miss/eviction stats.

    ``store`` is anything with a ``stats()`` returning the
    :class:`repro.engine.cache.CacheStats` surface.
    """
    hits = registry.counter(
        "repro_store_hits_total",
        "State-store lookups answered from the cache.",
        ("replica",),
    )
    misses = registry.counter(
        "repro_store_misses_total",
        "State-store lookups that required an encode.",
        ("replica",),
    )
    evictions = registry.counter(
        "repro_store_evictions_total",
        "Entries evicted from the state store under its byte budget.",
        ("replica",),
    )
    entries = registry.gauge(
        "repro_store_entries",
        "Entries currently resident in the state store.",
        ("replica",),
    )
    bytes_in_use = registry.gauge(
        "repro_store_bytes",
        "Bytes currently resident in the state store.",
        ("replica",),
    )
    hit_ratio = registry.gauge(
        "repro_store_hit_ratio",
        "Fraction of state-store lookups answered from the cache.",
        ("replica",),
    )

    def collect() -> None:
        stats = store.stats()
        hits.labels(replica=replica).set_total(stats.hits)
        misses.labels(replica=replica).set_total(stats.misses)
        evictions.labels(replica=replica).set_total(stats.evictions)
        entries.labels(replica=replica).set(stats.num_entries)
        bytes_in_use.labels(replica=replica).set(stats.bytes_in_use)
        hit_ratio.labels(replica=replica).set(stats.hit_rate)

    return [registry.register_collector(collect, name=f"store-{replica}")]


def bind_backend(
    registry: MetricsRegistry, backend, replica: str = "0", role: str = "primary"
) -> List[str]:
    """Publish one backend's primitive counts and modelled/wall timings.

    ``backend`` is anything with the :class:`repro.backends.Backend` counter
    surface (``num_simulations``, ``modelled_simulation_time_s``, ...).  The
    ``device`` label comes from the backend's cost-model name, so the
    modelled-vs-measured comparison is per device; ``role`` distinguishes an
    engine's primary backend from its cross-dispatch one.
    """
    labelnames = ("device", "replica", "role")
    device = getattr(getattr(backend, "cost_model", None), "name", None) or getattr(
        backend, "name", "unknown"
    )
    labels = {"device": str(device), "replica": replica, "role": role}

    simulations = registry.counter(
        "repro_backend_simulations_total",
        "Circuit simulations accounted by the backend (batching-invariant).",
        labelnames,
    )
    inner_products = registry.counter(
        "repro_backend_inner_products_total",
        "MPS inner products accounted by the backend (batching-invariant).",
        labelnames,
    )
    encode_batches = registry.counter(
        "repro_encode_batches_total",
        "Stacked encode sweeps executed (simulate_batch calls that swept).",
        labelnames,
    )
    encode_launches = registry.counter(
        "repro_encode_launches_total",
        "Stacked gate launches executed by the batched encode sweeps.",
        labelnames,
    )
    prefix_forks = registry.counter(
        "repro_encode_prefix_forks_total",
        "Divergence points of the prefix-sharing encode tree.",
        labelnames,
    )
    timing_gauges = {
        key: registry.gauge(
            f"repro_backend_{key}",
            f"Accumulated backend {key.replace('_', ' ')} (cost-model vs measured).",
            labelnames,
        )
        for key in (
            "modelled_simulation_time_seconds",
            "modelled_inner_product_time_seconds",
            "modelled_batched_simulation_time_seconds",
            "modelled_batched_inner_product_time_seconds",
            "wall_simulation_time_seconds",
            "wall_inner_product_time_seconds",
        )
    }

    def collect() -> None:
        # The engine resets the per-call counters before every public call;
        # lifetime_summary() folds across those resets, which is the monotone
        # view a counter family requires.  Raw attributes are the fallback
        # for backend-likes without it.
        if hasattr(backend, "lifetime_summary"):
            summary = backend.lifetime_summary()
        else:
            summary = {
                attr: getattr(backend, attr, 0)
                for attr in (
                    "num_simulations",
                    "num_inner_products",
                    "num_encode_batches",
                    "num_encode_stacked_launches",
                    "num_prefix_forks",
                )
            }
        simulations.labels(**labels).set_total(summary["num_simulations"])
        inner_products.labels(**labels).set_total(summary["num_inner_products"])
        encode_batches.labels(**labels).set_total(summary["num_encode_batches"])
        encode_launches.labels(**labels).set_total(
            summary["num_encode_stacked_launches"]
        )
        prefix_forks.labels(**labels).set_total(summary["num_prefix_forks"])
        for key, gauge in timing_gauges.items():
            attr = key.replace("_seconds", "_s")
            gauge.labels(**labels).set(summary.get(attr, getattr(backend, attr, 0.0)))

    return [registry.register_collector(collect, name=f"backend-{replica}-{role}")]


def bind_engine(registry: MetricsRegistry, engine, replica: str = "0") -> List[str]:
    """Publish one kernel engine's store and backend(s)."""
    names: List[str] = []
    store = getattr(engine, "store", None)
    if store is not None:
        names.extend(bind_state_store(registry, store, replica=replica))
    backend = getattr(engine, "backend", None)
    if backend is not None:
        names.extend(bind_backend(registry, backend, replica=replica, role="primary"))
    cross = getattr(engine, "cross_backend", None)
    if cross is not None:
        names.extend(bind_backend(registry, cross, replica=replica, role="cross"))
    return names


def bind_router(registry: MetricsRegistry, router) -> List[str]:
    """Publish a replica router's fleet counters plus every replica's queue.

    ``router`` is anything with the :class:`repro.serving.ReplicaRouter`
    surface (``metrics``, ``queues``, ``alive_replicas``, ``metrics_view``).
    """
    routed = registry.counter(
        "repro_router_routed_total",
        "Requests accepted and handed to a replica.",
        ("replica",),
    )
    shed = registry.counter(
        "repro_router_shed_total",
        "Requests rejected by load shedding (every replica saturated).",
    )
    failovers = registry.counter(
        "repro_router_failover_total",
        "Requests re-routed off their policy-chosen replica.",
    )
    replicas_total = registry.gauge(
        "repro_router_replicas", "Configured fleet size."
    )
    replicas_alive = registry.gauge(
        "repro_router_alive_replicas", "Replicas currently accepting traffic."
    )
    warm_hit_ratio = registry.gauge(
        "repro_router_warm_hit_ratio",
        "Fraction of fleet cache interest served without a circuit simulation.",
    )

    def collect() -> None:
        view = router.metrics_view()
        for i, count in enumerate(view["routed_per_replica"]):
            routed.labels(replica=str(i)).set_total(count)
        shed.set_total(view["shed_count"])
        failovers.set_total(view["failover_count"])
        replicas_total.set(router.num_replicas)
        replicas_alive.set(len(router.alive_replicas))
        warm_hit_ratio.set(view.get("warm_hit_ratio", 0.0))

    names = [registry.register_collector(collect, name="router")]
    for i, queue in enumerate(router.queues):
        names.extend(bind_queue(registry, queue, replica=str(i)))
    return names


def bind_classifier_coverage(
    registry: MetricsRegistry, classifier
) -> Optional[List[str]]:
    """Publish a streaming classifier's rolling conformal-coverage gauge.

    ``classifier`` is anything with ``rolling_coverage()`` /
    ``feedback_count`` (the :class:`repro.approx.StreamingNystroemClassifier`
    surface after ``attach_conformal``).  Coverage drifting below the
    conformal guarantee is the live drift signal the adaptive control plane
    will act on.
    """
    coverage = registry.gauge(
        "repro_conformal_rolling_coverage",
        "Rolling fraction of labelled feedback covered by the conformal sets.",
    )
    feedback = registry.counter(
        "repro_conformal_feedback_total",
        "Labelled feedback points recorded against the conformal sets.",
    )

    def collect() -> None:
        feedback.set_total(getattr(classifier, "feedback_count", 0))
        value = classifier.rolling_coverage()
        coverage.set(0.0 if value is None else value)

    return [registry.register_collector(collect, name="conformal-coverage")]


def bind_drift_controller(
    registry: MetricsRegistry, controller
) -> List[str]:
    """Publish the drift-adaptation control loop's state.

    ``controller`` is anything with the
    :class:`repro.approx.DriftController` surface: ``rolling_coverage()``,
    ``feedback_count``, ``alarm_active``, ``alarm_count``, ``refit_count``,
    ``swap_count``, ``buffered_samples``.  Together with the per-replica
    ``repro_serving_model_version`` gauge these four counters tell the whole
    adaptation story on a dashboard: coverage dips, the alarm latches, a
    refit and a swap land, coverage recovers.
    """
    coverage = registry.gauge(
        "repro_drift_rolling_coverage",
        "Rolling conformal coverage observed by the drift controller.",
    )
    alarm = registry.gauge(
        "repro_drift_alarm_active",
        "Whether the drift alarm is currently latched (1) or armed (0).",
    )
    alarms = registry.counter(
        "repro_drift_alarms_total",
        "Times the rolling coverage crossed below the hysteresis band.",
    )
    refits = registry.counter(
        "repro_drift_refits_total",
        "Shadow refits completed by the drift controller.",
    )
    swaps = registry.counter(
        "repro_drift_swaps_total",
        "Adapted models installed into the serving tier.",
    )
    feedback = registry.counter(
        "repro_drift_feedback_total",
        "Labelled feedback points ingested by the drift controller.",
    )
    buffered = registry.gauge(
        "repro_drift_buffered_samples",
        "Labelled rows currently buffered as shadow-fit material.",
    )

    def collect() -> None:
        value = controller.rolling_coverage()
        coverage.set(0.0 if value is None else value)
        alarm.set(1.0 if getattr(controller, "alarm_active", False) else 0.0)
        alarms.set_total(getattr(controller, "alarm_count", 0))
        refits.set_total(getattr(controller, "refit_count", 0))
        swaps.set_total(getattr(controller, "swap_count", 0))
        feedback.set_total(getattr(controller, "feedback_count", 0))
        buffered.set(getattr(controller, "buffered_samples", 0))

    return [registry.register_collector(collect, name="drift-controller")]


def bind_controller(registry: MetricsRegistry, controller) -> List[str]:
    """Publish the adaptive control plane's knobs, counters and policy.

    ``controller`` is anything with the
    :class:`repro.control.AdaptiveController` surface:
    ``current_knobs()``, ``step_count``, ``adjustment_count``,
    ``recommended_replicas`` and a ``policy`` with a ``name``.  The knob
    gauges are labelled by knob name, so one family tells the whole tuning
    story on a dashboard: which values the loop is holding, how often it
    has moved them, and what fleet size it would recommend.
    """
    knob = registry.gauge(
        "repro_control_knob",
        "Current value of one adaptively tunable serving knob.",
        ("knob",),
    )
    steps = registry.counter(
        "repro_control_steps_total",
        "Observe/propose/apply cycles run by the adaptive controller.",
    )
    adjustments = registry.counter(
        "repro_control_adjustments_total",
        "Individual knob changes applied by the adaptive controller.",
    )
    recommended = registry.gauge(
        "repro_control_recommended_replicas",
        "The controller's advisory replica count for the fleet.",
    )
    policy_info = registry.gauge(
        "repro_control_policy",
        "Active control policy (value fixed at 1; the label carries it).",
        ("policy",),
    )

    def collect() -> None:
        for name, value in controller.current_knobs().items():
            knob.labels(knob=name).set(
                0.0 if value is None else float(value)
            )
        steps.set_total(getattr(controller, "step_count", 0))
        adjustments.set_total(getattr(controller, "adjustment_count", 0))
        recommended.set(getattr(controller, "recommended_replicas", 1))
        policy_info.labels(policy=controller.policy.name).set(1.0)

    return [registry.register_collector(collect, name="adaptive-controller")]
