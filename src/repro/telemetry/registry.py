"""Metrics registry: Counter / Gauge / Histogram primitives with labels.

Until this subsystem, the library's operational accounting lived in four
disconnected silos -- :class:`repro.profiling.ServingMetrics` per queue,
:class:`repro.profiling.RouterMetrics` per fleet, the engine's
:class:`repro.engine.cache.CacheStats`, and the backends' timing counters --
none of which shared a naming scheme or a machine-readable export.  The
:class:`MetricsRegistry` is the one place they all publish to:

* **primitives** -- :class:`Counter` (monotone totals), :class:`Gauge`
  (instantaneous values) and :class:`Histogram` (bucketed distributions),
  each optionally carrying *labels* (``requests_total{replica="0"}``) so one
  metric family covers a whole fleet;
* **pull-model collectors** -- existing accounting objects are *bound* to
  the registry (:mod:`repro.telemetry.instrument`) through callbacks that
  run at collection time, so the hot paths those silos already instrument
  gain **zero** new work per request: nothing happens until something
  scrapes;
* **deterministic snapshots** -- :meth:`MetricsRegistry.deterministic_snapshot`
  drops every wall-clock family (suffix ``_seconds`` / ``_rps`` by the
  naming convention below), leaving exactly the counters, sizes and ratios
  that two identical request streams must reproduce identically -- the
  property the metamorphic metrics suite pins.

Naming conventions (enforced only by review, rendered by
:func:`repro.telemetry.prometheus.render_prometheus`):

* every family is prefixed ``repro_``;
* units are suffixes: ``_seconds``, ``_bytes``, ``_total`` (monotone
  counts), ``_ratio``;
* wall-clock measurements -- and only those -- end in ``_seconds`` or
  ``_rps``, so deterministic filtering is a pure function of the name.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Seconds-scale buckets covering sub-millisecond cache hits through
#: multi-second cold flushes -- the serving latency range this system spans.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(labelnames)
    for label in out:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise TelemetryError(f"invalid label name {label!r}")
    if len(set(out)) != len(out):
        raise TelemetryError(f"duplicate label names in {out}")
    return out


class _Metric:
    """Shared machinery of one metric family: label handling + series map."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = str(help)
        self.labelnames = _validate_labelnames(labelnames)
        self._lock = threading.Lock()
        self._series: "Dict[Tuple[str, ...], object]" = {}

    # ------------------------------------------------------------------
    def _key(self, labels: Dict[str, str] | None) -> Tuple[str, ...]:
        labels = labels or {}
        if set(labels) != set(self.labelnames):
            raise TelemetryError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def labels(self, **labels: str) -> "_Bound":
        """A bound handle for one label combination."""
        return _Bound(self, self._key(labels))

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, payload) pairs sorted by label values."""
        with self._lock:
            return sorted(self._series.items())

    def label_dicts(self) -> List[Dict[str, str]]:
        """The recorded label combinations as dictionaries."""
        return [dict(zip(self.labelnames, key)) for key, _ in self.series()]


class _Bound:
    """One (metric, label values) pair; forwards the write API."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: _Metric, key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, -amount)

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)

    def set_total(self, value: float) -> None:
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)

    def replace(self, values: Iterable[float]) -> None:
        self._metric._replace(self._key, values)

    @property
    def value(self) -> float:
        return self._metric._get(self._key)


class Counter(_Metric):
    """A monotone total.  ``inc`` adds; ``set_total`` is for collectors that
    mirror an externally accumulated count (the pull-model bindings)."""

    metric_type = "counter"

    def _inc(self, key: Tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._series[key] = float(self._series.get(key, 0.0)) + amount

    def _set(self, key: Tuple[str, ...], value: float) -> None:
        if value < 0:
            raise TelemetryError(f"counter {self.name!r} cannot be negative")
        with self._lock:
            self._series[key] = float(value)

    def _get(self, key: Tuple[str, ...]) -> float:
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _observe(self, key, value):  # pragma: no cover - API symmetry
        raise TelemetryError(f"counter {self.name!r} does not support observe()")

    def _replace(self, key, values):  # pragma: no cover - API symmetry
        raise TelemetryError(f"counter {self.name!r} does not support replace()")

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._key(None), amount)

    def set_total(self, value: float) -> None:
        self._set(self._key(None), value)

    @property
    def value(self) -> float:
        return self._get(self._key(None))


class Gauge(_Metric):
    """An instantaneous value that can move both ways."""

    metric_type = "gauge"

    def _inc(self, key: Tuple[str, ...], amount: float) -> None:
        with self._lock:
            self._series[key] = float(self._series.get(key, 0.0)) + amount

    def _set(self, key: Tuple[str, ...], value: float) -> None:
        with self._lock:
            self._series[key] = float(value)

    def _get(self, key: Tuple[str, ...]) -> float:
        with self._lock:
            return float(self._series.get(key, 0.0))

    def _observe(self, key, value):  # pragma: no cover - API symmetry
        raise TelemetryError(f"gauge {self.name!r} does not support observe()")

    def _replace(self, key, values):  # pragma: no cover - API symmetry
        raise TelemetryError(f"gauge {self.name!r} does not support replace()")

    def set(self, value: float) -> None:
        self._set(self._key(None), value)

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._key(None), amount)

    def dec(self, amount: float = 1.0) -> None:
        self._inc(self._key(None), -amount)

    @property
    def value(self) -> float:
        return self._get(self._key(None))


class _HistogramData:
    """Bucket counts + sum for one histogram series."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.total = 0.0
        self.count = 0

    def observe(self, upper_bounds: Tuple[float, ...], value: float) -> None:
        value = float(value)
        for i, bound in enumerate(upper_bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        self.total += value
        self.count += 1


class Histogram(_Metric):
    """A bucketed distribution with Prometheus cumulative-bucket semantics.

    ``buckets`` are the *upper bounds* of the non-cumulative bins; an
    implicit ``+Inf`` bucket catches the tail.  ``replace`` rebuilds a series
    from a full sample list -- the pull-model bindings use it to mirror
    sample silos (e.g. a queue's recorded latencies) at collection time.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        # The +Inf catch-all is implicit; storage has one extra slot for it.
        self.upper_bounds = bounds

    def _data(self, key: Tuple[str, ...]) -> _HistogramData:
        data = self._series.get(key)
        if data is None:
            data = _HistogramData(len(self.upper_bounds) + 1)
            self._series[key] = data
        assert isinstance(data, _HistogramData)
        return data

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        with self._lock:
            self._data(key).observe(self.upper_bounds + (float("inf"),), value)

    def _replace(self, key: Tuple[str, ...], values: Iterable[float]) -> None:
        data = _HistogramData(len(self.upper_bounds) + 1)
        bounds = self.upper_bounds + (float("inf"),)
        for value in values:
            data.observe(bounds, value)
        with self._lock:
            self._series[key] = data

    def _inc(self, key, amount):  # pragma: no cover - API symmetry
        raise TelemetryError(f"histogram {self.name!r} does not support inc()")

    def _set(self, key, value):  # pragma: no cover - API symmetry
        raise TelemetryError(f"histogram {self.name!r} does not support set()")

    def _get(self, key):  # pragma: no cover - API symmetry
        raise TelemetryError(f"histogram {self.name!r} has no scalar value")

    def observe(self, value: float) -> None:
        self._observe(self._key(None), value)

    def replace(self, values: Iterable[float]) -> None:
        self._replace(self._key(None), values)

    def series_dict(self, data: _HistogramData) -> Dict:
        """JSON form of one series: cumulative buckets + sum + count."""
        cumulative = 0
        buckets: Dict[str, int] = {}
        for bound, count in zip(self.upper_bounds, data.bucket_counts):
            cumulative += count
            buckets[format_bound(bound)] = cumulative
        buckets["+Inf"] = data.count
        return {"buckets": buckets, "sum": data.total, "count": data.count}


def format_bound(bound: float) -> str:
    """Canonical text form of a bucket upper bound (``0.005``, ``+Inf``)."""
    if bound == float("inf"):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(float(bound))


class MetricsRegistry:
    """One process-wide catalogue of metric families plus pull collectors.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return a family:
    repeated registration with the same signature hands back the existing
    object (so binding helpers are idempotent), while a type or label-set
    conflict raises :class:`~repro.exceptions.TelemetryError`.

    Collectors registered through :meth:`register_collector` run at every
    :meth:`collect` (and therefore at every scrape / snapshot): each reads
    some accounting silo and writes the current values into the registry.
    This is the pull model -- hot paths never touch the registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._collectors: "Dict[str, Callable[[], None]]" = {}
        self._collector_counter = 0

    # ------------------------------------------------------------------
    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if (
                    type(existing) is not type(metric)
                    or existing.labelnames != metric.labelnames
                ):
                    raise TelemetryError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.metric_type} with labels {existing.labelnames}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Create or fetch a counter family."""
        metric = self._register(Counter(name, help, labelnames))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        """Create or fetch a gauge family."""
        metric = self._register(Gauge(name, help, labelnames))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Create or fetch a histogram family."""
        metric = self._register(Histogram(name, help, labelnames, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        """The registered family called ``name``, if any."""
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------
    def register_collector(
        self, collector: Callable[[], None], name: str | None = None
    ) -> str:
        """Attach a pull-model collector; returns its registry key.

        ``name`` deduplicates: re-registering under the same name replaces
        the previous collector instead of stacking a second read of the same
        silo (binding helpers pass a stable name per bound object).
        """
        with self._lock:
            if name is None:
                self._collector_counter += 1
                name = f"collector-{self._collector_counter}"
            self._collectors[name] = collector
            return name

    def unregister_collector(self, name: str) -> None:
        """Detach one collector (unknown names are a no-op)."""
        with self._lock:
            self._collectors.pop(name, None)

    def collect(self) -> List[_Metric]:
        """Run every collector, then return the families sorted by name."""
        with self._lock:
            collectors = list(self._collectors.values())
        for collector in collectors:
            collector()
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict]:
        """JSON-friendly snapshot of every family (collectors included)."""
        out: Dict[str, Dict] = {}
        for metric in self.collect():
            series = []
            for key, payload in metric.series():
                entry: Dict = {"labels": dict(zip(metric.labelnames, key))}
                if isinstance(metric, Histogram):
                    assert isinstance(payload, _HistogramData)
                    entry.update(metric.series_dict(payload))
                else:
                    entry["value"] = payload
                series.append(entry)
            out[metric.name] = {
                "type": metric.metric_type,
                "help": metric.help,
                "series": series,
            }
        return out

    def deterministic_snapshot(self) -> Dict[str, Dict]:
        """The snapshot minus every wall-clock family.

        Wall-clock measurement families end in ``_seconds`` or ``_rps`` by
        the naming convention; everything else (request counts, batch sizes,
        hit ratios, launch counts, byte sizes) is a pure function of the
        request stream and must be identical across reruns -- the contract
        the metamorphic metrics suite asserts.
        """
        return {
            name: family
            for name, family in self.to_dict().items()
            if not name.endswith(("_seconds", "_rps"))
        }
