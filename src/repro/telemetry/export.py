"""HTTP export surface: ``/metrics``, ``/health`` and ``/traces/recent``.

:class:`TelemetryServer` wraps a stdlib :class:`http.server.
ThreadingHTTPServer` in a daemon thread -- no third-party dependency, no
event loop -- and serves three read-only endpoints:

* ``/metrics`` -- the bound registry in Prometheus text exposition
  (``text/plain; version=0.0.4``), collectors freshly run per scrape;
* ``/health`` -- a JSON liveness document with status ``ok`` / ``degraded``
  / ``down`` (HTTP 200 / 200 / 503), derived from a caller-supplied health
  callback -- :func:`attach_endpoint` wires the standard ones for a queue
  (closed?) or a router fleet (how many replicas are alive?);
* ``/traces/recent?limit=N`` -- the tracer's newest finished traces as a
  JSON span dump, or an indented text flamegraph with ``&format=text``.

:func:`attach_endpoint` is the one-call entry point: give it a queue or a
:class:`~repro.serving.ReplicaRouter`-shaped fleet and it binds the standard
collectors (:mod:`repro.telemetry.instrument`), builds the health callback,
and starts the server on an ephemeral port.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from ..exceptions import TelemetryError
from .instrument import bind_classifier_coverage, bind_queue, bind_router
from .prometheus import render_prometheus
from .registry import MetricsRegistry
from .tracing import TRACER, Tracer, render_trace_text

__all__ = ["TelemetryServer", "attach_endpoint"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Request handler reading registry/tracer/health off the server object."""

    server: "_Server"

    # Silence the default stderr access log; telemetry must not spam stdio.
    def log_message(self, format: str, *args) -> None:
        pass

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        try:
            if url.path == "/metrics":
                self._send(
                    200,
                    PROMETHEUS_CONTENT_TYPE,
                    render_prometheus(self.server.registry),
                )
            elif url.path == "/health":
                health = self.server.health()
                status = 503 if health.get("status") == "down" else 200
                self._send(
                    status, "application/json", json.dumps(health, indent=2)
                )
            elif url.path == "/traces/recent":
                self._traces(parse_qs(url.query))
            else:
                self._send(
                    404,
                    "application/json",
                    json.dumps(
                        {
                            "error": f"unknown path {url.path!r}",
                            "endpoints": ["/metrics", "/health", "/traces/recent"],
                        }
                    ),
                )
        except Exception as exc:  # surface handler bugs as 500s, not hangs
            self._send(500, "application/json", json.dumps({"error": repr(exc)}))

    def _traces(self, query: Dict) -> None:
        tracer = self.server.tracer
        if tracer is None:
            self._send(
                200,
                "application/json",
                json.dumps({"enabled": False, "traces": []}),
            )
            return
        try:
            limit = int(query.get("limit", ["16"])[0])
        except ValueError:
            self._send(400, "application/json", json.dumps({"error": "bad limit"}))
            return
        if limit < 1:
            self._send(400, "application/json", json.dumps({"error": "bad limit"}))
            return
        traces = tracer.recent_traces(limit)
        if query.get("format", [""])[0] == "text":
            blocks = []
            for trace in traces:
                spans = tracer.trace_spans(trace["trace_id"])
                blocks.append(render_trace_text(spans))
            self._send(200, "text/plain; charset=utf-8", "\n\n".join(blocks) + "\n")
        else:
            self._send(
                200,
                "application/json",
                json.dumps({"enabled": tracer.enabled, "traces": traces}, indent=2),
            )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry: MetricsRegistry
    tracer: Optional[Tracer]
    health: Callable[[], Dict]


def _default_health() -> Dict:
    return {"status": "ok"}


class TelemetryServer:
    """Background HTTP server exporting one registry (and optionally traces).

    Binds ``host:port`` immediately (``port=0`` picks an ephemeral port --
    read it back from :attr:`port` / :attr:`url`) and serves from a daemon
    thread until :meth:`close`.  Usable as a context manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        health: Optional[Callable[[], Dict]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        try:
            self._httpd = _Server((host, port), _Handler)
        except OSError as exc:
            raise TelemetryError(
                f"cannot bind telemetry endpoint on {host}:{port}: {exc}"
            ) from exc
        self._httpd.registry = registry
        self._httpd.tracer = tracer
        self._httpd.health = health if health is not None else _default_health
        self.registry = registry
        self.tracer = tracer
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="telemetry-endpoint",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()


def _queue_health(queue) -> Callable[[], Dict]:
    def health() -> Dict:
        closed = bool(getattr(queue, "closed", False))
        return {
            "status": "down" if closed else "ok",
            "closed": closed,
            "pending": 0 if closed else int(queue.pending),
        }

    return health


def _router_health(router) -> Callable[[], Dict]:
    def health() -> Dict:
        alive = len(router.alive_replicas)
        total = int(router.num_replicas)
        if alive == 0:
            status = "down"
        elif alive < total:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "alive_replicas": alive,
            "num_replicas": total,
            "pending": router.pending(),
        }

    return health


def attach_endpoint(
    target,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = TRACER,
    host: str = "127.0.0.1",
    port: int = 0,
) -> TelemetryServer:
    """Start a telemetry endpoint for a serving queue or a replica router.

    ``target`` is duck-typed: anything with ``queues`` + ``alive_replicas``
    is treated as a router fleet (every replica queue is bound and
    ``/health`` reflects replica liveness); anything with ``submit`` +
    ``metrics`` is treated as a single queue.  A fresh registry is created
    unless one is passed; the standard collectors
    (:mod:`repro.telemetry.instrument`) are bound either way, including the
    rolling conformal-coverage gauge when the target's classifier has
    conformal feedback attached.
    """
    registry = registry if registry is not None else MetricsRegistry()
    if hasattr(target, "queues") and hasattr(target, "alive_replicas"):
        bind_router(registry, target)
        health = _router_health(target)
        queues = list(target.queues)
    elif hasattr(target, "submit") and hasattr(target, "metrics"):
        bind_queue(registry, target)
        health = _queue_health(target)
        queues = [target]
    else:
        raise TelemetryError(
            f"cannot attach a telemetry endpoint to {type(target).__name__}; "
            "expected a serving queue or a replica router"
        )
    for queue in queues:
        classifier = getattr(queue, "classifier", None)
        if classifier is not None and getattr(classifier, "conformal", None) is not None:
            bind_classifier_coverage(registry, classifier)
            break
    return TelemetryServer(
        registry, tracer=tracer, health=health, host=host, port=port
    )
