"""Structured request tracing: spans, parent/child links, flamegraphs.

One served request crosses four subsystems -- the queue (wait), the engine
(encode, overlap), the classifier (score) and the state store (store-write)
-- and until now no artifact tied those phases to one request.  The tracer
closes that gap with the usual span model:

* a **trace** is one causally linked unit of work (one coalesced flush and
  the requests riding it), identified by a ``trace_id``;
* a **span** is one named phase with a start/end time, an optional parent
  span (child phases nest) and optional *links* to spans in other traces
  (a flush links every coalesced request's root span, the batch-consumer
  pattern);
* the :class:`Tracer` keeps a bounded ring of recently *finished* traces
  for the ``/traces/recent`` endpoint, renders any trace as a JSON span
  dump (:meth:`Tracer.trace_dict`) or an indented text flamegraph
  (:func:`render_trace_text`).

**Zero cost when disabled** is a hard requirement: the global
:data:`TRACER` starts disabled, every entry point checks ``enabled`` first
(``span()`` returns a shared no-op context manager; ``mint_request``
returns ``None``), and no instrumented hot path allocates anything.
Tracing never participates in any computation, so enabling it cannot move
a prediction by construction -- the invariance suite still pins it.

Span and trace ids are drawn from a process-local monotone counter, so a
deterministic workload yields a deterministic span topology (ids included),
which is what lets tests assert on whole trace trees.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import TelemetryError

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "render_trace_text",
]


class Span:
    """One named phase of work inside a trace."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "attributes",
        "links",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        attributes: Optional[Dict] = None,
        links: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict = dict(attributes or {})
        #: (trace_id, span_id) references to causally related spans in
        #: *other* traces -- e.g. a flush linking its coalesced requests.
        self.links: List[Tuple[str, str]] = list(links or [])
        self._tracer = tracer

    @property
    def duration_s(self) -> Optional[float]:
        """Span duration, or ``None`` while still open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value) -> None:
        self.attributes[str(key)] = value

    def add_link(self, span: "Span") -> None:
        self.links.append((span.trace_id, span.span_id))

    def end(self, end_time: Optional[float] = None) -> None:
        """Finish the span (idempotent) and hand it to the tracer's ring."""
        if self.end_s is not None:
            return
        self.end_s = time.perf_counter() if end_time is None else float(end_time)
        self._tracer._finish(self)

    def to_dict(self) -> Dict:
        """JSON-friendly span record."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": (
                None if self.duration_s is None else self.duration_s * 1e3
            ),
            "attributes": dict(self.attributes),
            "links": [
                {"trace_id": t, "span_id": s} for t, s in self.links
            ],
        }


class _NullSpanContext:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a child of the thread's current span."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        parent = self._tracer.current_span()
        if parent is None:
            span = self._tracer.start_trace(self._name, attributes=self._attributes)
        else:
            span = self._tracer.start_span(
                self._name, parent, attributes=self._attributes
            )
        self._tracer._push(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.set_attribute("error", repr(exc))
        self._tracer._pop(self._span)
        self._span.end()
        return False


class _CurrentSpanScope:
    """Temporarily makes an externally managed span the thread's current one."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Optional[Span]:
        if self._span is not None:
            self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            self._tracer._pop(self._span)
        return False


class Tracer:
    """Span factory plus a bounded ring of finished traces.

    Disabled by default: every recording entry point short-circuits on
    ``enabled``, so instrumented hot paths cost one attribute read when
    telemetry is off.  ``max_traces`` bounds the retained history (oldest
    trace evicted first) so a long-lived service cannot grow its trace
    buffer without bound.
    """

    def __init__(self, max_traces: int = 128) -> None:
        if max_traces < 1:
            raise TelemetryError(f"max_traces must be >= 1, got {max_traces}")
        self.enabled = False
        self.max_traces = int(max_traces)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        # trace_id -> finished spans, insertion-ordered for ring eviction.
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def enable(self, max_traces: Optional[int] = None) -> "Tracer":
        """Turn recording on (optionally resizing the trace ring)."""
        if max_traces is not None:
            if max_traces < 1:
                raise TelemetryError(f"max_traces must be >= 1, got {max_traces}")
            self.max_traces = int(max_traces)
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop recording (already-captured traces remain readable)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded trace and restart the id counter."""
        with self._lock:
            self._traces.clear()
            self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def _next_id(self, prefix: str) -> str:
        return f"{prefix}{next(self._ids):08d}"

    def start_trace(
        self,
        name: str,
        start_time: Optional[float] = None,
        attributes: Optional[Dict] = None,
    ) -> Span:
        """Open the root span of a brand-new trace."""
        trace_id = self._next_id("t")
        return Span(
            self,
            name,
            trace_id=trace_id,
            span_id=self._next_id("s"),
            parent_id=None,
            start_s=(
                time.perf_counter() if start_time is None else float(start_time)
            ),
            attributes=attributes,
        )

    def start_span(
        self,
        name: str,
        parent: Span,
        start_time: Optional[float] = None,
        attributes: Optional[Dict] = None,
    ) -> Span:
        """Open a child span inside ``parent``'s trace."""
        return Span(
            self,
            name,
            trace_id=parent.trace_id,
            span_id=self._next_id("s"),
            parent_id=parent.span_id,
            start_s=(
                time.perf_counter() if start_time is None else float(start_time)
            ),
            attributes=attributes,
        )

    def record_span(
        self,
        name: str,
        parent: Span,
        start_s: float,
        end_s: float,
        attributes: Optional[Dict] = None,
    ) -> Span:
        """Record an already-elapsed phase (e.g. a request's queue wait)."""
        span = self.start_span(name, parent, start_time=start_s, attributes=attributes)
        span.end(end_s)
        return span

    def span(self, name: str, attributes: Optional[Dict] = None):
        """Context manager for one phase under the thread's current span.

        The instrumented hot paths call this unconditionally; when the
        tracer is disabled it returns one shared no-op object, so the
        disabled cost is a single attribute check and no allocation.
        """
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name, attributes)

    def use_span(self, span: Optional[Span]) -> _CurrentSpanScope:
        """Make an externally created span current for nesting purposes."""
        return _CurrentSpanScope(self, span)

    def mint_request(
        self, name: str, attributes: Optional[Dict] = None
    ) -> Optional[Span]:
        """Root span for one incoming request, or ``None`` when disabled."""
        if not self.enabled:
            return None
        return self.start_trace(name, attributes=attributes)

    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        """The innermost span opened by this thread, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    def _finish(self, span: Span) -> None:
        if not self.enabled:
            # Disabled after the span was opened: drop it rather than grow
            # the ring while the operator believes tracing is off.
            return
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                self._traces[span.trace_id] = spans = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            spans.append(span)

    # ------------------------------------------------------------------
    def trace_ids(self) -> List[str]:
        """Recorded trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def trace_spans(self, trace_id: str) -> List[Span]:
        """Finished spans of one trace, in finish order."""
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                raise TelemetryError(f"unknown trace id {trace_id!r}")
            return list(spans)

    def trace_dict(self, trace_id: str) -> Dict:
        """One trace as a JSON-friendly span dump."""
        spans = self.trace_spans(trace_id)
        roots = [s for s in spans if s.parent_id is None]
        return {
            "trace_id": trace_id,
            "root": roots[0].name if roots else None,
            "num_spans": len(spans),
            "spans": [span.to_dict() for span in spans],
        }

    def recent_traces(self, limit: int = 16) -> List[Dict]:
        """The newest ``limit`` finished traces, newest first."""
        if limit < 1:
            raise TelemetryError(f"limit must be >= 1, got {limit}")
        with self._lock:
            ids = list(self._traces)[-limit:]
        return [self.trace_dict(trace_id) for trace_id in reversed(ids)]


def render_trace_text(spans: Sequence[Span], width: int = 32) -> str:
    """Indented text flamegraph of one trace's spans.

    Children nest under their parents; each line shows the phase name, its
    duration, and a bar positioned on the trace's own timeline so phase
    overlap (or the lack of it) is visible at a glance::

        request · t00000001 · 12.40 ms
          wait                   3.10 ms  |#####...........................|
          flush                  9.10 ms  |........################........|
    """
    if not spans:
        raise TelemetryError("cannot render an empty trace")
    by_parent: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start_s)
    t0 = min(s.start_s for s in spans)
    t1 = max(s.end_s if s.end_s is not None else s.start_s for s in spans)
    extent = max(t1 - t0, 1e-9)
    known = {s.span_id for s in spans}
    roots = [
        s
        for s in spans
        if s.parent_id is None or s.parent_id not in known
    ]
    roots.sort(key=lambda s: s.start_s)

    lines: List[str] = []

    def _bar(span: Span) -> str:
        end = span.end_s if span.end_s is not None else span.start_s
        lo = int(round((span.start_s - t0) / extent * width))
        hi = int(round((end - t0) / extent * width))
        hi = max(hi, lo + 1)
        return "|" + "." * lo + "#" * (hi - lo) + "." * max(width - hi, 0) + "|"

    def _walk(span: Span, depth: int) -> None:
        duration = span.duration_s
        duration_text = (
            "   open   " if duration is None else f"{duration * 1e3:8.2f} ms"
        )
        name = "  " * depth + span.name
        lines.append(f"  {name:<28} {duration_text}  {_bar(span)}")
        for child in by_parent.get(span.span_id, []):
            _walk(child, depth + 1)

    header_root = roots[0] if roots else spans[0]
    lines.insert(
        0,
        f"{header_root.name} · {header_root.trace_id} · "
        f"{extent * 1e3:.2f} ms · {len(spans)} spans",
    )
    for root in roots:
        _walk(root, 1)
    return "\n".join(lines)


#: The process-global tracer every instrumented subsystem records into.
#: Disabled by default; ``TRACER.enable()`` (or the export server helpers)
#: turns it on.
TRACER = Tracer()
