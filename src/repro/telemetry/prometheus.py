"""Prometheus text exposition: rendering and a strict parser.

:func:`render_prometheus` serialises a :class:`~repro.telemetry.registry.
MetricsRegistry` into the text format (version 0.0.4) every Prometheus
scraper understands::

    # HELP repro_serving_requests_total Requests completed by the queue.
    # TYPE repro_serving_requests_total counter
    repro_serving_requests_total{replica="0"} 512

Histograms render the cumulative ``_bucket{le=...}`` series plus ``_sum``
and ``_count``, with the mandatory ``+Inf`` bucket.

:func:`parse_prometheus_text` is the inverse direction used by the CI smoke
gate and the test suite: a strict line-level parser that raises
:class:`~repro.exceptions.TelemetryError` on any malformed exposition --
unknown sample families, bad label syntax, unparseable values, histograms
whose ``_count`` disagrees with their ``+Inf`` bucket.  Serving an endpoint
that our own parser rejects fails CI before any external scraper sees it.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from ..exceptions import TelemetryError
from .registry import Histogram, MetricsRegistry, _HistogramData, format_bound

__all__ = ["render_prometheus", "parse_prometheus_text"]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace("\\n", "\n")
        .replace('\\"', '"')
        .replace("\x00", "\\")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - defensive
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labelnames, key, extra: "Tuple[str, str] | None" = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, key)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (collectors run first)."""
    lines: List[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.metric_type}")
        for key, payload in metric.series():
            if isinstance(metric, Histogram):
                assert isinstance(payload, _HistogramData)
                cumulative = 0
                for bound, count in zip(
                    metric.upper_bounds, payload.bucket_counts
                ):
                    cumulative += count
                    labels = _labels_text(
                        metric.labelnames, key, ("le", format_bound(bound))
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _labels_text(metric.labelnames, key, ("le", "+Inf"))
                lines.append(f"{metric.name}_bucket{labels} {payload.count}")
                labels = _labels_text(metric.labelnames, key)
                lines.append(
                    f"{metric.name}_sum{labels} {_format_value(payload.total)}"
                )
                lines.append(f"{metric.name}_count{labels} {payload.count}")
            else:
                labels = _labels_text(metric.labelnames, key)
                lines.append(
                    f"{metric.name}{labels} {_format_value(float(payload))}"
                )
    return "\n".join(lines) + "\n"


def _parse_value(text: str, context: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        raise TelemetryError(f"unparseable sample value {text!r} in {context}") from None


def _parse_labels(text: str, context: str) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    remainder = text
    while remainder:
        match = _LABEL_PAIR_RE.match(remainder)
        if match is None:
            raise TelemetryError(f"malformed label block {text!r} in {context}")
        labels[match.group(1)] = _unescape_label_value(match.group(2))
        remainder = remainder[match.end() :]
        if remainder.startswith(","):
            remainder = remainder[1:]
        elif remainder:
            raise TelemetryError(f"malformed label block {text!r} in {context}")
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Parse (and validate) a text exposition into family dictionaries.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(name,
    labels, value), ...]}}``.  Raises :class:`TelemetryError` on anything a
    strict scraper would reject: samples without a ``# TYPE`` declaration,
    malformed lines or labels, duplicate (name, labels) samples, and
    histogram families whose ``_count`` disagrees with their ``+Inf``
    bucket or lack one.
    """
    families: Dict[str, Dict] = {}
    seen_samples = set()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        context = f"line {line_number}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Free-form comments are legal exposition.
                if line.startswith("# "):
                    continue
                raise TelemetryError(f"malformed comment at {context}: {raw!r}")
            _, kind, family = parts[:3]
            entry = families.setdefault(
                family, {"type": None, "help": None, "samples": []}
            )
            if kind == "HELP":
                entry["help"] = parts[3] if len(parts) > 3 else ""
            else:
                if len(parts) < 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise TelemetryError(
                        f"invalid TYPE declaration at {context}: {raw!r}"
                    )
                entry["type"] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise TelemetryError(f"malformed sample at {context}: {raw!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", context)
        value = _parse_value(match.group("value"), context)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                family = base
                break
        if family not in families or families[family]["type"] is None:
            raise TelemetryError(
                f"sample {name!r} at {context} has no # TYPE declaration"
            )
        sample_key = (name, tuple(sorted(labels.items())))
        if sample_key in seen_samples:
            raise TelemetryError(f"duplicate sample {name!r} at {context}")
        seen_samples.add(sample_key)
        families[family]["samples"].append((name, labels, value))

    for family, entry in families.items():
        if entry["type"] is None:
            raise TelemetryError(f"family {family!r} has HELP but no TYPE")
        if entry["type"] == "histogram":
            _validate_histogram(family, entry["samples"])
    return families


def _validate_histogram(
    family: str, samples: List[Tuple[str, Dict[str, str], float]]
) -> None:
    """Each histogram series needs a ``+Inf`` bucket matching its ``_count``."""
    inf_buckets: Dict[Tuple, float] = {}
    counts: Dict[Tuple, float] = {}
    for name, labels, value in samples:
        if name == f"{family}_bucket":
            if "le" not in labels:
                raise TelemetryError(
                    f"histogram {family!r} bucket sample lacks an 'le' label"
                )
            if labels["le"] == "+Inf":
                key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
                inf_buckets[key] = value
        elif name == f"{family}_count":
            counts[tuple(sorted(labels.items()))] = value
    if set(inf_buckets) != set(counts):
        raise TelemetryError(
            f"histogram {family!r} series lack matching +Inf buckets and counts"
        )
    for key, count in counts.items():
        if inf_buckets[key] != count:
            raise TelemetryError(
                f"histogram {family!r} +Inf bucket ({inf_buckets[key]}) "
                f"disagrees with _count ({count})"
            )
