"""Unified telemetry: metrics registry, request tracing, export endpoint.

The three layers compose but stand alone:

* :mod:`repro.telemetry.registry` -- Counter / Gauge / Histogram families
  with labels, pull-model collectors, deterministic snapshots;
* :mod:`repro.telemetry.tracing` -- the global :data:`TRACER` (disabled by
  default, zero-cost when off), spans with parent/child links, JSON dumps
  and text flamegraphs;
* :mod:`repro.telemetry.prometheus` / :mod:`repro.telemetry.export` -- text
  exposition rendering, a strict parser, and the stdlib HTTP endpoint
  (``/metrics``, ``/health``, ``/traces/recent``);
* :mod:`repro.telemetry.instrument` -- duck-typed ``bind_*`` helpers that
  publish the library's existing accounting silos into a registry.

Quick start against a warm queue or router::

    from repro.telemetry import TRACER, attach_endpoint

    TRACER.enable()                    # optional: span capture
    server = attach_endpoint(router)   # binds collectors, starts HTTP
    print(server.url + "/metrics")
"""

from .export import TelemetryServer, attach_endpoint
from .instrument import (
    bind_backend,
    bind_classifier_coverage,
    bind_controller,
    bind_drift_controller,
    bind_engine,
    bind_queue,
    bind_router,
    bind_state_store,
)
from .prometheus import parse_prometheus_text, render_prometheus
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import TRACER, Span, Tracer, render_trace_text

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "parse_prometheus_text",
    "Span",
    "Tracer",
    "TRACER",
    "render_trace_text",
    "TelemetryServer",
    "attach_endpoint",
    "bind_queue",
    "bind_router",
    "bind_state_store",
    "bind_backend",
    "bind_engine",
    "bind_classifier_coverage",
    "bind_drift_controller",
    "bind_controller",
]
