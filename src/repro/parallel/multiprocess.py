"""Real multi-process execution of the Gram-matrix computation.

The strategies in :mod:`repro.parallel.strategies` model the distribution
logic (tiling, message schedule, per-process accounting) deterministically in
a single process.  This module complements them with *actual* parallel
execution on the local machine using :mod:`concurrent.futures`:

* the kernel matrix is tiled exactly as in the no-messaging strategy
  (each worker re-simulates the circuits its tile needs, so no MPS ever has
  to cross a process boundary);
* each worker builds its own per-process :class:`repro.engine.KernelEngine`
  and evaluates the tile through the engine's plan/batched-overlap path --
  the same compute core the sequential kernel uses;
* workers return plain ``(row, col, value)`` triples plus a flat accounting
  dictionary that the parent aggregates.

This mirrors how the paper exploits the embarrassing parallelism of the Gram
matrix, and gives a genuine wall-clock speed-up on multi-core machines.  The
implementation intentionally reuses :func:`repro.parallel.tiling.square_tiling`
so coverage properties are shared with the simulated strategies.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import ParallelError
from .tiling import Tile, square_tiling

__all__ = ["MultiprocessGramComputer", "compute_tile_entries"]

#: Accounting keys aggregated (by summation, except max-reductions) across
#: worker tiles by :meth:`MultiprocessGramComputer.compute_with_stats`.
_SUM_KEYS = (
    "wall_simulation_time_s",
    "wall_inner_product_time_s",
    "modelled_simulation_time_s",
    "modelled_inner_product_time_s",
    "num_simulations",
    "num_inner_products",
)
_MAX_KEYS = ("max_bond_dimension",)


def compute_tile_entries(
    X: np.ndarray,
    ansatz_kwargs: Dict[str, Any],
    simulation_kwargs: Dict[str, Any],
    row_indices: Tuple[int, ...],
    col_indices: Tuple[int, ...],
    symmetric_diagonal: bool,
    with_stats: bool = False,
    backend_name: str = "cpu",
) -> Any:
    """Worker entry point: compute the kernel entries of one tile.

    Runs inside a worker process, so it only receives picklable primitives
    (the scaled feature matrix and plain keyword dictionaries) and returns
    plain triples.  Each worker simulates every circuit its tile touches --
    the no-messaging trade-off -- and evaluates the tile's overlap jobs
    through a per-process :class:`~repro.engine.KernelEngine` (batched einsum
    path, engine-owned symmetry handling).

    When ``with_stats`` is true the return value is ``(entries, stats)``
    where ``stats`` carries the worker's timing/bond-dimension accounting.
    """
    # Imports kept inside the function so the worker initialises quickly even
    # under spawn-based multiprocessing start methods.
    from ..backends import get_backend
    from ..engine import CrossGramPlan, KernelEngine, SymmetricGramPlan

    ansatz = AnsatzConfig(**ansatz_kwargs)
    sim_kwargs = dict(simulation_kwargs)
    if "dtype" in sim_kwargs and isinstance(sim_kwargs["dtype"], str):
        sim_kwargs["dtype"] = np.dtype(sim_kwargs["dtype"])
    backend = get_backend(backend_name, SimulationConfig(**sim_kwargs))
    engine = KernelEngine(ansatz, backend=backend)

    needed = sorted(set(row_indices) | set(col_indices))
    states = {idx: engine.encode_row(X[idx]) for idx in needed}

    entries: List[Tuple[int, int, float]] = []
    if symmetric_diagonal:
        # A diagonal tile is the symmetric Gram plan of its own index block.
        idx = list(row_indices)
        plan = SymmetricGramPlan(len(idx))
        tile_matrix = engine.execute_plan(plan, [states[i] for i in idx])
        for job in plan.jobs():
            entries.append((idx[job.row], idx[job.col], float(tile_matrix[job.row, job.col])))
    else:
        plan = CrossGramPlan(len(row_indices), len(col_indices))
        tile_matrix = engine.execute_plan(
            plan,
            [states[i] for i in row_indices],
            [states[j] for j in col_indices],
        )
        for job in plan.jobs():
            entries.append(
                (
                    row_indices[job.row],
                    col_indices[job.col],
                    float(tile_matrix[job.row, job.col]),
                )
            )

    if not with_stats:
        return entries

    summary = engine.backend.timing_summary()
    stats = {key: float(summary[key]) for key in _SUM_KEYS if key in summary}
    # Memory is reported per data-point index so the parent can deduplicate
    # across tiles (a point touched by several tiles is one stored MPS).
    stats["state_memory_by_index"] = {
        idx: int(s.memory_bytes) for idx, s in states.items()
    }
    stats["max_bond_dimension"] = float(
        max((s.max_bond_dimension for s in states.values()), default=1)
    )
    return entries, stats


@dataclass
class MultiprocessGramComputer:
    """Compute a symmetric quantum-kernel Gram matrix with a process pool.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.
    simulation:
        MPS simulation configuration (defaults to machine-precision truncation).
    max_workers:
        Worker processes; ``None`` lets the executor choose.  ``0`` or ``1``
        computes everything in the parent process (useful for tests and for
        platforms where process pools are undesirable).
    num_blocks:
        Side length of the tile grid; defaults to roughly one tile per worker.
    backend_name:
        Registry name of the backend each worker builds (``"cpu"`` /
        ``"gpu"``); the numerics are backend-independent but the modelled
        device times are not.
    """

    ansatz: AnsatzConfig
    simulation: SimulationConfig | None = None
    max_workers: int | None = None
    num_blocks: int | None = None
    backend_name: str = "cpu"

    def _ansatz_kwargs(self) -> Dict[str, Any]:
        return self.ansatz.to_dict()

    def _simulation_kwargs(self) -> Dict[str, Any]:
        config = self.simulation if self.simulation is not None else SimulationConfig()
        return config.to_dict()

    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            if self.max_workers < 0:
                raise ParallelError("max_workers must be >= 0")
            return self.max_workers
        return min(4, os.cpu_count() or 1)

    def _tiles(self, num_points: int, workers: int) -> List[Tile]:
        if self.num_blocks is not None:
            blocks = min(self.num_blocks, num_points)
        else:
            blocks = min(max(1, int(np.ceil(np.sqrt(2 * max(workers, 1))))), num_points)
        return square_tiling(num_points, blocks, symmetric=True, num_owners=max(workers, 1))

    def compute(self, X: np.ndarray) -> np.ndarray:
        """Return the symmetric Gram matrix of the scaled feature matrix ``X``."""
        matrix, _stats = self.compute_with_stats(X)
        return matrix

    def compute_with_stats(self, X: np.ndarray) -> Tuple[np.ndarray, Dict[str, float]]:
        """Gram matrix plus aggregated per-worker accounting.

        Wall and modelled times are summed across workers (total busy time,
        including duplicated simulations -- the no-messaging trade-off);
        ``max_bond_dimension`` is the maximum across tiles.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ParallelError("X must be a 2-D matrix with at least two rows")
        if X.shape[1] != self.ansatz.num_features:
            raise ParallelError(
                f"X has {X.shape[1]} features but the ansatz expects "
                f"{self.ansatz.num_features}"
            )

        num_points = X.shape[0]
        workers = self._resolve_workers()
        tiles = self._tiles(num_points, workers)
        matrix = np.eye(num_points)

        jobs = [
            (
                X,
                self._ansatz_kwargs(),
                self._simulation_kwargs(),
                tile.row_indices,
                tile.col_indices,
                tile.symmetric_diagonal,
                True,
                self.backend_name,
            )
            for tile in tiles
        ]

        if workers <= 1:
            results = [compute_tile_entries(*job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(compute_tile_entries, *job) for job in jobs]
                results = [f.result() for f in futures]

        stats: Dict[str, float] = {key: 0.0 for key in _SUM_KEYS}
        stats.update({key: 1.0 for key in _MAX_KEYS})
        memory_by_index: Dict[int, int] = {}
        for entries, tile_stats in results:
            for (i, j, value) in entries:
                matrix[i, j] = matrix[j, i] = value
            for key in _SUM_KEYS:
                stats[key] += tile_stats.get(key, 0.0)
            for key in _MAX_KEYS:
                stats[key] = max(stats[key], tile_stats.get(key, 1.0))
            memory_by_index.update(tile_stats.get("state_memory_by_index", {}))
        # Each data point counts once, matching the sequential path, even
        # though several tiles may have re-simulated it.
        stats["total_state_memory_bytes"] = float(sum(memory_by_index.values()))
        return matrix, stats
