"""Real multi-process execution of the Gram-matrix computation.

The strategies in :mod:`repro.parallel.strategies` model the distribution
logic (tiling, message schedule, per-process accounting) deterministically in
a single process.  This module complements them with *actual* parallel
execution on the local machine using :mod:`concurrent.futures`:

* the kernel matrix is tiled exactly as in the no-messaging strategy
  (each worker re-simulates the circuits its tile needs, so no MPS ever has
  to cross a process boundary);
* each worker builds its own per-process :class:`repro.engine.KernelEngine`
  and evaluates the tile through the engine's plan/batched-overlap path --
  the same compute core the sequential kernel uses;
* workers return plain ``(row, col, value)`` triples plus a flat accounting
  dictionary that the parent aggregates.

This mirrors how the paper exploits the embarrassing parallelism of the Gram
matrix, and gives a genuine wall-clock speed-up on multi-core machines.  The
implementation intentionally reuses :func:`repro.parallel.tiling.square_tiling`
so coverage properties are shared with the simulated strategies.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import ParallelError
from .tiling import Tile, rect_tiling, square_tiling

__all__ = [
    "MultiprocessGramComputer",
    "MultiprocessCrossGramComputer",
    "compute_tile_entries",
    "compute_cross_tile_entries",
]

#: Accounting keys aggregated (by summation, except max-reductions) across
#: worker tiles by :meth:`MultiprocessGramComputer.compute_with_stats`.
_SUM_KEYS = (
    "wall_simulation_time_s",
    "wall_inner_product_time_s",
    "modelled_simulation_time_s",
    "modelled_inner_product_time_s",
    "modelled_batched_simulation_time_s",
    "modelled_batched_inner_product_time_s",
    "num_simulations",
    "num_inner_products",
)
_MAX_KEYS = ("max_bond_dimension",)


def compute_tile_entries(
    X: np.ndarray,
    ansatz_kwargs: Dict[str, Any],
    simulation_kwargs: Dict[str, Any],
    row_indices: Tuple[int, ...],
    col_indices: Tuple[int, ...],
    symmetric_diagonal: bool,
    with_stats: bool = False,
    backend_name: str = "cpu",
) -> Any:
    """Worker entry point: compute the kernel entries of one tile.

    Runs inside a worker process, so it only receives picklable primitives
    (the scaled feature matrix and plain keyword dictionaries) and returns
    plain triples.  Each worker simulates every circuit its tile touches --
    the no-messaging trade-off -- and evaluates the tile's overlap jobs
    through a per-process :class:`~repro.engine.KernelEngine` (batched einsum
    path, engine-owned symmetry handling).

    When ``with_stats`` is true the return value is ``(entries, stats)``
    where ``stats`` carries the worker's timing/bond-dimension accounting.
    """
    # Imports kept inside the function so the worker initialises quickly even
    # under spawn-based multiprocessing start methods.
    from ..engine import CrossGramPlan, KernelEngine, SymmetricGramPlan

    engine = KernelEngine.from_worker_kwargs(
        ansatz_kwargs, simulation_kwargs, backend_name
    )

    needed = sorted(set(row_indices) | set(col_indices))
    states = {idx: engine.encode_row(X[idx]) for idx in needed}

    entries: List[Tuple[int, int, float]] = []
    if symmetric_diagonal:
        # A diagonal tile is the symmetric Gram plan of its own index block.
        idx = list(row_indices)
        plan = SymmetricGramPlan(len(idx))
        tile_matrix = engine.execute_plan(plan, [states[i] for i in idx])
        for job in plan.jobs():
            entries.append((idx[job.row], idx[job.col], float(tile_matrix[job.row, job.col])))
    else:
        plan = CrossGramPlan(len(row_indices), len(col_indices))
        tile_matrix = engine.execute_plan(
            plan,
            [states[i] for i in row_indices],
            [states[j] for j in col_indices],
        )
        for job in plan.jobs():
            entries.append(
                (
                    row_indices[job.row],
                    col_indices[job.col],
                    float(tile_matrix[job.row, job.col]),
                )
            )

    if not with_stats:
        return entries

    summary = engine.backend.timing_summary()
    stats = {key: float(summary[key]) for key in _SUM_KEYS if key in summary}
    # Memory is reported per data-point index so the parent can deduplicate
    # across tiles (a point touched by several tiles is one stored MPS).
    stats["state_memory_by_index"] = {
        idx: int(s.memory_bytes) for idx, s in states.items()
    }
    stats["max_bond_dimension"] = float(
        max((s.max_bond_dimension for s in states.values()), default=1)
    )
    return entries, stats


def compute_cross_tile_entries(
    X_row_block: np.ndarray,
    col_payload: bytes,
    ansatz_kwargs: Dict[str, Any],
    simulation_kwargs: Dict[str, Any],
    row_offset: int,
    col_offset: int,
    with_stats: bool = False,
    backend_name: str = "cpu",
) -> Any:
    """Worker entry point: one rectangular tile of a cross-Gram matrix.

    Both axes of the tile arrive pre-sliced, so a job ships only what its
    worker needs: ``X_row_block`` holds the tile's feature rows (encoded
    locally -- the no-messaging trade-off restricted to the row axis) and
    ``col_payload`` its column states, already *serialised* by the parent
    (typically the Nystrom landmark states straight out of the engine's
    state store), so workers never re-simulate a column.  ``row_offset`` /
    ``col_offset`` translate the block-local coordinates back to the global
    matrix.

    Every overlap goes through the engine's batched path, so the entries are
    bit-identical to a serial :class:`~repro.engine.plan.CrossGramPlan` over
    the same data.
    """
    from ..engine import CrossGramPlan, KernelEngine, deserialize_states

    engine = KernelEngine.from_worker_kwargs(
        ansatz_kwargs, simulation_kwargs, backend_name
    )

    row_states = [engine.encode_row(row) for row in X_row_block]
    col_states = deserialize_states(col_payload)

    plan = CrossGramPlan(len(row_states), len(col_states))
    tile_matrix = engine.execute_plan(plan, row_states, col_states)
    entries: List[Tuple[int, int, float]] = []
    for job in plan.jobs():
        entries.append(
            (
                row_offset + job.row,
                col_offset + job.col,
                float(tile_matrix[job.row, job.col]),
            )
        )

    if not with_stats:
        return entries

    summary = engine.backend.timing_summary()
    stats = {key: float(summary[key]) for key in _SUM_KEYS if key in summary}
    stats["state_memory_by_index"] = {
        row_offset + i: int(s.memory_bytes) for i, s in enumerate(row_states)
    }
    stats["max_bond_dimension"] = float(
        max(
            (s.max_bond_dimension for s in row_states + col_states),
            default=1,
        )
    )
    return entries, stats


@dataclass
class MultiprocessGramComputer:
    """Compute a symmetric quantum-kernel Gram matrix with a process pool.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.
    simulation:
        MPS simulation configuration (defaults to machine-precision truncation).
    max_workers:
        Worker processes; ``None`` lets the executor choose.  ``0`` or ``1``
        computes everything in the parent process (useful for tests and for
        platforms where process pools are undesirable).
    num_blocks:
        Side length of the tile grid; defaults to roughly one tile per worker.
    backend_name:
        Registry name of the backend each worker builds (``"cpu"`` /
        ``"gpu"``); the numerics are backend-independent but the modelled
        device times are not.
    """

    ansatz: AnsatzConfig
    simulation: SimulationConfig | None = None
    max_workers: int | None = None
    num_blocks: int | None = None
    backend_name: str = "cpu"

    def _ansatz_kwargs(self) -> Dict[str, Any]:
        return self.ansatz.to_dict()

    def _simulation_kwargs(self) -> Dict[str, Any]:
        config = self.simulation if self.simulation is not None else SimulationConfig()
        return config.to_dict()

    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            if self.max_workers < 0:
                raise ParallelError("max_workers must be >= 0")
            return self.max_workers
        return min(4, os.cpu_count() or 1)

    def _tiles(self, num_points: int, workers: int) -> List[Tile]:
        if self.num_blocks is not None:
            blocks = min(self.num_blocks, num_points)
        else:
            blocks = min(max(1, int(np.ceil(np.sqrt(2 * max(workers, 1))))), num_points)
        return square_tiling(num_points, blocks, symmetric=True, num_owners=max(workers, 1))

    def compute(self, X: np.ndarray) -> np.ndarray:
        """Return the symmetric Gram matrix of the scaled feature matrix ``X``."""
        matrix, _stats = self.compute_with_stats(X)
        return matrix

    def compute_with_stats(self, X: np.ndarray) -> Tuple[np.ndarray, Dict[str, float]]:
        """Gram matrix plus aggregated per-worker accounting.

        Wall and modelled times are summed across workers (total busy time,
        including duplicated simulations -- the no-messaging trade-off);
        ``max_bond_dimension`` is the maximum across tiles.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ParallelError("X must be a 2-D matrix with at least two rows")
        if X.shape[1] != self.ansatz.num_features:
            raise ParallelError(
                f"X has {X.shape[1]} features but the ansatz expects "
                f"{self.ansatz.num_features}"
            )

        num_points = X.shape[0]
        workers = self._resolve_workers()
        tiles = self._tiles(num_points, workers)
        matrix = np.eye(num_points)

        jobs = [
            (
                X,
                self._ansatz_kwargs(),
                self._simulation_kwargs(),
                tile.row_indices,
                tile.col_indices,
                tile.symmetric_diagonal,
                True,
                self.backend_name,
            )
            for tile in tiles
        ]

        if workers <= 1:
            results = [compute_tile_entries(*job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(compute_tile_entries, *job) for job in jobs]
                results = [f.result() for f in futures]

        stats: Dict[str, float] = {key: 0.0 for key in _SUM_KEYS}
        stats.update({key: 1.0 for key in _MAX_KEYS})
        memory_by_index: Dict[int, int] = {}
        for entries, tile_stats in results:
            for (i, j, value) in entries:
                matrix[i, j] = matrix[j, i] = value
            for key in _SUM_KEYS:
                stats[key] += tile_stats.get(key, 0.0)
            for key in _MAX_KEYS:
                stats[key] = max(stats[key], tile_stats.get(key, 1.0))
            memory_by_index.update(tile_stats.get("state_memory_by_index", {}))
        # Each data point counts once, matching the sequential path, even
        # though several tiles may have re-simulated it.
        stats["total_state_memory_bytes"] = float(sum(memory_by_index.values()))
        return matrix, stats


@dataclass
class MultiprocessCrossGramComputer:
    """Compute a rectangular cross-Gram matrix with a process pool.

    The missing half of the distributed story: :class:`MultiprocessGramComputer`
    fans out the symmetric training Gram, this class fans out the ``n x m``
    cross block (test-versus-train matrices and the Nystrom ``K_nm`` landmark
    block) over :func:`repro.parallel.tiling.rect_tiling` tiles.

    Column states are *shipped*, not re-simulated: the caller provides them
    as already-encoded MPS (for Nystrom, the cached landmark states), the
    parent serialises each column block exactly once, and every worker
    attaches its block from bytes.  Only row circuits are encoded inside the
    workers.  Entries are bit-identical to the serial
    :class:`~repro.engine.plan.CrossGramPlan` path because both run the same
    batched-overlap sweep on the same tensors.

    Parameters mirror :class:`MultiprocessGramComputer`; ``num_blocks``
    bounds the tile grid side on both axes.
    """

    ansatz: AnsatzConfig
    simulation: SimulationConfig | None = None
    max_workers: int | None = None
    num_blocks: int | None = None
    backend_name: str = "cpu"

    def _ansatz_kwargs(self) -> Dict[str, Any]:
        return self.ansatz.to_dict()

    def _simulation_kwargs(self) -> Dict[str, Any]:
        config = self.simulation if self.simulation is not None else SimulationConfig()
        return config.to_dict()

    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            if self.max_workers < 0:
                raise ParallelError("max_workers must be >= 0")
            return self.max_workers
        return min(4, os.cpu_count() or 1)

    def _tiles(self, num_rows: int, num_cols: int, workers: int) -> List[Tile]:
        if self.num_blocks is not None:
            row_blocks = min(self.num_blocks, num_rows)
            col_blocks = min(self.num_blocks, num_cols)
        else:
            # One row stripe per worker; column blocks only when the column
            # count dwarfs the row count (landmark blocks are narrow).
            row_blocks = min(max(workers, 1), num_rows)
            col_blocks = 1 if num_rows >= num_cols else min(max(workers, 1), num_cols)
        return rect_tiling(
            num_rows,
            num_cols,
            row_blocks,
            col_blocks,
            num_owners=max(workers, 1),
        )

    def compute(self, X_rows: np.ndarray, col_states: Sequence[Any]) -> np.ndarray:
        """Cross-Gram of the scaled row matrix against encoded column states."""
        matrix, _stats = self.compute_with_stats(X_rows, col_states)
        return matrix

    def compute_with_stats(
        self, X_rows: np.ndarray, col_states: Sequence[Any]
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Cross-Gram matrix plus aggregated per-worker accounting.

        Wall and modelled times are summed across workers (total busy time);
        row-state memory is deduplicated per data point and the shipped
        column states are counted once, matching the sequential accounting.
        """
        from ..engine import serialize_states

        X_rows = np.asarray(X_rows, dtype=float)
        if X_rows.ndim == 1:
            X_rows = X_rows[None, :]
        if X_rows.ndim != 2 or X_rows.shape[0] < 1:
            raise ParallelError("X_rows must be a 2-D matrix with at least one row")
        if X_rows.shape[1] != self.ansatz.num_features:
            raise ParallelError(
                f"X_rows has {X_rows.shape[1]} features but the ansatz expects "
                f"{self.ansatz.num_features}"
            )
        col_states = list(col_states)
        if not col_states:
            raise ParallelError("col_states must not be empty")

        num_rows, num_cols = X_rows.shape[0], len(col_states)
        workers = self._resolve_workers()
        tiles = self._tiles(num_rows, num_cols, workers)

        # Serialise each column block exactly once, shared by every tile in
        # that block column (and by every worker attaching it).  Row blocks
        # are sliced per tile, so a job ships only the rows it encodes.
        payload_by_block: Dict[int, bytes] = {}
        offset_by_block: Dict[int, int] = {}
        for tile in tiles:
            if tile.col_block not in payload_by_block:
                lo, hi = tile.col_indices[0], tile.col_indices[-1] + 1
                payload_by_block[tile.col_block] = serialize_states(col_states[lo:hi])
                offset_by_block[tile.col_block] = lo

        jobs = []
        for tile in tiles:
            row_lo, row_hi = tile.row_indices[0], tile.row_indices[-1] + 1
            jobs.append(
                (
                    X_rows[row_lo:row_hi],
                    payload_by_block[tile.col_block],
                    self._ansatz_kwargs(),
                    self._simulation_kwargs(),
                    row_lo,
                    offset_by_block[tile.col_block],
                    True,
                    self.backend_name,
                )
            )

        if workers <= 1:
            results = [compute_cross_tile_entries(*job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(compute_cross_tile_entries, *job) for job in jobs]
                results = [f.result() for f in futures]

        matrix = np.zeros((num_rows, num_cols))
        stats: Dict[str, float] = {key: 0.0 for key in _SUM_KEYS}
        stats.update({key: 1.0 for key in _MAX_KEYS})
        memory_by_index: Dict[int, int] = {}
        for entries, tile_stats in results:
            for (i, j, value) in entries:
                matrix[i, j] = value
            for key in _SUM_KEYS:
                stats[key] += tile_stats.get(key, 0.0)
            for key in _MAX_KEYS:
                stats[key] = max(stats[key], tile_stats.get(key, 1.0))
            memory_by_index.update(tile_stats.get("state_memory_by_index", {}))
        stats["total_state_memory_bytes"] = float(
            sum(memory_by_index.values())
            + sum(s.memory_bytes for s in col_states)
        )
        return matrix, stats
