"""Real multi-process execution of the Gram-matrix computation.

The strategies in :mod:`repro.parallel.strategies` model the distribution
logic (tiling, message schedule, per-process accounting) deterministically in
a single process.  This module complements them with *actual* parallel
execution on the local machine using :mod:`concurrent.futures`:

* the kernel matrix is tiled exactly as in the no-messaging strategy
  (each worker re-simulates the circuits its tile needs, so no MPS ever has
  to cross a process boundary);
* each tile is dispatched to a process-pool worker; workers return plain
  ``(row, col, value)`` triples that the parent assembles.

This mirrors how the paper exploits the embarrassing parallelism of the Gram
matrix, and gives a genuine wall-clock speed-up on multi-core machines.  The
implementation intentionally reuses :func:`repro.parallel.tiling.square_tiling`
so coverage properties are shared with the simulated strategies.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import ParallelError
from .tiling import Tile, square_tiling

__all__ = ["MultiprocessGramComputer", "compute_tile_entries"]


def compute_tile_entries(
    X: np.ndarray,
    ansatz_kwargs: Dict[str, Any],
    simulation_kwargs: Dict[str, Any],
    row_indices: Tuple[int, ...],
    col_indices: Tuple[int, ...],
    symmetric_diagonal: bool,
) -> List[Tuple[int, int, float]]:
    """Worker entry point: compute the kernel entries of one tile.

    Runs inside a worker process, so it only receives picklable primitives
    (the scaled feature matrix and plain keyword dictionaries) and returns
    plain triples.  Each worker simulates every circuit its tile touches --
    the no-messaging trade-off.
    """
    # Imports kept inside the function so the worker initialises quickly even
    # under spawn-based multiprocessing start methods.
    from ..backends import CpuBackend
    from ..circuits import build_feature_map_circuit

    ansatz = AnsatzConfig(**ansatz_kwargs)
    sim_kwargs = dict(simulation_kwargs)
    if "dtype" in sim_kwargs and isinstance(sim_kwargs["dtype"], str):
        sim_kwargs["dtype"] = np.dtype(sim_kwargs["dtype"])
    backend = CpuBackend(SimulationConfig(**sim_kwargs))

    needed = sorted(set(row_indices) | set(col_indices))
    states = {}
    for idx in needed:
        circuit = build_feature_map_circuit(X[idx], ansatz)
        states[idx] = backend.simulate(circuit).state

    entries: List[Tuple[int, int, float]] = []
    if symmetric_diagonal:
        idx = list(row_indices)
        for a in range(len(idx)):
            for b in range(a + 1, len(idx)):
                value = abs(backend.inner_product(states[idx[a]], states[idx[b]]).value) ** 2
                entries.append((idx[a], idx[b], value))
    else:
        for r in row_indices:
            for c in col_indices:
                value = abs(backend.inner_product(states[r], states[c]).value) ** 2
                entries.append((r, c, value))
    return entries


@dataclass
class MultiprocessGramComputer:
    """Compute a symmetric quantum-kernel Gram matrix with a process pool.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.
    simulation:
        MPS simulation configuration (defaults to machine-precision truncation).
    max_workers:
        Worker processes; ``None`` lets the executor choose.  ``0`` or ``1``
        computes everything in the parent process (useful for tests and for
        platforms where process pools are undesirable).
    num_blocks:
        Side length of the tile grid; defaults to roughly one tile per worker.
    """

    ansatz: AnsatzConfig
    simulation: SimulationConfig | None = None
    max_workers: int | None = None
    num_blocks: int | None = None

    def _ansatz_kwargs(self) -> Dict[str, Any]:
        return self.ansatz.to_dict()

    def _simulation_kwargs(self) -> Dict[str, Any]:
        config = self.simulation if self.simulation is not None else SimulationConfig()
        return config.to_dict()

    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            if self.max_workers < 0:
                raise ParallelError("max_workers must be >= 0")
            return self.max_workers
        return min(4, os.cpu_count() or 1)

    def _tiles(self, num_points: int, workers: int) -> List[Tile]:
        if self.num_blocks is not None:
            blocks = min(self.num_blocks, num_points)
        else:
            blocks = min(max(1, int(np.ceil(np.sqrt(2 * max(workers, 1))))), num_points)
        return square_tiling(num_points, blocks, symmetric=True, num_owners=max(workers, 1))

    def compute(self, X: np.ndarray) -> np.ndarray:
        """Return the symmetric Gram matrix of the scaled feature matrix ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ParallelError("X must be a 2-D matrix with at least two rows")
        if X.shape[1] != self.ansatz.num_features:
            raise ParallelError(
                f"X has {X.shape[1]} features but the ansatz expects "
                f"{self.ansatz.num_features}"
            )

        num_points = X.shape[0]
        workers = self._resolve_workers()
        tiles = self._tiles(num_points, workers)
        matrix = np.eye(num_points)

        jobs = [
            (
                X,
                self._ansatz_kwargs(),
                self._simulation_kwargs(),
                tile.row_indices,
                tile.col_indices,
                tile.symmetric_diagonal,
            )
            for tile in tiles
        ]

        if workers <= 1:
            results = [compute_tile_entries(*job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(compute_tile_entries, *job) for job in jobs]
                results = [f.result() for f in futures]

        for entries in results:
            for (i, j, value) in entries:
                matrix[i, j] = matrix[j, i] = value
        return matrix
