"""Distributed computation of the Gram matrix.

The paper computes the kernel matrix across many processes (MPI over
Perlmutter GPU nodes) using two strategies:

* **no-messaging** -- the matrix is tiled and each tile assigned to a
  process; every process independently simulates all circuits its tile
  needs, so circuits are re-simulated on ``O(sqrt(k))`` processes but no
  inter-process communication is required;
* **round-robin** -- circuits are split evenly so each is simulated exactly
  once, and blocks of MPS are passed around a ring so that every pair of
  blocks meets on exactly one process; this is more memory- and
  compute-efficient at the cost of message passing.

No MPI runtime is available offline, so both strategies run over
:class:`~repro.parallel.comm.SimulatedComm`, an in-process BSP-style
communicator with explicit byte accounting, and the per-process wall-clock
times are aggregated exactly as an MPI run would experience them (the
wall-clock of a phase is the maximum over processes).  See DESIGN.md,
substitution 3.  :mod:`~repro.parallel.projection` extrapolates measured
per-primitive costs to the paper's large-machine scenarios (e.g. 64,000 data
points on 320 GPUs).
"""

from .comm import SimulatedComm, CommunicationModel
from .tiling import (
    Tile,
    group_tiles_by_owner,
    partition_indices,
    rect_tiling,
    square_tiling,
    tiles_cover_matrix,
)
from .strategies import (
    DistributedGramResult,
    ProcessTimings,
    NoMessagingCrossStrategy,
    NoMessagingStrategy,
    RoundRobinStrategy,
)
from .executor import (
    KernelWorker,
    compute_cross_distributed,
    compute_gram_distributed,
)
from .multiprocess import MultiprocessCrossGramComputer, MultiprocessGramComputer
from .projection import ScalingProjection, project_wall_clock

__all__ = [
    "SimulatedComm",
    "CommunicationModel",
    "Tile",
    "partition_indices",
    "square_tiling",
    "rect_tiling",
    "group_tiles_by_owner",
    "tiles_cover_matrix",
    "DistributedGramResult",
    "ProcessTimings",
    "NoMessagingStrategy",
    "NoMessagingCrossStrategy",
    "RoundRobinStrategy",
    "KernelWorker",
    "compute_gram_distributed",
    "compute_cross_distributed",
    "MultiprocessGramComputer",
    "MultiprocessCrossGramComputer",
    "ScalingProjection",
    "project_wall_clock",
]
