"""Wall-clock projection to larger data sets and machines.

The paper extrapolates its measurements to scenarios it does not run
directly: "training on a data set of 64,000 entries could be achieved in 30
hours using 320 GPUs, or in 15 hours using 640 GPUs".  The extrapolation is
simple and worth making explicit:

* the number of circuit simulations grows linearly with the data-set size
  ``N`` and parallelises perfectly, so its wall-clock is
  ``N * t_sim / P`` for ``P`` processes;
* the number of inner products grows as ``N (N - 1) / 2`` and also
  parallelises perfectly, giving ``N (N - 1) / 2 * t_ip / P``;
* round-robin communication moves each block ``ceil((P-1)/2)`` times, so the
  communicated volume per process is roughly ``(N / P) * bytes_per_state``
  per step.

:class:`ScalingProjection` packages those formulas; the Figure-8 benchmark
uses it both to produce the "doubling data and processes" series and to
reproduce the paper's 64,000-point extrapolation from the measured (or
modelled) per-primitive times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..exceptions import ParallelError
from .comm import CommunicationModel

__all__ = ["ScalingProjection", "project_wall_clock"]


@dataclass(frozen=True)
class ScalingProjection:
    """Per-primitive costs from which large-scale wall-clock is projected.

    Attributes
    ----------
    simulation_time_per_circuit_s:
        Time to simulate one feature-map circuit (one data point).
    inner_product_time_s:
        Time for one MPS-MPS inner product.
    bytes_per_state:
        Memory footprint of one MPS (message size for round-robin).
    communication:
        Latency/bandwidth model for the interconnect.
    """

    simulation_time_per_circuit_s: float
    inner_product_time_s: float
    bytes_per_state: float = 0.0
    communication: CommunicationModel = CommunicationModel()

    def __post_init__(self) -> None:
        if self.simulation_time_per_circuit_s < 0 or self.inner_product_time_s < 0:
            raise ParallelError("per-primitive times must be non-negative")
        if self.bytes_per_state < 0:
            raise ParallelError("bytes_per_state must be non-negative")

    # ------------------------------------------------------------------
    def simulation_wall_s(self, num_points: int, num_processes: int) -> float:
        """Projected wall-clock of the simulation phase."""
        self._validate(num_points, num_processes)
        circuits_per_process = -(-num_points // num_processes)  # ceil division
        return circuits_per_process * self.simulation_time_per_circuit_s

    def inner_product_wall_s(self, num_points: int, num_processes: int) -> float:
        """Projected wall-clock of the inner-product phase (symmetric Gram)."""
        self._validate(num_points, num_processes)
        total_products = num_points * (num_points - 1) / 2
        per_process = -(-total_products // num_processes)
        return per_process * self.inner_product_time_s

    def communication_wall_s(self, num_points: int, num_processes: int) -> float:
        """Projected round-robin communication wall-clock."""
        self._validate(num_points, num_processes)
        if num_processes == 1 or self.bytes_per_state == 0:
            return 0.0
        block_size = -(-num_points // num_processes)
        steps = (num_processes - 1 + 1) // 2 if num_processes % 2 == 1 else num_processes // 2
        per_step = self.communication.transfer_time(
            int(block_size * self.bytes_per_state)
        )
        # Each step involves a send and a matching receive on every process.
        return steps * 2 * per_step

    def total_wall_s(self, num_points: int, num_processes: int) -> float:
        """Projected total wall-clock for the training Gram matrix."""
        return (
            self.simulation_wall_s(num_points, num_processes)
            + self.inner_product_wall_s(num_points, num_processes)
            + self.communication_wall_s(num_points, num_processes)
        )

    def breakdown(self, num_points: int, num_processes: int) -> Dict[str, float]:
        """All three phases plus the total, as a dictionary."""
        return {
            "num_points": num_points,
            "num_processes": num_processes,
            "simulation_wall_s": self.simulation_wall_s(num_points, num_processes),
            "inner_product_wall_s": self.inner_product_wall_s(num_points, num_processes),
            "communication_wall_s": self.communication_wall_s(num_points, num_processes),
            "total_wall_s": self.total_wall_s(num_points, num_processes),
        }

    def inference_wall_s(
        self, num_train: int, num_processes: int, simulate_new_point: bool = True
    ) -> float:
        """Projected time to classify one new data point.

        One new circuit simulation (not parallelised in the paper's
        framework) plus ``num_train`` inner products spread over the
        processes holding the training states.
        """
        self._validate(num_train, num_processes)
        sim = self.simulation_time_per_circuit_s if simulate_new_point else 0.0
        products_per_process = -(-num_train // num_processes)
        return sim + products_per_process * self.inner_product_time_s

    @staticmethod
    def _validate(num_points: int, num_processes: int) -> None:
        if num_points < 1:
            raise ParallelError("num_points must be >= 1")
        if num_processes < 1:
            raise ParallelError("num_processes must be >= 1")


def project_wall_clock(
    measured_breakdown: Dict[str, float],
    measured_points: int,
    measured_processes: int,
    target_points: int,
    target_processes: int,
    bytes_per_state: float = 0.0,
    communication: CommunicationModel | None = None,
) -> Dict[str, float]:
    """Scale a measured Figure-8 breakdown to a larger configuration.

    The per-primitive costs are inferred from the measured phase wall-clocks
    and the known operation counts, then re-applied at the target scale.
    """
    if measured_points < 2 or measured_processes < 1:
        raise ParallelError("measured configuration is degenerate")
    sims_per_proc = -(-measured_points // measured_processes)
    prods_per_proc = -(
        -(measured_points * (measured_points - 1) / 2) // measured_processes
    )
    t_sim = measured_breakdown["simulation_wall_s"] / max(sims_per_proc, 1)
    t_ip = measured_breakdown["inner_product_wall_s"] / max(prods_per_proc, 1)
    projection = ScalingProjection(
        simulation_time_per_circuit_s=t_sim,
        inner_product_time_s=t_ip,
        bytes_per_state=bytes_per_state,
        communication=communication if communication is not None else CommunicationModel(),
    )
    return projection.breakdown(target_points, target_processes)
