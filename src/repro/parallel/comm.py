"""In-process simulated communicator and the communication cost model.

:class:`SimulatedComm` provides the message-passing substrate the
distribution strategies run on.  It follows a BSP (bulk-synchronous
parallel) discipline: within a *superstep* every rank may post messages;
:meth:`SimulatedComm.deliver` then moves all posted messages into the
recipients' mailboxes, after which the next superstep can read them.  This is
exactly the communication pattern the round-robin strategy needs (a ring
shift per step) and it keeps execution deterministic and single-threaded
while still accounting for every byte that a real MPI run would move.

:class:`CommunicationModel` converts message sizes into modelled transfer
times (latency + size / bandwidth), which is how the communication bars of
Figure 8 are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from ..exceptions import CommunicationError

__all__ = ["SimulatedComm", "CommunicationModel"]


@dataclass(frozen=True)
class CommunicationModel:
    """Latency-bandwidth model of inter-process transfers.

    Defaults approximate an HPC interconnect (a few microseconds of latency,
    tens of GB/s of bandwidth); examples can pass a slower model to study
    communication-bound regimes.
    """

    latency_s: float = 5.0e-6
    bandwidth_bytes_per_s: float = 20.0e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise CommunicationError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise CommunicationError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Modelled seconds to move ``nbytes`` between two processes."""
        if nbytes < 0:
            raise CommunicationError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class _Message:
    source: int
    dest: int
    payload: Any
    nbytes: int
    tag: str = ""


class SimulatedComm:
    """Deterministic in-process communicator with per-rank byte accounting."""

    def __init__(self, size: int, model: CommunicationModel | None = None) -> None:
        if size < 1:
            raise CommunicationError(f"communicator size must be >= 1, got {size}")
        self._size = size
        self.model = model if model is not None else CommunicationModel()
        self._mailboxes: List[List[_Message]] = [[] for _ in range(size)]
        self._pending: List[_Message] = []
        self.bytes_sent = np.zeros(size, dtype=float)
        self.messages_sent = np.zeros(size, dtype=int)
        self.send_time_s = np.zeros(size, dtype=float)
        self.recv_time_s = np.zeros(size, dtype=float)
        self._supersteps = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of simulated ranks."""
        return self._size

    @property
    def supersteps(self) -> int:
        """Number of completed supersteps (``deliver`` calls)."""
        return self._supersteps

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self._size):
            raise CommunicationError(
                f"rank {rank} out of range for communicator of size {self._size}"
            )

    # ------------------------------------------------------------------
    def send(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: str = ""
    ) -> None:
        """Post a message; it becomes visible to ``dest`` after ``deliver``.

        ``nbytes`` is the logical size of the payload (e.g. the memory
        footprint of the MPS being shipped) and drives the modelled
        communication time on both ends.
        """
        self._check_rank(source)
        self._check_rank(dest)
        if source == dest:
            raise CommunicationError("a rank cannot send a message to itself")
        if nbytes < 0:
            raise CommunicationError("nbytes must be non-negative")
        self._pending.append(_Message(source, dest, payload, nbytes, tag))
        self.bytes_sent[source] += nbytes
        self.messages_sent[source] += 1
        self.send_time_s[source] += self.model.transfer_time(nbytes)

    def deliver(self) -> None:
        """Close the current superstep: move all posted messages to mailboxes."""
        for msg in self._pending:
            self._mailboxes[msg.dest].append(msg)
            self.recv_time_s[msg.dest] += self.model.transfer_time(msg.nbytes)
        self._pending = []
        self._supersteps += 1

    def receive_all(self, rank: int, tag: str | None = None) -> List[Any]:
        """Drain (and return) the payloads waiting in ``rank``'s mailbox.

        When ``tag`` is given only messages with that tag are drained; the
        rest stay queued.
        """
        self._check_rank(rank)
        if tag is None:
            payloads = [m.payload for m in self._mailboxes[rank]]
            self._mailboxes[rank] = []
            return payloads
        kept: List[_Message] = []
        payloads = []
        for m in self._mailboxes[rank]:
            if m.tag == tag:
                payloads.append(m.payload)
            else:
                kept.append(m)
        self._mailboxes[rank] = kept
        return payloads

    def pending_count(self, rank: int) -> int:
        """Number of undelivered messages waiting for ``rank``."""
        self._check_rank(rank)
        return len(self._mailboxes[rank])

    # ------------------------------------------------------------------
    def gather(self, payloads_by_rank: Dict[int, Any], root: int = 0) -> List[Any]:
        """Model a gather of one payload per rank to ``root``.

        Returns the payloads ordered by rank.  Byte accounting charges each
        non-root rank one message; payload sizes are estimated with
        ``numpy`` ``nbytes`` when available, otherwise 0.
        """
        self._check_rank(root)
        gathered = []
        for rank in range(self._size):
            payload = payloads_by_rank.get(rank)
            gathered.append(payload)
            if rank != root and payload is not None:
                nbytes = int(getattr(payload, "nbytes", 0))
                self.bytes_sent[rank] += nbytes
                self.messages_sent[rank] += 1
                self.send_time_s[rank] += self.model.transfer_time(nbytes)
                self.recv_time_s[root] += self.model.transfer_time(nbytes)
        return gathered

    def communication_summary(self) -> Dict[str, float]:
        """Aggregate communication statistics across ranks."""
        return {
            "total_bytes": float(self.bytes_sent.sum()),
            "total_messages": int(self.messages_sent.sum()),
            "max_rank_bytes": float(self.bytes_sent.max()),
            "max_rank_send_time_s": float(self.send_time_s.max()),
            "max_rank_recv_time_s": float(self.recv_time_s.max()),
            "supersteps": self._supersteps,
        }
