"""The worker that strategies drive, plus a one-call convenience wrapper.

:class:`KernelWorker` adapts a :class:`repro.kernels.QuantumKernel` (and the
scaled data matrix) to the minimal interface the distribution strategies
need: ``simulate(index)``, ``inner_product(state_a, state_b)`` and
``state_nbytes(state)``.  Each call returns both the result and the time to
charge to the calling process; the worker can charge either measured
wall-clock seconds or the backend's modelled device seconds, which is how the
same strategy code produces both laptop-scale measurements and
paper-scale projections.
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np

from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import ParallelError
from ..kernels.quantum_kernel import QuantumKernel
from ..mps import MPS
from .comm import CommunicationModel
from .strategies import (
    DistributedGramResult,
    GramDistributionStrategy,
    NoMessagingCrossStrategy,
    NoMessagingStrategy,
    RoundRobinStrategy,
)

__all__ = ["KernelWorker", "compute_gram_distributed", "compute_cross_distributed"]

TimeSource = Literal["wall", "modelled"]


class KernelWorker:
    """Adapter exposing a quantum kernel as the strategies' worker interface.

    Parameters
    ----------
    kernel:
        The quantum kernel whose backend performs simulations and inner
        products.
    X:
        Scaled feature matrix; ``simulate(i)`` encodes row ``i``.
    time_source:
        ``"wall"`` charges measured Python time, ``"modelled"`` charges the
        backend cost-model time (used for CPU/GPU comparisons and
        projections).
    """

    def __init__(
        self,
        kernel: QuantumKernel,
        X: np.ndarray,
        time_source: TimeSource = "wall",
    ) -> None:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ParallelError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[1] != kernel.ansatz.num_features:
            raise ParallelError(
                f"X has {X.shape[1]} features but the ansatz expects "
                f"{kernel.ansatz.num_features}"
            )
        if time_source not in ("wall", "modelled"):
            raise ParallelError(f"unknown time_source {time_source!r}")
        self.kernel = kernel
        self.engine = kernel.engine
        self.X = X
        self.time_source = time_source
        self.num_points = X.shape[0]

    # ------------------------------------------------------------------
    def simulate(self, index: int) -> Tuple[MPS, float]:
        """Encode data point ``index``; returns the MPS and the charged time.

        Uses the engine's *uncached* simulation path on purpose: the
        strategies charge every re-simulation to the process performing it
        (that duplication is exactly what the no-messaging strategy trades
        communication for), so a shared cache would falsify the accounting.
        """
        if not (0 <= index < self.num_points):
            raise ParallelError(f"data index {index} out of range")
        result = self.engine.simulate_row(self.X[index])
        seconds = (
            result.modelled_time_s if self.time_source == "modelled" else result.wall_time_s
        )
        return result.state, seconds

    def inner_product(self, state_a: MPS, state_b: MPS) -> Tuple[float, float]:
        """Kernel entry ``|<a|b>|^2`` and the charged time."""
        result = self.engine.backend.inner_product(state_a, state_b)
        seconds = (
            result.modelled_time_s if self.time_source == "modelled" else result.wall_time_s
        )
        return float(abs(result.value) ** 2), seconds

    @staticmethod
    def state_nbytes(state: MPS) -> int:
        """Memory footprint of an MPS -- the message size when shipping it."""
        return state.memory_bytes


def compute_gram_distributed(
    X: np.ndarray,
    ansatz: AnsatzConfig,
    num_processes: int,
    strategy: str = "round-robin",
    simulation: SimulationConfig | None = None,
    backend_name: str = "cpu",
    time_source: TimeSource = "wall",
    communication: CommunicationModel | None = None,
) -> DistributedGramResult:
    """One-call distributed Gram matrix with the named strategy and backend.

    This is the entry point the examples and Figure-8 benchmark use.
    """
    from ..backends import get_backend

    backend = get_backend(backend_name, simulation)
    kernel = QuantumKernel(ansatz, backend=backend)
    worker = KernelWorker(kernel, X, time_source=time_source)

    strat: GramDistributionStrategy
    if strategy == "round-robin":
        strat = RoundRobinStrategy(num_processes, communication)
    elif strategy == "no-messaging":
        strat = NoMessagingStrategy(num_processes, communication)
    else:
        raise ParallelError(
            f"unknown strategy {strategy!r}; expected 'round-robin' or 'no-messaging'"
        )
    return strat.compute(worker, X.shape[0])


def compute_cross_distributed(
    X_rows: np.ndarray,
    X_cols: np.ndarray,
    ansatz: AnsatzConfig,
    num_processes: int,
    simulation: SimulationConfig | None = None,
    backend_name: str = "cpu",
    time_source: TimeSource = "wall",
    communication: CommunicationModel | None = None,
) -> DistributedGramResult:
    """Distributed rectangular cross-Gram with the no-messaging tiling.

    Rows and columns are stacked into one worker matrix (rows first), so the
    strategy's data index ``i < len(X_rows)`` is output row ``i`` and index
    ``len(X_rows) + j`` is output column ``j``.  Returns the rectangular
    matrix with the same per-process accounting envelope as the symmetric
    entry point.
    """
    from ..backends import get_backend

    X_rows = np.asarray(X_rows, dtype=float)
    X_cols = np.asarray(X_cols, dtype=float)
    if X_rows.ndim != 2 or X_cols.ndim != 2:
        raise ParallelError("X_rows and X_cols must be 2-D matrices")
    if X_rows.shape[1] != X_cols.shape[1]:
        raise ParallelError(
            f"row and column features disagree: {X_rows.shape[1]} vs {X_cols.shape[1]}"
        )

    backend = get_backend(backend_name, simulation)
    kernel = QuantumKernel(ansatz, backend=backend)
    worker = KernelWorker(
        kernel, np.vstack([X_rows, X_cols]), time_source=time_source
    )
    strat = NoMessagingCrossStrategy(num_processes, communication)
    return strat.compute(worker, X_rows.shape[0], X_cols.shape[0])
