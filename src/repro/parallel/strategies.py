"""Distribution strategies for the Gram matrix: no-messaging and round-robin.

Both strategies compute the symmetric training Gram matrix
``K_ij = |<psi(x_i)|psi(x_j)>|^2`` across ``k`` simulated processes and
report, per process, the time spent in MPS simulation, inner products and
communication -- the three bars of the paper's Figure 8.

No-messaging (Fig. 4a)
    The matrix is tiled; each process handles a subset of tiles and locally
    simulates every circuit its tiles need.  No communication occurs, but a
    circuit whose index appears in several processes' tiles is re-simulated
    on each of them.

Round-robin (Fig. 4b)
    The circuits are split evenly; each process simulates its own block once.
    Blocks are then passed around a ring so that every pair of blocks meets
    on exactly one process, which computes the corresponding tile of the
    matrix.  Each of the ``ceil((k-1)/2)`` ring steps moves one block per
    process, and the final matrix is assembled by a gather.

The strategies are deterministic and single-threaded; "parallel" wall-clock
times are computed as the per-phase maximum over processes, which is what an
actual synchronous MPI run would observe.

The per-pair loops below are *strategy internals*: they model which process
evaluates which entry at which ring step, so the iteration order is the
message schedule itself.  The primitives they drive come from the worker
(see :class:`repro.parallel.executor.KernelWorker`), which dispatches through
the unified :class:`repro.engine.KernelEngine`; every other consumer in the
library routes its pairwise loops through engine plans.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import ParallelError
from .comm import CommunicationModel, SimulatedComm
from .tiling import (
    group_tiles_by_owner,
    partition_indices,
    rect_tiling,
    square_tiling,
)

__all__ = [
    "ProcessTimings",
    "DistributedGramResult",
    "GramDistributionStrategy",
    "NoMessagingStrategy",
    "NoMessagingCrossStrategy",
    "RoundRobinStrategy",
]


@dataclass
class ProcessTimings:
    """Per-process accounting of one distributed Gram-matrix computation."""

    rank: int
    simulation_s: float = 0.0
    inner_product_s: float = 0.0
    communication_s: float = 0.0
    num_simulations: int = 0
    num_inner_products: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    peak_states_held: int = 0

    @property
    def total_s(self) -> float:
        """Total busy time of the process."""
        return self.simulation_s + self.inner_product_s + self.communication_s


@dataclass
class DistributedGramResult:
    """Gram matrix plus the per-process and wall-clock timing breakdown."""

    matrix: np.ndarray
    per_process: List[ProcessTimings]
    strategy: str
    num_processes: int

    @property
    def simulation_wall_s(self) -> float:
        """Wall-clock of the simulation phase (max over processes)."""
        return max(p.simulation_s for p in self.per_process)

    @property
    def inner_product_wall_s(self) -> float:
        """Wall-clock of the inner-product phase (max over processes)."""
        return max(p.inner_product_s for p in self.per_process)

    @property
    def communication_wall_s(self) -> float:
        """Wall-clock of communication (max over processes)."""
        return max(p.communication_s for p in self.per_process)

    @property
    def total_wall_s(self) -> float:
        """Total wall-clock: sum of the phase wall-clocks."""
        return (
            self.simulation_wall_s
            + self.inner_product_wall_s
            + self.communication_wall_s
        )

    @property
    def total_simulations(self) -> int:
        """Total circuit simulations across processes (counts duplicates)."""
        return sum(p.num_simulations for p in self.per_process)

    @property
    def total_inner_products(self) -> int:
        """Total inner products across processes."""
        return sum(p.num_inner_products for p in self.per_process)

    def breakdown(self) -> Dict[str, float]:
        """Dictionary of the Figure-8 bar heights."""
        return {
            "strategy": self.strategy,
            "num_processes": self.num_processes,
            "simulation_wall_s": self.simulation_wall_s,
            "inner_product_wall_s": self.inner_product_wall_s,
            "communication_wall_s": self.communication_wall_s,
            "total_wall_s": self.total_wall_s,
        }


class GramDistributionStrategy(abc.ABC):
    """Interface of a distribution strategy.

    The ``worker`` argument of :meth:`compute` must provide::

        simulate(index) -> (state, seconds)
        inner_product(state_a, state_b) -> (kernel_value, seconds)
        state_nbytes(state) -> int

    (see :class:`repro.parallel.executor.KernelWorker`).  Times may be either
    measured wall-clock or modelled device times; the strategy is agnostic.
    """

    name: str = "abstract"

    def __init__(
        self,
        num_processes: int,
        communication: CommunicationModel | None = None,
    ) -> None:
        if num_processes < 1:
            raise ParallelError(f"num_processes must be >= 1, got {num_processes}")
        self.num_processes = num_processes
        self.communication = (
            communication if communication is not None else CommunicationModel()
        )

    @abc.abstractmethod
    def compute(self, worker, num_points: int) -> DistributedGramResult:
        """Compute the symmetric Gram matrix for ``num_points`` data points."""


class NoMessagingStrategy(GramDistributionStrategy):
    """Tile the matrix; every process simulates what its tiles need."""

    name = "no-messaging"

    def __init__(
        self,
        num_processes: int,
        communication: CommunicationModel | None = None,
        num_blocks: int | None = None,
    ) -> None:
        super().__init__(num_processes, communication)
        self.num_blocks = num_blocks

    def _resolve_blocks(self, num_points: int) -> int:
        if self.num_blocks is not None:
            return min(self.num_blocks, num_points)
        # Square tiling: aim for roughly one tile per process, i.e. a block
        # grid of side ~ sqrt(2k) so the upper triangle has ~k tiles.
        side = max(1, int(np.ceil(np.sqrt(2 * self.num_processes))))
        return min(side, num_points)

    def compute(self, worker, num_points: int) -> DistributedGramResult:
        if num_points < 2:
            raise ParallelError("need at least 2 data points for a Gram matrix")
        num_blocks = self._resolve_blocks(num_points)
        tiles = square_tiling(
            num_points, num_blocks, symmetric=True, num_owners=self.num_processes
        )

        timings = [ProcessTimings(rank=r) for r in range(self.num_processes)]
        matrix = np.eye(num_points)

        tiles_by_owner = group_tiles_by_owner(tiles, num_owners=self.num_processes)

        for rank in range(self.num_processes):
            t = timings[rank]
            local_states: Dict[int, object] = {}
            # Simulate every circuit any of this process' tiles requires.
            needed: set[int] = set()
            for tile in tiles_by_owner[rank]:
                needed.update(tile.required_states)
            for idx in sorted(needed):
                state, seconds = worker.simulate(idx)
                local_states[idx] = state
                t.simulation_s += seconds
                t.num_simulations += 1
            t.peak_states_held = len(local_states)
            # Compute the entries of each owned tile.
            for tile in tiles_by_owner[rank]:
                for (i, j) in tile.entry_pairs():
                    value, seconds = worker.inner_product(
                        local_states[i], local_states[j]
                    )
                    matrix[i, j] = matrix[j, i] = value
                    t.inner_product_s += seconds
                    t.num_inner_products += 1

        return DistributedGramResult(
            matrix=matrix,
            per_process=timings,
            strategy=self.name,
            num_processes=self.num_processes,
        )


class NoMessagingCrossStrategy(GramDistributionStrategy):
    """Rectangular cross-Gram over tiles; every process simulates its needs.

    The distributed gap the symmetric strategies left open: test-versus-train
    matrices and the Nystrom ``K_nm`` landmark block are rectangular, so the
    tile grid comes from :func:`repro.parallel.tiling.rect_tiling` and no
    mirroring occurs.  The worker indexes one stacked matrix -- rows first,
    then columns -- so the plain :class:`~repro.parallel.executor.KernelWorker`
    over ``vstack([X_rows, X_cols])`` drives it unchanged: row ``i`` of the
    output is data index ``i``, column ``j`` is data index ``num_rows + j``.

    Like :class:`NoMessagingStrategy` there is no communication; a data point
    touched by tiles on several ranks is re-simulated on each of them and the
    duplication is charged to the process that performs it.
    """

    name = "no-messaging-cross"

    def __init__(
        self,
        num_processes: int,
        communication: CommunicationModel | None = None,
        num_row_blocks: int | None = None,
        num_col_blocks: int | None = None,
    ) -> None:
        super().__init__(num_processes, communication)
        self.num_row_blocks = num_row_blocks
        self.num_col_blocks = num_col_blocks

    def _resolve_blocks(self, num_rows: int, num_cols: int) -> Tuple[int, int]:
        if self.num_row_blocks is not None:
            rows = min(self.num_row_blocks, num_rows)
        else:
            # Aim for roughly one tile per process along the longer axis.
            rows = min(max(1, int(np.ceil(np.sqrt(self.num_processes)))), num_rows)
        if self.num_col_blocks is not None:
            cols = min(self.num_col_blocks, num_cols)
        else:
            cols = min(max(1, int(np.ceil(self.num_processes / rows))), num_cols)
        return rows, cols

    def compute(self, worker, num_rows: int, num_cols: int | None = None) -> DistributedGramResult:
        """Cross-Gram of ``num_rows x num_cols`` entries over the process grid.

        ``worker.simulate`` must accept stacked indices ``0 .. num_rows +
        num_cols - 1`` (rows first).  Returns a rectangular matrix inside the
        usual :class:`DistributedGramResult` accounting envelope.
        """
        if num_cols is None:
            raise ParallelError("NoMessagingCrossStrategy.compute needs num_cols")
        if num_rows < 1 or num_cols < 1:
            raise ParallelError(
                f"cross-Gram needs positive dimensions, got {num_rows} x {num_cols}"
            )
        row_blocks, col_blocks = self._resolve_blocks(num_rows, num_cols)
        tiles = rect_tiling(
            num_rows,
            num_cols,
            row_blocks,
            col_blocks,
            num_owners=self.num_processes,
        )

        timings = [ProcessTimings(rank=r) for r in range(self.num_processes)]
        matrix = np.zeros((num_rows, num_cols))
        tiles_by_owner = group_tiles_by_owner(tiles, num_owners=self.num_processes)

        for rank in range(self.num_processes):
            t = timings[rank]
            local_states: Dict[int, object] = {}
            needed: set[int] = set()
            for tile in tiles_by_owner[rank]:
                needed.update(tile.row_indices)
                needed.update(num_rows + j for j in tile.col_indices)
            for idx in sorted(needed):
                state, seconds = worker.simulate(idx)
                local_states[idx] = state
                t.simulation_s += seconds
                t.num_simulations += 1
            t.peak_states_held = len(local_states)
            for tile in tiles_by_owner[rank]:
                for (i, j) in tile.entry_pairs():
                    value, seconds = worker.inner_product(
                        local_states[i], local_states[num_rows + j]
                    )
                    matrix[i, j] = value
                    t.inner_product_s += seconds
                    t.num_inner_products += 1

        return DistributedGramResult(
            matrix=matrix,
            per_process=timings,
            strategy=self.name,
            num_processes=self.num_processes,
        )


class RoundRobinStrategy(GramDistributionStrategy):
    """Simulate each circuit once and pass MPS blocks around a ring."""

    name = "round-robin"

    def compute(self, worker, num_points: int) -> DistributedGramResult:
        if num_points < 2:
            raise ParallelError("need at least 2 data points for a Gram matrix")
        k = min(self.num_processes, num_points)
        if k < self.num_processes:
            # More processes than points: the surplus ranks stay idle, which
            # is what an MPI run with a tiny data set would do.
            pass
        blocks = partition_indices(num_points, k)
        comm = SimulatedComm(self.num_processes, self.communication)
        timings = [ProcessTimings(rank=r) for r in range(self.num_processes)]
        matrix = np.eye(num_points)

        # Phase 1: every active rank simulates exactly its own block.
        own_states: List[Dict[int, object]] = [dict() for _ in range(self.num_processes)]
        for rank in range(k):
            t = timings[rank]
            for idx in blocks[rank]:
                state, seconds = worker.simulate(int(idx))
                own_states[rank][int(idx)] = state
                t.simulation_s += seconds
                t.num_simulations += 1
            t.peak_states_held = len(own_states[rank])

        # Phase 2, step 0: diagonal tiles (within-block upper triangle).
        for rank in range(k):
            t = timings[rank]
            idx = [int(i) for i in blocks[rank]]
            for a in range(len(idx)):
                for b in range(a + 1, len(idx)):
                    value, seconds = worker.inner_product(
                        own_states[rank][idx[a]], own_states[rank][idx[b]]
                    )
                    matrix[idx[a], idx[b]] = matrix[idx[b], idx[a]] = value
                    t.inner_product_s += seconds
                    t.num_inner_products += 1

        # Phase 2, ring steps: at step s rank p works on blocks (p, (p+s) % k).
        # The travelling block is shifted one position around the ring per
        # step.  For a symmetric matrix only ceil((k-1)/2) steps are needed;
        # when k is even, at the final step only half of the ranks compute
        # (the other half would duplicate the mirrored tile).
        travelling: List[Dict[int, object]] = [dict(own_states[r]) for r in range(k)]
        travelling_block: List[int] = list(range(k))  # which block each rank holds
        num_steps = (k - 1 + 1) // 2 if k % 2 == 1 else k // 2
        if k == 1:
            num_steps = 0

        for step in range(1, num_steps + 1):
            # Ring shift: rank p sends its travelling block to (p - 1) mod k
            # and receives from (p + 1) mod k.
            for rank in range(k):
                dest = (rank - 1) % k
                nbytes = sum(
                    worker.state_nbytes(s) for s in travelling[rank].values()
                )
                comm.send(rank, dest, (travelling_block[rank], travelling[rank]), nbytes)
                timings[rank].bytes_sent += nbytes
                timings[rank].communication_s += self.communication.transfer_time(nbytes)
            comm.deliver()
            new_travelling: List[Dict[int, object]] = [dict() for _ in range(k)]
            new_travelling_block = [0] * k
            for rank in range(k):
                received = comm.receive_all(rank)
                if len(received) != 1:
                    raise ParallelError(
                        f"rank {rank} expected exactly one block, got {len(received)}"
                    )
                block_id, states = received[0]
                new_travelling[rank] = states
                new_travelling_block[rank] = block_id
                nbytes = sum(worker.state_nbytes(s) for s in states.values())
                timings[rank].bytes_received += nbytes
                timings[rank].communication_s += self.communication.transfer_time(nbytes)
                timings[rank].peak_states_held = max(
                    timings[rank].peak_states_held,
                    len(own_states[rank]) + len(states),
                )
            travelling = new_travelling
            travelling_block = new_travelling_block

            # Compute the tile (own block, travelling block) on each rank.
            last_even_step = (k % 2 == 0) and (step == num_steps)
            for rank in range(k):
                if last_even_step and rank >= k // 2:
                    # The mirrored tile is handled by rank - k/2.
                    continue
                t = timings[rank]
                own_idx = [int(i) for i in blocks[rank]]
                other_idx = [int(i) for i in blocks[travelling_block[rank]]]
                for i in own_idx:
                    for j in other_idx:
                        value, seconds = worker.inner_product(
                            own_states[rank][i], travelling[rank][j]
                        )
                        matrix[i, j] = matrix[j, i] = value
                        t.inner_product_s += seconds
                        t.num_inner_products += 1

        return DistributedGramResult(
            matrix=matrix,
            per_process=timings,
            strategy=self.name,
            num_processes=self.num_processes,
        )
