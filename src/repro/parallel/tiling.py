"""Tiling of the Gram matrix for distributed computation.

Both distribution strategies carve the ``N x N`` (or ``N_test x N_train``)
kernel matrix into rectangular tiles.  :func:`partition_indices` produces the
near-equal contiguous index blocks that define tile boundaries, and
:func:`square_tiling` enumerates the tiles together with their owning process
for the no-messaging strategy.  :func:`tiles_cover_matrix` is the invariant
checked by the property-based tests: every requested entry is covered by
exactly one tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import TilingError

__all__ = [
    "Tile",
    "partition_indices",
    "square_tiling",
    "rect_tiling",
    "group_tiles_by_owner",
    "tiles_cover_matrix",
]


@dataclass(frozen=True)
class Tile:
    """One rectangular tile of the kernel matrix.

    Attributes
    ----------
    row_block / col_block:
        Index of the row / column block this tile covers.
    row_indices / col_indices:
        The global matrix indices covered (as tuples for hashability).
    owner:
        Rank of the process responsible for computing the tile.
    symmetric_diagonal:
        ``True`` for diagonal tiles of a symmetric Gram matrix, where only
        the upper triangle (including the unit diagonal) needs computing.
    """

    row_block: int
    col_block: int
    row_indices: Tuple[int, ...]
    col_indices: Tuple[int, ...]
    owner: int
    symmetric_diagonal: bool = False

    @property
    def num_entries(self) -> int:
        """Number of kernel entries the tile is responsible for."""
        n_rows, n_cols = len(self.row_indices), len(self.col_indices)
        if self.symmetric_diagonal:
            return n_rows * (n_rows - 1) // 2
        return n_rows * n_cols

    @property
    def required_states(self) -> Tuple[int, ...]:
        """All state indices a process must hold to compute this tile."""
        return tuple(sorted(set(self.row_indices) | set(self.col_indices)))

    def entry_pairs(self) -> List[Tuple[int, int]]:
        """The (row, col) pairs this tile computes.

        For symmetric diagonal tiles only pairs with ``row < col`` are
        emitted (the diagonal itself is 1 by normalisation).
        """
        pairs: List[Tuple[int, int]] = []
        if self.symmetric_diagonal:
            idx = self.row_indices
            for a in range(len(idx)):
                for b in range(a + 1, len(idx)):
                    pairs.append((idx[a], idx[b]))
            return pairs
        for r in self.row_indices:
            for c in self.col_indices:
                pairs.append((r, c))
        return pairs


def partition_indices(n: int, k: int) -> List[np.ndarray]:
    """Split ``range(n)`` into ``k`` contiguous, near-equal blocks.

    The first ``n % k`` blocks receive one extra element.  Raises when there
    are more blocks than elements, which would leave some process with no
    work and usually indicates a misconfigured run.
    """
    if n < 1:
        raise TilingError(f"cannot partition {n} indices")
    if k < 1:
        raise TilingError(f"number of blocks must be >= 1, got {k}")
    if k > n:
        raise TilingError(f"more blocks ({k}) than indices ({n})")
    base = n // k
    remainder = n % k
    blocks: List[np.ndarray] = []
    start = 0
    for b in range(k):
        size = base + (1 if b < remainder else 0)
        blocks.append(np.arange(start, start + size))
        start += size
    return blocks


def square_tiling(
    n: int,
    num_blocks: int,
    symmetric: bool = True,
    num_owners: int | None = None,
) -> List[Tile]:
    """Tile an ``n x n`` kernel matrix into ``num_blocks x num_blocks`` tiles.

    For a symmetric matrix only tiles with ``row_block <= col_block`` are
    produced (the strategy mirrors the entries afterwards) and the diagonal
    tiles are marked so they compute only their upper triangle.  Tile
    ownership is assigned round-robin over ``num_owners`` processes (one
    owner per tile when ``num_owners`` is ``None``) so per-process entry
    counts stay balanced.
    """
    if num_owners is not None and num_owners < 1:
        raise TilingError(f"num_owners must be >= 1, got {num_owners}")
    blocks = partition_indices(n, num_blocks)
    tiles: List[Tile] = []
    tile_index = 0
    for rb in range(num_blocks):
        col_start = rb if symmetric else 0
        for cb in range(col_start, num_blocks):
            owner = tile_index if num_owners is None else tile_index % num_owners
            tiles.append(
                Tile(
                    row_block=rb,
                    col_block=cb,
                    row_indices=tuple(int(i) for i in blocks[rb]),
                    col_indices=tuple(int(i) for i in blocks[cb]),
                    owner=owner,
                    symmetric_diagonal=symmetric and rb == cb,
                )
            )
            tile_index += 1
    return tiles


def rect_tiling(
    num_rows: int,
    num_cols: int,
    num_row_blocks: int,
    num_col_blocks: int | None = None,
    num_owners: int | None = None,
) -> List[Tile]:
    """Tile a rectangular ``num_rows x num_cols`` kernel matrix.

    Used for cross-Gram blocks (test-versus-train, and the Nystrom
    ``K_nm`` landmark block) where no symmetry exists: every tile computes
    all of its entries.  ``num_col_blocks`` defaults to ``num_row_blocks``
    capped to the column count; ownership is round-robin as in
    :func:`square_tiling`.
    """
    if num_owners is not None and num_owners < 1:
        raise TilingError(f"num_owners must be >= 1, got {num_owners}")
    if num_col_blocks is None:
        num_col_blocks = min(num_row_blocks, num_cols)
    row_blocks = partition_indices(num_rows, num_row_blocks)
    col_blocks = partition_indices(num_cols, num_col_blocks)
    tiles: List[Tile] = []
    tile_index = 0
    for rb, row_idx in enumerate(row_blocks):
        for cb, col_idx in enumerate(col_blocks):
            owner = tile_index if num_owners is None else tile_index % num_owners
            tiles.append(
                Tile(
                    row_block=rb,
                    col_block=cb,
                    row_indices=tuple(int(i) for i in row_idx),
                    col_indices=tuple(int(i) for i in col_idx),
                    owner=owner,
                    symmetric_diagonal=False,
                )
            )
            tile_index += 1
    return tiles


def group_tiles_by_owner(
    tiles: Sequence[Tile], num_owners: int | None = None
) -> Dict[int, List[Tile]]:
    """Tiles grouped by owning rank, preserving enumeration order.

    ``num_owners`` pre-populates (possibly empty) groups for every rank in
    ``range(num_owners)`` so strategies can iterate ranks uniformly even when
    a rank received no tile.
    """
    groups: Dict[int, List[Tile]] = (
        {r: [] for r in range(num_owners)} if num_owners is not None else {}
    )
    for tile in tiles:
        groups.setdefault(tile.owner, []).append(tile)
    return groups


def tiles_cover_matrix(
    tiles: Sequence[Tile],
    n: int,
    symmetric: bool = True,
    num_cols: int | None = None,
) -> bool:
    """Check that the tiles cover every required entry exactly once.

    For symmetric matrices the required entries are the strict upper
    triangle; for rectangular/asymmetric cases every ``(i, j)`` pair of the
    ``n x num_cols`` matrix (``num_cols`` defaults to ``n``).
    """
    if num_cols is None:
        num_cols = n
    covered = np.zeros((n, num_cols), dtype=int)
    for tile in tiles:
        for (r, c) in tile.entry_pairs():
            if not (0 <= r < n and 0 <= c < num_cols):
                return False
            covered[r, c] += 1
    if symmetric:
        if num_cols != n:
            raise TilingError("symmetric coverage requires a square matrix")
        expected = np.triu(np.ones((n, n), dtype=int), k=1)
    else:
        expected = np.ones((n, num_cols), dtype=int)
    return bool(np.array_equal(covered, expected))
