"""Gate kinds and the :class:`Operation` record used by the circuit IR."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from ..exceptions import CircuitError
from ..mps import gates as gatelib

__all__ = ["GateKind", "Operation"]


class GateKind(str, enum.Enum):
    """Enumeration of the gates the framework emits.

    The ansatz only needs H, RZ, RXX and SWAP; the remaining kinds exist so
    the IR is useful for the examples and for users extending the feature
    map (e.g. with RZZ interactions).
    """

    H = "H"
    X = "X"
    Y = "Y"
    Z = "Z"
    RX = "RX"
    RY = "RY"
    RZ = "RZ"
    RXX = "RXX"
    RYY = "RYY"
    RZZ = "RZZ"
    SWAP = "SWAP"
    CNOT = "CNOT"
    CZ = "CZ"

    @property
    def num_qubits(self) -> int:
        """Arity of the gate."""
        return 1 if self in _SINGLE_QUBIT_KINDS else 2

    @property
    def is_parameterised(self) -> bool:
        """Whether the gate takes a rotation angle."""
        return self in _PARAMETERISED_KINDS


_SINGLE_QUBIT_KINDS = {
    GateKind.H,
    GateKind.X,
    GateKind.Y,
    GateKind.Z,
    GateKind.RX,
    GateKind.RY,
    GateKind.RZ,
}

_PARAMETERISED_KINDS = {
    GateKind.RX,
    GateKind.RY,
    GateKind.RZ,
    GateKind.RXX,
    GateKind.RYY,
    GateKind.RZZ,
}

_FIXED_MATRICES = {
    GateKind.H: gatelib.hadamard,
    GateKind.X: gatelib.pauli_x,
    GateKind.Y: gatelib.pauli_y,
    GateKind.Z: gatelib.pauli_z,
    GateKind.SWAP: gatelib.swap,
    GateKind.CNOT: gatelib.cnot,
    GateKind.CZ: gatelib.controlled_z,
}

_PARAM_MATRICES = {
    GateKind.RX: gatelib.rx,
    GateKind.RY: gatelib.ry,
    GateKind.RZ: gatelib.rz,
    GateKind.RXX: gatelib.rxx,
    GateKind.RYY: gatelib.ryy,
    GateKind.RZZ: gatelib.rzz,
}


@lru_cache(maxsize=65536)
def _cached_matrix(kind: GateKind, angle: float) -> np.ndarray:
    """Memoised gate-matrix construction, returned as a read-only array.

    Keyed by ``(kind, angle)``; consumers only ever contract the matrix, so
    sharing one frozen instance is safe and skips the ``kron``-based
    construction cost on every repeat (fixed prep/routing gates, the
    layer-repeated data angles, and any hot query re-encoding).
    """
    if kind in _FIXED_MATRICES:
        matrix = _FIXED_MATRICES[kind]()
    else:
        matrix = _PARAM_MATRICES[kind](angle)
    matrix.flags.writeable = False
    return matrix


@dataclass(frozen=True)
class Operation:
    """One gate applied to specific qubits.

    Attributes
    ----------
    kind:
        Which gate.
    qubits:
        Target qubit indices; length must match the gate arity.  Two-qubit
        targets may be non-adjacent before routing.
    angle:
        Rotation angle for parameterised gates, ``0.0`` otherwise.
    tag:
        Free-form label (e.g. ``"HZ"``, ``"HXX"``, ``"routing"``) used by
        analysis and by the routing pass to identify inserted SWAPs.
    """

    kind: GateKind
    qubits: Tuple[int, ...]
    angle: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qubits)
        if len(qubits) != self.kind.num_qubits:
            raise CircuitError(
                f"{self.kind.value} acts on {self.kind.num_qubits} qubit(s), "
                f"got targets {qubits}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate target qubits in {qubits}")
        if any(q < 0 for q in qubits):
            raise CircuitError(f"negative qubit index in {qubits}")
        if not self.kind.is_parameterised and self.angle != 0.0:
            raise CircuitError(
                f"{self.kind.value} takes no angle but angle={self.angle} was given"
            )

    @property
    def num_qubits(self) -> int:
        """Arity of the operation."""
        return self.kind.num_qubits

    @property
    def is_two_qubit(self) -> bool:
        """Whether this operation entangles two qubits."""
        return self.kind.num_qubits == 2

    def matrix(self) -> np.ndarray:
        """Dense unitary matrix of the operation.

        For two-qubit gates the first listed qubit is the most significant
        bit of the matrix basis.  Matrices are memoised by ``(kind, angle)``
        and returned read-only: the prep/routing layers reuse a handful of
        fixed gates and the ansatz repeats each data angle once per layer,
        so encoding-heavy paths (cold serving in particular) skip most
        matrix rebuilds.
        """
        return _cached_matrix(self.kind, self.angle)

    def remap(self, mapping: dict[int, int]) -> "Operation":
        """Return a copy acting on relabelled qubits."""
        return Operation(
            kind=self.kind,
            qubits=tuple(mapping.get(q, q) for q in self.qubits),
            angle=self.angle,
            tag=self.tag,
        )
