"""The :class:`Circuit` container: an ordered list of operations."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from ..exceptions import CircuitError
from .gate import GateKind, Operation

__all__ = ["Circuit"]


class Circuit:
    """An ordered sequence of gates acting on ``num_qubits`` qubits.

    The class is a thin, validated container; transformation passes
    (routing, scheduling) return new circuits rather than mutating in place
    whenever the transformation is non-trivial.
    """

    __slots__ = ("_num_qubits", "_operations")

    def __init__(
        self, num_qubits: int, operations: Iterable[Operation] | None = None
    ) -> None:
        if num_qubits < 1:
            raise CircuitError(f"num_qubits must be >= 1, got {num_qubits}")
        self._num_qubits = int(num_qubits)
        self._operations: List[Operation] = []
        if operations is not None:
            for op in operations:
                self.append(op)

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Width of the circuit."""
        return self._num_qubits

    @property
    def operations(self) -> List[Operation]:
        """The operations, in application order (shallow copy)."""
        return list(self._operations)

    @property
    def num_gates(self) -> int:
        """Total gate count."""
        return len(self._operations)

    @property
    def num_two_qubit_gates(self) -> int:
        """Two-qubit gate count -- the MPS simulation cost driver."""
        return sum(1 for op in self._operations if op.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        """Single-qubit gate count."""
        return self.num_gates - self.num_two_qubit_gates

    def count_kind(self, kind: GateKind) -> int:
        """Number of operations of the given kind."""
        return sum(1 for op in self._operations if op.kind == kind)

    # ------------------------------------------------------------------
    def append(self, operation: Operation) -> None:
        """Append a validated operation."""
        for q in operation.qubits:
            if q >= self._num_qubits:
                raise CircuitError(
                    f"operation targets qubit {q} but the circuit has only "
                    f"{self._num_qubits} qubits"
                )
        self._operations.append(operation)

    def add(
        self,
        kind: GateKind | str,
        qubits: Sequence[int] | int,
        angle: float = 0.0,
        tag: str = "",
    ) -> None:
        """Convenience builder: ``circuit.add("RZ", 3, angle=0.5)``."""
        if isinstance(kind, str):
            kind = GateKind(kind)
        if isinstance(qubits, int):
            qubits = (qubits,)
        self.append(Operation(kind=kind, qubits=tuple(qubits), angle=angle, tag=tag))

    def extend(self, operations: Iterable[Operation]) -> None:
        """Append several operations."""
        for op in operations:
            self.append(op)

    def copy(self) -> "Circuit":
        """Shallow copy (operations are immutable, so sharing them is safe)."""
        return Circuit(self._num_qubits, self._operations)

    def remap_qubits(self, mapping: dict[int, int]) -> "Circuit":
        """Return a circuit with qubits relabelled according to ``mapping``."""
        return Circuit(
            self._num_qubits, (op.remap(mapping) for op in self._operations)
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index: int) -> Operation:
        return self._operations[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and self._operations == other._operations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(num_qubits={self._num_qubits}, gates={self.num_gates}, "
            f"two_qubit_gates={self.num_two_qubit_gates})"
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Gate-count summary used by benchmark records."""
        counts: dict[str, int] = {}
        for op in self._operations:
            counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
        return {
            "num_qubits": self._num_qubits,
            "num_gates": self.num_gates,
            "num_two_qubit_gates": self.num_two_qubit_gates,
            **{f"count_{k}": v for k, v in sorted(counts.items())},
        }
