"""SWAP routing of long-range two-qubit gates onto the linear chain.

The MPS simulator only applies two-qubit gates to *adjacent* sites.  A gate
acting on qubits ``i`` and ``i + k`` (``k > 1``) is therefore implemented as
a SWAP sandwich (paper section II-C):

1. ``k - 1`` SWAPs bring qubit ``i`` next to qubit ``i + k`` (we move the
   left qubit rightward so the interaction happens at the bond
   ``(i + k - 1, i + k)``),
2. the gate is applied on the now-adjacent pair,
3. the same SWAPs are applied in reverse to restore the original ordering.

This costs ``2 (k - 1)`` additional SWAP gates per long-range gate, exactly
the count quoted in the paper.
"""

from __future__ import annotations

from typing import List

from ..exceptions import RoutingError
from .circuit import Circuit
from .gate import GateKind, Operation

__all__ = ["route_to_linear_chain", "is_routed", "swap_overhead"]


def is_routed(circuit: Circuit) -> bool:
    """``True`` when every two-qubit gate acts on adjacent, ascending qubits."""
    for op in circuit.operations:
        if op.is_two_qubit:
            q0, q1 = op.qubits
            if q1 != q0 + 1:
                return False
    return True


def swap_overhead(circuit: Circuit) -> int:
    """Number of SWAP gates routing would insert for this circuit."""
    overhead = 0
    for op in circuit.operations:
        if op.is_two_qubit and op.kind != GateKind.SWAP:
            q0, q1 = sorted(op.qubits)
            k = q1 - q0
            if k > 1:
                overhead += 2 * (k - 1)
    return overhead


def route_to_linear_chain(circuit: Circuit) -> Circuit:
    """Insert SWAP sandwiches so every two-qubit gate is nearest-neighbour.

    The returned circuit implements exactly the same unitary (SWAPs are
    self-inverse and restore the qubit order after each long-range gate) but
    contains only adjacent two-qubit gates, as required by
    :meth:`repro.mps.MPS.apply_two_qubit_gate`.

    Gates that are already adjacent are normalised so that their qubit pair
    is ascending ``(q, q + 1)``; for the symmetric gates emitted by the
    ansatz (RXX, RZZ, SWAP) reordering the pair leaves the matrix unchanged.
    Non-symmetric two-qubit gates (CNOT) given in descending order are
    rejected with :class:`RoutingError` rather than silently reinterpreted.
    """
    routed = Circuit(circuit.num_qubits)
    for op in circuit.operations:
        if not op.is_two_qubit:
            routed.append(op)
            continue

        q0, q1 = op.qubits
        lo, hi = (q0, q1) if q0 < q1 else (q1, q0)
        descending = q0 > q1
        if descending and not _is_symmetric_kind(op.kind):
            raise RoutingError(
                f"cannot normalise descending qubit order for non-symmetric "
                f"gate {op.kind.value} on {op.qubits}"
            )

        distance = hi - lo
        if distance == 1:
            routed.append(
                Operation(kind=op.kind, qubits=(lo, hi), angle=op.angle, tag=op.tag)
            )
            continue

        # Move the left qubit rightward until it sits at position hi - 1.
        swap_positions: List[int] = list(range(lo, hi - 1))
        for pos in swap_positions:
            routed.append(
                Operation(GateKind.SWAP, (pos, pos + 1), tag="routing")
            )
        routed.append(
            Operation(kind=op.kind, qubits=(hi - 1, hi), angle=op.angle, tag=op.tag)
        )
        for pos in reversed(swap_positions):
            routed.append(
                Operation(GateKind.SWAP, (pos, pos + 1), tag="routing")
            )
    return routed


def _is_symmetric_kind(kind: GateKind) -> bool:
    """Gates whose matrix is invariant under exchanging the two qubits."""
    return kind in {GateKind.RXX, GateKind.RYY, GateKind.RZZ, GateKind.SWAP, GateKind.CZ}
