"""The Ising feature-map ansatz (paper section II-A and II-C).

The circuit preparing ``|psi(x)> = U(x)|+>^m`` for a data point ``x`` with
``m`` features is::

    U(x) = [ exp(-i H_XX(x)) * exp(-i H_Z(x)) ]^r

with the data-dependent Hamiltonians of equations (4) and (5)::

    H_Z(x)  = gamma     * sum_i            x_i            Z_i
    H_XX(x) = gamma^2 * (pi/2) * sum_{(i,j) in G} (1 - x_i)(1 - x_j) X_i X_j

where ``G`` is a linear chain whose edges connect qubits at distance at most
``d`` (the *interaction distance*).  Data is first rescaled to the real
interval ``(0, 2)``.

Gate-angle conventions
----------------------
Our rotation gates are defined as ``RZ(theta) = exp(-i theta Z / 2)`` and
``RXX(theta) = exp(-i theta XX / 2)`` (see :mod:`repro.mps.gates`).  The
Hamiltonian exponentials therefore translate to::

    exp(-i gamma x_i Z_i)                      ->  RZ(2 * gamma * x_i)
    exp(-i gamma^2 (pi/2)(1-x_i)(1-x_j) XX)    ->  RXX(gamma^2 * pi * (1-x_i)(1-x_j))

These conversions are carried out by :func:`feature_map_angles` so that tests
can verify them independently of circuit construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx
import numpy as np

from ..config import AnsatzConfig
from ..exceptions import CircuitError
from .circuit import Circuit
from .gate import GateKind, Operation
from .routing import route_to_linear_chain
from .scheduling import schedule_commuting_layers

__all__ = [
    "rescale_features",
    "build_interaction_graph",
    "feature_map_angles",
    "build_feature_map_circuit",
]


def rescale_features(
    features: np.ndarray,
    lower: float = 0.0,
    upper: float = 2.0,
) -> np.ndarray:
    """Clip-free affine rescaling of a feature vector into ``(lower, upper)``.

    The paper rescales every data vector to the real interval ``(0, 2)``
    before encoding.  This helper rescales a *single vector*; dataset-level
    scaling (fit on the training split, apply to both splits) lives in
    :mod:`repro.svm.preprocessing`.  Constant vectors map to the interval
    midpoint.
    """
    x = np.asarray(features, dtype=float).ravel()
    if x.size == 0:
        raise CircuitError("cannot rescale an empty feature vector")
    xmin, xmax = float(np.min(x)), float(np.max(x))
    if xmax == xmin:
        return np.full_like(x, (lower + upper) / 2.0)
    scaled = (x - xmin) / (xmax - xmin)
    return lower + scaled * (upper - lower)


def build_interaction_graph(num_qubits: int, interaction_distance: int) -> nx.Graph:
    """Linear-chain interaction graph with edges up to distance ``d``.

    Edge ``(i, j)`` is included whenever ``0 < j - i <= d``.  The graph's
    edges are the terms of ``H_XX`` in equation (5); more edges mean more Lie
    algebra generators and thus a more expressive feature map.
    """
    if num_qubits < 1:
        raise CircuitError("num_qubits must be >= 1")
    if interaction_distance < 1:
        raise CircuitError("interaction_distance must be >= 1")
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    for i in range(num_qubits):
        for j in range(i + 1, min(i + interaction_distance, num_qubits - 1) + 1):
            graph.add_edge(i, j, distance=j - i)
    return graph


@dataclass(frozen=True)
class FeatureMapAngles:
    """Gate angles for one data point.

    Attributes
    ----------
    rz_angles:
        Angle of the RZ gate on each qubit (length ``m``).
    rxx_angles:
        Mapping ``(i, j) -> angle`` for each interaction-graph edge with
        ``i < j``.
    """

    rz_angles: np.ndarray
    rxx_angles: dict[Tuple[int, int], float]


def feature_map_angles(
    features: np.ndarray,
    config: AnsatzConfig,
) -> FeatureMapAngles:
    """Compute the RZ / RXX angles of one ansatz layer for a data point.

    ``features`` must already be rescaled to ``(0, 2)`` and have length
    ``config.num_features``.
    """
    x = np.asarray(features, dtype=float).ravel()
    if x.size != config.num_features:
        raise CircuitError(
            f"expected {config.num_features} features, got {x.size}"
        )
    gamma = config.gamma
    rz_angles = 2.0 * gamma * x
    graph = build_interaction_graph(config.num_features, config.interaction_distance)
    rxx_angles: dict[Tuple[int, int], float] = {}
    for i, j in sorted(graph.edges()):
        lo, hi = (i, j) if i < j else (j, i)
        rxx_angles[(lo, hi)] = float(
            gamma * gamma * np.pi * (1.0 - x[lo]) * (1.0 - x[hi])
        )
    return FeatureMapAngles(rz_angles=rz_angles, rxx_angles=rxx_angles)


def build_feature_map_circuit(
    features: np.ndarray,
    config: AnsatzConfig,
    *,
    routed: bool = True,
    scheduled: bool = True,
    include_state_prep: bool = True,
) -> Circuit:
    """Build the full circuit preparing ``U(x)|+>^m`` for one data point.

    Parameters
    ----------
    features:
        Feature vector of length ``m`` already rescaled to ``(0, 2)``.
    config:
        Ansatz hyper-parameters (``m``, ``d``, ``r``, ``gamma``).
    routed:
        If ``True`` (default), long-range RXX gates (``d > 1``) are wrapped
        in SWAP sandwiches so every two-qubit gate is nearest-neighbour and
        the circuit can be fed directly to the MPS simulator.
    scheduled:
        If ``True`` (default), the commuting RXX gates within each
        ``exp(-i H_XX)`` block are re-ordered to minimise circuit depth
        (paper footnote 3).  Scheduling changes only the order of commuting
        gates, never the unitary.
    include_state_prep:
        Whether to prepend the Hadamard layer creating ``|+>^m``.  Disabling
        it is useful when the caller wants the bare ``U(x)``.

    Returns
    -------
    Circuit
        The constructed circuit, with each gate tagged ``"prep"``, ``"HZ"``,
        ``"HXX"`` or ``"routing"``.
    """
    angles = feature_map_angles(features, config)
    m = config.num_features
    circuit = Circuit(m)

    if include_state_prep:
        for q in range(m):
            circuit.add(GateKind.H, q, tag="prep")

    edge_list: List[Tuple[Tuple[int, int], float]] = sorted(angles.rxx_angles.items())

    for _layer in range(config.layers):
        # exp(-i H_Z): one RZ per qubit.
        for q in range(m):
            circuit.add(GateKind.RZ, q, angle=float(angles.rz_angles[q]), tag="HZ")
        # exp(-i H_XX): one RXX per interaction-graph edge.  All RXX gates
        # commute, so the emission order is free; scheduling optimises it.
        hxx_ops = [
            Operation(GateKind.RXX, (i, j), angle=theta, tag="HXX")
            for (i, j), theta in edge_list
        ]
        if scheduled:
            hxx_ops = schedule_commuting_layers(hxx_ops, m)
        circuit.extend(hxx_ops)

    if routed:
        circuit = route_to_linear_chain(circuit)
    return circuit
