"""Quantum circuit intermediate representation and the feature-map ansatz.

The circuit IR is intentionally small: a :class:`Circuit` is an ordered list
of :class:`Operation` objects, each naming a gate, its parameters and its
target qubits.  Two transformation passes operate on circuits:

* :func:`~repro.circuits.routing.route_to_linear_chain` inserts the SWAP
  sandwiches needed so that every two-qubit gate acts on adjacent qubits
  (the MPS simulator's adjacency constraint, section II-C of the paper);
* :func:`~repro.circuits.scheduling.schedule_commuting_layers` packs the
  mutually commuting RXX gates of one ``exp(-i H_XX)`` block into as few
  depth layers as possible (the paper's footnote 3).

:func:`~repro.circuits.ansatz.build_feature_map_circuit` builds the Ising
feature-map circuit ``U(x)|+>^m`` for one data point.
"""

from .gate import GateKind, Operation
from .circuit import Circuit
from .ansatz import (
    build_feature_map_circuit,
    build_interaction_graph,
    feature_map_angles,
    rescale_features,
)
from .routing import route_to_linear_chain, is_routed
from .scheduling import schedule_commuting_layers, circuit_depth

__all__ = [
    "GateKind",
    "Operation",
    "Circuit",
    "build_feature_map_circuit",
    "build_interaction_graph",
    "feature_map_angles",
    "rescale_features",
    "route_to_linear_chain",
    "is_routed",
    "schedule_commuting_layers",
    "circuit_depth",
]
