"""Depth compaction of commuting gate blocks.

All RXX gates within one ``exp(-i H_XX(x))`` block commute with each other,
so their emission order is free.  The paper (footnote 3) rearranges them so
that every qubit has a gate applied at each time step, realising the block in
``2 d`` depth layers for interaction distance ``d``.

:func:`schedule_commuting_layers` implements a greedy graph-colouring-style
scheduler: gates are packed into layers such that no two gates in the same
layer share a qubit, and layers are emitted in order.  The output is a flat
list of operations whose order realises the layered schedule.

:func:`circuit_depth` measures the depth of an arbitrary circuit (longest
chain of operations sharing qubits), used by tests and by the expressivity
analysis to relate ``r``/``d`` to circuit depth.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..exceptions import CircuitError
from .circuit import Circuit
from .gate import Operation

__all__ = ["schedule_commuting_layers", "circuit_depth"]


def schedule_commuting_layers(
    operations: Sequence[Operation], num_qubits: int
) -> List[Operation]:
    """Pack mutually commuting operations into minimal-conflict layers.

    Parameters
    ----------
    operations:
        Operations assumed to pairwise commute (the caller's responsibility:
        the ansatz only passes the RXX gates of one H_XX block).
    num_qubits:
        Width of the circuit, used for validation.

    Returns
    -------
    list[Operation]
        The same operations re-ordered so that consecutive groups act on
        disjoint qubits.  Greedy first-fit packing: each gate is placed in
        the earliest layer where none of its qubits are already used.
    """
    layers: List[List[Operation]] = []
    layer_qubits: List[set[int]] = []

    for op in operations:
        for q in op.qubits:
            if q >= num_qubits:
                raise CircuitError(
                    f"operation targets qubit {q} outside width {num_qubits}"
                )
        placed = False
        for layer, used in zip(layers, layer_qubits):
            if not (used & set(op.qubits)):
                layer.append(op)
                used.update(op.qubits)
                placed = True
                break
        if not placed:
            layers.append([op])
            layer_qubits.append(set(op.qubits))

    scheduled: List[Operation] = []
    for layer in layers:
        scheduled.extend(layer)
    return scheduled


def circuit_depth(circuit: Circuit | Iterable[Operation]) -> int:
    """Depth of a circuit: the longest chain of qubit-sharing operations.

    Each operation occupies one time step on every qubit it touches; the
    depth is the maximum, over qubits, of the number of time steps used --
    computed with the standard as-soon-as-possible levelling.
    """
    if isinstance(circuit, Circuit):
        operations = circuit.operations
    else:
        operations = list(circuit)
    frontier: dict[int, int] = {}
    depth = 0
    for op in operations:
        level = 1 + max((frontier.get(q, 0) for q in op.qubits), default=0)
        for q in op.qubits:
            frontier[q] = level
        depth = max(depth, level)
    return depth
