"""Parameterised classification experiments used by the benchmark harness.

Figures 9-10 and Tables II-III of the paper all follow the same recipe: draw
a balanced sample of a given size from the Elliptic data, keep the first
``m`` features, split 80/20, build the kernel with a given ansatz
configuration, scan the SVM ``C`` grid and report the best-AUC metrics.
:func:`run_classification_experiment` packages that recipe so each benchmark
is a thin parameter sweep over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal

from ..config import DEFAULT_C_GRID, AnsatzConfig, SimulationConfig
from ..data import EllipticLikeDataset, balanced_subsample, generate_elliptic_like, select_features
from ..data.elliptic import DatasetSpec
from ..exceptions import ConfigurationError
from ..svm import train_test_split
from .pipeline import PipelineResult, QuantumKernelPipeline

__all__ = [
    "ClassificationExperiment",
    "ClassificationOutcome",
    "run_classification_experiment",
]


@dataclass(frozen=True)
class ClassificationExperiment:
    """Declarative description of one classification experiment.

    Attributes
    ----------
    num_features:
        Number of features kept (and qubits used).
    sample_size:
        Size of the balanced sample drawn from the dataset (train + test).
    interaction_distance / layers / gamma:
        Ansatz hyper-parameters ``d``, ``r``, ``gamma``.
    kernel:
        ``"quantum"``, ``"gaussian"`` or ``"projected"``.
    test_fraction:
        Train/test split fraction (paper: 0.2).
    seed:
        Seed controlling sampling and splitting.
    backend_name:
        Which MPS backend simulates the circuits.
    """

    num_features: int
    sample_size: int
    interaction_distance: int = 1
    layers: int = 2
    gamma: float = 0.1
    kernel: Literal["quantum", "gaussian", "projected"] = "quantum"
    test_fraction: float = 0.2
    seed: int = 7
    backend_name: str = "cpu"

    def __post_init__(self) -> None:
        if self.sample_size < 8:
            raise ConfigurationError("sample_size must be >= 8")
        if self.sample_size % 2 != 0:
            raise ConfigurationError("sample_size must be even (balanced classes)")
        if not (0.0 < self.test_fraction < 1.0):
            raise ConfigurationError("test_fraction must be in (0, 1)")

    def ansatz(self) -> AnsatzConfig:
        """The corresponding :class:`AnsatzConfig`."""
        return AnsatzConfig(
            num_features=self.num_features,
            interaction_distance=self.interaction_distance,
            layers=self.layers,
            gamma=self.gamma,
        )

    def describe(self) -> Dict[str, object]:
        """Flat parameter dictionary for benchmark records."""
        return {
            "num_features": self.num_features,
            "sample_size": self.sample_size,
            "interaction_distance": self.interaction_distance,
            "layers": self.layers,
            "gamma": self.gamma,
            "kernel": self.kernel,
            "test_fraction": self.test_fraction,
            "seed": self.seed,
            "backend": self.backend_name,
        }


@dataclass
class ClassificationOutcome:
    """Experiment description plus the pipeline result it produced."""

    experiment: ClassificationExperiment
    result: PipelineResult

    @property
    def test_auc(self) -> float:
        """Best test AUC (selection metric of every table/figure)."""
        return self.result.test_auc

    @property
    def train_auc(self) -> float:
        """Train AUC of the best-C model (Figure 9's quantity)."""
        return self.result.train_metrics["auc"]

    def row(self) -> Dict[str, object]:
        """One table row: parameters plus the four reported metrics."""
        metrics = self.result.test_metrics
        return {
            **self.experiment.describe(),
            "best_C": self.result.best_C,
            "auc": metrics["auc"],
            "recall": metrics["recall"],
            "precision": metrics["precision"],
            "accuracy": metrics["accuracy"],
        }


def run_classification_experiment(
    experiment: ClassificationExperiment,
    dataset: EllipticLikeDataset | None = None,
    simulation: SimulationConfig | None = None,
    c_grid=DEFAULT_C_GRID,
) -> ClassificationOutcome:
    """Run one classification experiment end to end.

    Parameters
    ----------
    experiment:
        Declarative description of the run.
    dataset:
        An already-generated dataset to sample from; ``None`` generates a
        default synthetic Elliptic-like dataset sized to the experiment.
    simulation:
        MPS simulation configuration (truncation cut-off etc.).
    c_grid:
        SVM regularisation grid.
    """
    if dataset is None:
        # Generate just enough data for the requested balanced sample while
        # keeping the minority class at the Elliptic-like imbalance.
        needed_positive = experiment.sample_size // 2
        total = max(int(needed_positive / 0.0976 * 1.3), experiment.sample_size * 2)
        dataset = generate_elliptic_like(
            DatasetSpec(
                num_samples=total,
                num_features=max(experiment.num_features, 1),
                seed=experiment.seed,
            )
        )
    if dataset.num_features < experiment.num_features:
        raise ConfigurationError(
            f"dataset has {dataset.num_features} features but the experiment "
            f"needs {experiment.num_features}"
        )

    sample = balanced_subsample(dataset, experiment.sample_size, seed=experiment.seed)
    X = select_features(sample.features, experiment.num_features)
    y = sample.labels

    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=experiment.test_fraction, seed=experiment.seed
    )

    pipeline = QuantumKernelPipeline(
        ansatz=experiment.ansatz(),
        kernel=experiment.kernel,
        backend_name=experiment.backend_name,
        simulation=simulation,
        c_grid=c_grid,
    )
    result = pipeline.run(X_train, y_train, X_test, y_test)
    return ClassificationOutcome(experiment=experiment, result=result)
