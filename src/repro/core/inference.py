"""Inference on new data points with a trained quantum-kernel model.

The paper describes classification of an unlabeled data point as: simulate
the corresponding circuit, calculate the inner products of the resulting MPS
with each stored training state (parallelisable, linear in the training-set
size), and feed the resulting kernel row to the trained SVM.
:class:`QuantumKernelInferenceEngine` packages that workflow: it owns the
scaler, the encoded training states and the fitted SVM, and exposes
``predict`` / ``decision_function`` for new raw feature rows, together with
the per-point cost accounting the paper quotes (about 2 s of simulation plus
milliseconds per training-state inner product at full scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..backends import Backend, CpuBackend
from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import SVMError
from ..kernels.quantum_kernel import QuantumKernel
from ..mps import MPS
from ..svm import FeatureScaler, PrecomputedKernelSVC

__all__ = ["InferenceResult", "QuantumKernelInferenceEngine"]


@dataclass(frozen=True)
class InferenceResult:
    """Predictions for a batch of new data points plus cost accounting."""

    predictions: np.ndarray
    decision_values: np.ndarray
    kernel_rows: np.ndarray
    simulation_time_s: float
    inner_product_time_s: float
    num_inner_products: int

    @property
    def num_points(self) -> int:
        """Number of classified points."""
        return int(self.predictions.shape[0])


@dataclass
class QuantumKernelInferenceEngine:
    """Train once, then classify new points against the stored MPS states.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.
    C / tol:
        SVM hyper-parameters used for the final model (no grid search here;
        use :class:`repro.core.QuantumKernelPipeline` for model selection and
        pass the winning ``C``).
    backend:
        MPS backend (defaults to the CPU backend).
    """

    ansatz: AnsatzConfig
    C: float = 1.0
    tol: float = 1e-3
    backend: Backend | None = None
    simulation: SimulationConfig | None = None
    _scaler: FeatureScaler = field(default_factory=FeatureScaler, repr=False)
    _kernel: QuantumKernel | None = field(default=None, repr=False)
    _train_states: List[MPS] = field(default_factory=list, repr=False)
    _model: PrecomputedKernelSVC | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.backend is None:
            self.backend = CpuBackend(self.simulation)
        self._kernel = QuantumKernel(self.ansatz, backend=self.backend)

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._model is not None

    @property
    def num_training_states(self) -> int:
        """Number of stored training MPS."""
        return len(self._train_states)

    def fit(self, X_train: np.ndarray, y_train: np.ndarray) -> "QuantumKernelInferenceEngine":
        """Scale, encode and store the training set, then train the SVM."""
        assert self._kernel is not None
        X_train = np.asarray(X_train, dtype=float)
        Xs = self._scaler.fit_transform(X_train)
        self._train_states = self._kernel.encode(Xs)
        n = len(self._train_states)
        K = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                overlap = self.backend.inner_product(
                    self._train_states[i], self._train_states[j]
                )
                K[i, j] = K[j, i] = abs(overlap.value) ** 2
        self._model = PrecomputedKernelSVC(C=self.C, tol=self.tol).fit(K, y_train)
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SVMError("inference engine is not fitted; call fit() first")

    def kernel_rows(self, X_new: np.ndarray) -> InferenceResult:
        """Kernel rows of new points against the stored training states."""
        self._require_fitted()
        assert self._kernel is not None and self._model is not None
        X_new = np.asarray(X_new, dtype=float)
        if X_new.ndim == 1:
            X_new = X_new[None, :]
        Xs = self._scaler.transform(X_new)

        self.backend.reset_counters()
        new_states = self._kernel.encode(Xs)
        rows = np.zeros((len(new_states), len(self._train_states)))
        for i, state in enumerate(new_states):
            for j, train_state in enumerate(self._train_states):
                rows[i, j] = abs(self.backend.inner_product(state, train_state).value) ** 2
        summary = self.backend.timing_summary()

        decisions = self._model.decision_function(rows)
        return InferenceResult(
            predictions=(decisions > 0).astype(int),
            decision_values=decisions,
            kernel_rows=rows,
            simulation_time_s=summary["wall_simulation_time_s"],
            inner_product_time_s=summary["wall_inner_product_time_s"],
            num_inner_products=int(summary["num_inner_products"]),
        )

    def decision_function(self, X_new: np.ndarray) -> np.ndarray:
        """Continuous decision values for new raw feature rows."""
        return self.kernel_rows(X_new).decision_values

    def predict(self, X_new: np.ndarray) -> np.ndarray:
        """Binary predictions in {0, 1} for new raw feature rows."""
        return self.kernel_rows(X_new).predictions
