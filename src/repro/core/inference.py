"""Inference on new data points with a trained quantum-kernel model.

The paper describes classification of an unlabeled data point as: simulate
the corresponding circuit, calculate the inner products of the resulting MPS
with each stored training state (parallelisable, linear in the training-set
size), and feed the resulting kernel row to the trained SVM.
:class:`QuantumKernelInferenceEngine` packages that workflow: it owns the
scaler, the encoded training states and the fitted SVM, and exposes
``predict`` / ``decision_function`` for new raw feature rows, together with
the per-point cost accounting the paper quotes (about 2 s of simulation plus
milliseconds per training-state inner product at full scale).

The heavy lifting dispatches through a cache-enabled
:class:`repro.engine.KernelEngine`: training encodes populate the
content-addressed :class:`~repro.engine.StateStore`, and inference builds a
:class:`~repro.engine.KernelRowPlan` against the stored states, so a point
that was ever encoded before (training or a repeated query) is served from
the cache with zero redundant simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..approx import (
    LinearSVC,
    NystroemConfig,
    NystroemFeatureMap,
    StreamingNystroemClassifier,
)
from ..backends import Backend
from ..config import AnsatzConfig, SimulationConfig
from ..engine import EngineConfig, KernelEngine, StackedStateBlock
from ..exceptions import SVMError
from ..mps import MPS
from ..svm import FeatureScaler, PrecomputedKernelSVC

__all__ = ["InferenceResult", "QuantumKernelInferenceEngine"]


@dataclass(frozen=True)
class InferenceResult:
    """Predictions for a batch of new data points plus cost accounting."""

    predictions: np.ndarray
    decision_values: np.ndarray
    kernel_rows: np.ndarray
    simulation_time_s: float
    inner_product_time_s: float
    num_inner_products: int
    num_simulations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def num_points(self) -> int:
        """Number of classified points."""
        return int(self.predictions.shape[0])


@dataclass
class QuantumKernelInferenceEngine:
    """Train once, then classify new points against the stored MPS states.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.
    C / tol:
        SVM hyper-parameters used for the final model (no grid search here;
        use :class:`repro.core.QuantumKernelPipeline` for model selection and
        pass the winning ``C``).
    backend:
        MPS backend (defaults to the CPU backend).
    use_cache / cache_bytes:
        Whether encodes go through a content-addressed state store (default:
        yes, unbounded).  With the cache on, classifying a point that was
        part of the training set -- or was classified before -- performs no
        MPS simulation at all.
    approximation:
        A :class:`~repro.approx.NystroemConfig` to back the engine with a
        low-rank model: training costs ``O(n m)`` engine pairs and serving
        evaluates ``m`` overlaps per point against the cached landmark
        states instead of ``n`` against the full training set.  ``tol``
        applies only to the exact SMO path.
    """

    ansatz: AnsatzConfig
    C: float = 1.0
    tol: float = 1e-3
    backend: Backend | None = None
    simulation: SimulationConfig | None = None
    use_cache: bool = True
    cache_bytes: int | None = None
    approximation: NystroemConfig | None = None
    _scaler: FeatureScaler = field(default_factory=FeatureScaler, repr=False)
    _engine: KernelEngine | None = field(default=None, repr=False)
    _train_states: List[MPS] = field(default_factory=list, repr=False)
    _train_block: StackedStateBlock | None = field(default=None, repr=False)
    _model: PrecomputedKernelSVC | None = field(default=None, repr=False)
    _feature_map: NystroemFeatureMap | None = field(default=None, repr=False)
    _linear_model: LinearSVC | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._engine = KernelEngine(
            self.ansatz,
            backend=self.backend,
            simulation=self.simulation,
            config=EngineConfig(use_cache=self.use_cache, cache_bytes=self.cache_bytes),
        )
        self.backend = self._engine.backend

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._model is not None or self._linear_model is not None

    @property
    def is_approximate(self) -> bool:
        """Whether serving goes through the Nystrom low-rank path."""
        return self.approximation is not None

    @property
    def num_training_states(self) -> int:
        """Number of stored MPS the serving path touches per query.

        The full training set on the exact path; only the landmarks on the
        Nystrom path.
        """
        return len(self._train_states)

    @property
    def engine(self) -> KernelEngine:
        """The underlying compute engine (shared cache, counters)."""
        assert self._engine is not None
        return self._engine

    def cache_stats(self):
        """State-store statistics, or ``None`` when caching is disabled."""
        return self.engine.cache_stats()

    def fit(self, X_train: np.ndarray, y_train: np.ndarray) -> "QuantumKernelInferenceEngine":
        """Scale, encode and store the training set, then train the SVM.

        Encoding and the symmetric Gram plan both run through the engine, so
        the training states land in the state store for later inference.  On
        the Nystrom path only the landmark Gram and the ``n x m`` cross
        block are evaluated, and a primal :class:`~repro.approx.LinearSVC`
        replaces the SMO dual solver.
        """
        X_train = np.asarray(X_train, dtype=float)
        Xs = self._scaler.fit_transform(X_train)
        if self.approximation is not None:
            self._feature_map = NystroemFeatureMap(self.engine, self.approximation)
            phi = self._feature_map.fit_transform(Xs)
            self._linear_model = LinearSVC(C=self.C).fit(phi, y_train)
            self._train_states = list(self._feature_map.landmark_states_)
            return self
        result = self.engine.gram(Xs)
        self._train_states = list(result.states)
        self._train_block = None
        self._model = PrecomputedKernelSVC(C=self.C, tol=self.tol).fit(
            result.matrix, y_train
        )
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SVMError("inference engine is not fitted; call fit() first")

    def kernel_rows(self, X_new: np.ndarray) -> InferenceResult:
        """Kernel rows of new points against the stored states.

        Exact path: rows against every training state, scored by the SMO
        model.  Nystrom path: rows against the ``m`` landmark states only,
        mapped through the low-rank normalisation and scored by the linear
        model -- the full training set is never touched.
        """
        self._require_fitted()
        X_new = np.asarray(X_new, dtype=float)
        if X_new.ndim == 1:
            X_new = X_new[None, :]
        Xs = self._scaler.transform(X_new)

        if self.approximation is not None:
            assert self._feature_map is not None and self._linear_model is not None
            phi, result = self._feature_map.transform_result(Xs)
            decisions = self._linear_model.decision_function(phi)
        else:
            assert self._model is not None
            if self._train_block is None and self._train_states:
                # Stack the stored states on first serve (not at fit): the
                # block duplicates every site tensor, so train-only usage
                # should not pay the memory.
                self._train_block = StackedStateBlock(self._train_states)
            result = self.engine.kernel_rows(
                Xs, self._train_states, block=self._train_block
            )
            decisions = self._model.decision_function(result.matrix)
        return InferenceResult(
            predictions=(decisions > 0).astype(int),
            decision_values=decisions,
            kernel_rows=result.matrix,
            simulation_time_s=result.simulation_time_s,
            inner_product_time_s=result.inner_product_time_s,
            num_inner_products=result.num_inner_products,
            num_simulations=result.num_simulations,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
        )

    def decision_function(self, X_new: np.ndarray) -> np.ndarray:
        """Continuous decision values for new raw feature rows."""
        return self.kernel_rows(X_new).decision_values

    def predict(self, X_new: np.ndarray) -> np.ndarray:
        """Binary predictions in {0, 1} for new raw feature rows."""
        return self.kernel_rows(X_new).predictions

    # ------------------------------------------------------------------
    def streaming_classifier(
        self, buffer_size: int = 32
    ) -> StreamingNystroemClassifier:
        """The fitted Nystrom model as a raw-traffic streaming classifier.

        Shares this engine's feature map, linear model and scaler (and hence
        the state store), so the returned classifier's predictions match
        :meth:`predict` exactly.  Only available on the approximate path --
        exact serving touches every training state and has no constant-memory
        streaming story.
        """
        self._require_fitted()
        if self._feature_map is None or self._linear_model is None:
            raise SVMError(
                "streaming serving requires a Nystrom-backed engine; "
                "construct with approximation=NystroemConfig(...)"
            )
        return StreamingNystroemClassifier(
            self._feature_map,
            self._linear_model,
            scaler=self._scaler,
            buffer_size=buffer_size,
        )

    def serving_queue(self, **queue_kwargs):
        """An :class:`~repro.serving.AsyncServingQueue` over this model.

        Keyword arguments pass through to the queue constructor
        (``max_batch``, ``max_wait_ms``, ``workers``, ``seed``, ...).  The
        caller owns the returned queue and must ``close()`` it (or use it as
        a context manager).
        """
        from ..serving import AsyncServingQueue

        buffer_size = int(queue_kwargs.get("max_batch", 32))
        return AsyncServingQueue(
            self.streaming_classifier(buffer_size=buffer_size), **queue_kwargs
        )

    def serving_payload(self) -> dict:
        """The fitted model as one picklable payload (see streaming docs).

        Serialised once, attached anywhere: pool workers, standalone
        replicas, or a :class:`~repro.serving.ReplicaRouter` fleet.
        """
        return self.streaming_classifier().serving_payload()

    def replica_router(self, **router_kwargs):
        """A :class:`~repro.serving.ReplicaRouter` fleet over this model.

        Serialises the fitted model once and hands it to the router, which
        attaches one replica engine per ``num_replicas``.  Keyword arguments
        pass through (``num_replicas``, ``policy``,
        ``queue_depth_high_water``, ``persistence_root``, plus any queue
        knobs); the caller owns the returned router and must ``close()`` it.
        """
        from ..serving import ReplicaRouter

        return ReplicaRouter(self.serving_payload(), **router_kwargs)
