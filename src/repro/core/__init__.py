"""High-level pipeline: data -> feature map -> kernel -> SVM -> metrics.

:class:`~repro.core.pipeline.QuantumKernelPipeline` is the user-facing entry
point tying every substrate together; :mod:`~repro.core.experiment` contains
the parameterised experiment runners the benchmark harness calls to
regenerate the paper's figures and tables.
"""

from .pipeline import QuantumKernelPipeline, PipelineResult
from .inference import InferenceResult, QuantumKernelInferenceEngine
from .experiment import (
    ClassificationExperiment,
    ClassificationOutcome,
    run_classification_experiment,
)

__all__ = [
    "QuantumKernelPipeline",
    "PipelineResult",
    "ClassificationExperiment",
    "ClassificationOutcome",
    "run_classification_experiment",
    "InferenceResult",
    "QuantumKernelInferenceEngine",
]
