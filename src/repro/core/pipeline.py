"""End-to-end quantum kernel classification pipeline.

The pipeline reproduces the paper's workflow for one experiment:

1. scale the features of the training split into the feature map's ``(0, 2)``
   interval (statistics learned on the training split only);
2. encode every training point as an MPS and build the training Gram matrix
   ``K_ij = |<psi(x_i)|psi(x_j)>|^2``;
3. encode the test points and build the rectangular test-versus-train kernel;
4. scan the SVM regularisation grid and report the metrics of the best-AUC
   model (the paper's protocol for every table/figure);
5. expose the timing / bond-dimension / memory bookkeeping that the resource
   benchmarks need.

Setting ``kernel="gaussian"`` swaps steps 2-3 for the classical baseline of
Table II while keeping everything else identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal, Sequence

import numpy as np

from ..approx import NystroemConfig, NystroemFeatureMap
from ..backends import Backend, get_backend
from ..config import DEFAULT_C_GRID, AnsatzConfig, SimulationConfig
from ..engine import EngineConfig, KernelEngine
from ..exceptions import ConfigurationError, DataError
from ..kernels import GaussianKernel, kernel_concentration
from ..svm import FeatureScaler, GridSearchResult, grid_search_c
from ..svm.model_selection import grid_search_c_linear

__all__ = ["QuantumKernelPipeline", "PipelineResult"]

KernelName = Literal["quantum", "gaussian", "projected"]


@dataclass
class PipelineResult:
    """Everything one pipeline run produces.

    Attributes
    ----------
    kernel_name:
        Which kernel family was used.
    grid:
        Full :class:`~repro.svm.model_selection.GridSearchResult` of the C
        scan.
    train_metrics / test_metrics:
        Metric dictionaries of the best-C model (accuracy, precision,
        recall, f1, auc).
    train_kernel / test_kernel:
        The computed kernel matrices.
    kernel_diagnostics:
        Off-diagonal concentration statistics of the training kernel.
    resource_metrics:
        Simulation/inner-product timing, bond dimension and memory (zeroes
        for the classical baseline).
    approximation:
        Nystrom accounting (config + :class:`~repro.approx.NystroemReport`
        fields) when the run used the low-rank path, else ``None``.  For
        approximate runs ``train_kernel`` / ``test_kernel`` hold the
        *reconstructed* low-rank kernels ``Phi Phi^T``.
    """

    kernel_name: str
    grid: GridSearchResult
    train_metrics: Dict[str, float]
    test_metrics: Dict[str, float]
    train_kernel: np.ndarray
    test_kernel: np.ndarray
    kernel_diagnostics: Dict[str, float] = field(default_factory=dict)
    resource_metrics: Dict[str, float] = field(default_factory=dict)
    approximation: Dict[str, object] | None = None

    @property
    def best_C(self) -> float:
        """Regularisation value the grid scan selected."""
        return self.grid.best_C

    @property
    def test_auc(self) -> float:
        """Headline metric: best test-set AUC."""
        return self.test_metrics["auc"]


class QuantumKernelPipeline:
    """Train-and-evaluate pipeline for quantum (or baseline) kernel SVMs.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.  Required even for the Gaussian
        baseline (its ``num_features`` defines the expected data width).
    kernel:
        ``"quantum"`` (fidelity kernel via MPS), ``"gaussian"`` (RBF
        baseline) or ``"projected"`` (projected quantum kernel).
    backend:
        MPS backend instance, or ``None`` to build one from ``backend_name``.
    backend_name:
        ``"cpu"`` or ``"gpu"`` (ignored when ``backend`` is given).
    simulation:
        Simulation configuration for a backend built here.
    c_grid / svm_tol:
        The SVM regularisation grid and tolerance (paper: ``[0.01, 4]``,
        ``1e-3``).  ``svm_tol`` is the SMO KKT tolerance and applies only to
        the exact precomputed-kernel scan; the Nystrom branch trains primal
        :class:`~repro.approx.LinearSVC` models, whose gradient-norm
        tolerance is a different quantity and keeps its own default.
    engine_config:
        Knobs of the underlying :class:`~repro.engine.KernelEngine`
        (executor selection, state cache, overlap batch size) used by the
        quantum kernel families.
    approximation:
        A :class:`~repro.approx.NystroemConfig` to route the quantum kernel
        through the low-rank Nystrom path: ``O(n m)`` engine pairs instead
        of ``O(n^2)``, with a primal linear SVM scanned over the same C
        grid.  Only valid with ``kernel="quantum"``.
    """

    def __init__(
        self,
        ansatz: AnsatzConfig,
        kernel: KernelName = "quantum",
        backend: Backend | None = None,
        backend_name: str = "cpu",
        simulation: SimulationConfig | None = None,
        c_grid: Sequence[float] = DEFAULT_C_GRID,
        svm_tol: float = 1e-3,
        scale_interval: tuple[float, float] = (0.0, 2.0),
        engine_config: EngineConfig | None = None,
        approximation: NystroemConfig | None = None,
    ) -> None:
        if kernel not in ("quantum", "gaussian", "projected"):
            raise ConfigurationError(f"unknown kernel family {kernel!r}")
        if approximation is not None and kernel != "quantum":
            raise ConfigurationError(
                "the Nystrom approximation path requires kernel='quantum', "
                f"got {kernel!r}"
            )
        self.ansatz = ansatz
        self.kernel_name: str = kernel
        self.simulation = simulation
        if backend is None and kernel in ("quantum", "projected"):
            backend = get_backend(backend_name, simulation)
        self.backend = backend
        self.engine_config = engine_config
        self.approximation = approximation
        self.c_grid = tuple(c_grid)
        self.svm_tol = float(svm_tol)
        self.scaler = FeatureScaler(lower=scale_interval[0], upper=scale_interval[1])

    # ------------------------------------------------------------------
    def run(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
    ) -> PipelineResult:
        """Full train + evaluate cycle; returns a :class:`PipelineResult`."""
        X_train, y_train = self._validate(X_train, y_train)
        X_test, y_test = self._validate(X_test, y_test)
        if X_train.shape[1] != X_test.shape[1]:
            raise DataError("train and test feature counts differ")
        if X_train.shape[1] != self.ansatz.num_features:
            raise DataError(
                f"data has {X_train.shape[1]} features but the ansatz expects "
                f"{self.ansatz.num_features}"
            )

        Xs_train = self.scaler.fit_transform(X_train)
        Xs_test = self.scaler.transform(X_test)

        if self.approximation is not None:
            return self._run_nystroem(
                Xs_train, y_train, Xs_test, y_test, self.approximation
            )

        resource: Dict[str, float] = {}
        if self.kernel_name == "quantum":
            engine = KernelEngine(
                self.ansatz, backend=self.backend, config=self.engine_config
            )
            train_result, test_result = engine.gram_and_cross(Xs_train, Xs_test)
            K_train, K_test = train_result.matrix, test_result.matrix
            resource = {
                "simulation_time_s": train_result.simulation_time_s
                + test_result.simulation_time_s,
                "inner_product_time_s": train_result.inner_product_time_s
                + test_result.inner_product_time_s,
                "modelled_simulation_time_s": train_result.modelled_simulation_time_s
                + test_result.modelled_simulation_time_s,
                "modelled_inner_product_time_s": train_result.modelled_inner_product_time_s
                + test_result.modelled_inner_product_time_s,
                "max_bond_dimension": float(
                    max(train_result.max_bond_dimension, test_result.max_bond_dimension)
                ),
                "train_state_memory_bytes": float(
                    train_result.total_state_memory_bytes
                ),
                "num_simulations": float(
                    train_result.num_simulations + test_result.num_simulations
                ),
                "num_inner_products": float(
                    train_result.num_inner_products + test_result.num_inner_products
                ),
            }
        elif self.kernel_name == "projected":
            from ..kernels import ProjectedQuantumKernel

            pk = ProjectedQuantumKernel(
                self.ansatz, backend=self.backend, engine_config=self.engine_config
            )
            pk.fit(Xs_train)
            K_train = pk.gram_matrix()
            K_test = pk.cross_matrix(Xs_test)
            resource = pk.resource_metrics()
        else:  # gaussian baseline uses the same scaled features
            gk = GaussianKernel()
            K_train, K_test = gk.train_test_matrices(Xs_train, Xs_test)

        grid = grid_search_c(
            K_train, y_train, K_test, y_test, c_grid=self.c_grid, tol=self.svm_tol
        )

        return PipelineResult(
            kernel_name=self.kernel_name,
            grid=grid,
            train_metrics=grid.best_train_metrics,
            test_metrics=grid.best_test_metrics,
            train_kernel=K_train,
            test_kernel=K_test,
            kernel_diagnostics=kernel_concentration(K_train),
            resource_metrics=resource,
        )

    # ------------------------------------------------------------------
    def _build_engine(self) -> KernelEngine:
        """Engine for the approximation path (state cache on by default)."""
        config = self.engine_config
        if config is None:
            config = EngineConfig(use_cache=True)
        return KernelEngine(
            self.ansatz,
            backend=self.backend,
            simulation=self.simulation,
            config=config,
        )

    def _run_nystroem(
        self,
        Xs_train: np.ndarray,
        y_train: np.ndarray,
        Xs_test: np.ndarray,
        y_test: np.ndarray,
        approximation: NystroemConfig,
        engine: KernelEngine | None = None,
    ) -> PipelineResult:
        """Low-rank branch: landmark feature map + primal linear C scan."""
        if engine is None:
            engine = self._build_engine()
        fmap = NystroemFeatureMap(engine, approximation)
        phi_train = fmap.fit_transform(Xs_train)
        phi_test = fmap.transform(Xs_test)

        grid = grid_search_c_linear(
            phi_train, y_train, phi_test, y_test, c_grid=self.c_grid
        )

        K_train = fmap.approximate_kernel(phi_train)
        K_test = fmap.approximate_kernel(phi_test, phi_train)
        report = fmap.report
        resource = {
            "simulation_time_s": report.simulation_time_s,
            "inner_product_time_s": report.inner_product_time_s,
            "num_simulations": float(report.num_simulations),
            "num_inner_products": float(report.num_pair_evaluations),
            "cache_hits": float(report.cache_hits),
            "cache_misses": float(report.cache_misses),
        }
        return PipelineResult(
            kernel_name="quantum-nystroem",
            grid=grid,
            train_metrics=grid.best_train_metrics,
            test_metrics=grid.best_test_metrics,
            train_kernel=K_train,
            test_kernel=K_test,
            kernel_diagnostics=kernel_concentration(K_train),
            resource_metrics=resource,
            approximation={
                "config": approximation.to_dict(),
                "report": report.to_dict(),
                "pair_budget": fmap.fit_pair_budget(Xs_train.shape[0]),
            },
        )

    def run_rank_sweep(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        num_landmarks_grid: Sequence[int],
        strategy: str | None = None,
    ) -> Dict[int, PipelineResult]:
        """Run the Nystrom path at several landmark counts, sharing one engine.

        The single engine (and its state store) is reused across ranks, so
        data points encoded for a smaller landmark set are never re-simulated
        for a larger one -- the accuracy-versus-rank crossover curves come
        almost for free on top of one full encode pass.  Requires the
        pipeline to be constructed with an ``approximation`` config (its
        ``num_landmarks`` / ``strategy`` are overridden per sweep point).
        """
        if self.approximation is None:
            raise ConfigurationError(
                "run_rank_sweep requires the pipeline's approximation config"
            )
        if not num_landmarks_grid:
            raise ConfigurationError("num_landmarks_grid must not be empty")

        X_train, y_train = self._validate(X_train, y_train)
        X_test, y_test = self._validate(X_test, y_test)
        Xs_train = self.scaler.fit_transform(X_train)
        Xs_test = self.scaler.transform(X_test)

        engine = self._build_engine()
        base = self.approximation
        results: Dict[int, PipelineResult] = {}
        for m in num_landmarks_grid:
            config = NystroemConfig(
                num_landmarks=int(m),
                strategy=base.strategy if strategy is None else strategy,
                seed=base.seed,
                jitter=base.jitter,
                rank=base.rank,
                eigen_tol=base.eigen_tol,
            )
            results[int(m)] = self._run_nystroem(
                Xs_train, y_train, Xs_test, y_test, config, engine=engine
            )
        return results

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y).ravel()
        if X.ndim != 2:
            raise DataError(f"feature matrix must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.size:
            raise DataError(
                f"feature matrix has {X.shape[0]} rows but there are {y.size} labels"
            )
        if X.shape[0] < 2:
            raise DataError("need at least two samples")
        return X, y
