"""End-to-end quantum kernel classification pipeline.

The pipeline reproduces the paper's workflow for one experiment:

1. scale the features of the training split into the feature map's ``(0, 2)``
   interval (statistics learned on the training split only);
2. encode every training point as an MPS and build the training Gram matrix
   ``K_ij = |<psi(x_i)|psi(x_j)>|^2``;
3. encode the test points and build the rectangular test-versus-train kernel;
4. scan the SVM regularisation grid and report the metrics of the best-AUC
   model (the paper's protocol for every table/figure);
5. expose the timing / bond-dimension / memory bookkeeping that the resource
   benchmarks need.

Setting ``kernel="gaussian"`` swaps steps 2-3 for the classical baseline of
Table II while keeping everything else identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal, Sequence

import numpy as np

from ..backends import Backend, get_backend
from ..config import DEFAULT_C_GRID, AnsatzConfig, SimulationConfig
from ..engine import EngineConfig, KernelEngine
from ..exceptions import ConfigurationError, DataError
from ..kernels import GaussianKernel, kernel_concentration
from ..svm import FeatureScaler, GridSearchResult, grid_search_c

__all__ = ["QuantumKernelPipeline", "PipelineResult"]

KernelName = Literal["quantum", "gaussian", "projected"]


@dataclass
class PipelineResult:
    """Everything one pipeline run produces.

    Attributes
    ----------
    kernel_name:
        Which kernel family was used.
    grid:
        Full :class:`~repro.svm.model_selection.GridSearchResult` of the C
        scan.
    train_metrics / test_metrics:
        Metric dictionaries of the best-C model (accuracy, precision,
        recall, f1, auc).
    train_kernel / test_kernel:
        The computed kernel matrices.
    kernel_diagnostics:
        Off-diagonal concentration statistics of the training kernel.
    resource_metrics:
        Simulation/inner-product timing, bond dimension and memory (zeroes
        for the classical baseline).
    """

    kernel_name: str
    grid: GridSearchResult
    train_metrics: Dict[str, float]
    test_metrics: Dict[str, float]
    train_kernel: np.ndarray
    test_kernel: np.ndarray
    kernel_diagnostics: Dict[str, float] = field(default_factory=dict)
    resource_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def best_C(self) -> float:
        """Regularisation value the grid scan selected."""
        return self.grid.best_C

    @property
    def test_auc(self) -> float:
        """Headline metric: best test-set AUC."""
        return self.test_metrics["auc"]


class QuantumKernelPipeline:
    """Train-and-evaluate pipeline for quantum (or baseline) kernel SVMs.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters.  Required even for the Gaussian
        baseline (its ``num_features`` defines the expected data width).
    kernel:
        ``"quantum"`` (fidelity kernel via MPS), ``"gaussian"`` (RBF
        baseline) or ``"projected"`` (projected quantum kernel).
    backend:
        MPS backend instance, or ``None`` to build one from ``backend_name``.
    backend_name:
        ``"cpu"`` or ``"gpu"`` (ignored when ``backend`` is given).
    simulation:
        Simulation configuration for a backend built here.
    c_grid / svm_tol:
        The SVM regularisation grid and tolerance (paper: ``[0.01, 4]``,
        ``1e-3``).
    engine_config:
        Knobs of the underlying :class:`~repro.engine.KernelEngine`
        (executor selection, state cache, overlap batch size) used by the
        quantum kernel families.
    """

    def __init__(
        self,
        ansatz: AnsatzConfig,
        kernel: KernelName = "quantum",
        backend: Backend | None = None,
        backend_name: str = "cpu",
        simulation: SimulationConfig | None = None,
        c_grid: Sequence[float] = DEFAULT_C_GRID,
        svm_tol: float = 1e-3,
        scale_interval: tuple[float, float] = (0.0, 2.0),
        engine_config: EngineConfig | None = None,
    ) -> None:
        if kernel not in ("quantum", "gaussian", "projected"):
            raise ConfigurationError(f"unknown kernel family {kernel!r}")
        self.ansatz = ansatz
        self.kernel_name: str = kernel
        self.simulation = simulation
        if backend is None and kernel in ("quantum", "projected"):
            backend = get_backend(backend_name, simulation)
        self.backend = backend
        self.engine_config = engine_config
        self.c_grid = tuple(c_grid)
        self.svm_tol = float(svm_tol)
        self.scaler = FeatureScaler(lower=scale_interval[0], upper=scale_interval[1])

    # ------------------------------------------------------------------
    def run(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
    ) -> PipelineResult:
        """Full train + evaluate cycle; returns a :class:`PipelineResult`."""
        X_train, y_train = self._validate(X_train, y_train)
        X_test, y_test = self._validate(X_test, y_test)
        if X_train.shape[1] != X_test.shape[1]:
            raise DataError("train and test feature counts differ")
        if X_train.shape[1] != self.ansatz.num_features:
            raise DataError(
                f"data has {X_train.shape[1]} features but the ansatz expects "
                f"{self.ansatz.num_features}"
            )

        Xs_train = self.scaler.fit_transform(X_train)
        Xs_test = self.scaler.transform(X_test)

        resource: Dict[str, float] = {}
        if self.kernel_name == "quantum":
            engine = KernelEngine(
                self.ansatz, backend=self.backend, config=self.engine_config
            )
            train_result, test_result = engine.gram_and_cross(Xs_train, Xs_test)
            K_train, K_test = train_result.matrix, test_result.matrix
            resource = {
                "simulation_time_s": train_result.simulation_time_s
                + test_result.simulation_time_s,
                "inner_product_time_s": train_result.inner_product_time_s
                + test_result.inner_product_time_s,
                "modelled_simulation_time_s": train_result.modelled_simulation_time_s
                + test_result.modelled_simulation_time_s,
                "modelled_inner_product_time_s": train_result.modelled_inner_product_time_s
                + test_result.modelled_inner_product_time_s,
                "max_bond_dimension": float(
                    max(train_result.max_bond_dimension, test_result.max_bond_dimension)
                ),
                "train_state_memory_bytes": float(
                    train_result.total_state_memory_bytes
                ),
                "num_simulations": float(
                    train_result.num_simulations + test_result.num_simulations
                ),
                "num_inner_products": float(
                    train_result.num_inner_products + test_result.num_inner_products
                ),
            }
        elif self.kernel_name == "projected":
            from ..kernels import ProjectedQuantumKernel

            pk = ProjectedQuantumKernel(
                self.ansatz, backend=self.backend, engine_config=self.engine_config
            )
            pk.fit(Xs_train)
            K_train = pk.gram_matrix()
            K_test = pk.cross_matrix(Xs_test)
            resource = pk.resource_metrics()
        else:  # gaussian baseline uses the same scaled features
            gk = GaussianKernel()
            K_train, K_test = gk.train_test_matrices(Xs_train, Xs_test)

        grid = grid_search_c(
            K_train, y_train, K_test, y_test, c_grid=self.c_grid, tol=self.svm_tol
        )

        return PipelineResult(
            kernel_name=self.kernel_name,
            grid=grid,
            train_metrics=grid.best_train_metrics,
            test_metrics=grid.best_test_metrics,
            train_kernel=K_train,
            test_kernel=K_test,
            kernel_diagnostics=kernel_concentration(K_train),
            resource_metrics=resource,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y).ravel()
        if X.ndim != 2:
            raise DataError(f"feature matrix must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.size:
            raise DataError(
                f"feature matrix has {X.shape[0]} rows but there are {y.size} labels"
            )
        if X.shape[0] < 2:
            raise DataError("need at least two samples")
        return X, y
