"""Projected quantum kernel.

The paper's introduction mentions the projected-kernel alternative of Huang
et al. (2021): instead of state overlaps, compute a vector of local
observables (single-qubit Pauli expectation values) for each encoded state
and build a Gaussian kernel on those classical feature vectors:

    phi(x)  = ( <psi(x)| P_q |psi(x)> )_{q, P in {X, Y, Z}}
    k(x,x') = exp(-beta * |phi(x) - phi(x')|^2)

This avoids the exponential concentration that plagues fidelity kernels at
large depth, and provides a second quantum kernel family for the extension
experiments.  The MPS representation makes the local expectation values cheap
(``O(m chi^3)`` for the full set, via the same transfer-matrix sweep as an
inner product).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..backends import Backend, CpuBackend
from ..circuits import build_feature_map_circuit
from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import KernelError
from ..mps import MPS, pauli_x, pauli_y, pauli_z
from .gaussian import gaussian_gram_matrix

__all__ = ["ProjectedQuantumKernel"]


@dataclass
class ProjectedQuantumKernel:
    """Projected quantum kernel built from single-qubit Pauli expectations.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters (shared with the fidelity kernel).
    beta:
        Bandwidth of the outer Gaussian kernel on the projected features.
        ``None`` selects ``1 / median(|phi_i - phi_j|^2)`` on the training
        projections.
    backend:
        MPS simulation backend.
    """

    ansatz: AnsatzConfig
    beta: float | None = None
    backend: Backend | None = None
    simulation: SimulationConfig | None = None
    _train_projections: np.ndarray | None = field(default=None, repr=False)
    _beta_resolved: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.backend is None:
            self.backend = CpuBackend(self.simulation)

    # ------------------------------------------------------------------
    def project_state(self, state: MPS) -> np.ndarray:
        """Vector of <X_q>, <Y_q>, <Z_q> for every qubit of an encoded state."""
        ops = (pauli_x(), pauli_y(), pauli_z())
        values = np.empty(3 * state.num_qubits)
        k = 0
        for q in range(state.num_qubits):
            for op in ops:
                values[k] = float(np.real(state.expectation_single(q, op)))
                k += 1
        return values

    def project(self, X: np.ndarray) -> np.ndarray:
        """Projected feature matrix ``phi(X)`` of shape ``(n, 3 m)``."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.ansatz.num_features:
            raise KernelError(
                f"expected {self.ansatz.num_features} features, got {X.shape[1]}"
            )
        assert self.backend is not None
        rows: List[np.ndarray] = []
        for row in X:
            circuit = build_feature_map_circuit(row, self.ansatz)
            result = self.backend.simulate(circuit)
            rows.append(self.project_state(result.state))
        return np.vstack(rows)

    # ------------------------------------------------------------------
    def fit(self, X_train: np.ndarray) -> "ProjectedQuantumKernel":
        """Project the training data and resolve the bandwidth."""
        proj = self.project(X_train)
        self._train_projections = proj
        if self.beta is not None:
            self._beta_resolved = self.beta
        else:
            diffs = proj[:, None, :] - proj[None, :, :]
            sq = np.sum(diffs * diffs, axis=-1)
            upper = sq[np.triu_indices_from(sq, k=1)]
            med = float(np.median(upper)) if upper.size else 1.0
            self._beta_resolved = 1.0 / med if med > 0 else 1.0
        return self

    def gram_matrix(self) -> np.ndarray:
        """Symmetric projected-kernel Gram matrix on the fitted training data."""
        if self._train_projections is None or self._beta_resolved is None:
            raise KernelError("ProjectedQuantumKernel is not fitted")
        return gaussian_gram_matrix(
            self._train_projections, None, self._beta_resolved
        )

    def cross_matrix(self, X_test: np.ndarray) -> np.ndarray:
        """Projected kernel between test points and the fitted training data."""
        if self._train_projections is None or self._beta_resolved is None:
            raise KernelError("ProjectedQuantumKernel is not fitted")
        proj_test = self.project(X_test)
        return gaussian_gram_matrix(
            proj_test, self._train_projections, self._beta_resolved
        )
