"""Projected quantum kernel.

The paper's introduction mentions the projected-kernel alternative of Huang
et al. (2021): instead of state overlaps, compute a vector of local
observables (single-qubit Pauli expectation values) for each encoded state
and build a Gaussian kernel on those classical feature vectors:

    phi(x)  = ( <psi(x)| P_q |psi(x)> )_{q, P in {X, Y, Z}}
    k(x,x') = exp(-beta * |phi(x) - phi(x')|^2)

This avoids the exponential concentration that plagues fidelity kernels at
large depth, and provides a second quantum kernel family for the extension
experiments.  The MPS representation makes the local expectation values cheap
(``O(m chi^3)`` for the full set, via the same transfer-matrix sweep as an
inner product).

Encoding goes through the shared :class:`repro.engine.KernelEngine`, so the
projected kernel benefits from the same state cache as the fidelity kernel,
and it accumulates the same resource accounting (simulation time, projection
sweep time, bond dimensions) that the pipeline reports for every quantum
kernel family.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..backends import Backend
from ..config import AnsatzConfig, SimulationConfig
from ..engine import EngineConfig, KernelEngine
from ..exceptions import KernelError
from ..mps import MPS, pauli_x, pauli_y, pauli_z
from .gaussian import gaussian_gram_matrix

__all__ = ["ProjectedQuantumKernel"]


@dataclass
class ProjectedQuantumKernel:
    """Projected quantum kernel built from single-qubit Pauli expectations.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters (shared with the fidelity kernel).
    beta:
        Bandwidth of the outer Gaussian kernel on the projected features.
        ``None`` selects ``1 / median(|phi_i - phi_j|^2)`` on the training
        projections.
    backend:
        MPS simulation backend.
    engine:
        A pre-built :class:`KernelEngine` to share (e.g. with a fidelity
        kernel over the same ansatz, so both draw on one state cache).
    """

    ansatz: AnsatzConfig
    beta: float | None = None
    backend: Backend | None = None
    simulation: SimulationConfig | None = None
    engine: KernelEngine | None = None
    engine_config: EngineConfig | None = None
    _train_projections: np.ndarray | None = field(default=None, repr=False)
    _beta_resolved: float | None = field(default=None, repr=False)
    _resource: Dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = KernelEngine(
                self.ansatz,
                backend=self.backend,
                simulation=self.simulation,
                config=self.engine_config,
            )
        self.backend = self.engine.backend

    # ------------------------------------------------------------------
    def project_state(self, state: MPS) -> np.ndarray:
        """Vector of <X_q>, <Y_q>, <Z_q> for every qubit of an encoded state."""
        ops = (pauli_x(), pauli_y(), pauli_z())
        values = np.empty(3 * state.num_qubits)
        k = 0
        for q in range(state.num_qubits):
            for op in ops:
                values[k] = float(np.real(state.expectation_single(q, op)))
                k += 1
        return values

    def project(self, X: np.ndarray) -> np.ndarray:
        """Projected feature matrix ``phi(X)`` of shape ``(n, 3 m)``.

        Encodes through the engine (cache-aware) and accumulates resource
        accounting: MPS simulation counters from the backend, wall time of
        the expectation-value sweeps, and bond-dimension / memory statistics
        of the encoded states.
        """
        assert self.engine is not None and self.backend is not None
        self.backend.reset_counters()
        states = self.engine.encode_rows(X)

        start = time.perf_counter()
        rows: List[np.ndarray] = [self.project_state(state) for state in states]
        projection_wall = time.perf_counter() - start

        summary = self.backend.timing_summary()
        # The projection sweeps are the projected kernel's analogue of the
        # fidelity kernel's inner products: same transfer-matrix primitive,
        # 3m sweeps per encoded point.
        increments = {
            "simulation_time_s": summary["wall_simulation_time_s"],
            "modelled_simulation_time_s": summary["modelled_simulation_time_s"],
            "inner_product_time_s": projection_wall,
            "num_simulations": float(summary["num_simulations"]),
            "num_expectation_values": float(sum(3 * s.num_qubits for s in states)),
            "train_state_memory_bytes": float(sum(s.memory_bytes for s in states)),
        }
        for key, value in increments.items():
            self._resource[key] = self._resource.get(key, 0.0) + value
        self._resource["max_bond_dimension"] = max(
            self._resource.get("max_bond_dimension", 1.0),
            float(max((s.max_bond_dimension for s in states), default=1)),
        )
        return np.vstack(rows)

    # ------------------------------------------------------------------
    def fit(self, X_train: np.ndarray) -> "ProjectedQuantumKernel":
        """Project the training data and resolve the bandwidth."""
        proj = self.project(X_train)
        self._train_projections = proj
        if self.beta is not None:
            self._beta_resolved = self.beta
        else:
            diffs = proj[:, None, :] - proj[None, :, :]
            sq = np.sum(diffs * diffs, axis=-1)
            upper = sq[np.triu_indices_from(sq, k=1)]
            med = float(np.median(upper)) if upper.size else 1.0
            self._beta_resolved = 1.0 / med if med > 0 else 1.0
        return self

    def gram_matrix(self) -> np.ndarray:
        """Symmetric projected-kernel Gram matrix on the fitted training data."""
        if self._train_projections is None or self._beta_resolved is None:
            raise KernelError("ProjectedQuantumKernel is not fitted")
        return gaussian_gram_matrix(
            self._train_projections, None, self._beta_resolved
        )

    def cross_matrix(self, X_test: np.ndarray) -> np.ndarray:
        """Projected kernel between test points and the fitted training data."""
        if self._train_projections is None or self._beta_resolved is None:
            raise KernelError("ProjectedQuantumKernel is not fitted")
        proj_test = self.project(X_test)
        return gaussian_gram_matrix(
            proj_test, self._train_projections, self._beta_resolved
        )

    def resource_metrics(self) -> Dict[str, float]:
        """Accumulated resource accounting across every :meth:`project` call.

        Keys mirror the fidelity-kernel resource report where the concepts
        coincide (simulation timing, bond dimension, memory, counts); the
        quadratic phase is the Gaussian kernel on classical vectors, so the
        ``inner_product_time_s`` entry reports the expectation-value sweep
        time instead.
        """
        return dict(self._resource)
