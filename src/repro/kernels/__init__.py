"""Kernel construction: the quantum fidelity kernel and classical baselines.

Both quantum kernel families are thin wrappers over the unified
:class:`repro.engine.KernelEngine`: encoding, state caching, symmetry
exploitation and batched overlap evaluation live in :mod:`repro.engine`, and
this package only defines the kernel semantics on top.

* :class:`~repro.kernels.quantum_kernel.QuantumKernel` encodes each data
  point with the feature-map ansatz via the engine and fills the Gram matrix
  with squared state overlaps ``K_ij = |<psi(x_i)|psi(x_j)>|^2`` (equation
  (1) of the paper) by executing a
  :class:`~repro.engine.SymmetricGramPlan` / :class:`~repro.engine.CrossGramPlan`.
* :class:`~repro.kernels.gaussian.GaussianKernel` is the paper's classical
  baseline ``exp(-alpha |x - x'|^2)`` with the ``alpha = 1 / (m var(X))``
  bandwidth convention.
* :class:`~repro.kernels.projected.ProjectedQuantumKernel` implements the
  projected-kernel alternative mentioned in the introduction (local
  observables instead of overlaps).
* :mod:`~repro.kernels.analysis` provides kernel-concentration and spectrum
  diagnostics used by the Table III depth study.
"""

from .quantum_kernel import QuantumKernel, QuantumKernelResult
from .gaussian import GaussianKernel, gaussian_gram_matrix, median_heuristic_bandwidth
from .projected import ProjectedQuantumKernel
from .analysis import (
    kernel_concentration,
    kernel_alignment,
    is_positive_semidefinite,
    kernel_spectrum,
    effective_dimension,
)

__all__ = [
    "QuantumKernel",
    "QuantumKernelResult",
    "GaussianKernel",
    "gaussian_gram_matrix",
    "median_heuristic_bandwidth",
    "ProjectedQuantumKernel",
    "kernel_concentration",
    "kernel_alignment",
    "is_positive_semidefinite",
    "kernel_spectrum",
    "effective_dimension",
]
