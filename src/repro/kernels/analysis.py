"""Kernel diagnostics: concentration, alignment, spectrum, PSD checks.

The paper's Table III shows the fidelity kernel degrading at large circuit
depth because of *exponential concentration*: all off-diagonal kernel
entries shrink towards a common small value, so the Gram matrix carries no
information and the SVM cannot train.  These helpers quantify that effect
(off-diagonal mean and variance), plus a few standard kernel diagnostics used
by tests and the extension benchmarks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import KernelError

__all__ = [
    "kernel_concentration",
    "kernel_alignment",
    "is_positive_semidefinite",
    "kernel_spectrum",
    "effective_dimension",
]


def _validate_square(K: np.ndarray) -> np.ndarray:
    K = np.asarray(K, dtype=float)
    if K.ndim != 2 or K.shape[0] != K.shape[1]:
        raise KernelError(f"expected a square kernel matrix, got shape {K.shape}")
    if K.shape[0] < 2:
        raise KernelError("kernel diagnostics need at least 2 samples")
    return K


def kernel_concentration(K: np.ndarray) -> Dict[str, float]:
    """Concentration statistics of the off-diagonal kernel entries.

    Returns the mean, standard deviation, minimum and maximum of ``K_ij``
    for ``i != j``.  A concentrated kernel has a small standard deviation
    relative to ``1 - mean`` -- as depth grows the mean itself also collapses
    towards zero for fidelity kernels (Table III's failure mode).
    """
    K = _validate_square(K)
    off = K[~np.eye(K.shape[0], dtype=bool)]
    mean = float(np.mean(off))
    std = float(np.std(off))
    return {
        "off_diagonal_mean": mean,
        "off_diagonal_std": std,
        "off_diagonal_min": float(np.min(off)),
        "off_diagonal_max": float(np.max(off)),
        # Relative spread: how distinguishable entries are from one another.
        "relative_spread": std / mean if mean > 0 else 0.0,
    }


def kernel_alignment(K: np.ndarray, y: np.ndarray) -> float:
    """Kernel-target alignment ``<K, yy^T> / (|K| |yy^T|)``.

    Values near 1 indicate the kernel geometry matches the labels; values
    near 0 indicate an uninformative kernel.  Labels may be in {0,1} or
    {-1,+1}.
    """
    K = _validate_square(K)
    y = np.asarray(y, dtype=float).ravel()
    if y.size != K.shape[0]:
        raise KernelError("label count does not match kernel size")
    y = np.where(y > 0, 1.0, -1.0)
    yyt = np.outer(y, y)
    num = float(np.sum(K * yyt))
    denom = float(np.linalg.norm(K) * np.linalg.norm(yyt))
    if denom == 0:
        return 0.0
    return num / denom


def is_positive_semidefinite(K: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether the symmetrised kernel has no eigenvalue below ``-atol``."""
    K = _validate_square(K)
    sym = 0.5 * (K + K.T)
    eigvals = np.linalg.eigvalsh(sym)
    return bool(eigvals.min() >= -atol)


def kernel_spectrum(K: np.ndarray) -> np.ndarray:
    """Eigenvalues of the symmetrised kernel, descending."""
    K = _validate_square(K)
    sym = 0.5 * (K + K.T)
    eigvals = np.linalg.eigvalsh(sym)
    return eigvals[::-1]


def effective_dimension(K: np.ndarray, threshold: float = 0.95) -> int:
    """Number of leading eigenvalues explaining ``threshold`` of the trace.

    A rough expressivity proxy: richer feature maps spread the spectrum over
    more directions.
    """
    if not (0.0 < threshold <= 1.0):
        raise KernelError(f"threshold must be in (0, 1], got {threshold}")
    spec = kernel_spectrum(K)
    spec = np.clip(spec, 0.0, None)
    total = spec.sum()
    if total <= 0:
        return 0
    cum = np.cumsum(spec) / total
    return int(np.searchsorted(cum, threshold) + 1)
