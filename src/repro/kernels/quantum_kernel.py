"""The quantum fidelity kernel computed from MPS overlaps.

For a data set ``X = {x_1, ..., x_N}`` and the feature map
``|psi(x)> = U(x)|+>^m`` the kernel is

    K_ij = |<psi(x_i) | psi(x_j)>|^2                       (paper eq. (1))

The computation splits into the two primitives the paper benchmarks
separately (Fig. 5): one MPS simulation per data point (linear in N) and one
MPS inner product per pair (quadratic in N, but each inner product is cheap:
``O(m chi^3)``).

Since the unified-engine refactor this class is a thin, API-stable wrapper
over :class:`repro.engine.KernelEngine`: encoding, state caching, symmetry
exploitation and batched overlap evaluation all live in the engine, and the
same engine instance powers the pipeline, the inference service and the
per-process kernels of the distributed strategies.  Construct the kernel with
an :class:`~repro.engine.EngineConfig` (or a ready-made engine) to select the
executor or enable the state cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..backends import Backend
from ..config import AnsatzConfig, SimulationConfig
from ..engine import EngineConfig, EngineResult, KernelEngine
from ..mps import MPS

__all__ = ["QuantumKernel", "QuantumKernelResult"]


@dataclass
class QuantumKernelResult:
    """A computed kernel matrix plus the bookkeeping the benchmarks report."""

    matrix: np.ndarray
    simulation_time_s: float
    inner_product_time_s: float
    modelled_simulation_time_s: float
    modelled_inner_product_time_s: float
    max_bond_dimension: int
    total_state_memory_bytes: int
    num_simulations: int
    num_inner_products: int

    @property
    def total_time_s(self) -> float:
        """Measured wall-clock total."""
        return self.simulation_time_s + self.inner_product_time_s

    @property
    def modelled_total_time_s(self) -> float:
        """Modelled device total."""
        return self.modelled_simulation_time_s + self.modelled_inner_product_time_s

    @classmethod
    def from_engine_result(cls, result: EngineResult) -> "QuantumKernelResult":
        """Project an :class:`~repro.engine.EngineResult` onto this record."""
        return cls(
            matrix=result.matrix,
            simulation_time_s=result.simulation_time_s,
            inner_product_time_s=result.inner_product_time_s,
            modelled_simulation_time_s=result.modelled_simulation_time_s,
            modelled_inner_product_time_s=result.modelled_inner_product_time_s,
            max_bond_dimension=result.max_bond_dimension,
            total_state_memory_bytes=result.total_state_memory_bytes,
            num_simulations=result.num_simulations,
            num_inner_products=result.num_inner_products,
        )


class QuantumKernel:
    """Quantum fidelity kernel backed by the unified :class:`KernelEngine`.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters (``m``, ``d``, ``r``, ``gamma``).
    backend:
        Simulation backend; defaults to a fresh CPU backend.
    simulation:
        Simulation configuration forwarded to a default backend when one is
        not supplied explicitly.
    engine:
        A pre-built engine to share (overrides ``backend`` / ``simulation`` /
        ``engine_config``); used by the inference service so that kernel and
        serving paths share one state cache.
    engine_config:
        Engine knobs (executor, cache, batch size) for an engine built here.
    """

    def __init__(
        self,
        ansatz: AnsatzConfig,
        backend: Backend | None = None,
        simulation: SimulationConfig | None = None,
        engine: KernelEngine | None = None,
        engine_config: EngineConfig | None = None,
    ) -> None:
        self.ansatz = ansatz
        if engine is None:
            engine = KernelEngine(
                ansatz,
                backend=backend,
                simulation=simulation,
                config=engine_config,
            )
        self.engine = engine
        self.backend = engine.backend

    # ------------------------------------------------------------------
    def encode(self, X: np.ndarray) -> List[MPS]:
        """Simulate the feature-map circuit for every row of ``X``.

        ``X`` must already be scaled to the feature map's ``(0, 2)`` interval
        and have ``ansatz.num_features`` columns.  Returns one MPS per row
        (served from the engine's state store when caching is enabled).
        """
        return self.engine.encode_rows(X)

    def encode_one(self, x: np.ndarray) -> MPS:
        """Simulate the feature-map circuit for a single data point."""
        states = self.encode(np.asarray(x, dtype=float).reshape(1, -1))
        return states[0]

    # ------------------------------------------------------------------
    def gram_matrix(self, X: np.ndarray) -> QuantumKernelResult:
        """Symmetric training Gram matrix ``K_ij = |<psi_i|psi_j>|^2``."""
        return QuantumKernelResult.from_engine_result(self.engine.gram(X))

    def cross_matrix(
        self, X_test: np.ndarray, train_states: Sequence[MPS]
    ) -> QuantumKernelResult:
        """Rectangular kernel between new points and stored training states.

        Returns a matrix of shape ``(n_test, n_train)`` -- the layout
        :meth:`repro.svm.PrecomputedKernelSVC.decision_function` expects.
        """
        return QuantumKernelResult.from_engine_result(
            self.engine.cross(X_test, train_states)
        )

    def train_test_matrices(
        self, X_train: np.ndarray, X_test: np.ndarray
    ) -> tuple[QuantumKernelResult, QuantumKernelResult]:
        """Convenience: training Gram matrix and test cross matrix in one call.

        Training states are simulated once and reused for the cross matrix,
        matching the paper's inference procedure (simulate only the new
        points, reuse the stored training MPS).  Both halves route through
        the same engine plans as :meth:`gram_matrix` / :meth:`cross_matrix`.
        """
        train_result, test_result = self.engine.gram_and_cross(X_train, X_test)
        return (
            QuantumKernelResult.from_engine_result(train_result),
            QuantumKernelResult.from_engine_result(test_result),
        )
