"""The quantum fidelity kernel computed from MPS overlaps.

For a data set ``X = {x_1, ..., x_N}`` and the feature map
``|psi(x)> = U(x)|+>^m`` the kernel is

    K_ij = |<psi(x_i) | psi(x_j)>|^2                       (paper eq. (1))

The computation splits into the two primitives the paper benchmarks
separately (Fig. 5): one MPS simulation per data point (linear in N) and one
MPS inner product per pair (quadratic in N, but each inner product is cheap:
``O(m chi^3)``).  Symmetry is exploited so training Gram matrices only
evaluate ``N (N - 1) / 2`` off-diagonal overlaps.

The heavy lifting can also be dispatched to the distributed machinery in
:mod:`repro.parallel`; this module provides the sequential reference path
used by the examples and as the per-process kernel inside a tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..backends import Backend, CpuBackend
from ..circuits import build_feature_map_circuit
from ..config import AnsatzConfig, SimulationConfig
from ..exceptions import KernelError
from ..mps import MPS

__all__ = ["QuantumKernel", "QuantumKernelResult"]


@dataclass
class QuantumKernelResult:
    """A computed kernel matrix plus the bookkeeping the benchmarks report."""

    matrix: np.ndarray
    simulation_time_s: float
    inner_product_time_s: float
    modelled_simulation_time_s: float
    modelled_inner_product_time_s: float
    max_bond_dimension: int
    total_state_memory_bytes: int
    num_simulations: int
    num_inner_products: int

    @property
    def total_time_s(self) -> float:
        """Measured wall-clock total."""
        return self.simulation_time_s + self.inner_product_time_s

    @property
    def modelled_total_time_s(self) -> float:
        """Modelled device total."""
        return self.modelled_simulation_time_s + self.modelled_inner_product_time_s


class QuantumKernel:
    """Quantum fidelity kernel backed by an MPS simulation backend.

    Parameters
    ----------
    ansatz:
        Feature-map hyper-parameters (``m``, ``d``, ``r``, ``gamma``).
    backend:
        Simulation backend; defaults to a fresh :class:`CpuBackend`.
    simulation:
        Simulation configuration forwarded to a default backend when one is
        not supplied explicitly.
    """

    def __init__(
        self,
        ansatz: AnsatzConfig,
        backend: Backend | None = None,
        simulation: SimulationConfig | None = None,
    ) -> None:
        self.ansatz = ansatz
        if backend is None:
            backend = CpuBackend(simulation)
        self.backend = backend

    # ------------------------------------------------------------------
    def encode(self, X: np.ndarray) -> List[MPS]:
        """Simulate the feature-map circuit for every row of ``X``.

        ``X`` must already be scaled to the feature map's ``(0, 2)`` interval
        and have ``ansatz.num_features`` columns.  Returns one MPS per row.
        """
        X = self._validate_features(X)
        states: List[MPS] = []
        for row in X:
            circuit = build_feature_map_circuit(row, self.ansatz)
            result = self.backend.simulate(circuit)
            states.append(result.state)
        return states

    def encode_one(self, x: np.ndarray) -> MPS:
        """Simulate the feature-map circuit for a single data point."""
        states = self.encode(np.asarray(x, dtype=float).reshape(1, -1))
        return states[0]

    # ------------------------------------------------------------------
    def gram_matrix(self, X: np.ndarray) -> QuantumKernelResult:
        """Symmetric training Gram matrix ``K_ij = |<psi_i|psi_j>|^2``."""
        self.backend.reset_counters()
        states = self.encode(X)
        n = len(states)
        K = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                overlap = self.backend.inner_product(states[i], states[j])
                K[i, j] = K[j, i] = abs(overlap.value) ** 2
        return self._result(K, states)

    def cross_matrix(
        self, X_test: np.ndarray, train_states: Sequence[MPS]
    ) -> QuantumKernelResult:
        """Rectangular kernel between new points and stored training states.

        Returns a matrix of shape ``(n_test, n_train)`` -- the layout
        :meth:`repro.svm.PrecomputedKernelSVC.decision_function` expects.
        """
        if not train_states:
            raise KernelError("train_states must not be empty")
        self.backend.reset_counters()
        test_states = self.encode(X_test)
        K = np.zeros((len(test_states), len(train_states)))
        for i, ts in enumerate(test_states):
            for j, trs in enumerate(train_states):
                overlap = self.backend.inner_product(ts, trs)
                K[i, j] = abs(overlap.value) ** 2
        return self._result(K, test_states)

    def train_test_matrices(
        self, X_train: np.ndarray, X_test: np.ndarray
    ) -> tuple[QuantumKernelResult, QuantumKernelResult]:
        """Convenience: training Gram matrix and test cross matrix in one call.

        Training states are simulated once and reused for the cross matrix,
        matching the paper's inference procedure (simulate only the new
        points, reuse the stored training MPS).
        """
        self.backend.reset_counters()
        train_states = self.encode(X_train)
        n = len(train_states)
        K_train = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                overlap = self.backend.inner_product(train_states[i], train_states[j])
                K_train[i, j] = K_train[j, i] = abs(overlap.value) ** 2
        train_result = self._result(K_train, train_states)

        test_result = self.cross_matrix(X_test, train_states)
        return train_result, test_result

    # ------------------------------------------------------------------
    def _validate_features(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise KernelError(f"feature matrix must be 2-D, got shape {X.shape}")
        if X.shape[1] != self.ansatz.num_features:
            raise KernelError(
                f"expected {self.ansatz.num_features} features, got {X.shape[1]}"
            )
        if X.shape[0] == 0:
            raise KernelError("feature matrix has no rows")
        return X

    def _result(self, K: np.ndarray, states: Sequence[MPS]) -> QuantumKernelResult:
        summary = self.backend.timing_summary()
        return QuantumKernelResult(
            matrix=K,
            simulation_time_s=summary["wall_simulation_time_s"],
            inner_product_time_s=summary["wall_inner_product_time_s"],
            modelled_simulation_time_s=summary["modelled_simulation_time_s"],
            modelled_inner_product_time_s=summary["modelled_inner_product_time_s"],
            max_bond_dimension=max(
                (s.max_bond_dimension for s in states), default=1
            ),
            total_state_memory_bytes=sum(s.memory_bytes for s in states),
            num_simulations=int(summary["num_simulations"]),
            num_inner_products=int(summary["num_inner_products"]),
        )
