"""Gaussian (RBF) kernel baseline.

Table II compares the quantum kernel against a standard Gaussian kernel

    k(x, x') = exp(-alpha |x - x'|^2)                      (paper eq. (9))

with the bandwidth chosen as ``alpha = 1 / (m * var(X))`` for a data set
``X`` with ``m`` features -- scikit-learn's ``gamma="scale"`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.spatial.distance

from ..exceptions import KernelError

__all__ = ["GaussianKernel", "gaussian_gram_matrix", "median_heuristic_bandwidth"]


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of two matrices."""
    return scipy.spatial.distance.cdist(A, B, metric="sqeuclidean")


def scale_bandwidth(X: np.ndarray) -> float:
    """The paper's bandwidth: ``alpha = 1 / (m * var(X))``.

    ``var(X)`` is the variance over all matrix entries; degenerate constant
    data falls back to ``alpha = 1 / m``.
    """
    X = np.asarray(X, dtype=float)
    m = X.shape[1]
    var = float(np.var(X))
    if var <= 0:
        return 1.0 / m
    return 1.0 / (m * var)


def median_heuristic_bandwidth(X: np.ndarray) -> float:
    """Alternative bandwidth: inverse median squared pairwise distance.

    Provided for the bandwidth-sensitivity ablation; not used by the paper's
    headline comparison.
    """
    X = np.asarray(X, dtype=float)
    if X.shape[0] < 2:
        raise KernelError("median heuristic needs at least two samples")
    d2 = _pairwise_sq_dists(X, X)
    upper = d2[np.triu_indices_from(d2, k=1)]
    med = float(np.median(upper))
    if med <= 0:
        return 1.0
    return 1.0 / med


def gaussian_gram_matrix(
    A: np.ndarray, B: np.ndarray | None = None, alpha: float | None = None
) -> np.ndarray:
    """Gaussian kernel matrix between the rows of ``A`` and ``B``.

    When ``B`` is ``None`` the symmetric Gram matrix of ``A`` is returned.
    ``alpha`` defaults to the paper's ``1 / (m var(A))``.
    """
    A = np.asarray(A, dtype=float)
    if A.ndim != 2:
        raise KernelError(f"A must be 2-D, got shape {A.shape}")
    if B is None:
        B = A
    else:
        B = np.asarray(B, dtype=float)
        if B.ndim != 2 or B.shape[1] != A.shape[1]:
            raise KernelError(
                f"B must be 2-D with {A.shape[1]} columns, got shape {B.shape}"
            )
    if alpha is None:
        alpha = scale_bandwidth(A)
    if alpha <= 0:
        raise KernelError(f"alpha must be positive, got {alpha}")
    return np.exp(-alpha * _pairwise_sq_dists(A, B))


@dataclass
class GaussianKernel:
    """Stateful Gaussian kernel mirroring :class:`QuantumKernel`'s API.

    ``fit`` stores the training matrix and resolves the bandwidth;
    ``gram_matrix`` / ``cross_matrix`` then mirror the quantum kernel's
    training and inference paths so the pipeline can switch kernels with one
    argument.
    """

    alpha: float | None = None
    _X_train: np.ndarray | None = None
    _alpha_resolved: float | None = None

    def fit(self, X_train: np.ndarray) -> "GaussianKernel":
        """Store the training data and resolve the bandwidth."""
        X_train = np.asarray(X_train, dtype=float)
        if X_train.ndim != 2 or X_train.shape[0] == 0:
            raise KernelError("X_train must be a non-empty 2-D matrix")
        self._X_train = X_train
        self._alpha_resolved = (
            self.alpha if self.alpha is not None else scale_bandwidth(X_train)
        )
        return self

    @property
    def bandwidth(self) -> float:
        """The resolved ``alpha`` (requires :meth:`fit`)."""
        if self._alpha_resolved is None:
            raise KernelError("GaussianKernel is not fitted")
        return self._alpha_resolved

    def gram_matrix(self, X: np.ndarray | None = None) -> np.ndarray:
        """Symmetric Gram matrix on the training data (or on ``X``)."""
        if X is None:
            if self._X_train is None:
                raise KernelError("GaussianKernel is not fitted")
            X = self._X_train
        return gaussian_gram_matrix(X, None, self._resolve_alpha(X))

    def cross_matrix(self, X_test: np.ndarray) -> np.ndarray:
        """Kernel between test rows and the stored training rows."""
        if self._X_train is None:
            raise KernelError("GaussianKernel is not fitted")
        X_test = np.asarray(X_test, dtype=float)
        return gaussian_gram_matrix(X_test, self._X_train, self.bandwidth)

    def train_test_matrices(
        self, X_train: np.ndarray, X_test: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fit on the training data and return both kernel matrices."""
        self.fit(X_train)
        return self.gram_matrix(), self.cross_matrix(X_test)

    def _resolve_alpha(self, X: np.ndarray) -> float:
        if self._alpha_resolved is not None:
            return self._alpha_resolved
        return self.alpha if self.alpha is not None else scale_bandwidth(X)
