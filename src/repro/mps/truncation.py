"""SVD truncation policies and error accounting.

The paper (equation (8)) quantifies the error of a single truncation of a
normalised, canonical-form MPS as::

    |<psi_ideal | psi_trunc>|^2 = 1 - sum_i s_i^2

where the sum runs over the *discarded* singular values ``s_i``.  The
simulator keeps the accumulated discarded weight below a configurable cut-off
(``1e-16`` by default, i.e. 64-bit machine precision) so that the overall
simulation is numerically exact for all practical purposes, while still
benefiting from the large memory savings the truncation provides (Fig. 6).

:class:`TruncationPolicy` encapsulates the decision of *how many* singular
values to keep; :class:`TruncationRecord` describes what one truncation did so
that instrumented simulations can report cumulative error and bond-dimension
evolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError, TruncationError

__all__ = ["TruncationPolicy", "TruncationRecord", "truncate_singular_values"]


@dataclass(frozen=True)
class TruncationRecord:
    """Outcome of a single SVD truncation.

    Attributes
    ----------
    kept:
        Number of singular values retained.
    discarded:
        Number of singular values removed.
    discarded_weight:
        Sum of squared removed singular values *relative to the total
        squared weight* -- the quantity bounded by the policy cut-off.
    bond_dimension_before / bond_dimension_after:
        Virtual bond dimension before and after the truncation.
    """

    kept: int
    discarded: int
    discarded_weight: float
    bond_dimension_before: int
    bond_dimension_after: int

    @property
    def fidelity_lower_bound(self) -> float:
        """Lower bound on ``|<ideal|truncated>|^2`` from equation (8)."""
        return max(0.0, 1.0 - self.discarded_weight)


@dataclass(frozen=True)
class TruncationPolicy:
    """How singular values are discarded after a two-qubit gate.

    Parameters
    ----------
    cutoff:
        Maximum allowed *relative* discarded squared weight per truncation.
        The paper uses ``1e-16``.
    max_bond_dim:
        Optional hard cap on the number of retained singular values.
    allow_lossy_cap:
        When the hard cap forces more weight to be discarded than ``cutoff``
        permits, raise :class:`TruncationError` unless this flag is set.
    """

    cutoff: float = 1e-16
    max_bond_dim: int | None = None
    allow_lossy_cap: bool = False

    def __post_init__(self) -> None:
        if self.cutoff < 0:
            raise ConfigurationError(f"cutoff must be >= 0, got {self.cutoff}")
        if self.max_bond_dim is not None and self.max_bond_dim < 1:
            raise ConfigurationError(
                f"max_bond_dim must be positive or None, got {self.max_bond_dim}"
            )

    def select_rank(self, singular_values: np.ndarray) -> Tuple[int, float]:
        """Decide how many singular values to keep.

        Parameters
        ----------
        singular_values:
            1-D array sorted in non-increasing order (as returned by SVD).

        Returns
        -------
        (kept, discarded_weight):
            ``kept`` is the number of singular values to retain (at least 1)
            and ``discarded_weight`` the relative squared weight of the rest.
        """
        s = np.asarray(singular_values, dtype=float)
        if s.ndim != 1 or s.size == 0:
            raise TruncationError("singular value array must be 1-D and non-empty")

        total = float(np.sum(s * s))
        if total <= 0.0:
            # Degenerate state (all-zero theta); keep a single value to keep
            # the MPS structurally valid.
            return 1, 0.0

        squared = s * s
        # Cumulative discarded weight if we keep only the first k values:
        # discarded(k) = sum_{i >= k} s_i^2
        reversed_cumsum = np.cumsum(squared[::-1])[::-1]
        # discarded_if_keep[k] for k = 1..n is reversed_cumsum[k] (0 for k = n)
        n = s.size

        kept = n
        for k in range(1, n + 1):
            discarded = reversed_cumsum[k] if k < n else 0.0
            if discarded / total <= self.cutoff:
                kept = k
                break

        if self.max_bond_dim is not None and kept > self.max_bond_dim:
            capped = self.max_bond_dim
            discarded = reversed_cumsum[capped] if capped < n else 0.0
            rel = float(discarded / total)
            if rel > self.cutoff and not self.allow_lossy_cap:
                raise TruncationError(
                    "bond-dimension cap would discard weight "
                    f"{rel:.3e} > cutoff {self.cutoff:.3e}; "
                    "set allow_lossy_cap=True for approximate simulation"
                )
            return capped, rel

        discarded = reversed_cumsum[kept] if kept < n else 0.0
        return kept, float(discarded / total)


def truncate_singular_values(
    u: np.ndarray,
    s: np.ndarray,
    vh: np.ndarray,
    policy: TruncationPolicy,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, TruncationRecord]:
    """Apply a truncation policy to the factors of an SVD.

    ``u`` has shape ``(l, p, k)``, ``s`` shape ``(k,)`` and ``vh`` shape
    ``(k, q, r)`` as produced by :func:`repro.mps.tensor_ops.split_theta`.
    Returns the truncated ``(u, s, vh)`` plus a :class:`TruncationRecord`.
    """
    before = int(s.shape[0])
    kept, discarded_weight = policy.select_rank(s)
    record = TruncationRecord(
        kept=kept,
        discarded=before - kept,
        discarded_weight=discarded_weight,
        bond_dimension_before=before,
        bond_dimension_after=kept,
    )
    return u[..., :kept], s[:kept], vh[:kept, ...], record
