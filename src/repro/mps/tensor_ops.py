"""Low-level tensor utilities shared by the MPS engine.

The MPS simulator needs only a handful of dense-tensor primitives:

* contraction of a gate with one or two site tensors,
* reshaping site tensors into matrices for SVD / QR,
* the SVD itself with a robust LAPACK fallback,
* splitting a two-site tensor back into two site tensors.

Everything here is written against plain NumPy arrays so that the "CPU" and
"simulated GPU" backends can share the same numerics (the paper stresses both
of its backends implement the identical algorithm; the runtime difference is
purely the execution substrate).

Site tensors use the index convention ``T[left, physical, right]`` -- i.e. a
rank-3 array whose first and last axes are the virtual bonds to the
neighbouring sites and whose middle axis is the physical (qubit) dimension 2.
Boundary sites have virtual dimension 1 on the outside.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg

from ..exceptions import SimulationError

__all__ = [
    "robust_svd",
    "qr_right",
    "rq_left",
    "stacked_qr_right",
    "stacked_rq_left",
    "apply_single_qubit_gate",
    "merge_sites",
    "apply_two_qubit_gate_to_theta",
    "split_theta",
    "absorb_factor_left",
    "absorb_factor_right",
    "tensor_memory_bytes",
    "contract_virtual",
]


def robust_svd(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Singular value decomposition with a divide-and-conquer -> GESVD fallback.

    ``numpy.linalg.svd`` (gesdd) occasionally fails to converge on
    ill-conditioned matrices; scipy's ``lapack_driver="gesvd"`` is slower but
    far more robust, so we retry with it before giving up.

    Returns ``(U, S, Vh)`` with ``S`` as a 1-D real array sorted descending.
    """
    try:
        return np.linalg.svd(matrix, full_matrices=False)
    except np.linalg.LinAlgError:
        try:
            return scipy.linalg.svd(
                matrix, full_matrices=False, lapack_driver="gesvd"
            )
        except Exception as exc:  # pragma: no cover - extremely unlikely
            raise SimulationError(f"SVD failed to converge: {exc}") from exc


def qr_right(tensor: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """QR-decompose a site tensor, pushing the R factor to the right.

    ``tensor`` has shape ``(l, p, r)``.  Returns ``(Q, R)`` where ``Q`` has
    shape ``(l, p, k)`` and is left-isometric (``sum_{l,p} Q*[l,p,a] Q[l,p,b]
    = delta_ab``), and ``R`` has shape ``(k, r)``.  Contracting ``Q @ R``
    reproduces the original tensor; this is the primitive behind
    left-canonicalisation.
    """
    left, phys, right = tensor.shape
    mat = tensor.reshape(left * phys, right)
    q, r = np.linalg.qr(mat)
    k = q.shape[1]
    return q.reshape(left, phys, k), r


def rq_left(tensor: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Factor a site tensor as ``R @ Q``, pushing the R factor to the left.

    ``tensor`` has shape ``(l, p, r)``.  Returns ``(R, Q)`` where ``Q`` has
    shape ``(k, p, r)`` and is right-isometric and ``R`` has shape
    ``(l, k)``.  Used for right-canonicalisation sweeps.

    Computed as a QR factorisation of the adjoint, ``A^H = Q~ R~  =>
    A = R~^H Q~^H``: any isometric split serves canonicalisation equally
    well, and ``np.linalg.qr`` -- unlike scipy's RQ -- has a stacked gufunc
    whose per-slice factors are bit-identical to this single-matrix call,
    which is what keeps batch-encoded states byte-equal to per-point ones.
    Factors are returned C-contiguous because the GEMM/einsum calls
    downstream pick their summation order by memory layout.
    """
    left, phys, right = tensor.shape
    mat = tensor.reshape(left, phys * right)
    q_adj, r_adj = np.linalg.qr(mat.conj().T)
    k = q_adj.shape[1]
    r = np.ascontiguousarray(r_adj.conj().T)
    q = np.ascontiguousarray(q_adj.conj().T).reshape(k, phys, right)
    return r, q


def stacked_qr_right(stacks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked form of :func:`qr_right` over a ``(g, l, p, r)`` site block.

    Returns ``(Q, R)`` with ``Q`` of shape ``(g, l, p, k)`` and ``R`` of shape
    ``(g, k, r)``.  ``np.linalg.qr`` is a gufunc whose per-slice factors are
    bit-identical to the single-matrix call, so pushing a whole stack's
    orthogonality centres rightward in one call produces exactly the tensors
    ``g`` per-point :func:`qr_right` calls would -- the invariant the batched
    encoding sweep (and now the prefix-sharing encode tree) relies on.
    """
    g, left, phys, right = stacks.shape
    qs, rs = np.linalg.qr(stacks.reshape(g, left * phys, right))
    k = qs.shape[2]
    return qs.reshape(g, left, phys, k), rs


def stacked_rq_left(stacks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked form of :func:`rq_left` over a ``(g, l, p, r)`` site block.

    Returns ``(R, Q)`` with ``R`` of shape ``(g, l, k)`` and ``Q`` of shape
    ``(g, k, p, r)``.  Computed -- like the per-point version -- as a QR of
    the adjoint, because that is the factorisation with a stacked gufunc
    whose slices match the single-matrix call bit for bit.  Factors are
    C-contiguous for the same downstream-GEMM reason as :func:`rq_left`.
    """
    g, left, phys, right = stacks.shape
    mats = stacks.reshape(g, left, phys * right)
    q_adj, r_adj = np.linalg.qr(np.conj(mats).transpose(0, 2, 1))
    k = q_adj.shape[2]
    r = np.ascontiguousarray(np.conj(r_adj).transpose(0, 2, 1))
    q = np.ascontiguousarray(np.conj(q_adj).transpose(0, 2, 1)).reshape(
        g, k, phys, right
    )
    return r, q


def apply_single_qubit_gate(tensor: np.ndarray, gate: np.ndarray) -> np.ndarray:
    """Contract a ``(2, 2)`` gate with the physical leg of a site tensor.

    This is Fig. 1(a) of the paper: single-qubit gates never change the
    virtual bond dimension.

    Expressed as a broadcast ``matmul`` (one ``(2, 2) @ (2, r)`` product per
    left-bond slice) so the batched encoding sweep -- which stacks many
    states along a leading axis and issues the identical gufunc call -- is
    bit-for-bit equal to this per-point path.
    """
    # T'[l, p', r] = sum_p G[p', p] T[l, p, r]
    return np.matmul(gate, tensor)


def merge_sites(left_tensor: np.ndarray, right_tensor: np.ndarray) -> np.ndarray:
    """Contract two adjacent site tensors into a rank-4 "theta" tensor.

    ``left_tensor`` has shape ``(l, 2, m)`` and ``right_tensor`` has shape
    ``(m, 2, r)``; the result has shape ``(l, 2, 2, r)``.  Formulated as one
    GEMM so the stacked (batched-encoding) sweep reproduces it bitwise.
    """
    left, phys, mid = left_tensor.shape
    mid_r, phys_r, right = right_tensor.shape
    merged = np.matmul(
        left_tensor.reshape(left * phys, mid),
        right_tensor.reshape(mid_r, phys_r * right),
    )
    return merged.reshape(left, phys, phys_r, right)


def apply_two_qubit_gate_to_theta(theta: np.ndarray, gate: np.ndarray) -> np.ndarray:
    """Apply a ``(4, 4)`` two-qubit gate to a merged two-site tensor.

    ``theta`` has shape ``(l, 2, 2, r)`` with the left physical index being
    the more significant bit of the gate basis.  The returned tensor has the
    same shape.  The two physical legs are fused so the contraction is a
    broadcast ``(4, 4) @ (4, r)`` matmul per left-bond slice -- the same
    gufunc the batched encoding sweep applies with an extra batch axis.
    """
    left, p0, p1, right = theta.shape
    # theta'[l, a, b, r] = sum_{p,q} G[ab, pq] theta[l, pq, r]
    out = np.matmul(gate, theta.reshape(left, p0 * p1, right))
    return out.reshape(left, p0, p1, right)


def absorb_factor_left(factor: np.ndarray, tensor: np.ndarray) -> np.ndarray:
    """Absorb a ``(k, l)`` bond factor into the left leg of a site tensor.

    ``tensor`` has shape ``(l, p, r)``; the result has shape ``(k, p, r)``.
    This is the canonicalisation step that pushes a QR/RQ factor onto the
    neighbouring site, expressed as one GEMM for gufunc-exact batching.
    """
    left, phys, right = tensor.shape
    out = np.matmul(factor, tensor.reshape(left, phys * right))
    return out.reshape(factor.shape[0], phys, right)


def absorb_factor_right(tensor: np.ndarray, factor: np.ndarray) -> np.ndarray:
    """Absorb an ``(r, k)`` bond factor into the right leg of a site tensor.

    ``tensor`` has shape ``(l, p, r)``; the result has shape ``(l, p, k)``.
    Mirror image of :func:`absorb_factor_left`.
    """
    left, phys, right = tensor.shape
    out = np.matmul(tensor.reshape(left * phys, right), factor)
    return out.reshape(left, phys, factor.shape[1])


def split_theta(
    theta: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD a merged two-site tensor back into site-shaped factors.

    ``theta`` has shape ``(l, 2, 2, r)``.  Returns ``(U, S, Vh)`` where
    ``U`` has shape ``(l, 2, k)``, ``S`` is the 1-D array of singular values
    and ``Vh`` has shape ``(k, 2, r)``.  No truncation is applied here; the
    caller decides how many singular values to keep (see
    :mod:`repro.mps.truncation`).
    """
    left, p0, p1, right = theta.shape
    mat = theta.reshape(left * p0, p1 * right)
    u, s, vh = robust_svd(mat)
    k = s.shape[0]
    return u.reshape(left, p0, k), s, vh.reshape(k, p1, right)


def contract_virtual(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Contract the right virtual bond of ``a`` with the left bond of ``b``.

    Both inputs are site tensors ``(l, p, m)`` and ``(m, q, r)``; the output
    is the rank-4 tensor ``(l, p, q, r)``.  Alias of :func:`merge_sites`, kept
    as a separate name for readability at call sites that are not gate
    applications (e.g. converting an MPS to a statevector).
    """
    return merge_sites(a, b)


def tensor_memory_bytes(tensor: np.ndarray) -> int:
    """Number of bytes used by the entries of a tensor."""
    return int(tensor.size * tensor.itemsize)
