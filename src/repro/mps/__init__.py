"""Matrix Product State simulation substrate.

This package provides a from-scratch, NumPy-based MPS circuit simulator: the
equivalent of the roles ITensors (CPU) and pytket-cutensornet (GPU) play in
the paper.  The public entry points are:

* :class:`~repro.mps.mps.MPS` -- the state representation with gate
  application, canonicalisation, SVD truncation and inner products.
* :class:`~repro.mps.truncation.TruncationPolicy` -- how singular values are
  discarded and how the accumulated error is tracked.
* :class:`~repro.mps.instrumented.InstrumentedMPS` -- an MPS subclass that
  records the per-gate memory / bond-dimension trace used by Figure 6.
* :mod:`~repro.mps.gates` -- the gate-matrix zoo (H, RZ, RXX, SWAP, ...).
"""

from .gates import (
    hadamard,
    identity2,
    pauli_x,
    pauli_y,
    pauli_z,
    rx,
    ry,
    rz,
    rxx,
    rzz,
    swap,
    cnot,
    controlled_z,
    gate_fidelity,
    is_unitary,
)
from .truncation import TruncationPolicy, TruncationRecord, truncate_singular_values
from .mps import MPS
from .batched import (
    StackedStateBlock,
    batched_overlaps,
    group_pairs_by_shape,
    pair_shape_signature,
)
from .encoding import (
    GateShapeLog,
    circuit_prefix_tokens,
    circuit_structure_signature,
    encode_circuits,
    group_circuits_by_structure,
)
from .instrumented import InstrumentedMPS, MemoryTrace, MemorySample

__all__ = [
    "MPS",
    "GateShapeLog",
    "circuit_prefix_tokens",
    "circuit_structure_signature",
    "encode_circuits",
    "group_circuits_by_structure",
    "InstrumentedMPS",
    "MemoryTrace",
    "MemorySample",
    "TruncationPolicy",
    "TruncationRecord",
    "truncate_singular_values",
    "batched_overlaps",
    "group_pairs_by_shape",
    "pair_shape_signature",
    "StackedStateBlock",
    "hadamard",
    "identity2",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "rx",
    "ry",
    "rz",
    "rxx",
    "rzz",
    "swap",
    "cnot",
    "controlled_z",
    "gate_fidelity",
    "is_unitary",
]
