"""Instrumented MPS recording the per-gate memory / bond-dimension trace.

Figure 6 of the paper plots the memory required to store the MPS as a
function of simulation progress (percentage of gates already applied), with
the characteristic saw-tooth produced by SVD truncation.  To regenerate that
figure we need an MPS that records, after every gate application:

* the total memory footprint of the state,
* the largest virtual bond dimension,
* the cumulative truncation error.

:class:`InstrumentedMPS` subclasses :class:`~repro.mps.mps.MPS` and appends a
:class:`MemorySample` to its :class:`MemoryTrace` after each gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .mps import MPS
from .truncation import TruncationPolicy, TruncationRecord

__all__ = ["MemorySample", "MemoryTrace", "InstrumentedMPS"]


@dataclass(frozen=True)
class MemorySample:
    """State of the MPS immediately after one gate application."""

    gate_index: int
    is_two_qubit: bool
    memory_bytes: int
    max_bond_dimension: int
    cumulative_discarded_weight: float

    @property
    def memory_mib(self) -> float:
        """Memory in MiB, the unit used by Table I and Figure 6."""
        return self.memory_bytes / (1024.0 * 1024.0)


@dataclass
class MemoryTrace:
    """Ordered collection of :class:`MemorySample` for one simulation."""

    samples: List[MemorySample] = field(default_factory=list)

    def append(self, sample: MemorySample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def peak_memory_bytes(self) -> int:
        """Largest footprint observed during the simulation."""
        return max((s.memory_bytes for s in self.samples), default=0)

    @property
    def final_memory_bytes(self) -> int:
        """Footprint after the last gate."""
        return self.samples[-1].memory_bytes if self.samples else 0

    @property
    def peak_bond_dimension(self) -> int:
        """Largest chi observed during the simulation."""
        return max((s.max_bond_dimension for s in self.samples), default=1)

    def progress_axis(self) -> np.ndarray:
        """Percentage-of-gates-applied x-axis used by Figure 6."""
        n = len(self.samples)
        if n == 0:
            return np.zeros(0)
        return 100.0 * (np.arange(1, n + 1) / n)

    def memory_axis_mib(self) -> np.ndarray:
        """Memory footprint in MiB aligned with :meth:`progress_axis`."""
        return np.array([s.memory_mib for s in self.samples])

    def bond_dimension_axis(self) -> np.ndarray:
        """Max bond dimension aligned with :meth:`progress_axis`."""
        return np.array([s.max_bond_dimension for s in self.samples])

    def resample(self, num_points: int) -> "MemoryTrace":
        """Down-sample the trace to ``num_points`` evenly spaced samples.

        Long simulations produce one sample per gate which is more than
        plotting needs; resampling keeps the trace envelope while bounding
        the record size.
        """
        n = len(self.samples)
        if num_points >= n or num_points <= 0:
            return MemoryTrace(list(self.samples))
        idx = np.linspace(0, n - 1, num_points).round().astype(int)
        return MemoryTrace([self.samples[i] for i in idx])


class InstrumentedMPS(MPS):
    """MPS that records a :class:`MemoryTrace` during simulation."""

    __slots__ = ("trace",)

    def __init__(
        self,
        tensors: Sequence[np.ndarray],
        truncation: TruncationPolicy | None = None,
        center: int | None = None,
    ) -> None:
        super().__init__(tensors, truncation, center)
        self.trace = MemoryTrace()

    @classmethod
    def plus_state(
        cls, num_qubits: int, truncation: TruncationPolicy | None = None
    ) -> "InstrumentedMPS":
        base = MPS.plus_state(num_qubits, truncation)
        return cls(base.tensors, truncation, center=0)

    @classmethod
    def zero_state(
        cls, num_qubits: int, truncation: TruncationPolicy | None = None
    ) -> "InstrumentedMPS":
        base = MPS.zero_state(num_qubits, truncation)
        return cls(base.tensors, truncation, center=0)

    def _record(self, is_two_qubit: bool) -> None:
        self.trace.append(
            MemorySample(
                gate_index=self.gates_applied,
                is_two_qubit=is_two_qubit,
                memory_bytes=self.memory_bytes,
                max_bond_dimension=self.max_bond_dimension,
                cumulative_discarded_weight=self.cumulative_discarded_weight,
            )
        )

    def apply_single_qubit_gate(self, qubit: int, gate: np.ndarray) -> None:
        super().apply_single_qubit_gate(qubit, gate)
        self._record(is_two_qubit=False)

    def apply_two_qubit_gate(
        self, qubit: int, gate: np.ndarray, canonicalize: bool = True
    ) -> TruncationRecord:
        record = super().apply_two_qubit_gate(qubit, gate, canonicalize)
        self._record(is_two_qubit=True)
        return record
