"""Gate-matrix zoo used by the circuit IR and the simulators.

All functions return freshly-allocated ``complex128`` NumPy arrays: ``(2, 2)``
for single-qubit gates and ``(4, 4)`` for two-qubit gates, with the two-qubit
basis ordered as ``|q0 q1> = |00>, |01>, |10>, |11>`` (q0 is the most
significant bit).  The parameterised rotations follow the standard convention

    RZ(theta)  = exp(-i theta Z / 2)
    RXX(theta) = exp(-i theta X (x) X / 2)

which matches pytket / Qiskit up to the factor-of-two convention noted in the
docstrings of the ansatz builder (:mod:`repro.circuits.ansatz`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "identity2",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "hadamard",
    "phase",
    "rx",
    "ry",
    "rz",
    "rxx",
    "ryy",
    "rzz",
    "swap",
    "cnot",
    "controlled_z",
    "is_unitary",
    "gate_fidelity",
    "kron",
]

_CTYPE = np.complex128


def identity2() -> np.ndarray:
    """2x2 identity."""
    return np.eye(2, dtype=_CTYPE)


def pauli_x() -> np.ndarray:
    """Pauli X."""
    return np.array([[0, 1], [1, 0]], dtype=_CTYPE)


def pauli_y() -> np.ndarray:
    """Pauli Y."""
    return np.array([[0, -1j], [1j, 0]], dtype=_CTYPE)


def pauli_z() -> np.ndarray:
    """Pauli Z."""
    return np.array([[1, 0], [0, -1]], dtype=_CTYPE)


def hadamard() -> np.ndarray:
    """Hadamard gate; maps |0> to |+> as used to prepare the initial state."""
    return np.array([[1, 1], [1, -1]], dtype=_CTYPE) / np.sqrt(2.0)


def phase(theta: float) -> np.ndarray:
    """Phase gate diag(1, e^{i theta})."""
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * theta)]], dtype=_CTYPE)


def rx(theta: float) -> np.ndarray:
    """Single-qubit rotation about X: exp(-i theta X / 2)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=_CTYPE)


def ry(theta: float) -> np.ndarray:
    """Single-qubit rotation about Y: exp(-i theta Y / 2)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=_CTYPE)


def rz(theta: float) -> np.ndarray:
    """Single-qubit rotation about Z: exp(-i theta Z / 2)."""
    e = np.exp(-1j * theta / 2.0)
    return np.array([[e, 0.0], [0.0, np.conj(e)]], dtype=_CTYPE)


def _two_qubit_rotation(theta: float, pauli: np.ndarray) -> np.ndarray:
    """exp(-i theta P (x) P / 2) for a single-qubit Pauli ``P``."""
    pp = np.kron(pauli, pauli)
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.eye(4, dtype=_CTYPE) * c - 1j * s * pp


def rxx(theta: float) -> np.ndarray:
    """Two-qubit rotation exp(-i theta X(x)X / 2); the ansatz's entangler."""
    return _two_qubit_rotation(theta, pauli_x())


def ryy(theta: float) -> np.ndarray:
    """Two-qubit rotation exp(-i theta Y(x)Y / 2)."""
    return _two_qubit_rotation(theta, pauli_y())


def rzz(theta: float) -> np.ndarray:
    """Two-qubit rotation exp(-i theta Z(x)Z / 2)."""
    return _two_qubit_rotation(theta, pauli_z())


def swap() -> np.ndarray:
    """SWAP gate used for routing long-range RXX gates onto the chain."""
    m = np.zeros((4, 4), dtype=_CTYPE)
    m[0, 0] = m[3, 3] = 1.0
    m[1, 2] = m[2, 1] = 1.0
    return m


def cnot() -> np.ndarray:
    """Controlled-X with the first qubit as control."""
    m = np.eye(4, dtype=_CTYPE)
    m[2, 2] = m[3, 3] = 0.0
    m[2, 3] = m[3, 2] = 1.0
    return m


def controlled_z() -> np.ndarray:
    """Controlled-Z gate."""
    m = np.eye(4, dtype=_CTYPE)
    m[3, 3] = -1.0
    return m


def kron(*mats: np.ndarray) -> np.ndarray:
    """Kronecker product of an arbitrary number of matrices, left to right."""
    out = np.array([[1.0]], dtype=_CTYPE)
    for m in mats:
        out = np.kron(out, m)
    return out


def is_unitary(matrix: np.ndarray, atol: float = 1e-12) -> bool:
    """Return ``True`` when ``matrix`` is unitary to within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    ident = np.eye(matrix.shape[0], dtype=_CTYPE)
    return bool(np.allclose(matrix.conj().T @ matrix, ident, atol=atol))


def gate_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Phase-insensitive fidelity ``|tr(A^dag B)| / dim`` between two gates.

    Returns 1.0 exactly when the two unitaries are equal up to a global
    phase; used by tests that verify decompositions and routing preserve the
    implemented operation.
    """
    a = np.asarray(a, dtype=_CTYPE)
    b = np.asarray(b, dtype=_CTYPE)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    dim = a.shape[0]
    return float(np.abs(np.trace(a.conj().T @ b)) / dim)
