"""The Matrix Product State class: the core simulation substrate.

An :class:`MPS` on ``m`` qubits is a chain of ``m`` rank-3 tensors with index
convention ``T[left, physical, right]`` (physical dimension 2, boundary
virtual dimensions 1).  Gate application follows Fig. 1 of the paper:

* single-qubit gates contract directly with the site tensor and never change
  the bond dimension;
* two-qubit gates (restricted to adjacent sites -- routing of long-range
  gates is a circuit-level concern handled in :mod:`repro.circuits.routing`)
  merge the two site tensors, contract the gate, and split the result back by
  SVD, truncating singular values according to the configured
  :class:`~repro.mps.truncation.TruncationPolicy`.

The class maintains an *orthogonality centre*: every tensor to the left of
the centre is left-isometric and every tensor to the right is
right-isometric.  This "canonical form" is what makes local SVD truncation
globally optimal (the paper's footnote 2), and it also makes the norm and
local expectation values cheap to evaluate.

Inner products between two MPS are computed with the transfer-matrix sweep of
Fig. 2 which costs ``O(m * chi^3)``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..exceptions import BondDimensionError, SimulationError
from .tensor_ops import (
    absorb_factor_left,
    absorb_factor_right,
    apply_single_qubit_gate,
    apply_two_qubit_gate_to_theta,
    merge_sites,
    qr_right,
    robust_svd,
    rq_left,
    split_theta,
    tensor_memory_bytes,
)
from .truncation import TruncationPolicy, TruncationRecord, truncate_singular_values

__all__ = ["MPS"]


class MPS:
    """Matrix Product State of an ``m``-qubit register.

    Parameters
    ----------
    tensors:
        Sequence of rank-3 site tensors ``(left, 2, right)``.  Consecutive
        virtual dimensions must match and the boundary dimensions must be 1.
    truncation:
        Policy controlling SVD truncation after two-qubit gates.  Defaults to
        the paper's machine-precision cut-off.
    center:
        Index of the orthogonality centre if the caller already knows it;
        ``None`` means unknown (the state is canonicalised lazily on first
        use).

    Notes
    -----
    The class is deliberately backend-agnostic: it performs its numerics with
    whatever array module the tensors use (NumPy here).  The CPU and
    simulated-GPU backends both drive this exact class; they differ only in
    the device cost model layered on top (see :mod:`repro.backends`).
    """

    __slots__ = (
        "_tensors",
        "_policy",
        "_center",
        "_cumulative_discarded_weight",
        "_truncation_records",
        "_gates_applied",
        "_two_qubit_gates_applied",
    )

    def __init__(
        self,
        tensors: Sequence[np.ndarray],
        truncation: TruncationPolicy | None = None,
        center: int | None = None,
    ) -> None:
        tensors = [np.asarray(t, dtype=np.complex128) for t in tensors]
        if not tensors:
            raise SimulationError("an MPS needs at least one site tensor")
        for i, t in enumerate(tensors):
            if t.ndim != 3:
                raise SimulationError(
                    f"site tensor {i} must be rank-3, got shape {t.shape}"
                )
            if t.shape[1] != 2:
                raise SimulationError(
                    f"site tensor {i} must have physical dimension 2, got {t.shape[1]}"
                )
        if tensors[0].shape[0] != 1 or tensors[-1].shape[2] != 1:
            raise SimulationError("boundary virtual dimensions must be 1")
        for i in range(len(tensors) - 1):
            if tensors[i].shape[2] != tensors[i + 1].shape[0]:
                raise SimulationError(
                    f"virtual bond mismatch between sites {i} and {i + 1}: "
                    f"{tensors[i].shape[2]} vs {tensors[i + 1].shape[0]}"
                )
        self._tensors: List[np.ndarray] = list(tensors)
        self._policy = truncation if truncation is not None else TruncationPolicy()
        self._center = center
        self._cumulative_discarded_weight = 0.0
        self._truncation_records: List[TruncationRecord] = []
        self._gates_applied = 0
        self._two_qubit_gates_applied = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(
        cls, num_qubits: int, truncation: TruncationPolicy | None = None
    ) -> "MPS":
        """Product state ``|0...0>``."""
        if num_qubits < 1:
            raise SimulationError("num_qubits must be >= 1")
        site = np.zeros((1, 2, 1), dtype=np.complex128)
        site[0, 0, 0] = 1.0
        return cls([site.copy() for _ in range(num_qubits)], truncation, center=0)

    @classmethod
    def plus_state(
        cls, num_qubits: int, truncation: TruncationPolicy | None = None
    ) -> "MPS":
        """Uniform superposition ``|+...+>`` -- the ansatz's initial state."""
        if num_qubits < 1:
            raise SimulationError("num_qubits must be >= 1")
        site = np.full((1, 2, 1), 1.0 / np.sqrt(2.0), dtype=np.complex128)
        return cls([site.copy() for _ in range(num_qubits)], truncation, center=0)

    @classmethod
    def from_statevector(
        cls,
        statevector: np.ndarray,
        truncation: TruncationPolicy | None = None,
    ) -> "MPS":
        """Exact MPS decomposition of a dense statevector.

        Used by tests to cross-validate the MPS engine against the dense
        simulator; the decomposition performs successive SVDs without any
        truncation so it is exact up to floating-point error.
        """
        vec = np.asarray(statevector, dtype=np.complex128).ravel()
        dim = vec.size
        num_qubits = int(np.log2(dim))
        if 2**num_qubits != dim:
            raise SimulationError(f"statevector length {dim} is not a power of two")
        tensors: List[np.ndarray] = []
        # remaining[left_bond, rest] with qubit 0 as the most significant bit.
        remaining = vec.reshape(1, dim)
        left_dim = 1
        for _site in range(num_qubits - 1):
            rest = remaining.shape[1] // 2
            mat = remaining.reshape(left_dim * 2, rest)
            u, s, vh = robust_svd(mat)
            k = s.shape[0]
            tensors.append(u.reshape(left_dim, 2, k))
            remaining = (s[:, None] * vh).reshape(k, rest)
            left_dim = k
        tensors.append(remaining.reshape(left_dim, 2, 1))
        return cls(tensors, truncation, center=num_qubits - 1)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits (sites) in the chain."""
        return len(self._tensors)

    @property
    def tensors(self) -> List[np.ndarray]:
        """The site tensors (a shallow copy of the internal list)."""
        return list(self._tensors)

    @property
    def truncation_policy(self) -> TruncationPolicy:
        """The active truncation policy."""
        return self._policy

    @property
    def orthogonality_center(self) -> int | None:
        """Current orthogonality centre, or ``None`` if unknown."""
        return self._center

    @property
    def bond_dimensions(self) -> List[int]:
        """Dimensions of the ``m - 1`` internal virtual bonds."""
        return [t.shape[2] for t in self._tensors[:-1]]

    @property
    def max_bond_dimension(self) -> int:
        """Largest virtual bond dimension ``chi`` (1 for a product state)."""
        dims = self.bond_dimensions
        return max(dims) if dims else 1

    @property
    def memory_bytes(self) -> int:
        """Total bytes of all site-tensor entries (the paper's 'MiB per MPS')."""
        return sum(tensor_memory_bytes(t) for t in self._tensors)

    @property
    def cumulative_discarded_weight(self) -> float:
        """Sum of relative discarded squared singular values over all gates."""
        return self._cumulative_discarded_weight

    @property
    def truncation_records(self) -> List[TruncationRecord]:
        """Per-truncation records accumulated during simulation."""
        return list(self._truncation_records)

    @property
    def gates_applied(self) -> int:
        """Total number of gates applied to this state."""
        return self._gates_applied

    @property
    def two_qubit_gates_applied(self) -> int:
        """Number of two-qubit gates applied (the simulation-cost driver)."""
        return self._two_qubit_gates_applied

    def copy(self) -> "MPS":
        """Deep copy of the state (tensors are copied; policy is shared)."""
        clone = MPS(
            [t.copy() for t in self._tensors],
            truncation=self._policy,
            center=self._center,
        )
        clone._cumulative_discarded_weight = self._cumulative_discarded_weight
        clone._truncation_records = list(self._truncation_records)
        clone._gates_applied = self._gates_applied
        clone._two_qubit_gates_applied = self._two_qubit_gates_applied
        return clone

    # ------------------------------------------------------------------
    # Canonicalisation
    # ------------------------------------------------------------------
    def canonicalize(self, center: int = 0) -> None:
        """Bring the MPS into mixed-canonical form about ``center``.

        After the call every site left of ``center`` is left-isometric and
        every site right of it is right-isometric.  The operation is a full
        QR sweep from both ends and costs ``O(m * chi^3)``.
        """
        m = self.num_qubits
        if not (0 <= center < m):
            raise SimulationError(f"center {center} out of range for {m} qubits")
        # Left-to-right QR sweep up to (excluding) the centre.
        for i in range(center):
            q, r = qr_right(self._tensors[i])
            self._tensors[i] = q
            self._tensors[i + 1] = absorb_factor_left(r, self._tensors[i + 1])
        # Right-to-left RQ sweep down to (excluding) the centre.
        for i in range(m - 1, center, -1):
            r, q = rq_left(self._tensors[i])
            self._tensors[i] = q
            self._tensors[i - 1] = absorb_factor_right(self._tensors[i - 1], r)
        self._center = center

    def _move_center(self, target: int) -> None:
        """Move the orthogonality centre to ``target`` with local QR steps."""
        if self._center is None:
            self.canonicalize(target)
            return
        while self._center < target:
            i = self._center
            q, r = qr_right(self._tensors[i])
            self._tensors[i] = q
            self._tensors[i + 1] = absorb_factor_left(r, self._tensors[i + 1])
            self._center = i + 1
        while self._center > target:
            i = self._center
            r, q = rq_left(self._tensors[i])
            self._tensors[i] = q
            self._tensors[i - 1] = absorb_factor_right(self._tensors[i - 1], r)
            self._center = i - 1

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_single_qubit_gate(self, qubit: int, gate: np.ndarray) -> None:
        """Apply a ``(2, 2)`` unitary to ``qubit`` (Fig. 1a)."""
        self._check_qubit(qubit)
        gate = np.asarray(gate, dtype=np.complex128)
        if gate.shape != (2, 2):
            raise SimulationError(f"single-qubit gate must be 2x2, got {gate.shape}")
        self._tensors[qubit] = apply_single_qubit_gate(self._tensors[qubit], gate)
        self._gates_applied += 1

    def apply_two_qubit_gate(
        self, qubit: int, gate: np.ndarray, canonicalize: bool = True
    ) -> TruncationRecord:
        """Apply a ``(4, 4)`` unitary to the adjacent pair ``(qubit, qubit+1)``.

        The three steps of Fig. 1(b): merge the two site tensors, contract
        the gate, split with SVD and truncate.  The orthogonality centre is
        first moved onto the left member of the pair so the truncation is
        optimal (unless ``canonicalize`` is ``False``, which exists only for
        the ablation benchmark quantifying what canonicalisation buys).

        Returns the :class:`TruncationRecord` of the split.
        """
        self._check_qubit(qubit)
        if qubit + 1 >= self.num_qubits:
            raise SimulationError(
                f"two-qubit gate at qubit {qubit} needs a right neighbour"
            )
        gate = np.asarray(gate, dtype=np.complex128)
        if gate.shape != (4, 4):
            raise SimulationError(f"two-qubit gate must be 4x4, got {gate.shape}")

        if canonicalize:
            self._move_center(qubit)

        theta = merge_sites(self._tensors[qubit], self._tensors[qubit + 1])
        theta = apply_two_qubit_gate_to_theta(theta, gate)
        u, s, vh = split_theta(theta)
        u, s, vh, record = truncate_singular_values(u, s, vh, self._policy)

        if (
            self._policy.max_bond_dim is not None
            and record.bond_dimension_after > self._policy.max_bond_dim
        ):  # pragma: no cover - policy enforces this already
            raise BondDimensionError(
                f"bond dimension {record.bond_dimension_after} exceeds cap "
                f"{self._policy.max_bond_dim}"
            )

        # Absorb the singular values into the right factor so the left site
        # stays left-isometric and the centre moves to ``qubit + 1``.
        # Canonical C-contiguous layout: einsum picks its summation order by
        # memory layout, so a truncated-slice view here would make downstream
        # overlaps differ in the last ulp from batch-encoded states.
        self._tensors[qubit] = np.ascontiguousarray(u)
        self._tensors[qubit + 1] = np.ascontiguousarray(s[:, None, None] * vh)
        if canonicalize:
            self._center = qubit + 1
        else:
            self._center = None

        self._cumulative_discarded_weight += record.discarded_weight
        self._truncation_records.append(record)
        self._gates_applied += 1
        self._two_qubit_gates_applied += 1
        return record

    def apply_gate(self, qubits: Sequence[int], gate: np.ndarray) -> None:
        """Dispatch on the number of target qubits.

        Two-qubit gates must act on adjacent qubits given in ascending order;
        long-range interactions are routed at the circuit level.
        """
        if len(qubits) == 1:
            self.apply_single_qubit_gate(qubits[0], gate)
        elif len(qubits) == 2:
            q0, q1 = qubits
            if q1 != q0 + 1:
                raise SimulationError(
                    "MPS two-qubit gates must act on adjacent qubits (q, q+1); "
                    f"got ({q0}, {q1}).  Route the circuit first."
                )
            self.apply_two_qubit_gate(q0, gate)
        else:
            raise SimulationError(
                f"only 1- and 2-qubit gates are supported, got {len(qubits)} targets"
            )

    def apply_circuit(self, circuit) -> None:
        """Apply every gate of a :class:`repro.circuits.Circuit` in order.

        The circuit must already be routed (only adjacent two-qubit gates).
        """
        for op in circuit.operations:
            self.apply_gate(op.qubits, op.matrix())

    # ------------------------------------------------------------------
    # Measurement-free observables
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """The 2-norm ``sqrt(<psi|psi>)`` of the state."""
        return float(np.sqrt(abs(self.inner_product(self))))

    def normalize(self) -> None:
        """Rescale the state to unit norm (in place)."""
        n = self.norm()
        if n == 0.0:
            raise SimulationError("cannot normalise the zero state")
        # Scale the centre tensor (or site 0 if the centre is unknown).
        site = self._center if self._center is not None else 0
        self._tensors[site] = self._tensors[site] / n

    def inner_product(self, other: "MPS") -> complex:
        """Inner product ``<self|other>`` via the transfer-matrix sweep (Fig. 2).

        Cost is ``O(m * chi^3)`` where ``chi`` bounds the bond dimensions of
        both states.  The bra (``self``) is conjugated.
        """
        if other.num_qubits != self.num_qubits:
            raise SimulationError(
                "inner product requires equal qubit counts: "
                f"{self.num_qubits} vs {other.num_qubits}"
            )
        # env[a, b]: contraction of everything to the left, with `a` the open
        # bond of the bra chain and `b` the open bond of the ket chain.
        env = np.ones((1, 1), dtype=np.complex128)
        for bra_t, ket_t in zip(self._tensors, other._tensors):
            # env'[a', b'] = sum_{a, b, p} env[a, b] conj(bra[a, p, a']) ket[b, p, b']
            tmp = np.tensordot(env, np.conj(bra_t), axes=([0], [0]))  # [b, p, a']
            env = np.tensordot(tmp, ket_t, axes=([0, 1], [0, 1]))  # [a', b']
        return complex(env[0, 0])

    def fidelity(self, other: "MPS") -> float:
        """Squared overlap ``|<self|other>|^2`` -- the quantum-kernel entry."""
        return float(abs(self.inner_product(other)) ** 2)

    def expectation_single(self, qubit: int, operator: np.ndarray) -> complex:
        """Expectation value of a single-qubit operator ``<psi|O_q|psi>``.

        Used by the projected quantum kernel, which evaluates local
        observables instead of state overlaps.
        """
        self._check_qubit(qubit)
        operator = np.asarray(operator, dtype=np.complex128)
        if operator.shape != (2, 2):
            raise SimulationError(f"operator must be 2x2, got {operator.shape}")
        env = np.ones((1, 1), dtype=np.complex128)
        for i, t in enumerate(self._tensors):
            if i == qubit:
                op_t = apply_single_qubit_gate(t, operator)
            else:
                op_t = t
            tmp = np.tensordot(env, np.conj(t), axes=([0], [0]))  # [b, p, a']
            env = np.tensordot(tmp, op_t, axes=([0, 1], [0, 1]))
        return complex(env[0, 0])

    def to_statevector(self) -> np.ndarray:
        """Contract all virtual bonds and return the dense ``2^m`` vector.

        Only intended for small ``m`` (tests and validation); raises for more
        than 20 qubits to avoid accidentally allocating huge arrays.
        """
        if self.num_qubits > 20:
            raise SimulationError(
                "refusing to densify an MPS with more than 20 qubits"
            )
        result = self._tensors[0]  # shape (1, 2, r)
        for t in self._tensors[1:]:
            merged = np.tensordot(result, t, axes=([result.ndim - 1], [0]))
            result = merged
        # result shape: (1, 2, 2, ..., 2, 1)
        vec = result.reshape(-1)
        return vec

    def schmidt_values(self, bond: int) -> np.ndarray:
        """Schmidt coefficients across the bond between ``bond`` and ``bond+1``.

        Returns the singular values (descending) of the bipartition; their
        squares sum to the squared norm.  Useful for entanglement-entropy
        diagnostics in the analysis module.
        """
        if not (0 <= bond < self.num_qubits - 1):
            raise SimulationError(f"bond {bond} out of range")
        work = self.copy()
        work.canonicalize(bond)
        theta = merge_sites(work._tensors[bond], work._tensors[bond + 1])
        left, p0, p1, right = theta.shape
        mat = theta.reshape(left * p0, p1 * right)
        _u, s, _vh = robust_svd(mat)
        return s

    def entanglement_entropy(self, bond: int) -> float:
        """Von Neumann entropy of the bipartition at ``bond`` (natural log)."""
        s = self.schmidt_values(bond)
        p = (s * s).astype(float)
        total = p.sum()
        if total <= 0:
            return 0.0
        p = p / total
        nz = p[p > 1e-300]
        return float(-np.sum(nz * np.log(nz)))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_qubit(self, qubit: int) -> None:
        if not (0 <= qubit < self.num_qubits):
            raise SimulationError(
                f"qubit index {qubit} out of range for {self.num_qubits} qubits"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MPS(num_qubits={self.num_qubits}, max_chi={self.max_bond_dimension}, "
            f"memory_bytes={self.memory_bytes})"
        )
