"""Batched transfer-matrix overlap evaluation.

The naive pairwise path performs one Python call -- and ``m`` small
``tensordot`` contractions -- per inner product.  For the quadratic half of
the kernel computation that Python overhead dominates at small bond
dimension.  This module evaluates *chunks* of pairs at once: pairs whose bra
and ket chains have identical per-site tensor shapes (the common case, since
all states come from the same ansatz) are stacked along a batch axis and the
whole group is swept with two ``einsum`` contractions per site instead of one
Python-level sweep per pair.

Pairs with unique shape signatures (truncation occasionally produces a
straggler bond dimension) fall back to the sequential sweep, so the function
is exact for arbitrary mixtures and matches the reference
:meth:`repro.mps.MPS.inner_product` to floating-point round-off.

The module lives in the :mod:`repro.mps` layer (it depends only on the MPS
class and NumPy) so that :mod:`repro.backends` can use it without depending
on the engine package; :mod:`repro.engine.batching` re-exports it as part of
the engine's public surface.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from .mps import MPS

__all__ = [
    "pair_shape_signature",
    "batched_overlaps",
    "group_pairs_by_shape",
    "StackedStateBlock",
]


def pair_shape_signature(bra: MPS, ket: MPS) -> Tuple[Tuple[int, ...], ...]:
    """Hashable signature of the per-site tensor shapes of a (bra, ket) pair.

    Two pairs with equal signatures can share one stacked einsum sweep.
    """
    bra_shapes = tuple(t.shape for t in bra.tensors)
    ket_shapes = tuple(t.shape for t in ket.tensors)
    return (bra_shapes, ket_shapes)


def group_pairs_by_shape(
    pairs: Sequence[Tuple[MPS, MPS]]
) -> Dict[Tuple, List[int]]:
    """Group pair indices by shape signature (insertion-ordered)."""
    groups: Dict[Tuple, List[int]] = defaultdict(list)
    for idx, (bra, ket) in enumerate(pairs):
        groups[pair_shape_signature(bra, ket)].append(idx)
    return dict(groups)


def _sequential_overlap(bra: MPS, ket: MPS) -> complex:
    """Reference single-pair sweep (delegates to the MPS implementation)."""
    return bra.inner_product(ket)


def _stacked_group_overlaps(
    bras: Sequence[MPS], kets: Sequence[MPS]
) -> np.ndarray:
    """Vectorised transfer-matrix sweep over a same-shape group of pairs.

    Mirrors :meth:`repro.mps.MPS.inner_product` with one extra batch axis
    ``z``: ``env[z, a, b]`` carries the left environment of pair ``z`` and is
    updated site by site with two einsum contractions.
    """
    batch = len(bras)
    num_qubits = bras[0].num_qubits
    bra_tensors = [b.tensors for b in bras]
    ket_tensors = [k.tensors for k in kets]

    env = np.ones((batch, 1, 1), dtype=np.complex128)
    for site in range(num_qubits):
        bra_stack = np.stack([bra_tensors[z][site] for z in range(batch)])
        ket_stack = np.stack([ket_tensors[z][site] for z in range(batch)])
        # env'[z, a', b'] = sum_{a, b, p} env[z, a, b]
        #                   * conj(bra[z, a, p, a']) * ket[z, b, p, b']
        tmp = np.einsum("zab,zapc->zbpc", env, np.conj(bra_stack))
        env = np.einsum("zbpc,zbpd->zcd", tmp, ket_stack)
    return env[:, 0, 0]


class StackedStateBlock:
    """A fixed set of MPS pre-stacked by shape group for repeated sweeps.

    The serving hot path evaluates every incoming query against the *same*
    ``m`` landmark states.  The generic :func:`batched_overlaps` re-stacks
    the landmark tensors for every chunk -- an ``O(pairs)`` Python cost that
    dominates at small bond dimension.  This block stacks each shape group of
    the fixed states **once** at construction; :meth:`overlaps` then sweeps a
    batch of queries with two einsum contractions per site per (query-group,
    state-group) pair and no per-pair stacking at all.

    Every overlap value is bit-identical to the stacked sweep of
    :func:`batched_overlaps` on the same pair: the extra query/state batch
    axes are outer loops of the same per-slice contraction, so re-batching
    does not move a single bit (verified by the engine property tests).
    """

    def __init__(self, states: Sequence[MPS]) -> None:
        states = list(states)
        if not states:
            raise SimulationError("a stacked state block needs at least one state")
        self.num_states = len(states)
        self.num_qubits = states[0].num_qubits
        for s in states[1:]:
            if s.num_qubits != self.num_qubits:
                raise SimulationError(
                    "all states in a stacked block must share one qubit count"
                )
        self.max_bond_dimensions = np.array(
            [s.max_bond_dimension for s in states], dtype=int
        )
        by_shape: Dict[Tuple, List[int]] = defaultdict(list)
        for j, s in enumerate(states):
            by_shape[tuple(t.shape for t in s.tensors)].append(j)
        self._groups: List[Tuple[np.ndarray, List[np.ndarray]]] = []
        for indices in by_shape.values():
            stacks = [
                np.stack([states[j].tensors[site] for j in indices])
                for site in range(self.num_qubits)
            ]
            self._groups.append((np.asarray(indices, dtype=int), stacks))

    @property
    def num_groups(self) -> int:
        """Number of distinct per-site shape signatures among the states."""
        return len(self._groups)

    def overlaps(self, bras: Sequence[MPS]) -> np.ndarray:
        """``<bra_q|ket_j>`` for every query ``q`` and block state ``j``.

        Queries are themselves grouped by shape, so a batch of ``Q`` queries
        against ``m`` block states costs ``2 * num_qubits`` einsum calls per
        (query-group, state-group) pair over a ``Q x m`` batch axis -- the
        per-request Python overhead vanishes as the batch fills.
        """
        bras = list(bras)
        if not bras:
            return np.empty((0, self.num_states), dtype=np.complex128)
        for bra in bras:
            if bra.num_qubits != self.num_qubits:
                raise SimulationError(
                    "query state qubit count does not match the stacked block"
                )
        out = np.empty((len(bras), self.num_states), dtype=np.complex128)
        by_shape: Dict[Tuple, List[int]] = defaultdict(list)
        for q, bra in enumerate(bras):
            by_shape[tuple(t.shape for t in bra.tensors)].append(q)
        for q_indices in by_shape.values():
            bra_stacks = [
                np.stack([bras[q].tensors[site] for q in q_indices])
                for site in range(self.num_qubits)
            ]
            q_arr = np.asarray(q_indices, dtype=int)
            for k_arr, ket_stacks in self._groups:
                env = np.ones(
                    (len(q_arr), len(k_arr), 1, 1), dtype=np.complex128
                )
                for site in range(self.num_qubits):
                    # env'[q, j, a', b'] = sum_{a, b, p} env[q, j, a, b]
                    #   * conj(bra[q, a, p, a']) * ket[j, b, p, b']
                    tmp = np.einsum(
                        "qjab,qapc->qjbpc", env, np.conj(bra_stacks[site])
                    )
                    env = np.einsum("qjbpc,jbpd->qjcd", tmp, ket_stacks[site])
                out[np.ix_(q_arr, k_arr)] = env[:, :, 0, 0]
        return out


def batched_overlaps(
    pairs: Sequence[Tuple[MPS, MPS]], min_group_size: int = 2
) -> np.ndarray:
    """Inner products ``<bra_k|ket_k>`` for a chunk of MPS pairs.

    Parameters
    ----------
    pairs:
        Sequence of ``(bra, ket)`` pairs; the bra is conjugated.
    min_group_size:
        Shape groups smaller than this run through the sequential sweep (a
        stacked sweep over one pair only adds overhead).

    Returns
    -------
    Complex overlap values in the same order as ``pairs``.
    """
    if not pairs:
        return np.empty(0, dtype=np.complex128)
    num_qubits = pairs[0][0].num_qubits
    for bra, ket in pairs:
        if bra.num_qubits != ket.num_qubits or bra.num_qubits != num_qubits:
            raise SimulationError(
                "all states in a batched overlap chunk must share one qubit count"
            )

    values = np.empty(len(pairs), dtype=np.complex128)
    for indices in group_pairs_by_shape(pairs).values():
        if len(indices) < min_group_size:
            for idx in indices:
                values[idx] = _sequential_overlap(*pairs[idx])
            continue
        group_vals = _stacked_group_overlaps(
            [pairs[idx][0] for idx in indices],
            [pairs[idx][1] for idx in indices],
        )
        values[indices] = group_vals
    return values
