"""Batched transfer-matrix overlap evaluation.

The naive pairwise path performs one Python call -- and ``m`` small
``tensordot`` contractions -- per inner product.  For the quadratic half of
the kernel computation that Python overhead dominates at small bond
dimension.  This module evaluates *chunks* of pairs at once: pairs whose bra
and ket chains have identical per-site tensor shapes (the common case, since
all states come from the same ansatz) are stacked along a batch axis and the
whole group is swept with two ``einsum`` contractions per site instead of one
Python-level sweep per pair.

Pairs with unique shape signatures (truncation occasionally produces a
straggler bond dimension) fall back to the sequential sweep, so the function
is exact for arbitrary mixtures and matches the reference
:meth:`repro.mps.MPS.inner_product` to floating-point round-off.

The module lives in the :mod:`repro.mps` layer (it depends only on the MPS
class and NumPy) so that :mod:`repro.backends` can use it without depending
on the engine package; :mod:`repro.engine.batching` re-exports it as part of
the engine's public surface.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from .mps import MPS

__all__ = ["pair_shape_signature", "batched_overlaps", "group_pairs_by_shape"]


def pair_shape_signature(bra: MPS, ket: MPS) -> Tuple[Tuple[int, ...], ...]:
    """Hashable signature of the per-site tensor shapes of a (bra, ket) pair.

    Two pairs with equal signatures can share one stacked einsum sweep.
    """
    bra_shapes = tuple(t.shape for t in bra.tensors)
    ket_shapes = tuple(t.shape for t in ket.tensors)
    return (bra_shapes, ket_shapes)


def group_pairs_by_shape(
    pairs: Sequence[Tuple[MPS, MPS]]
) -> Dict[Tuple, List[int]]:
    """Group pair indices by shape signature (insertion-ordered)."""
    groups: Dict[Tuple, List[int]] = defaultdict(list)
    for idx, (bra, ket) in enumerate(pairs):
        groups[pair_shape_signature(bra, ket)].append(idx)
    return dict(groups)


def _sequential_overlap(bra: MPS, ket: MPS) -> complex:
    """Reference single-pair sweep (delegates to the MPS implementation)."""
    return bra.inner_product(ket)


def _stacked_group_overlaps(
    bras: Sequence[MPS], kets: Sequence[MPS]
) -> np.ndarray:
    """Vectorised transfer-matrix sweep over a same-shape group of pairs.

    Mirrors :meth:`repro.mps.MPS.inner_product` with one extra batch axis
    ``z``: ``env[z, a, b]`` carries the left environment of pair ``z`` and is
    updated site by site with two einsum contractions.
    """
    batch = len(bras)
    num_qubits = bras[0].num_qubits
    bra_tensors = [b.tensors for b in bras]
    ket_tensors = [k.tensors for k in kets]

    env = np.ones((batch, 1, 1), dtype=np.complex128)
    for site in range(num_qubits):
        bra_stack = np.stack([bra_tensors[z][site] for z in range(batch)])
        ket_stack = np.stack([ket_tensors[z][site] for z in range(batch)])
        # env'[z, a', b'] = sum_{a, b, p} env[z, a, b]
        #                   * conj(bra[z, a, p, a']) * ket[z, b, p, b']
        tmp = np.einsum("zab,zapc->zbpc", env, np.conj(bra_stack))
        env = np.einsum("zbpc,zbpd->zcd", tmp, ket_stack)
    return env[:, 0, 0]


def batched_overlaps(
    pairs: Sequence[Tuple[MPS, MPS]], min_group_size: int = 2
) -> np.ndarray:
    """Inner products ``<bra_k|ket_k>`` for a chunk of MPS pairs.

    Parameters
    ----------
    pairs:
        Sequence of ``(bra, ket)`` pairs; the bra is conjugated.
    min_group_size:
        Shape groups smaller than this run through the sequential sweep (a
        stacked sweep over one pair only adds overhead).

    Returns
    -------
    Complex overlap values in the same order as ``pairs``.
    """
    if not pairs:
        return np.empty(0, dtype=np.complex128)
    num_qubits = pairs[0][0].num_qubits
    for bra, ket in pairs:
        if bra.num_qubits != ket.num_qubits or bra.num_qubits != num_qubits:
            raise SimulationError(
                "all states in a batched overlap chunk must share one qubit count"
            )

    values = np.empty(len(pairs), dtype=np.complex128)
    for indices in group_pairs_by_shape(pairs).values():
        if len(indices) < min_group_size:
            for idx in indices:
                values[idx] = _sequential_overlap(*pairs[idx])
            continue
        group_vals = _stacked_group_overlaps(
            [pairs[idx][0] for idx in indices],
            [pairs[idx][1] for idx in indices],
        )
        values[indices] = group_vals
    return values
